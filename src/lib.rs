//! # rrp — randomized rank promotion
//!
//! Umbrella crate for the `rrp` workspace, a reproduction and extension of
//! *"Shuffling a Stacked Deck: The Case for Partially Randomized Ranking of
//! Search Engine Results"* (Pandey, Roy, Olston, Cho, Chakrabarti, VLDB
//! 2005). It re-exports every member crate under a stable module name; the
//! workspace-level integration tests and examples build against it.
//!
//! See the crate-level documentation of [`core`] for the embeddable engine
//! and of [`experiments`] for the figure drivers.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use rrp_analytic as analytic;
pub use rrp_attention as attention;
pub use rrp_core as core;
pub use rrp_experiments as experiments;
pub use rrp_livestudy as livestudy;
pub use rrp_model as model;
pub use rrp_ranking as ranking;
pub use rrp_serve as serve;
pub use rrp_sim as sim;
pub use rrp_wal as wal;
pub use rrp_webgraph as webgraph;

/// The paper's recommended engine, re-exported for one-line quickstarts.
pub use rrp_core::{Document, QueryContext, RankPromotionEngine};

/// The sharded batch serving layer, re-exported for one-line quickstarts.
pub use rrp_serve::ShardedPromotionService;

/// The durable (write-ahead-logged) serving wrapper, re-exported for
/// one-line quickstarts.
pub use rrp_serve::DurableService;

#[cfg(test)]
mod tests {
    #[test]
    fn umbrella_reexports_resolve() {
        let engine = crate::RankPromotionEngine::recommended();
        assert_eq!(engine.config().start_rank, 2);
    }
}
