//! Quickstart: embed randomized rank promotion into a search pipeline.
//!
//! Run with `cargo run --release --example quickstart`.

use rrp_core::{Document, QueryContext, RankPromotionEngine};

fn main() {
    // Pretend these are the results your engine produced for the query
    // "swimming", already scored by popularity (PageRank, clicks, ...).
    // Two brand-new pages have no popularity signal yet.
    let results = vec![
        Document::established(1001, 0.93).with_age(900),
        Document::established(1002, 0.71).with_age(740),
        Document::established(1003, 0.44).with_age(1_200),
        Document::established(1004, 0.31).with_age(400),
        Document::established(1005, 0.12).with_age(210),
        Document::established(1006, 0.05).with_age(95),
        Document::unexplored(9001), // published yesterday
        Document::unexplored(9002), // published this morning
    ];

    // The paper's recommendation: selective promotion of unexplored pages,
    // 10% randomization, top result protected (k = 2).
    let engine = RankPromotionEngine::recommended();

    println!("promotion configuration: {}", engine.config().label());
    println!();

    // The shuffle is deterministic per (query, session): a user who reruns
    // the query sees the same list, but different sessions explore
    // different new pages.
    for session in ["alice", "bob", "carol"] {
        let ctx = QueryContext::from_strings("swimming", session);
        let order = engine.rerank(&results, ctx);
        println!("session {session:>6}: {order:?}");
    }

    println!();
    println!("Note that document 1001 (the most popular result) is always at rank 1,");
    println!("while the unexplored documents 9001/9002 occasionally appear in the list");
    println!("at a randomized position — that is the controlled exploration that lets");
    println!("new, high-quality pages prove their worth.");
}
