//! Simulate a Web community under strict popularity ranking and under the
//! paper's recommended randomized rank promotion, and compare the
//! quality-per-click and the number of never-discovered pages.
//!
//! Run with `cargo run --release --example community_simulation`.

use rrp_core::prelude::*;

fn main() {
    // A community with the paper's default proportions (Section 6.1), scaled
    // to 2,000 pages so the example finishes in a few seconds.
    let community = CommunityConfig::builder()
        .scaled_to_pages(2_000)
        .expected_lifetime_years(1.5)
        .build()
        .expect("valid community");

    println!(
        "community: {} pages, {} users ({} monitored), {} visits/day, {:.0}-day page lifetime",
        community.pages(),
        community.users(),
        community.monitored_users(),
        community.total_visits_per_day(),
        community.expected_lifetime_days(),
    );
    println!();

    let policies: Vec<(&str, PolicyKind)> = vec![
        ("no randomization", PolicyKind::Popularity),
        (
            "selective promotion (r=0.1, k=1)",
            PolicyKind::recommended(1),
        ),
        (
            "selective promotion (r=0.1, k=2)",
            PolicyKind::recommended(2),
        ),
        ("quality oracle (upper bound)", PolicyKind::QualityOracle),
    ];

    println!(
        "{:<34} {:>16} {:>16} {:>22}",
        "ranking method", "absolute QPC", "normalized QPC", "never-seen pages (%)"
    );
    for (name, policy) in policies {
        let config = SimConfig::for_community(community, 42);
        let mut sim = Simulation::new(config, policy).expect("valid simulation");
        // Warm up for two page lifetimes, then measure for two more.
        let metrics = sim.run_windows(1_100, 1_100);
        println!(
            "{:<34} {:>16.4} {:>16.4} {:>21.1}%",
            name,
            metrics.absolute_qpc,
            metrics.normalized_qpc,
            metrics.mean_zero_awareness_fraction * 100.0
        );
    }

    println!();
    println!("Expected shape (paper, Figures 5-7): selective promotion recovers a large part");
    println!("of the gap between strict popularity ranking and the quality-ordered ideal,");
    println!("while sharply reducing the fraction of pages that no monitored user ever sees.");
}
