//! Live replication off the write-ahead log: one durable leader keeps
//! writing while a read replica tails its log file, catching up between
//! serves and reporting its lag — then a second replica time-travels to
//! a historical sequence with a capped replay.
//!
//! Run with `cargo run --release --example replica_tail`.

use rrp_core::{Document, QueryContext, RankPromotionEngine};
use rrp_serve::{DurableService, ReplicaService};

fn main() {
    // One directory, shared by the leader (read-write) and every
    // replica (read-only): the log file is the replication stream.
    let dir = std::env::temp_dir().join(format!("rrp-replica-tail-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let engine = RankPromotionEngine::recommended().with_seed(7);
    let queries: Vec<QueryContext> = (0..2)
        .map(|q| QueryContext::from_strings("swimming", &format!("session-{q}")))
        .collect();

    // ── The leader ──────────────────────────────────────────────────────
    let (leader, _) = DurableService::open(&dir, engine, 4).expect("open fresh dir");
    let mut leader = leader.with_snapshot_every(8);
    for i in 0..10u64 {
        leader
            .insert(Document::established(i, 0.9 - i as f64 * 0.05).with_age(100 + i))
            .expect("durable insert");
    }

    // ── A replica comes up mid-history ──────────────────────────────────
    // Bootstrap from the latest verified snapshot (or the empty state if
    // none exists yet), then open the live log tail. Nothing is applied
    // until the first catch_up().
    let mut replica = ReplicaService::open(&dir, engine, 4).expect("open replica");
    println!("replica bootstrap: {:?}", replica.stats().bootstrap_source);
    let applied = replica.catch_up().expect("catch up");
    println!(
        "first catch_up applied {applied} events -> {:?}",
        replica.stats()
    );

    // ── The leader keeps writing; the replica keeps tailing ─────────────
    // The leader never closes the log. sync_for_followers() fsyncs it
    // and returns the mark a follower can reach right now.
    leader.record_visit(3).expect("durable visit");
    leader.update_popularity(7, 0.99).expect("durable update");
    leader
        .insert(Document::unexplored(9001))
        .expect("durable insert");
    let mark = leader.sync_for_followers().expect("sync");
    let applied = replica.catch_up().expect("catch up");
    let stats = replica.stats();
    println!();
    println!("leader synced at mark {mark}; catch_up applied {applied} more");
    println!("replica lag: {stats:?}");
    assert_eq!(stats.behind_by, 0, "caught up on a quiesced leader");
    assert_eq!(stats.last_applied_seq, Some(mark - 1));

    // Replica answers are bit-identical to the leader's — same epochs,
    // same coins, same order.
    for &ctx in &queries {
        let leader_order = leader.rerank_top_k(ctx, 5);
        let replica_order = replica.rerank_top_k(ctx, 5);
        println!("  {ctx:?}: leader {leader_order:?} == replica {replica_order:?}");
        assert_eq!(leader_order, replica_order);
    }

    // ── Time travel ─────────────────────────────────────────────────────
    // A capped replay answers "what did the ranking look like at event
    // 10?" — before the visit, the boost and the late insert. Events
    // past the cap are read but held back, visible as behind_by.
    let mut historian = ReplicaService::open(&dir, engine, 4).expect("open historian");
    historian.apply_up_to(10).expect("capped replay");
    let stats = historian.stats();
    println!();
    println!("historian pinned at event 10: {stats:?}");
    assert_eq!(stats.behind_by, mark - 10, "the rest is held, not lost");
    println!(
        "  {:?} as of event 10: {:?}",
        queries[0],
        historian.rerank_top_k(queries[0], 5)
    );
    // Raising the cap drains the backlog without re-reading the file.
    historian.catch_up().expect("drain");
    assert_eq!(
        historian.rerank_top_k(queries[0], 5),
        replica.rerank_top_k(queries[0], 5),
        "fully caught up, the historian equals any live replica"
    );
    println!("  …and after catch_up() the historian equals the live replica.");

    std::fs::remove_dir_all(&dir).ok();
}
