//! Reproduce the paper's live "jokes site" study (Appendix A / Figure 1):
//! two user groups rate rotating jokes/quotations, one group with rank
//! promotion of never-viewed items, one without.
//!
//! Run with `cargo run --release --example live_study`.

use rrp_livestudy::{LiveStudy, StudyConfig};

fn main() {
    let seeds = [11u64, 22, 33, 44, 55];
    let mut control_sum = 0.0;
    let mut promoted_sum = 0.0;

    println!(
        "running {} simulated 45-day studies (962 participants each)…\n",
        seeds.len()
    );
    println!(
        "{:>6} {:>24} {:>24} {:>14}",
        "study", "ratio without promotion", "ratio with promotion", "improvement"
    );
    for (idx, &seed) in seeds.iter().enumerate() {
        let outcome = LiveStudy::new(StudyConfig::paper_default(seed))
            .expect("valid study configuration")
            .run();
        let control = outcome.control.ratio();
        let promoted = outcome.promoted.ratio();
        control_sum += control;
        promoted_sum += promoted;
        println!(
            "{:>6} {:>24.4} {:>24.4} {:>13.1}%",
            idx + 1,
            control,
            promoted,
            outcome.relative_improvement() * 100.0
        );
    }

    let control = control_sum / seeds.len() as f64;
    let promoted = promoted_sum / seeds.len() as f64;
    println!(
        "\naverage funny-vote ratio: {control:.4} without promotion, {promoted:.4} with promotion"
    );
    println!(
        "average improvement: {:.1}% (the paper's live study observed ≈ +60%)",
        (promoted / control - 1.0) * 100.0
    );
}
