//! Use the analytic model to decide whether randomized rank promotion is
//! worth enabling for a *specific* community, and with which parameters.
//!
//! Run with `cargo run --release --example parameter_advisor`.

use rrp_core::prelude::*;

fn main() {
    // Describe your community: how many pages compete for the same queries,
    // how many users issue them, how many of those users you can observe,
    // how much traffic there is, and how quickly content turns over.
    let communities = [
        (
            "niche forum (visit-starved)",
            CommunityConfig::builder()
                .pages(5_000)
                .users(500)
                .monitored_users(50)
                .total_visits_per_day(500.0)
                .expected_lifetime_years(1.5)
                .build()
                .unwrap(),
        ),
        (
            "hot topic (visit-rich)",
            CommunityConfig::builder()
                .pages(1_000)
                .users(5_000)
                .monitored_users(500)
                .total_visits_per_day(5_000.0)
                .expected_lifetime_years(0.5)
                .build()
                .unwrap(),
        ),
    ];

    let advisor = ParameterAdvisor::default();
    for (name, community) in communities {
        println!("== {name} ==");
        let advice = advisor.advise(community).expect("valid community");
        println!(
            "  baseline (no randomization) predicted QPC: {:.3}",
            advice.baseline_qpc
        );
        for candidate in &advice.candidates {
            println!(
                "  selective r={:.2}, k={} -> predicted QPC {:.3}",
                candidate.degree, candidate.start_rank, candidate.normalized_qpc
            );
        }
        println!(
            "  recommended: {} (predicted improvement {:+.1}%)",
            advice.recommended_config().label(),
            advice.predicted_improvement() * 100.0
        );
        println!();
    }

    println!("Communities starved for visits benefit most from promotion; visit-rich");
    println!("communities gain little (paper, Figure 7(c)) — the advisor quantifies this");
    println!("before you change anything in production.");
}
