//! Compare the paper's analytical steady-state model against the simulator
//! on the same community: quality-per-click and time-to-become-popular for
//! nonrandomized ranking vs selective randomized promotion.
//!
//! Run with `cargo run --release --example analytic_vs_simulation`.

use rrp_core::prelude::*;
use rrp_core::sim::TBP_POPULARITY_THRESHOLD;

fn main() {
    let community = CommunityConfig::builder()
        .scaled_to_pages(2_000)
        .expected_lifetime_years(1.5)
        .build()
        .expect("valid community");
    let groups =
        QualityGroups::from_distribution(&PowerLawQuality::paper_default(), community.pages());

    println!("popularity threshold for TBP: {TBP_POPULARITY_THRESHOLD} x quality\n");
    println!(
        "{:<28} {:>14} {:>14} {:>14} {:>14}",
        "ranking", "QPC (analysis)", "QPC (sim)", "TBP (analysis)", "TBP (sim)"
    );

    let cases = [
        ("no randomization", RankingModel::NonRandomized),
        (
            "selective (r=0.1, k=1)",
            RankingModel::Selective {
                start_rank: 1,
                degree: 0.1,
            },
        ),
        (
            "selective (r=0.2, k=1)",
            RankingModel::Selective {
                start_rank: 1,
                degree: 0.2,
            },
        ),
    ];

    for (name, model) in cases {
        // Analysis: solve the fixed point of Section 5.
        let solved = AnalyticModel::new(community, groups.clone(), model)
            .expect("valid model")
            .solve();
        let qpc_analysis = solved.normalized_qpc();
        let tbp_analysis = solved.expected_tbp(0.4);

        // Simulation: same community, same ranking description.
        let policy: PolicyKind = match model {
            RankingModel::NonRandomized => PolicyKind::Popularity,
            RankingModel::Selective { start_rank, degree } => PolicyKind::promotion(
                PromotionConfig::new(PromotionRule::Selective, start_rank, degree).unwrap(),
            ),
            RankingModel::Uniform { start_rank, degree } => PolicyKind::promotion(
                PromotionConfig::new(PromotionRule::Uniform, start_rank, degree).unwrap(),
            ),
        };
        let mut sim = Simulation::new(SimConfig::for_community(community, 7), policy)
            .expect("valid simulation");
        let metrics = sim.run_windows(1_100, 1_100);
        let tbp_sim = sim.measure_tbp(2, 4_000);

        println!(
            "{:<28} {:>14.3} {:>14.3} {:>13.0}d {:>13.0}d",
            name,
            qpc_analysis,
            metrics.normalized_qpc,
            tbp_analysis.min(99_999.0),
            tbp_sim.mean_days
        );
    }

    println!();
    println!("The analysis and the simulation agree on the shape: randomized rank promotion");
    println!("raises quality-per-click and cuts the time for a new high-quality page to become");
    println!("popular by orders of magnitude (paper, Figures 4-5). Simulated TBP is censored at");
    println!("4,000 days per trial, so entrenched baselines report a lower bound.");
}
