//! Crash recovery: mutate a durable service, pull the plug, recover
//! bit-identical serving state from the write-ahead log and snapshot.
//!
//! Run with `cargo run --release --example crash_recovery`.

use rrp_core::{Document, QueryContext, RankPromotionEngine};
use rrp_serve::DurableService;

fn main() {
    // A scratch directory for the log + snapshot pair.
    let dir = std::env::temp_dir().join(format!("rrp-crash-recovery-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let engine = RankPromotionEngine::recommended().with_seed(7);
    let queries: Vec<QueryContext> = (0..3)
        .map(|q| QueryContext::from_strings("swimming", &format!("session-{q}")))
        .collect();

    // ── Before the crash ────────────────────────────────────────────────
    // Every mutation is appended to wal.log before it touches memory;
    // every 8th mutation also writes an atomic snapshot.
    let (durable, _) = DurableService::open(&dir, engine, 4).expect("open fresh dir");
    let mut durable = durable.with_snapshot_every(8);

    for i in 0..12u64 {
        durable
            .insert(Document::established(1000 + i, 0.9 - i as f64 * 0.06).with_age(100 + i))
            .expect("durable insert");
    }
    durable
        .insert(Document::unexplored(9001))
        .expect("durable insert");
    durable
        .insert(Document::unexplored(9002))
        .expect("durable insert");
    durable.record_visit(12).expect("durable visit");
    durable.update_popularity(3, 0.97).expect("durable update");
    // Two mutations past the last snapshot: recovery will replay exactly
    // these from the log tail.
    durable.record_visit(13).expect("durable visit");
    durable.update_popularity(5, 0.55).expect("durable update");

    let stats = durable.serve_stats();
    println!("before the crash:");
    println!("  wal appends       = {}", stats.wal_appends);
    println!("  snapshots written = {}", stats.snapshots_written);
    let before: Vec<Vec<u64>> = durable.rerank_batch(&queries);
    for (ctx, order) in queries.iter().zip(&before) {
        println!("  serve {ctx:?} -> {order:?}");
    }

    // ── The crash ───────────────────────────────────────────────────────
    // No flush call, no shutdown hook: the process is simply gone.
    drop(durable);
    println!();
    println!("…crash (the service is dropped without any shutdown)…");
    println!();

    // ── Recovery ────────────────────────────────────────────────────────
    // Snapshot + tail replay. The report says what was found on disk.
    let (recovered, report) = DurableService::open(&dir, engine, 4).expect("recover");
    println!("after recovery:");
    println!("  snapshot loaded   = {}", report.snapshot_loaded);
    println!("  events replayed   = {}", report.events_replayed);
    println!("  events lost       = {}", report.events_lost);
    println!("  bytes dropped     = {}", report.bytes_dropped);

    let after: Vec<Vec<u64>> = recovered.rerank_batch(&queries);
    for (ctx, order) in queries.iter().zip(&after) {
        println!("  serve {ctx:?} -> {order:?}");
    }
    assert_eq!(before, after, "recovered serving state is bit-identical");
    println!();
    println!("every recovered answer equals the pre-crash answer, bit for bit:");
    println!("ranking is a pure function of (engine seed, query, session) over the");
    println!("corpus, and the log + snapshot reproduce that corpus exactly.");

    std::fs::remove_dir_all(&dir).ok();
}
