//! Serial ≡ parallel for a full figure driver.
//!
//! This test mutates the process environment (`RRP_THREADS`), which is not
//! safe to do while other threads may call `std::env::var` — glibc's
//! setenv/getenv pair is not thread-safe. It therefore lives alone in its
//! own integration-test binary: with a single `#[test]`, no sibling test
//! thread can read the environment concurrently (the sweep executor reads
//! the variable on this thread, before any workers are spawned).

use rrp_experiments::{figure5, ExperimentOptions};

/// Layer 2: a full figure driver produces byte-identical reports on the
/// serial path (1 worker) and the threaded path (many workers).
#[test]
fn figure_reports_identical_serial_vs_parallel() {
    let options = ExperimentOptions::tiny(90210);

    // `RRP_THREADS` is read by the sweep executor at construction time;
    // both figure runs happen inside this one test so no other test can
    // observe the temporary override.
    std::env::set_var("RRP_THREADS", "1");
    let serial = figure5(&options);
    std::env::set_var("RRP_THREADS", "8");
    let parallel = figure5(&options);
    std::env::remove_var("RRP_THREADS");

    assert_eq!(
        serial, parallel,
        "figure 5 must not depend on the worker count"
    );
}
