//! Cross-crate consistency checks: the public engine, the ranking policies,
//! the analytic model and the simulator must agree with each other where
//! their domains overlap.

use rrp_analytic::{AnalyticModel, QualityGroups, RankingModel};
use rrp_core::{Document, QueryContext, RankPromotionEngine};
use rrp_model::{assign_qualities, new_rng, CommunityConfig, PageId, PowerLawQuality};
use rrp_ranking::{PageStats, PopularityRanking, PromotionConfig, PromotionRule, RankingPolicy};
use rrp_sim::{SimConfig, Simulation};

/// With randomization disabled, the public engine must order documents
/// exactly like the low-level popularity policy orders the equivalent page
/// statistics.
#[test]
fn engine_with_zero_randomization_matches_popularity_policy() {
    let documents: Vec<Document> = (0..200)
        .map(|i| {
            Document::established(i as u64, ((i * 37) % 101) as f64 / 101.0).with_age(i as u64)
        })
        .collect();
    let stats: Vec<PageStats> = documents
        .iter()
        .enumerate()
        .map(|(slot, d)| {
            PageStats::new(slot, PageId::new(d.id), d.popularity, 1.0).with_age(d.age_days)
        })
        .collect();

    let engine =
        RankPromotionEngine::new(PromotionConfig::new(PromotionRule::Selective, 1, 0.0).unwrap());
    let engine_order = engine.rerank(&documents, QueryContext::new(1, 1));

    let mut rng = new_rng(0);
    let policy_order: Vec<u64> = PopularityRanking
        .rank(&stats, &mut rng)
        .into_iter()
        .map(|slot| documents[slot].id)
        .collect();

    assert_eq!(engine_order, policy_order);
}

/// The simulator's ideal (quality-ordered) QPC must match the analytic
/// model's ideal QPC for the same community and quality distribution.
#[test]
fn simulator_and_analytic_model_agree_on_the_ideal_qpc() {
    let community = CommunityConfig::builder()
        .pages(1_000)
        .users(100)
        .monitored_users(50)
        .total_visits_per_day(100.0)
        .expected_lifetime_days(547.5)
        .build()
        .unwrap();

    let sim = Simulation::new(SimConfig::for_community(community, 1), PopularityRanking).unwrap();
    let sim_ideal = sim.ideal_qpc();

    let groups = QualityGroups::from_distribution(&PowerLawQuality::paper_default(), 1_000);
    let analytic_ideal = AnalyticModel::new(community, groups, RankingModel::NonRandomized)
        .unwrap()
        .solve()
        .ideal_qpc();

    let relative_gap = (sim_ideal - analytic_ideal).abs() / analytic_ideal;
    assert!(
        relative_gap < 0.05,
        "ideal QPC must agree (sim {sim_ideal} vs analysis {analytic_ideal}; the analytic side \
         buckets qualities into groups, so a small gap is expected)"
    );
}

/// The analytic model's qualitative predictions must hold at the fixed
/// point: promotion raises the zero-popularity visit rate, lowers the count
/// of never-seen pages, raises QPC and cuts the expected TBP of the best
/// page.
#[test]
fn analytic_model_predicts_every_benefit_of_promotion() {
    let community = CommunityConfig::builder()
        .scaled_to_pages(2_000)
        .expected_lifetime_years(1.5)
        .build()
        .unwrap();
    let groups = QualityGroups::from_distribution(&PowerLawQuality::paper_default(), 2_000);

    let baseline = AnalyticModel::new(community, groups.clone(), RankingModel::NonRandomized)
        .unwrap()
        .solve();
    let promoted = AnalyticModel::new(
        community,
        groups,
        RankingModel::Selective {
            start_rank: 1,
            degree: 0.1,
        },
    )
    .unwrap()
    .solve();

    assert!(promoted.visit_function.eval(0.0) > baseline.visit_function.eval(0.0));
    assert!(promoted.zero_awareness_pages < baseline.zero_awareness_pages);
    assert!(promoted.normalized_qpc() > baseline.normalized_qpc());
    assert!(promoted.expected_tbp(0.4) < baseline.expected_tbp(0.4));
}

/// The simulated page population must stay consistent with the model crate's
/// invariants over a long run: awareness within [0, m], popularity equal to
/// awareness × quality, and the quality multiset unchanged by page
/// replacement.
#[test]
fn simulation_preserves_model_invariants_over_time() {
    let community = CommunityConfig::builder()
        .pages(500)
        .users(100)
        .monitored_users(20)
        .total_visits_per_day(100.0)
        .expected_lifetime_days(60.0)
        .build()
        .unwrap();
    let expected_qualities = {
        let mut q: Vec<f64> = assign_qualities(&PowerLawQuality::paper_default(), 500)
            .iter()
            .map(|q| q.value())
            .collect();
        q.sort_by(|a, b| a.partial_cmp(b).unwrap());
        q
    };

    let mut sim =
        Simulation::new(SimConfig::for_community(community, 5), PopularityRanking).unwrap();
    sim.run(400);

    let m = sim.population().monitored_users();
    let mut qualities: Vec<f64> = Vec::new();
    for slot in sim.population().slots() {
        assert!(slot.aware_users <= m);
        let popularity = slot.popularity(m);
        assert!((popularity - slot.awareness(m) * slot.quality).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&popularity));
        qualities.push(slot.quality);
    }
    qualities.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for (a, b) in qualities.iter().zip(&expected_qualities) {
        assert!(
            (a - b).abs() < 1e-12,
            "page replacement must preserve the quality distribution"
        );
    }
    assert!(
        sim.population().retired_count() > 1_000,
        "with a 60-day lifetime many replacements should have happened"
    );
}
