//! Workspace-level determinism guarantees.
//!
//! Three layers are pinned here:
//!
//! 1. **Golden vectors** — the exact rerank order for a fixed
//!    `(engine seed, query, session)` and the exact first outputs of the
//!    workspace RNG. If these change, every recorded experiment in the
//!    repository silently stops being reproducible, so a change must be
//!    deliberate (update the vectors in the same commit and say why).
//! 2. **Serial ≡ parallel** — every figure driver routes its sweep through
//!    `SweepExecutor`, whose per-cell seeds depend only on the cell's
//!    identity. Running the same figure with 1 worker and with many workers
//!    must produce byte-identical reports.
//! 3. **Engine stability** — the same `(engine seed, query, session)`
//!    produces the same order no matter how many times, or from how many
//!    threads, it is evaluated.

use rrp_core::{Document, EngineVersion, QueryContext, RankPromotionEngine};
use rrp_experiments::runner::SweepExecutor;
use rrp_model::{new_rng, SeedSequence};
use rrp_ranking::{PolicyKind, PoolIndex, PoolView, PromotionConfig, PromotionRule, RankBuffers};
use rrp_serve::{DurableService, ReplicaService, ShardedPromotionService};

fn corpus() -> Vec<Document> {
    let mut docs: Vec<Document> = (0..20)
        .map(|i| Document::established(i, 1.0 - i as f64 * 0.04).with_age(100))
        .collect();
    docs.extend((20..30).map(Document::unexplored));
    docs
}

/// Layer 1: the workspace RNG (ChaCha8 + SplitMix64 seeding) is pinned to
/// exact outputs. These values were recorded from this implementation; they
/// must never drift across platforms, Rust releases, or refactors.
#[test]
fn rng_golden_vector() {
    use rand::Rng;
    let mut rng = new_rng(123);
    let observed: Vec<u64> = (0..4).map(|_| rng.gen::<u64>()).collect();
    assert_eq!(observed, GOLDEN_RNG_123);

    let seq = SeedSequence::new(42);
    let observed: Vec<u64> = (0..4).map(|i| seq.child_seed(i)).collect();
    assert_eq!(observed, GOLDEN_CHILD_SEEDS_42);
}

/// Layer 1: the exact rerank order of the documented corpus under the
/// paper-recommended engine with seed 7, query 11, session 13.
#[test]
fn engine_rerank_golden_vector() {
    let engine = RankPromotionEngine::recommended().with_seed(7);
    let order = engine.rerank(&corpus(), QueryContext::new(11, 13));
    assert_eq!(order, GOLDEN_RERANK_7_11_13);
}

/// Layer 2, at the executor level: worker count and grid enumeration order
/// do not change any cell's derived stream, and therefore not its results.
#[test]
fn sweep_streams_are_schedule_independent() {
    let cells: Vec<(usize, f64)> = [1usize, 2, 6]
        .iter()
        .flat_map(|&k| [0.0f64, 0.1, 0.2].iter().map(move |&r| (k, r)))
        .collect();
    let label = |&(k, r): &(usize, f64)| format!("k={k} r={r}");

    let serial = SweepExecutor::new("Determinism probe").with_workers(1).run(
        cells.clone(),
        label,
        |cell, stream| (*cell, stream),
    );
    let threaded = SweepExecutor::new("Determinism probe").with_workers(7).run(
        cells.clone(),
        label,
        |cell, stream| (*cell, stream),
    );
    assert_eq!(serial, threaded);

    // Reversing the grid enumeration permutes the output rows but must not
    // change any cell's stream.
    let mut reversed_cells = cells;
    reversed_cells.reverse();
    let mut reversed = SweepExecutor::new("Determinism probe").with_workers(7).run(
        reversed_cells,
        label,
        |cell, stream| (*cell, stream),
    );
    reversed.reverse();
    assert_eq!(serial, reversed);
}

/// Layer 3: rerank is a pure function of `(engine seed, query, session)` —
/// stable across repeated evaluation and across threads.
#[test]
fn rerank_is_stable_across_threads() {
    let engine =
        RankPromotionEngine::new(PromotionConfig::new(PromotionRule::Selective, 2, 0.3).unwrap())
            .with_seed(99);
    let ctx = QueryContext::from_strings("stacked deck", "session-7");
    let reference = engine.rerank(&corpus(), ctx);

    let docs = corpus();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                for _ in 0..50 {
                    assert_eq!(engine.rerank(&docs, ctx), reference);
                }
            });
        }
    });
}

/// Layer 3, at the serving tier: `rerank_batch` across 1, 2 and 8 shards
/// and 1, 2 and 8 workers answers every query exactly as the sequential
/// `RankPromotionEngine` does on the canonical corpus — the shard layout
/// and the batch scheduling are pure deployment choices, invisible in the
/// results. The golden vector pins one batch answer so a change to any
/// layer (engine, ranking, serving) that shifts the randomization is
/// caught here, not in production.
#[test]
fn serve_batch_matches_sequential_engine_across_shards_and_workers() {
    let engine = RankPromotionEngine::recommended().with_seed(7);
    let queries: Vec<QueryContext> = (0..12)
        .map(|q| QueryContext::new(11 + q, 13 + 2 * q))
        .collect();
    let docs = corpus();
    let expected: Vec<Vec<u64>> = queries
        .iter()
        .map(|&ctx| engine.rerank(&docs, ctx))
        .collect();

    for shards in [1usize, 2, 8] {
        for workers in [1usize, 2, 8] {
            let service = ShardedPromotionService::new(engine, shards).with_workers(workers);
            service.extend(docs.iter().copied());
            assert_eq!(
                service.rerank_batch(&queries),
                expected,
                "{shards} shards × {workers} workers must equal the sequential engine"
            );
        }
    }

    // The first query is the documented golden context (seed 7, query 11,
    // session 13): the serving tier must reproduce the engine's pinned
    // golden vector bit for bit.
    assert_eq!(expected[0], GOLDEN_RERANK_7_11_13);
}

/// Layer 3, top-k: the early-exit path equals the length-`k` prefix of the
/// full rerank at every layer (engine and serving tier), pinned against the
/// same golden vector as the full path — if the top-k merge ever drew one
/// coin differently, the prefix would diverge from `GOLDEN_RERANK_7_11_13`
/// here.
#[test]
fn top_k_is_the_golden_prefix_at_every_layer() {
    let engine = RankPromotionEngine::recommended().with_seed(7);
    let ctx = QueryContext::new(11, 13);
    let docs = corpus();
    for k in [1usize, 5, 10, 30] {
        assert_eq!(
            engine.rerank_top_k(&docs, ctx, k),
            GOLDEN_RERANK_7_11_13[..k],
            "engine top-{k}"
        );
    }
    for shards in [1usize, 4] {
        let service = ShardedPromotionService::new(engine, shards).with_workers(2);
        service.extend(docs.iter().copied());
        for k in [1usize, 10, 30] {
            assert_eq!(
                service.rerank_top_k(ctx, k),
                GOLDEN_RERANK_7_11_13[..k],
                "service top-{k}, {shards} shards"
            );
        }
        let mut batch = Vec::new();
        service.rerank_batch_top_k_into(&[ctx], 10, &mut batch);
        assert_eq!(batch[0], GOLDEN_RERANK_7_11_13[..10]);
    }
}

/// Layer 3, the pooled serving path: `rank_top_k_pooled_into` — the
/// `O(pool + k)` route that reads the persistent [`PoolIndex`] instead of
/// scanning the corpus per query — reproduces the recorded top-10 golden
/// for **all four policies** from the same RNG state. The pool's
/// pre-shuffle member order feeds the generator directly, so a pool index
/// that listed its members in any other order (or retained a stale member)
/// would shift these vectors; equality with both the recorded constants
/// and the live scanning path pins the RNG stream exactly.
#[test]
fn pooled_top_k_reproduces_the_recorded_goldens_for_all_four_policies() {
    let docs = corpus();
    let mut stats = Vec::new();
    RankPromotionEngine::document_stats(&docs, &mut stats);
    let mut sorted: Vec<usize> = (0..stats.len()).collect();
    sorted.sort_unstable_by(|&a, &b| rrp_ranking::popularity_order(&stats[a], &stats[b]));
    let pool = PoolIndex::build(&stats);
    let view = PoolView::new(&stats, &sorted, &pool);
    let mut buffers = RankBuffers::new();
    let (mut pooled, mut scanned) = (Vec::new(), Vec::new());
    let kinds: [(PolicyKind, &[usize; 10]); 4] = [
        (PolicyKind::Popularity, &GOLDEN_TOP10_POPULARITY_123),
        (PolicyKind::QualityOracle, &GOLDEN_TOP10_ORACLE_123),
        (PolicyKind::FullyRandom, &GOLDEN_TOP10_RANDOM_123),
        (PolicyKind::recommended(2), &GOLDEN_TOP10_SELECTIVE_123),
    ];
    for (kind, golden) in kinds {
        kind.rank_top_k_pooled_into(view, 10, &mut new_rng(123), &mut buffers, &mut pooled);
        assert_eq!(pooled, *golden, "{} pooled golden", kind.name());
        kind.rank_top_k_presorted_into(
            &stats,
            &sorted,
            10,
            &mut new_rng(123),
            &mut buffers,
            &mut scanned,
        );
        assert_eq!(pooled, scanned, "{} pooled ≡ scanning", kind.name());
    }
}

/// Layer 3, mutate-then-serve: a fixed schedule of visits, a popularity
/// update and two inserts applied to a warm service, then one pooled top-k
/// query — pinned to a recorded golden. This is the path where a repaired
/// (rather than re-derived) pool index is on the line end to end: the two
/// visited documents left the pool, the inserted unexplored one joined it,
/// and any drift in membership *or member order* would shift the merged
/// prefix recorded here.
#[test]
fn mutate_then_serve_top_k_matches_its_golden() {
    let engine = RankPromotionEngine::recommended().with_seed(7);
    let service = ShardedPromotionService::new(engine, 4).with_workers(2);
    service.extend(corpus());
    service.rerank_batch(&[QueryContext::new(0, 0)]); // warm the indexes
    assert!(service.record_visit(22));
    assert!(service.record_visit(25));
    assert!(service.update_popularity(3, 1.5));
    service.insert(Document::established(40, 0.77).with_age(9));
    service.insert(Document::unexplored(41));
    assert_eq!(
        service.rerank_top_k(QueryContext::new(11, 13), 12),
        GOLDEN_MUTATE_THEN_SERVE_TOP12
    );
    // The schedule was served entirely from repaired state.
    let stats = service.serve_stats();
    assert_eq!(stats.snapshot_rebuilds, 0);
    assert_eq!(stats.full_sorts, 0);
    assert_eq!(stats.pool_rebuilds, 0);
    assert_eq!(stats.mask_resets, 0);
}

/// Layer 3, the shard-merge serving path: top-k answered by per-shard
/// candidate retrieval plus the deterministic k-way merge reproduces the
/// recorded goldens for **all four serving policies**, at every shard
/// count, for `k` at 1, at the protected-prefix boundary (`start_rank`),
/// and at 10. The merged pool's pre-shuffle order and the merged order
/// prefix feed the RNG and the coin-flip merge directly, so a merge that
/// reassembled either one differently — even only at some shard count —
/// would shift these vectors. Selective engines take the shard-retrieval
/// path; Uniform engines draw their per-page coins over the complete
/// merged order and are pinned to the same bar.
#[test]
fn shard_merged_top_k_reproduces_the_recorded_goldens_for_all_four_policies() {
    let policies: [(RankPromotionEngine, [u64; 10]); 4] = [
        (
            RankPromotionEngine::recommended(),
            GOLDEN_RERANK_7_11_13_TOP10,
        ),
        (
            RankPromotionEngine::new(
                PromotionConfig::new(PromotionRule::Selective, 1, 0.5).unwrap(),
            ),
            GOLDEN_TOP10_SELECTIVE_R50_K1_7_11_13,
        ),
        (
            RankPromotionEngine::new(PromotionConfig::new(PromotionRule::Uniform, 1, 0.3).unwrap()),
            GOLDEN_TOP10_UNIFORM_R30_K1_7_11_13,
        ),
        (
            RankPromotionEngine::new(PromotionConfig::new(PromotionRule::Uniform, 2, 0.1).unwrap()),
            GOLDEN_TOP10_UNIFORM_R10_K2_7_11_13,
        ),
    ];
    // The recommended engine's vector is exactly the documented full
    // golden's prefix — one source of truth, restated as `[u64; 10]`.
    assert_eq!(GOLDEN_RERANK_7_11_13_TOP10, GOLDEN_RERANK_7_11_13[..10]);
    let ctx = QueryContext::new(11, 13);
    let docs = corpus();
    for (engine, golden) in policies {
        let engine = engine.with_seed(7);
        let label = engine.config().label();
        for shards in [1usize, 3, 8] {
            let service = ShardedPromotionService::new(engine, shards).with_workers(2);
            service.extend(docs.iter().copied());
            for k in [1usize, engine.config().start_rank, 10] {
                assert_eq!(
                    service.rerank_top_k(ctx, k),
                    golden[..k],
                    "{label}, {shards} shards, top-{k}"
                );
                let mut batch = Vec::new();
                service.rerank_batch_top_k_into(&[ctx], k, &mut batch);
                assert_eq!(
                    batch[0],
                    golden[..k],
                    "{label}, {shards} shards, batch top-{k}"
                );
            }
            // The routing probe: selective engines answered all six
            // queries from shard retrieval alone, never consulting the
            // complete merged order; Uniform engines drew their per-page
            // coins over the merged order, assembled exactly once and
            // reused, with zero retrievals.
            let stats = service.serve_stats();
            if engine.reads_pool_index() {
                assert_eq!(stats.order_merges, 0, "{label}");
                assert_eq!(stats.shard_retrievals, 6 * shards as u64, "{label}");
            } else {
                assert_eq!(stats.shard_retrievals, 0, "{label}");
                assert_eq!(stats.order_merges, 1, "{label}");
            }
            assert_eq!(stats.snapshot_rebuilds, 0, "{label}");
        }
    }
}

/// Layer 3, the Uniform coin scan through the merged order: a Uniform
/// engine flips one coin per page *in slot order*, so its full rerank
/// consumes every slot of the ranking — the path that used to require a
/// corpus-wide snapshot and is now answered from the complete merged
/// shard order. The recorded golden pins the entire 30-slot output (not
/// just a prefix): if the k-way merge assembled the complete order even
/// one transposition away from the canonical popularity order at any
/// shard count, some coin would land on the wrong page and this vector
/// would shift. The probe confirms the route: zero shard retrievals,
/// zero snapshot rebuilds, exactly one lazy merge.
#[test]
fn uniform_full_rerank_reproduces_its_golden_through_the_merged_order() {
    let engine =
        RankPromotionEngine::new(PromotionConfig::new(PromotionRule::Uniform, 1, 0.3).unwrap())
            .with_seed(7);
    let ctx = QueryContext::new(11, 13);
    let docs = corpus();
    assert_eq!(
        engine.rerank(&docs, ctx),
        GOLDEN_UNIFORM_R30_K1_FULL_7_11_13
    );
    // The recorded top-10 golden for this engine is exactly this full
    // golden's prefix — one RNG stream, restated at two lengths.
    assert_eq!(
        GOLDEN_UNIFORM_R30_K1_FULL_7_11_13[..10],
        GOLDEN_TOP10_UNIFORM_R30_K1_7_11_13
    );
    for shards in [1usize, 3, 8] {
        for workers in [1usize, 2] {
            let service = ShardedPromotionService::new(engine, shards).with_workers(workers);
            service.extend(docs.iter().copied());
            assert_eq!(
                service.rerank_one(ctx),
                GOLDEN_UNIFORM_R30_K1_FULL_7_11_13,
                "{shards} shards × {workers} workers, sequential"
            );
            let mut batch = Vec::new();
            service.rerank_batch_into(&[ctx, ctx], &mut batch);
            assert_eq!(batch[0], GOLDEN_UNIFORM_R30_K1_FULL_7_11_13);
            assert_eq!(batch[1], GOLDEN_UNIFORM_R30_K1_FULL_7_11_13);
            let stats = service.serve_stats();
            assert_eq!(stats.shard_retrievals, 0, "{shards} shards");
            assert_eq!(stats.snapshot_rebuilds, 0, "{shards} shards");
            assert_eq!(stats.order_merges, 1, "{shards} shards");
        }
    }
}

/// Layer 3, the merge at the ranking layer: partitioning the documented
/// corpus into 1, 3 or 8 shard-local corpora, collecting per-shard
/// candidates and running the deterministic merge reproduces the *same*
/// recorded pooled golden as the corpus-wide path, from the same RNG
/// state — through both the self-contained candidate form and the
/// maintained-pool primitive the serving tier uses.
#[test]
fn shard_candidate_merge_reproduces_the_pooled_goldens() {
    use rrp_ranking::{
        merge_shard_candidates_into, MergedCandidates, PageStats, PopularityIndex, ShardCandidates,
    };

    let docs = corpus();
    let mut stats = Vec::new();
    RankPromotionEngine::document_stats(&docs, &mut stats);
    let kind = PolicyKind::recommended(2);
    let mut buffers = RankBuffers::new();
    let mut out = Vec::new();
    let mut merged = MergedCandidates::new();
    for shards in [1usize, 3, 8] {
        let mut locals: Vec<Vec<PageStats>> = vec![Vec::new(); shards];
        let mut globals: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for p in &stats {
            let shard = (p.slot * 13 + 5) % shards;
            let mut local = *p;
            local.slot = locals[shard].len();
            locals[shard].push(local);
            globals[shard].push(p.slot);
        }
        let candidates: Vec<ShardCandidates> = (0..shards)
            .map(|s| {
                let order = PopularityIndex::build(&locals[s]);
                let pool = PoolIndex::build(&locals[s]);
                let mut c = ShardCandidates::new();
                c.collect(
                    PoolView::new(&locals[s], order.order(), &pool),
                    10,
                    &globals[s],
                );
                c
            })
            .collect();
        merge_shard_candidates_into(&candidates, 10, &mut merged);
        kind.rank_top_k_candidates_into(&merged, 10, &mut new_rng(123), &mut buffers, &mut out);
        assert_eq!(
            out, GOLDEN_TOP10_SELECTIVE_123,
            "candidate form via {shards}-shard merge"
        );

        // The maintained-pool primitive (pool merged once per repair,
        // rest retrieved per query) draws the identical stream.
        let PolicyKind::Promotion(policy) = kind else {
            unreachable!()
        };
        let rest_slots: Vec<usize> = merged.rest().iter().map(|p| p.slot).collect();
        policy.rank_top_k_retrieved_into(
            merged.pool(),
            &rest_slots,
            10,
            &mut new_rng(123),
            &mut buffers,
            &mut out,
        );
        assert_eq!(
            out, GOLDEN_TOP10_SELECTIVE_123,
            "retrieved form via {shards}-shard merge"
        );
    }
}

/// Layer 3, mutate-then-merge: the documented mutation schedule (two
/// visits, a popularity boost, two inserts) served *exclusively* through
/// shard retrieval — the complete merged order is never assembled at
/// all — reproduces the same recorded golden at every shard count. Mutations here cross shard boundaries (the two
/// inserts land on different shards as the count changes), so a shard
/// cache that mis-repaired its local dirty slots would desynchronise the
/// merge at some count and shift this vector.
#[test]
fn mutate_then_merge_schedule_reproduces_its_golden_at_every_shard_count() {
    let engine = RankPromotionEngine::recommended().with_seed(7);
    for shards in [1usize, 3, 8] {
        let service = ShardedPromotionService::new(engine, shards).with_workers(2);
        service.extend(corpus());
        assert!(service.record_visit(22));
        assert!(service.record_visit(25));
        assert!(service.update_popularity(3, 1.5));
        service.insert(Document::established(40, 0.77).with_age(9));
        service.insert(Document::unexplored(41));
        assert_eq!(
            service.rerank_top_k(QueryContext::new(11, 13), 12),
            GOLDEN_MUTATE_THEN_SERVE_TOP12,
            "{shards} shards"
        );
        let stats = service.serve_stats();
        assert_eq!(stats.order_merges, 0, "{shards} shards");
        assert_eq!(stats.shard_retrievals, shards as u64);
        assert_eq!(stats.shard_repairs, 1, "one repair covers the schedule");
        assert_eq!(stats.snapshot_rebuilds, 0);
        assert_eq!(stats.pool_rebuilds, 0);
        assert_eq!(stats.mask_resets, 0);
    }
}

/// Layer 1 + 3, engine v2: the lazy-shuffle top-k path has its own
/// recorded golden set, pinned at every shard count alongside the
/// single-engine reference. V2 spends the pool's randomness lazily — one
/// swap draw per promoted slot actually consumed — so its top-k output
/// is *not* the v1 full rerank's prefix; the invariants on the line are
/// instead (a) the recorded vectors themselves, (b) shard-merged ≡
/// single v2 engine, (c) prefix consistency *within* the v2 top-k family
/// (`k = 1` is the head of `k = 10`), and (d) Uniform engines staying
/// bit-identical to v1 under v2 (the overlay only serves the Selective
/// rule). The draw probe rides along: at most `k` swap draws per query.
#[test]
fn v2_shard_merged_top_k_reproduces_its_recorded_goldens() {
    let policies: [(RankPromotionEngine, [u64; 10]); 4] = [
        (
            RankPromotionEngine::recommended(),
            GOLDEN_V2_TOP10_RECOMMENDED_7_11_13,
        ),
        (
            RankPromotionEngine::new(
                PromotionConfig::new(PromotionRule::Selective, 1, 0.5).unwrap(),
            ),
            GOLDEN_V2_TOP10_SELECTIVE_R50_K1_7_11_13,
        ),
        // The Uniform rule never touches the lazy overlay: its v2
        // vectors are the recorded v1 constants, by design.
        (
            RankPromotionEngine::new(PromotionConfig::new(PromotionRule::Uniform, 1, 0.3).unwrap()),
            GOLDEN_TOP10_UNIFORM_R30_K1_7_11_13,
        ),
        (
            RankPromotionEngine::new(PromotionConfig::new(PromotionRule::Uniform, 2, 0.1).unwrap()),
            GOLDEN_TOP10_UNIFORM_R10_K2_7_11_13,
        ),
    ];
    // The lazy draw order is a real behaviour change for selective
    // engines: the v2 recommended vector must *differ* from the v1
    // golden prefix, or the version flag routes nowhere.
    assert_ne!(
        GOLDEN_V2_TOP10_RECOMMENDED_7_11_13,
        GOLDEN_RERANK_7_11_13[..10]
    );
    let ctx = QueryContext::new(11, 13);
    let docs = corpus();
    for (engine, golden) in policies {
        let engine = engine.with_seed(7).with_version(EngineVersion::V2);
        let label = engine.config().label();
        // The single-engine v2 reference owns the golden; prefix
        // consistency holds within the top-k family.
        for k in [1usize, engine.config().start_rank, 10] {
            assert_eq!(
                engine.rerank_top_k(&docs, ctx, k),
                golden[..k],
                "{label} engine top-{k}"
            );
        }
        for shards in [1usize, 3, 8] {
            let service = ShardedPromotionService::new(engine, shards).with_workers(2);
            service.extend(docs.iter().copied());
            let mut served = 0u64;
            for k in [1usize, engine.config().start_rank, 10] {
                assert_eq!(
                    service.rerank_top_k(ctx, k),
                    golden[..k],
                    "{label}, {shards} shards, top-{k}"
                );
                let mut batch = Vec::new();
                service.rerank_batch_top_k_into(&[ctx], k, &mut batch);
                assert_eq!(
                    batch[0],
                    golden[..k],
                    "{label}, {shards} shards, batch top-{k}"
                );
                served += 2 * k as u64;
            }
            // Same routing probe as v1, plus the O(k)-draw contract.
            let stats = service.serve_stats();
            if engine.reads_pool_index() {
                assert_eq!(stats.order_merges, 0, "{label}");
                assert_eq!(stats.shard_retrievals, 6 * shards as u64, "{label}");
                assert!(
                    stats.pool_draws <= served,
                    "{label}: {} draws exceed the k-per-query budget {served}",
                    stats.pool_draws
                );
            } else {
                assert_eq!(stats.shard_retrievals, 0, "{label}");
                assert_eq!(stats.order_merges, 1, "{label}");
                assert_eq!(stats.pool_draws, 0, "{label}: Uniform never draws");
            }
            assert_eq!(stats.snapshot_rebuilds, 0, "{label}");
            assert_eq!(
                stats.mask_resets,
                if engine.reads_pool_index() { 0 } else { 6 },
                "{label}"
            );
        }
    }
}

/// Layer 3, engine v2 mutate-then-serve: the documented mutation schedule
/// under a v2 engine has its own recorded golden, reproduced at every
/// shard count from repaired state alone — the v2 twin of
/// [`mutate_then_serve_top_k_matches_its_golden`] and
/// [`mutate_then_merge_schedule_reproduces_its_golden_at_every_shard_count`].
/// The post-mutation pool (22 and 25 visited out, 41 in) feeds the lazy
/// overlay directly, so a repair that mis-merged membership or member
/// order would shift both the swap draws and this vector.
#[test]
fn v2_mutate_then_serve_matches_its_golden_at_every_shard_count() {
    let engine = RankPromotionEngine::recommended()
        .with_seed(7)
        .with_version(EngineVersion::V2);
    for shards in [1usize, 3, 8] {
        let service = ShardedPromotionService::new(engine, shards).with_workers(2);
        service.extend(corpus());
        service.rerank_batch(&[QueryContext::new(0, 0)]); // warm the indexes
        assert!(service.record_visit(22));
        assert!(service.record_visit(25));
        assert!(service.update_popularity(3, 1.5));
        service.insert(Document::established(40, 0.77).with_age(9));
        service.insert(Document::unexplored(41));
        assert_eq!(
            service.rerank_top_k(QueryContext::new(11, 13), 12),
            GOLDEN_V2_MUTATE_THEN_SERVE_TOP12,
            "{shards} shards"
        );
        let stats = service.serve_stats();
        assert_eq!(stats.snapshot_rebuilds, 0);
        assert_eq!(stats.full_sorts, 0);
        assert_eq!(stats.pool_rebuilds, 0);
        assert_eq!(stats.mask_resets, 0);
        assert!(stats.pool_draws <= 12, "{shards} shards: O(k) draws");
    }
}

/// Layer 3, time travel off the log: the documented mutation schedule is
/// written through a durable leader (snapshots off, so the log is the
/// full history), then fresh replicas recover it with a sequence cap at
/// three historical marks. Each capped state is pinned to a recorded
/// vector: event 30 is the untouched corpus (the documented full-rerank
/// golden's prefix), event 35 is the complete schedule (the recorded
/// mutate-then-serve golden — time travel to the end *is* recovery), and
/// event 33 — mid-schedule, after the visits and the popularity boost but
/// before the two inserts — has its own constant. If capped replay ever
/// applied one event too many or too few, or replayed them out of order,
/// one of these three vectors would shift.
#[test]
fn time_travel_replicas_reproduce_the_recorded_history() {
    let dir = std::env::temp_dir().join(format!("rrp-determinism-travel-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();

    let engine = RankPromotionEngine::recommended().with_seed(7);
    let (leader, _) = DurableService::open(&dir, engine, 3).unwrap();
    let mut leader = leader.with_snapshot_every(u64::MAX);
    for doc in corpus() {
        leader.insert(doc).unwrap(); // events 0..30
    }
    leader.record_visit(22).unwrap(); // event 30
    leader.record_visit(25).unwrap(); // event 31
    leader.update_popularity(3, 1.5).unwrap(); // event 32
    leader
        .insert(Document::established(40, 0.77).with_age(9))
        .unwrap(); // event 33
    leader.insert(Document::unexplored(41)).unwrap(); // event 34
    let total = leader.sync_for_followers().unwrap();
    assert_eq!(total, 35, "the documented schedule is 35 events");
    drop(leader);

    let ctx = QueryContext::new(11, 13);
    let marks: [(u64, &[u64; 12]); 3] = [
        (30, &GOLDEN_TIME_TRAVEL_AT_30),
        (33, &GOLDEN_TIME_TRAVEL_AT_33),
        (35, &GOLDEN_MUTATE_THEN_SERVE_TOP12),
    ];
    for (cap, golden) in marks {
        let mut replica = ReplicaService::open(&dir, engine, 3).unwrap();
        replica.apply_up_to(cap).unwrap();
        let stats = replica.stats();
        assert_eq!(stats.events_applied, cap, "capped replay stops exactly");
        assert_eq!(stats.behind_by, total - cap, "the rest is held, not lost");
        assert_eq!(
            replica.rerank_top_k(ctx, 12),
            *golden,
            "history at event {cap}"
        );
    }
    // The pre-mutation past is the documented corpus exactly.
    assert_eq!(GOLDEN_TIME_TRAVEL_AT_30, GOLDEN_RERANK_7_11_13[..12]);

    std::fs::remove_dir_all(&dir).unwrap();
}

/// Golden outputs of `new_rng(123)`.
const GOLDEN_RNG_123: [u64; 4] = [
    17369494502333954609,
    8906600561978300523,
    11016226833398420403,
    5554171481409164416,
];

/// Golden outputs of `SeedSequence::new(42).child_seed(0..4)`.
const GOLDEN_CHILD_SEEDS_42: [u64; 4] = [
    2949826092126892291,
    5139283748462763858,
    6349198060258255764,
    701532786141963250,
];

/// Golden rerank order for the documented corpus, engine seed 7,
/// `QueryContext::new(11, 13)`.
const GOLDEN_RERANK_7_11_13: [u64; 30] = [
    0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 23, 22, 14, 15, 16, 27, 17, 18, 19, 26, 29, 25,
    24, 21, 20, 28,
];

/// Golden pooled top-10 *slot* orders over the documented corpus from
/// `new_rng(123)`, one per policy (recorded from the scanning path these
/// constants hold the pooled path to).
const GOLDEN_TOP10_POPULARITY_123: [usize; 10] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9];
const GOLDEN_TOP10_ORACLE_123: [usize; 10] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9];
const GOLDEN_TOP10_RANDOM_123: [usize; 10] = [9, 12, 20, 6, 16, 27, 23, 21, 5, 3];
const GOLDEN_TOP10_SELECTIVE_123: [usize; 10] = [0, 1, 28, 2, 3, 4, 5, 6, 7, 8];

/// Golden top-12 document ids after the documented mutate-then-serve
/// schedule (engine seed 7, `QueryContext::new(11, 13)`).
const GOLDEN_MUTATE_THEN_SERVE_TOP12: [u64; 12] = [3, 0, 1, 2, 4, 5, 40, 6, 7, 8, 9, 10];

/// Golden time-travel vectors (engine seed 7, `QueryContext::new(11, 13)`,
/// top-12): the documented durable schedule recovered with a sequence cap
/// at event 30 (the untouched corpus — equals the full-rerank golden's
/// prefix) and at event 33 (after both visits and the popularity boost,
/// before either insert). The cap-35 vector is
/// `GOLDEN_MUTATE_THEN_SERVE_TOP12` itself.
const GOLDEN_TIME_TRAVEL_AT_30: [u64; 12] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11];
const GOLDEN_TIME_TRAVEL_AT_33: [u64; 12] = [3, 0, 1, 2, 4, 5, 6, 7, 8, 9, 10, 11];

/// Golden top-10 document ids over the documented corpus for the other
/// three serving policies (engine seed 7, `QueryContext::new(11, 13)`;
/// the recommended engine's vector is the `GOLDEN_RERANK_7_11_13`
/// prefix). Recorded from the single sequential engine; the shard-merge
/// serving path is held to them at every shard count.
const GOLDEN_RERANK_7_11_13_TOP10: [u64; 10] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9];

/// Golden *complete* rerank (all 30 slots) for the Uniform r = 0.3,
/// k = 1 engine, seed 7, `QueryContext::new(11, 13)` — the coin-scan
/// path served from the complete merged shard order. Its prefix is
/// `GOLDEN_TOP10_UNIFORM_R30_K1_7_11_13`.
const GOLDEN_UNIFORM_R30_K1_FULL_7_11_13: [u64; 30] = [
    0, 1, 3, 4, 5, 25, 22, 6, 8, 7, 9, 10, 11, 27, 29, 23, 12, 26, 15, 14, 16, 17, 13, 2, 18, 19,
    20, 21, 24, 28,
];
const GOLDEN_TOP10_SELECTIVE_R50_K1_7_11_13: [u64; 10] = [0, 23, 1, 2, 22, 27, 3, 26, 4, 5];
const GOLDEN_TOP10_UNIFORM_R30_K1_7_11_13: [u64; 10] = [0, 1, 3, 4, 5, 25, 22, 6, 8, 7];
const GOLDEN_TOP10_UNIFORM_R10_K2_7_11_13: [u64; 10] = [0, 1, 3, 4, 5, 6, 7, 8, 9, 10];

/// Golden engine-v2 top-10 document ids (lazy pool shuffle; engine seed 7,
/// `QueryContext::new(11, 13)`). Recorded from the single v2 engine's
/// `rerank_top_k`; the shard-merge serving path is held to them at every
/// shard count. The Uniform rules have no v2 constants of their own —
/// v2 leaves their streams bit-identical to v1.
const GOLDEN_V2_TOP10_RECOMMENDED_7_11_13: [u64; 10] = [0, 1, 2, 23, 3, 4, 5, 6, 7, 8];
const GOLDEN_V2_TOP10_SELECTIVE_R50_K1_7_11_13: [u64; 10] = [0, 1, 23, 26, 2, 29, 3, 25, 4, 20];

/// Golden engine-v2 top-12 document ids after the documented
/// mutate-then-serve schedule (engine seed 7, `QueryContext::new(11, 13)`).
const GOLDEN_V2_MUTATE_THEN_SERVE_TOP12: [u64; 12] = [3, 0, 1, 27, 2, 4, 5, 40, 6, 7, 8, 9];
