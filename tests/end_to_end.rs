//! Workspace-level end-to-end test of the paper's headline claim: on an
//! entrenchment-prone community, selective randomized rank promotion
//! substantially improves amortised result quality (QPC) over strict
//! popularity ranking, and sharply reduces the number of pages no monitored
//! user ever discovers.

use rrp_model::CommunityConfig;
use rrp_ranking::{PolicyKind, PromotionConfig, PromotionRule};
use rrp_sim::{SimConfig, SimMetrics, Simulation};

/// A community with the paper's default proportions (u/n = 10%, m/u = 10%,
/// one visit per user per day, 1.5-year lifetimes), scaled to 2,000 pages so
/// the test runs in a debug build.
fn community() -> CommunityConfig {
    CommunityConfig::builder()
        .scaled_to_pages(2_000)
        .expected_lifetime_years(1.5)
        .build()
        .expect("valid community")
}

fn run_once(policy: PolicyKind, seed: u64) -> SimMetrics {
    let mut sim =
        Simulation::new(SimConfig::for_community(community(), seed), policy).expect("valid config");
    sim.run_windows(600, 600)
}

/// Average normalized QPC and zero-awareness fraction over a few seeds —
/// single runs of a stochastic community are noisy, especially for the
/// baseline, whose QPC hinges on whether the one top-quality page happens to
/// be discovered during the window.
fn run_policy<F>(make_policy: F, seeds: &[u64]) -> (f64, f64)
where
    F: Fn() -> PolicyKind,
{
    let mut qpc = 0.0;
    let mut zero = 0.0;
    for &seed in seeds {
        let metrics = run_once(make_policy(), seed);
        assert!(metrics.normalized_qpc > 0.0 && metrics.normalized_qpc <= 1.0 + 1e-9);
        qpc += metrics.normalized_qpc / seeds.len() as f64;
        zero += metrics.mean_zero_awareness_fraction / seeds.len() as f64;
    }
    (qpc, zero)
}

fn selective(start_rank: usize, degree: f64) -> PolicyKind {
    PolicyKind::promotion(
        PromotionConfig::new(PromotionRule::Selective, start_rank, degree).unwrap(),
    )
}

#[test]
fn selective_promotion_beats_popularity_ranking_on_qpc() {
    // Enough seeds that no single lucky/unlucky discovery of the top-quality
    // page dominates any policy's average.
    let seeds = [2024, 7, 99, 1234, 31337, 271828];
    let (baseline_qpc, baseline_zero) = run_policy(|| PolicyKind::Popularity, &seeds);
    let (k1_qpc, k1_zero) = run_policy(|| selective(1, 0.2), &seeds);
    let (k2_qpc, _) = run_policy(|| selective(2, 0.2), &seeds);

    assert!(
        k1_qpc > baseline_qpc * 1.2,
        "selective promotion (k=1) should improve QPC by a clear margin: {k1_qpc} vs {baseline_qpc}"
    );
    assert!(
        k1_zero < baseline_zero,
        "promotion should reduce never-discovered pages: {k1_zero} vs {baseline_zero}"
    );
    // The paper recommends k = 2 when the "feeling lucky" top result must be
    // stable; it should still clearly beat the baseline. Note that under the
    // AltaVista rank-bias law (exponent 3/2) rank 1 alone carries ~39% of
    // the whole visit budget, so protecting it costs a sizeable part of the
    // k = 1 exploration benefit — Section 6.4's "larger k needs larger r".
    assert!(
        k2_qpc > baseline_qpc * 2.0,
        "k=2 promotion should still clearly beat the baseline: {k2_qpc} vs {baseline_qpc}"
    );
    assert!(
        k2_qpc > 0.25 * k1_qpc,
        "k=2 should keep a meaningful share of the k=1 benefit: {k2_qpc} vs {k1_qpc}"
    );
}
