//! Serde round-trip regressions for everything a snapshot persists:
//! the sharded serving cache, the sharded store, and the engine —
//! including the versioned-engine compatibility fallback (a serialized
//! engine with no `version` field deserializes to V1, so pre-versioning
//! snapshots keep their recorded behavior).
//!
//! Round trips go all the way through the JSON text codec (the on-disk
//! snapshot format), not just `Value`, and are checked two ways: the
//! re-serialized `Value` is `==` the original, and behavioral probes
//! (pool membership, merged order, page ids, popularity bits) agree.

mod common;

use common::assert_same_corpus;
use proptest::prelude::*;
use rrp_core::{Document, EngineVersion, RankPromotionEngine, ShardedCorpusCache};
use rrp_ranking::{PromotionConfig, PromotionRule};
use rrp_serve::ShardedStore;
use serde::{Deserialize, Serialize, Value};

/// Through the on-disk codec: value → JSON text → value → T.
fn roundtrip<T: Serialize + Deserialize>(value: &T) -> T {
    let text = serde_json::to_string(&value.to_value()).expect("serializes");
    let parsed: Value = serde_json::from_str(&text).expect("parses");
    T::from_value(&parsed).expect("deserializes")
}

/// The documents a test corpus holds: a mix of unexplored and established
/// entries with bit-awkward popularities.
fn corpus(n: usize) -> Vec<Document> {
    (0..n)
        .map(|i| {
            if i % 3 == 0 {
                Document::unexplored(i as u64 * 11)
            } else {
                Document::established(i as u64 * 11, 0.1 + i as f64 * 0.07).with_age(i as u64)
            }
        })
        .collect()
}

/// Probe-level equality for two sharded caches (beyond `Value` equality):
/// every serving-path accessor answers the same.
fn assert_same_cache(got: &mut ShardedCorpusCache, expected: &mut ShardedCorpusCache) {
    assert_eq!(got.shard_count(), expected.shard_count());
    assert_eq!(got.len(), expected.len());
    assert_eq!(got.dirty_len(), expected.dirty_len());
    assert_eq!(got.pool_maintained(), expected.pool_maintained());
    assert_eq!(got.pool_slots(), expected.pool_slots());
    for slot in 0..expected.len() {
        assert_eq!(got.page_of(slot), expected.page_of(slot), "page at {slot}");
        assert_eq!(got.in_pool(slot), expected.in_pool(slot), "pool at {slot}");
        let g = got.stat_of(slot);
        let e = expected.stat_of(slot);
        assert_eq!(g.slot, e.slot);
        assert_eq!(
            g.popularity.to_bits(),
            e.popularity.to_bits(),
            "popularity bits at {slot}"
        );
    }
    // The merged order lives on a published version now; publication
    // also repairs, so only compare from an already-clean cache to keep
    // the dirty-length probes above meaningful.
    if expected.dirty_len() == 0 {
        let (got_version, got_charged) = got.publish(1);
        let (expected_version, expected_charged) = expected.publish(1);
        assert_eq!(got_charged, expected_charged);
        let (got_order, _) = got_version.ensure_merged_order();
        let (expected_order, _) = expected_version.ensure_merged_order();
        assert_eq!(got_order, expected_order);
        assert_eq!(got_version.merged_order(), expected_version.merged_order());
    }
}

#[test]
fn an_empty_cache_roundtrips() {
    for shards in [1usize, 2, 8] {
        let mut cache = ShardedCorpusCache::new(shards);
        let mut back = roundtrip(&cache);
        assert_eq!(back.to_value(), cache.to_value());
        assert_same_cache(&mut back, &mut cache);
    }
}

#[test]
fn a_populated_repaired_cache_roundtrips_with_pool_on_and_off() {
    for maintained in [true, false] {
        for shards in [1usize, 3, 8] {
            let mut cache = ShardedCorpusCache::new(shards);
            cache.set_pool_maintained(maintained);
            for (i, doc) in corpus(25).iter().enumerate() {
                cache.push(i % shards, doc);
            }
            cache.repair();
            let mut back = roundtrip(&cache);
            assert_eq!(back.to_value(), cache.to_value(), "{shards} shards");
            assert_same_cache(&mut back, &mut cache);
        }
    }
}

#[test]
fn a_mid_dirty_cache_roundtrips_and_repairs_identically() {
    // Dirty state (patched but not yet repaired) is part of the snapshot:
    // a crash between mutation and repair must not lose the patch.
    let mut cache = ShardedCorpusCache::new(2);
    cache.set_pool_maintained(true);
    for (i, doc) in corpus(12).iter().enumerate() {
        cache.push(i % 2, doc);
    }
    cache.repair();
    cache.patch(3, &Document::established(33, 0.99).with_age(1));
    cache.patch(6, &Document::unexplored(66));
    assert!(
        cache.dirty_len() > 0,
        "the cache must actually be mid-dirty"
    );

    let mut back = roundtrip(&cache);
    assert_eq!(back.to_value(), cache.to_value());
    assert_eq!(back.dirty_len(), cache.dirty_len());

    // Both sides repair the same dirty set and land in the same state.
    assert_eq!(back.repair(), cache.repair());
    assert_same_cache(&mut back, &mut cache);
}

#[test]
fn a_sharded_store_roundtrips_bit_exactly() {
    let mut store = ShardedStore::new(4);
    store.extend(corpus(30));
    store.record_visit(2);
    store.update_popularity(7, 0.123456789012345);

    let back = roundtrip(&store);
    assert_eq!(back.to_value(), store.to_value());
    assert_eq!(back.shard_count(), store.shard_count());
    assert_same_corpus(&back.snapshot(), &store.snapshot());
    for shard in 0..store.shard_count() {
        assert_eq!(
            back.shard_len(shard).unwrap(),
            store.shard_len(shard).unwrap()
        );
    }
}

#[test]
fn engines_roundtrip_for_both_versions() {
    for version in [EngineVersion::V1, EngineVersion::V2] {
        let engine = RankPromotionEngine::new(
            PromotionConfig::new(PromotionRule::Uniform, 2, 0.25).unwrap(),
        )
        .with_seed(0xBEEF)
        .with_version(version);
        let back = roundtrip(&engine);
        assert_eq!(back, engine);
        assert_eq!(back.version(), version);
    }
}

#[test]
fn an_engine_without_a_version_field_falls_back_to_v1() {
    // The compatibility contract from the engine-versioning change:
    // engines serialized before the `version` field existed deserialize
    // to V1, keeping their recorded goldens valid.
    let engine = RankPromotionEngine::recommended()
        .with_seed(42)
        .with_version(EngineVersion::V2);
    let Value::Map(fields) = engine.to_value() else {
        panic!("engines serialize as maps");
    };
    let stripped: Vec<(String, Value)> = fields
        .into_iter()
        .filter(|(name, _)| name != "version")
        .collect();
    assert!(
        stripped.iter().any(|(name, _)| name == "config"),
        "the stripped map still carries the config"
    );
    let legacy = RankPromotionEngine::from_value(&Value::Map(stripped))
        .expect("a pre-versioning engine still deserializes");
    assert_eq!(legacy.version(), EngineVersion::V1);
    assert_eq!(legacy, engine.with_version(EngineVersion::V1));
}

proptest! {
    /// Any push/patch/repair interleaving round-trips: `Value` equality
    /// plus probe equality, across shard counts.
    #[test]
    fn arbitrary_cache_states_roundtrip(
        docs in prop::collection::vec((0u64..1_000, 0.0f64..1.5, 0u64..200), 1..40),
        patches in prop::collection::vec((0usize..40, 0.0f64..1.5), 0..10),
        shards in 1usize..6,
        maintained in prop::bool::ANY,
        repair_before_patch in prop::bool::ANY,
    ) {
        let mut cache = ShardedCorpusCache::new(shards);
        cache.set_pool_maintained(maintained);
        for (i, &(id, popularity, age)) in docs.iter().enumerate() {
            let doc = if popularity < 0.05 {
                Document::unexplored(id)
            } else {
                Document::established(id, popularity).with_age(age)
            };
            cache.push(i % shards, &doc);
        }
        if repair_before_patch {
            cache.repair();
        }
        for &(slot, popularity) in &patches {
            let slot = slot % docs.len();
            cache.patch(slot, &Document::established(slot as u64, popularity));
        }

        let mut back = roundtrip(&cache);
        prop_assert_eq!(back.to_value(), cache.to_value());
        assert_same_cache(&mut back, &mut cache);

        // And the round trip commutes with repair.
        back.repair();
        cache.repair();
        assert_same_cache(&mut back, &mut cache);
    }
}
