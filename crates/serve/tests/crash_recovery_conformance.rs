//! The crash-recovery conformance suite: **drop-then-recover ≡ the
//! uncrashed twin**, under arbitrary mutate-while-serving schedules,
//! across shard × worker × policy × engine-version grids.
//!
//! Each case drives a [`DurableService`] and a plain in-memory twin
//! through the same schedule (same documents, same visits, same
//! popularity updates, same mid-schedule serve points), then *crashes*
//! the durable service — drops it on the floor, buffered nothing, warned
//! nobody — and recovers from disk alone. The contract on the line:
//! recovery (snapshot + tail replay) must reproduce **bit-identical**
//! serving state, so every recovered answer — full rerank and top-k,
//! batched and sequential, at every worker count — must equal the twin
//! that never crashed, and the recovered corpus must match the twin's
//! down to the popularity *bits*. Snapshot cadence is drawn per case, so
//! the same schedules recover through pure replay, pure snapshot, and
//! every mix in between.

mod common;

use common::{
    apply_mutation, apply_mutation_durable, arb_ops, assert_same_corpus, inserted_document,
    queries, ServeShape, TempDir, GRID,
};
use proptest::prelude::*;
use rrp_core::{EngineVersion, RankPromotionEngine};
use rrp_ranking::{PromotionConfig, PromotionRule};
use rrp_serve::{DurableService, RecoveryReport, ShardedPromotionService};

/// The four serving policies of the shard-merge suites: both promotion
/// rules, with and without a protected top result.
fn policies() -> [RankPromotionEngine; 4] {
    [
        RankPromotionEngine::recommended(), // selective, r = 0.1, k = 2
        RankPromotionEngine::new(PromotionConfig::new(PromotionRule::Selective, 1, 0.5).unwrap()),
        RankPromotionEngine::new(PromotionConfig::new(PromotionRule::Uniform, 1, 0.3).unwrap()),
        RankPromotionEngine::new(PromotionConfig::new(PromotionRule::Uniform, 2, 0.1).unwrap()),
    ]
}

proptest! {
    /// One schedule, every shard count: mutate a durable service and its
    /// in-memory twin in lockstep (serving along the way must already
    /// agree), crash the durable one, recover at every worker count, and
    /// pin recovered output ≡ twin output plus bit-identical corpus.
    #[test]
    fn recovery_reproduces_the_uncrashed_twin(
        ops in arb_ops(ServeShape::TopK),
        initial in 0usize..30,
        seed in 0u64..1_000,
        policy_index in 0usize..4,
        v2 in prop::bool::ANY,
        snapshot_every in 1u64..24,
    ) {
        let version = if v2 { EngineVersion::V2 } else { EngineVersion::V1 };
        let engine = policies()[policy_index].with_seed(seed).with_version(version);
        for shards in GRID {
            let dir = TempDir::new("crash-recovery");
            let (durable, report) =
                DurableService::open(dir.path(), engine, shards).unwrap();
            prop_assert_eq!(report, RecoveryReport::default(), "fresh dir recovers nothing");
            let mut durable = durable.with_snapshot_every(snapshot_every);
            let mut twin = ShardedPromotionService::new(engine, shards);

            // Seed + schedule, applied to both in lockstep.
            for i in 0..initial {
                let doc = inserted_document(i as u64, (i % 7) as f64 / 5.0, i as u64);
                durable.insert(doc).unwrap();
                twin.insert(doc);
            }
            let mut batch_salt = 0u64;
            for &op in &ops {
                let durable_serve = apply_mutation_durable(&mut durable, op);
                let twin_serve = apply_mutation(&mut twin, op);
                prop_assert_eq!(durable_serve, twin_serve, "schedules diverged");
                if let Some((q, k)) = durable_serve {
                    batch_salt += 1;
                    let qs = queries(q, batch_salt);
                    // Serving through the durable wrapper is the plain
                    // service — logged mutations must not disturb it.
                    match k {
                        Some(k) => {
                            let mut got = Vec::new();
                            durable.rerank_batch_top_k_into(&qs, k, &mut got);
                            let mut want = Vec::new();
                            twin.rerank_batch_top_k_into(&qs, k, &mut want);
                            prop_assert_eq!(got, want, "mid-schedule top-{}", k);
                        }
                        None => {
                            prop_assert_eq!(
                                durable.rerank_batch(&qs),
                                twin.rerank_batch(&qs),
                                "mid-schedule full rerank"
                            );
                        }
                    }
                }
            }

            let appended = durable.serve_stats().wal_appends;
            let snapshots = durable.serve_stats().snapshots_written;

            // The crash: no flush call, no shutdown hook, just gone.
            drop(durable);

            let qs = queries(5, 0xD1CE);
            for workers in GRID {
                let (recovered, report) =
                    DurableService::open(dir.path(), engine, shards).unwrap();
                let recovered = recovered.with_workers(workers);

                // Nothing was torn or corrupt, so nothing may be lost,
                // and replay covers exactly the events past the last
                // snapshot (all of them when no snapshot was reached).
                prop_assert_eq!(report.events_lost, 0);
                prop_assert_eq!(report.bytes_dropped, 0);
                prop_assert_eq!(report.snapshot_loaded, snapshots > 0);
                prop_assert!(!report.snapshot_fallback);
                prop_assert!(report.events_replayed <= appended);
                if snapshots == 0 {
                    prop_assert_eq!(report.events_replayed, appended);
                }
                prop_assert_eq!(
                    recovered.serve_stats().events_replayed,
                    report.events_replayed
                );

                // Bit-identical corpus…
                assert_same_corpus(
                    &recovered.store().snapshot(),
                    &twin.store().snapshot(),
                );
                // …and bit-identical serving, on every path.
                prop_assert_eq!(
                    recovered.rerank_batch(&qs),
                    twin.rerank_batch(&qs),
                    "recovered full rerank ({} shards × {} workers, {:?})",
                    shards,
                    workers,
                    version
                );
                for k in [1usize, 4, 11] {
                    let mut got = Vec::new();
                    recovered.rerank_batch_top_k_into(&qs, k, &mut got);
                    let mut want = Vec::new();
                    twin.rerank_batch_top_k_into(&qs, k, &mut want);
                    prop_assert_eq!(
                        got,
                        want,
                        "recovered top-{} ({} shards × {} workers, {:?})",
                        k,
                        shards,
                        workers,
                        version
                    );
                }
                for &ctx in &qs {
                    prop_assert_eq!(
                        recovered.rerank_one(ctx),
                        twin.rerank_one(ctx),
                        "recovered sequential full rerank"
                    );
                    prop_assert_eq!(
                        recovered.rerank_top_k(ctx, 3),
                        twin.rerank_top_k(ctx, 3),
                        "recovered sequential top-3"
                    );
                }
            }

            // Recovery is idempotent and still mutable: one more durable
            // mutation after recovery lands in both worlds identically.
            let (mut recovered, _) = DurableService::open(dir.path(), engine, shards).unwrap();
            let doc = inserted_document(99_991, 0.42, 17);
            recovered.insert(doc).unwrap();
            twin.insert(doc);
            prop_assert_eq!(
                recovered.rerank_batch(&qs),
                twin.rerank_batch(&qs),
                "post-recovery mutation"
            );
        }
    }
}
