//! Fault injection against the durable serving tier: torn tails, flipped
//! bytes, unreadable headers, corrupt snapshots, and append-time I/O
//! failures. The bar everywhere: **typed errors and clean truncation,
//! never a panic, never silently wrong state** — whatever survives on
//! disk recovers to exactly the live state that produced it.

mod common;

use common::{apply_mutation_durable, arb_ops, assert_same_corpus, queries, ServeShape, TempDir};
use proptest::prelude::*;
use rrp_core::{Document, RankPromotionEngine};
use rrp_serve::{DurableService, ServeError, ShardedPromotionService};
use rrp_wal::fault::{flip_byte, truncate_at, Failpoint};
use rrp_wal::{WalEvent, WalReader, WAL_HEADER_LEN};

fn engine(seed: u64) -> RankPromotionEngine {
    RankPromotionEngine::recommended().with_seed(seed)
}

/// Run a schedule through a durable service with snapshots off, crash
/// it, and return its directory (the log is then the full history).
fn logged_history(ops: &[common::Op], seed: u64, shards: usize) -> TempDir {
    let dir = TempDir::new("fault");
    let (durable, _) = DurableService::open(dir.path(), engine(seed), shards).unwrap();
    let mut durable = durable.with_snapshot_every(u64::MAX);
    for &op in ops {
        apply_mutation_durable(&mut durable, op);
    }
    drop(durable);
    dir
}

/// Whatever a damaged log still yields, read leniently.
fn surviving_events(path: &std::path::Path) -> (Vec<WalEvent>, rrp_wal::TailStatus) {
    let mut reader = WalReader::open(path).expect("header still intact");
    let mut events = Vec::new();
    while let Some((_, event)) = reader.next_event().expect("no real I/O error") {
        events.push(event);
    }
    (events, reader.tail())
}

/// The in-memory state `events` produces when applied live.
fn live_state(events: &[WalEvent], seed: u64, shards: usize) -> ShardedPromotionService {
    let service = ShardedPromotionService::new(engine(seed), shards);
    for event in events {
        match *event {
            WalEvent::Insert(doc) => {
                service.insert(doc);
            }
            WalEvent::Visit { seq } => service.try_record_visit(seq).unwrap(),
            WalEvent::SetPopularity { seq, popularity } => {
                service.try_update_popularity(seq, popularity).unwrap()
            }
        }
    }
    service
}

/// Recovered output ≡ the live state of the surviving events.
fn assert_recovers_to(
    dir: &TempDir,
    expected: &mut ShardedPromotionService,
    seed: u64,
    shards: usize,
) {
    let (recovered, _) = DurableService::open(dir.path(), engine(seed), shards).unwrap();
    assert_same_corpus(&recovered.store().snapshot(), &expected.store().snapshot());
    let qs = queries(4, 0xFA);
    assert_eq!(recovered.rerank_batch(&qs), expected.rerank_batch(&qs));
}

proptest! {
    /// Truncate the log at *any* byte offset past the header: recovery
    /// must classify the damage (clean cut or torn frame, never corrupt),
    /// drop the partial frame, and reproduce the surviving prefix.
    #[test]
    fn torn_tails_are_dropped_cleanly_at_any_offset(
        ops in arb_ops(ServeShape::Full),
        seed in 0u64..500,
        cut_salt in 0u64..100_000,
    ) {
        let shards = 2;
        let dir = logged_history(&ops, seed, shards);
        let len = std::fs::metadata(dir.wal_path()).unwrap().len();
        let cut = WAL_HEADER_LEN + cut_salt % (len - WAL_HEADER_LEN + 1);
        truncate_at(&dir.wal_path(), cut).unwrap();

        let (survivors, tail) = surviving_events(&dir.wal_path());
        prop_assert!(
            !matches!(tail, rrp_wal::TailStatus::Corrupt { .. }),
            "truncation must never read as corruption"
        );
        let (recovered, report) =
            DurableService::open(dir.path(), engine(seed), shards).unwrap();
        prop_assert_eq!(report.events_replayed, survivors.len() as u64);
        prop_assert_eq!(report.events_lost, 0);
        prop_assert_eq!(report.bytes_dropped, tail.dropped_bytes());
        drop(recovered);
        assert_recovers_to(&dir, &mut live_state(&survivors, seed, shards), seed, shards);
    }

    /// Flip one byte anywhere in the record region: the checksum detects
    /// it, recovery truncates at the first corrupt record, reports a loss
    /// count, and reproduces the surviving prefix — never a panic.
    #[test]
    fn flipped_bytes_truncate_at_the_first_corrupt_record(
        ops in arb_ops(ServeShape::Full),
        seed in 0u64..500,
        flip_salt in 0u64..100_000,
    ) {
        let shards = 2;
        let dir = logged_history(&ops, seed, shards);
        let len = std::fs::metadata(dir.wal_path()).unwrap().len();
        prop_assume!(len > WAL_HEADER_LEN); // schedules of pure serves log nothing
        let flip = WAL_HEADER_LEN + flip_salt % (len - WAL_HEADER_LEN);
        flip_byte(&dir.wal_path(), flip).unwrap();

        let (all, _) = {
            // What the untouched log held, for the loss accounting.
            let mut pristine = dir.wal_path().into_os_string();
            pristine.push(".pristine");
            let pristine = std::path::PathBuf::from(pristine);
            std::fs::copy(dir.wal_path(), &pristine).unwrap();
            flip_byte(&pristine, flip).unwrap(); // flip back
            surviving_events(&pristine)
        };
        let (survivors, tail) = surviving_events(&dir.wal_path());
        let (recovered, report) =
            DurableService::open(dir.path(), engine(seed), shards).unwrap();
        prop_assert_eq!(report.events_replayed, survivors.len() as u64);
        prop_assert_eq!(report.events_lost, tail.events_lost());
        if let rrp_wal::TailStatus::Corrupt { events_lost, .. } = tail {
            // When the flip spares the length prefixes the count is
            // exact; it is never an overcount.
            prop_assert!(events_lost >= 1);
            prop_assert!(survivors.len() as u64 + events_lost <= all.len() as u64 + 1);
        }
        drop(recovered);
        assert_recovers_to(&dir, &mut live_state(&survivors, seed, shards), seed, shards);
    }
}

#[test]
fn append_failures_degrade_gracefully_and_keep_state_consistent() {
    let dir = TempDir::new("failpoint");
    let failpoint = Failpoint::new();
    let (durable, _) =
        DurableService::open_with_failpoint(dir.path(), engine(7), 2, failpoint.clone()).unwrap();
    let mut durable = durable.with_snapshot_every(u64::MAX);
    let twin = ShardedPromotionService::new(engine(7), 2);

    for i in 0..10u64 {
        let doc = Document::established(i, 0.9 - i as f64 * 0.05).with_age(i);
        durable.insert(doc).unwrap();
        twin.insert(doc);
    }

    // Let two more appends through, then the disk "fails".
    failpoint.arm_after(2);
    durable.record_visit(0).unwrap();
    twin.record_visit(0);
    durable.update_popularity(1, 0.99).unwrap();
    twin.update_popularity(1, 0.99);

    // Every mutation now surfaces a typed error — and applies nothing.
    let before = durable.serve_stats();
    assert!(matches!(
        durable.insert(Document::unexplored(77)),
        Err(ServeError::Wal(_))
    ));
    assert!(matches!(durable.record_visit(2), Err(ServeError::Wal(_))));
    assert!(matches!(
        durable.update_popularity(3, 0.1),
        Err(ServeError::Wal(_))
    ));
    let after = durable.serve_stats();
    assert_eq!(
        after.wal_appends, before.wal_appends,
        "failures charge nothing"
    );
    assert_eq!(
        durable.store().len(),
        twin.store().len(),
        "nothing was applied"
    );

    // Serving continues from consistent state mid-outage.
    let qs = queries(4, 3);
    assert_eq!(durable.rerank_batch(&qs), twin.rerank_batch(&qs));

    // The disk "heals": mutations work again, and a crash-recovery round
    // trip sees exactly the successful history.
    failpoint.disarm();
    durable.record_visit(4).unwrap();
    twin.record_visit(4);
    assert_eq!(durable.rerank_batch(&qs), twin.rerank_batch(&qs));
    drop(durable);
    let (recovered, report) = DurableService::open(dir.path(), engine(7), 2).unwrap();
    assert_eq!(report.events_lost, 0);
    assert_eq!(report.events_replayed, 13); // 10 inserts + 3 mutations
    assert_same_corpus(&recovered.store().snapshot(), &twin.store().snapshot());
    assert_eq!(recovered.rerank_batch(&qs), twin.rerank_batch(&qs));
}

#[test]
fn a_corrupt_snapshot_falls_back_to_full_log_replay() {
    let dir = TempDir::new("snapshot-corrupt");
    let (mut durable, _) = DurableService::open(dir.path(), engine(3), 2).unwrap();
    let twin = ShardedPromotionService::new(engine(3), 2);
    for i in 0..20u64 {
        let doc = Document::established(i, 1.0 - i as f64 * 0.01).with_age(i);
        durable.insert(doc).unwrap();
        twin.insert(doc);
    }
    durable.snapshot_now().unwrap();
    durable.record_visit(3).unwrap();
    twin.record_visit(3);
    drop(durable);

    // Rot a byte in the middle of the snapshot payload.
    let len = std::fs::metadata(dir.snapshot_path()).unwrap().len();
    flip_byte(&dir.snapshot_path(), len / 2).unwrap();

    // The log was never truncated, so recovery goes around the snapshot.
    let (recovered, report) = DurableService::open(dir.path(), engine(3), 2).unwrap();
    assert!(report.snapshot_fallback);
    assert!(!report.snapshot_loaded);
    assert_eq!(report.events_replayed, 21, "the whole history replays");
    assert_same_corpus(&recovered.store().snapshot(), &twin.store().snapshot());
    let qs = queries(4, 9);
    assert_eq!(recovered.rerank_batch(&qs), twin.rerank_batch(&qs));
}

#[test]
fn an_unreadable_log_header_resets_the_log_but_keeps_the_snapshot() {
    let dir = TempDir::new("bad-header");
    let (mut durable, _) = DurableService::open(dir.path(), engine(11), 2).unwrap();
    let twin = ShardedPromotionService::new(engine(11), 2);
    for i in 0..12u64 {
        let doc = Document::established(i, 0.8 - i as f64 * 0.02).with_age(i);
        durable.insert(doc).unwrap();
        twin.insert(doc);
    }
    durable.snapshot_now().unwrap();
    drop(durable);

    let log_len = std::fs::metadata(dir.wal_path()).unwrap().len();
    flip_byte(&dir.wal_path(), 0).unwrap(); // magic byte

    let (mut recovered, report) = DurableService::open(dir.path(), engine(11), 2).unwrap();
    assert!(report.snapshot_loaded);
    assert!(report.log_reset, "the reset is reported, not silent");
    assert_eq!(report.events_replayed, 0);
    assert_eq!(report.bytes_dropped, log_len, "the unreadable log is reset");
    assert_same_corpus(&recovered.store().snapshot(), &twin.store().snapshot());
    let qs = queries(4, 2);
    assert_eq!(recovered.rerank_batch(&qs), twin.rerank_batch(&qs));

    // And the reset log keeps working: mutate, crash, recover again.
    let doc = Document::unexplored(500);
    recovered.insert(doc).unwrap();
    twin.insert(doc);
    drop(recovered);
    let (again, report) = DurableService::open(dir.path(), engine(11), 2).unwrap();
    assert_eq!(report.events_replayed, 1);
    assert_eq!(again.rerank_batch(&qs), twin.rerank_batch(&qs));
}

#[test]
fn a_log_cut_below_the_snapshot_mark_is_reset_and_the_snapshot_carries() {
    let dir = TempDir::new("log-behind-snapshot");
    let (mut durable, _) = DurableService::open(dir.path(), engine(5), 2).unwrap();
    let twin = ShardedPromotionService::new(engine(5), 2);
    for i in 0..15u64 {
        let doc = Document::established(i, 0.7 - i as f64 * 0.01).with_age(i);
        durable.insert(doc).unwrap();
        twin.insert(doc);
    }
    durable.snapshot_now().unwrap();
    drop(durable);

    // Cut the log all the way back to its header: everything it held is
    // now *older* than the snapshot's high-water mark. An empty log
    // needs no reset — appends resume directly at the snapshot's mark
    // (the reset-with-reporting path, for a log still *holding* stale
    // events, is pinned by the durable unit tests).
    truncate_at(&dir.wal_path(), WAL_HEADER_LEN).unwrap();

    let (mut recovered, report) = DurableService::open(dir.path(), engine(5), 2).unwrap();
    assert!(report.snapshot_loaded);
    assert!(!report.log_reset, "an empty log is kept, not reset");
    assert_eq!(report.bytes_dropped, 0);
    assert_eq!(report.events_replayed, 0);
    assert_same_corpus(&recovered.store().snapshot(), &twin.store().snapshot());
    let qs = queries(4, 5);
    assert_eq!(recovered.rerank_batch(&qs), twin.rerank_batch(&qs));

    // Appending resumes at the snapshot's sequence; a second recovery
    // sees a gap-free log.
    let doc = Document::unexplored(900);
    recovered.insert(doc).unwrap();
    twin.insert(doc);
    drop(recovered);
    let (again, report) = DurableService::open(dir.path(), engine(5), 2).unwrap();
    assert_eq!(report.events_lost, 0);
    assert_eq!(report.events_replayed, 1);
    assert_eq!(again.rerank_batch(&qs), twin.rerank_batch(&qs));
}
