//! The first mutate-while-serving workload: a service that interleaves
//! inserts, visit feedback and popularity updates *between batches* must
//! answer exactly like a service freshly built from the final corpus —
//! incremental ≡ from-scratch — across shard × worker grids.
//!
//! This is the end-to-end soundness argument for the incremental serving
//! state: if dirty-slot repair of the cached snapshot, statistics, or
//! popularity order ever drifted from a from-scratch derivation, some
//! mutation schedule here would surface it as a differing answer.

mod common;

use common::{apply_mutation, arb_ops, queries, seed_service, Op, ServeShape, GRID};
use proptest::prelude::*;
use rrp_core::RankPromotionEngine;
use rrp_serve::ShardedPromotionService;

proptest! {
    /// Apply an arbitrary interleaving of inserts, visits, popularity
    /// updates and batches; after every batch — and at the end — the
    /// incremental service must agree with a service built from scratch
    /// over the current corpus, for every shard × worker combination.
    #[test]
    fn interleaved_mutations_answer_like_from_scratch(
        ops in arb_ops(ServeShape::Full),
        initial in 0usize..40,
        seed in 0u64..1_000,
    ) {
        let engine = RankPromotionEngine::recommended().with_seed(seed);
        let mut service = ShardedPromotionService::new(engine, 4).with_workers(4);
        seed_service(&mut service, initial, 5, 0.02);

        let mut batch_salt = 0u64;
        for &op in &ops {
            if let Some((q, _)) = apply_mutation(&mut service, op) {
                batch_salt += 1;
                let qs = queries(q, batch_salt);
                let incremental = service.rerank_batch(&qs);
                let fresh = ShardedPromotionService::new(engine, 1).with_workers(1);
                fresh.extend(service.store().snapshot());
                prop_assert_eq!(&incremental, &fresh.rerank_batch(&qs));
            }
        }

        // Final sweep: the mutated service equals a from-scratch build of
        // its final corpus for every shard × worker combination, on the
        // batch, single-query and top-k paths alike.
        let corpus = service.store().snapshot();
        let qs = queries(9, 0xC0FFEE);
        let incremental = service.rerank_batch(&qs);
        for shards in GRID {
            for workers in GRID {
                let fresh =
                    ShardedPromotionService::new(engine, shards).with_workers(workers);
                fresh.extend(corpus.iter().copied());
                prop_assert_eq!(
                    &incremental,
                    &fresh.rerank_batch(&qs),
                    "{} shards × {} workers",
                    shards,
                    workers
                );
            }
        }
        for (i, &ctx) in qs.iter().enumerate() {
            prop_assert_eq!(&incremental[i], &service.rerank_one(ctx));
            let k = 1 + i % 7;
            prop_assert_eq!(
                &incremental[i][..k.min(incremental[i].len())],
                &service.rerank_top_k(ctx, k)
            );
        }

        // The steady-state probe: nothing in this schedule may have caused
        // a snapshot rebuild, a from-scratch sort, a pool rebuild, or a
        // per-query pool scan (the engine is selective, so every query
        // reads the persistent pool index).
        prop_assert_eq!(service.serve_stats().snapshot_rebuilds, 0);
        prop_assert_eq!(service.serve_stats().full_sorts, 0);
        prop_assert_eq!(service.serve_stats().pool_rebuilds, 0);
        prop_assert_eq!(service.serve_stats().mask_resets, 0);
    }
}

/// The shared scaffolding itself stays honest: every generated schedule
/// draws from the four op kinds and serve points carry the requested
/// shape.
#[test]
fn schedule_generator_covers_every_op_kind() {
    use proptest::{Strategy, TestRng};
    let strategy = arb_ops(ServeShape::Full);
    let (mut inserts, mut visits, mut sets, mut serves) = (0u32, 0u32, 0u32, 0u32);
    for seed in 0..64 {
        let ops = strategy.generate(&mut TestRng::new(seed));
        for op in ops {
            match op {
                Op::Insert { .. } => inserts += 1,
                Op::Visit { .. } => visits += 1,
                Op::SetPopularity { .. } => sets += 1,
                Op::Serve { queries, k } => {
                    assert!(k.is_none(), "Full shape must not produce top-k serves");
                    assert!((1..=5).contains(&queries));
                    serves += 1;
                }
            }
        }
    }
    assert!(inserts > 0 && visits > 0 && sets > 0 && serves > 0);
}
