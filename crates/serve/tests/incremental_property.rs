//! The first mutate-while-serving workload: a service that interleaves
//! inserts, visit feedback and popularity updates *between batches* must
//! answer exactly like a service freshly built from the final corpus —
//! incremental ≡ from-scratch — across shard × worker grids.
//!
//! This is the end-to-end soundness argument for the incremental serving
//! state: if dirty-slot repair of the cached snapshot, statistics, or
//! popularity order ever drifted from a from-scratch derivation, some
//! mutation schedule here would surface it as a differing answer.

use proptest::prelude::*;
use rrp_core::{Document, QueryContext, RankPromotionEngine};
use rrp_serve::ShardedPromotionService;

/// One mutation applied to the serving corpus between batches.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Insert a fresh document (unexplored when `popularity` rounds to 0).
    Insert { id: u64, popularity: f64, age: u64 },
    /// Record a user visit to sequence `seq % len`.
    Visit { seq: u64 },
    /// Replace the popularity score of sequence `seq % len`.
    SetPopularity { seq: u64, popularity: f64 },
    /// Answer a batch of queries right here (mid-schedule, not just at the
    /// end) so repairs interleave with serving.
    Batch { queries: u64 },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((0usize..4, 0u64..10_000, 0.0f64..1.5, 0u64..300), 1..40).prop_map(
        |raw| {
            raw.into_iter()
                .map(|(kind, a, popularity, age)| match kind {
                    0 => Op::Insert {
                        id: a,
                        popularity,
                        age,
                    },
                    1 => Op::Visit { seq: a },
                    2 => Op::SetPopularity { seq: a, popularity },
                    _ => Op::Batch { queries: 1 + a % 6 },
                })
                .collect()
        },
    )
}

fn queries(n: u64, salt: u64) -> Vec<QueryContext> {
    (0..n)
        .map(|q| QueryContext::new(q * 7 + salt, q ^ (salt << 3)))
        .collect()
}

proptest! {
    /// Apply an arbitrary interleaving of inserts, visits, popularity
    /// updates and batches; after every batch — and at the end — the
    /// incremental service must agree with a service built from scratch
    /// over the current corpus, for every shard × worker combination.
    #[test]
    fn interleaved_mutations_answer_like_from_scratch(
        ops in arb_ops(),
        initial in 0usize..40,
        seed in 0u64..1_000,
    ) {
        let engine = RankPromotionEngine::recommended().with_seed(seed);
        let mut service = ShardedPromotionService::new(engine, 4).with_workers(4);
        for i in 0..initial {
            let doc = if i % 5 == 0 {
                Document::unexplored(i as u64)
            } else {
                Document::established(i as u64, 1.0 - i as f64 * 0.02).with_age(i as u64)
            };
            service.insert(doc);
        }

        let mut batch_salt = 0u64;
        for op in &ops {
            match *op {
                Op::Insert { id, popularity, age } => {
                    let doc = if popularity < 0.05 {
                        Document::unexplored(id)
                    } else {
                        Document::established(id, popularity).with_age(age)
                    };
                    service.insert(doc);
                }
                Op::Visit { seq } => {
                    let len = service.store().len() as u64;
                    if len > 0 {
                        prop_assert!(service.record_visit(seq % len));
                    }
                }
                Op::SetPopularity { seq, popularity } => {
                    let len = service.store().len() as u64;
                    if len > 0 {
                        prop_assert!(service.update_popularity(seq % len, popularity));
                    }
                }
                Op::Batch { queries: q } => {
                    batch_salt += 1;
                    let qs = queries(q, batch_salt);
                    let incremental = service.rerank_batch(&qs);
                    let mut fresh = ShardedPromotionService::new(engine, 1).with_workers(1);
                    fresh.extend(service.store().snapshot());
                    prop_assert_eq!(&incremental, &fresh.rerank_batch(&qs));
                }
            }
        }

        // Final sweep: the mutated service equals a from-scratch build of
        // its final corpus for every shard × worker combination, on the
        // batch, single-query and top-k paths alike.
        let corpus = service.store().snapshot();
        let qs = queries(9, 0xC0FFEE);
        let incremental = service.rerank_batch(&qs);
        for shards in [1usize, 2, 8] {
            for workers in [1usize, 2, 8] {
                let mut fresh =
                    ShardedPromotionService::new(engine, shards).with_workers(workers);
                fresh.extend(corpus.iter().copied());
                prop_assert_eq!(
                    &incremental,
                    &fresh.rerank_batch(&qs),
                    "{} shards × {} workers",
                    shards,
                    workers
                );
            }
        }
        for (i, &ctx) in qs.iter().enumerate() {
            prop_assert_eq!(&incremental[i], &service.rerank_one(ctx));
            let k = 1 + i % 7;
            prop_assert_eq!(
                &incremental[i][..k.min(incremental[i].len())],
                &service.rerank_top_k(ctx, k)
            );
        }

        // The steady-state probe: nothing in this schedule may have caused
        // a snapshot rebuild, a from-scratch sort, a pool rebuild, or a
        // per-query pool scan (the engine is selective, so every query
        // reads the persistent pool index).
        prop_assert_eq!(service.serve_stats().snapshot_rebuilds, 0);
        prop_assert_eq!(service.serve_stats().full_sorts, 0);
        prop_assert_eq!(service.serve_stats().pool_rebuilds, 0);
        prop_assert_eq!(service.serve_stats().mask_resets, 0);
    }
}
