//! The persistent promotion-pool index under mutate-while-serving load:
//! arbitrary interleavings of inserts, visit feedback and popularity
//! updates must leave the incrementally repaired pool *identical* to a
//! from-scratch recomputation over the current corpus — and every top-k
//! answer identical to the length-`k` prefix of the full rerank — across
//! shard × worker grids.
//!
//! This is the end-to-end soundness argument for the pool index: its
//! pre-shuffle member order feeds the RNG directly (the shuffle's swaps
//! depend on pool size and order), so a stale or re-ordered member would
//! not fail loudly — it would silently rearrange the merged prefix. If
//! dirty-slot repair of the membership ever drifted from the fresh
//! `is_unexplored` scan, some schedule here would surface it either as a
//! differing pool or as a differing answer.

use proptest::prelude::*;
use rrp_core::{Document, QueryContext, RankPromotionEngine};
use rrp_serve::ShardedPromotionService;

/// One step of the mutate-while-serving schedule.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Insert a fresh document (unexplored when `popularity` rounds to 0).
    Insert { id: u64, popularity: f64, age: u64 },
    /// Record a user visit to sequence `seq % len` (pool membership off).
    Visit { seq: u64 },
    /// Replace the popularity score of sequence `seq % len` (membership
    /// unchanged — the pool must not move when only popularity does).
    SetPopularity { seq: u64, popularity: f64 },
    /// Serve a top-k batch right here, mid-schedule.
    TopK { queries: u64, k: usize },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((0usize..4, 0u64..10_000, 0.0f64..1.5, 0u64..300), 1..40).prop_map(
        |raw| {
            raw.into_iter()
                .map(|(kind, a, popularity, age)| match kind {
                    0 => Op::Insert {
                        id: a,
                        popularity,
                        age,
                    },
                    1 => Op::Visit { seq: a },
                    2 => Op::SetPopularity { seq: a, popularity },
                    _ => Op::TopK {
                        queries: 1 + a % 5,
                        k: 1 + (age as usize % 12),
                    },
                })
                .collect()
        },
    )
}

fn queries(n: u64, salt: u64) -> Vec<QueryContext> {
    (0..n)
        .map(|q| QueryContext::new(q * 11 + salt, q ^ (salt << 2)))
        .collect()
}

/// The from-scratch pool: unexplored documents' canonical slots, in
/// sequence order — what the per-query scan used to derive.
fn fresh_pool(corpus: &[Document]) -> Vec<usize> {
    corpus
        .iter()
        .enumerate()
        .filter(|(_, d)| d.is_unexplored)
        .map(|(slot, _)| slot)
        .collect()
}

proptest! {
    /// Apply an arbitrary interleaving of inserts, visits, popularity
    /// updates and top-k batches; after every step the incremental pool
    /// must equal the from-scratch recomputation, and after every batch
    /// each top-k answer must equal the length-`k` prefix of the full
    /// rerank of a from-scratch service — for every shard × worker
    /// combination at the end.
    #[test]
    fn incremental_pool_equals_from_scratch_and_top_k_stays_a_prefix(
        ops in arb_ops(),
        initial in 0usize..30,
        seed in 0u64..1_000,
    ) {
        let engine = RankPromotionEngine::recommended().with_seed(seed);
        let mut service = ShardedPromotionService::new(engine, 4).with_workers(4);
        for i in 0..initial {
            let doc = if i % 3 == 0 {
                Document::unexplored(i as u64)
            } else {
                Document::established(i as u64, 1.0 - i as f64 * 0.03).with_age(i as u64)
            };
            service.insert(doc);
        }

        let mut batch_salt = 0u64;
        for op in &ops {
            match *op {
                Op::Insert { id, popularity, age } => {
                    let doc = if popularity < 0.05 {
                        Document::unexplored(id)
                    } else {
                        Document::established(id, popularity).with_age(age)
                    };
                    service.insert(doc);
                }
                Op::Visit { seq } => {
                    let len = service.store().len() as u64;
                    if len > 0 {
                        prop_assert!(service.record_visit(seq % len));
                    }
                }
                Op::SetPopularity { seq, popularity } => {
                    let len = service.store().len() as u64;
                    if len > 0 {
                        prop_assert!(service.update_popularity(seq % len, popularity));
                    }
                }
                Op::TopK { queries: q, k } => {
                    batch_salt += 1;
                    let qs = queries(q, batch_salt);
                    let mut top = Vec::new();
                    service.rerank_batch_top_k_into(&qs, k, &mut top);
                    let mut fresh =
                        ShardedPromotionService::new(engine, 1).with_workers(1);
                    fresh.extend(service.store().snapshot());
                    let full = fresh.rerank_batch(&qs);
                    for (i, got) in top.iter().enumerate() {
                        prop_assert_eq!(
                            got,
                            &full[i][..k.min(full[i].len())],
                            "mid-schedule top-{} of query {}",
                            k,
                            i
                        );
                    }
                }
            }
            // The pool index is repaired, never rebuilt — and after every
            // single step it must equal the from-scratch recomputation
            // (the membership drift hazard this suite exists to pin).
            let expected = fresh_pool(&service.store().snapshot());
            prop_assert_eq!(service.pooled_slots(), expected.as_slice());
        }

        // Final sweep: the mutated service equals a from-scratch build of
        // its final corpus on the top-k path for every shard × worker
        // combination and several k.
        let corpus = service.store().snapshot();
        let qs = queries(6, 0xF00D);
        let full = service.rerank_batch(&qs);
        for shards in [1usize, 2, 8] {
            for workers in [1usize, 2, 8] {
                let mut fresh =
                    ShardedPromotionService::new(engine, shards).with_workers(workers);
                fresh.extend(corpus.iter().copied());
                for k in [1usize, 3, 10] {
                    let mut top = Vec::new();
                    fresh.rerank_batch_top_k_into(&qs, k, &mut top);
                    for (i, got) in top.iter().enumerate() {
                        prop_assert_eq!(
                            got,
                            &full[i][..k.min(full[i].len())],
                            "{} shards × {} workers, top-{} of query {}",
                            shards,
                            workers,
                            k,
                            i
                        );
                    }
                }
            }
        }

        // The steady-state probe: nothing in this schedule may have caused
        // a snapshot rebuild, a from-scratch sort, a pool rebuild, or a
        // single per-query pool scan (the engine is selective).
        prop_assert_eq!(service.serve_stats().snapshot_rebuilds, 0);
        prop_assert_eq!(service.serve_stats().full_sorts, 0);
        prop_assert_eq!(service.serve_stats().pool_rebuilds, 0);
        prop_assert_eq!(service.serve_stats().mask_resets, 0);
    }
}
