//! The persistent promotion-pool index under mutate-while-serving load:
//! arbitrary interleavings of inserts, visit feedback and popularity
//! updates must leave the incrementally repaired pool *identical* to a
//! from-scratch recomputation over the current corpus — and every top-k
//! answer identical to the length-`k` prefix of the full rerank — across
//! shard × worker grids.
//!
//! This is the end-to-end soundness argument for the pool index: its
//! pre-shuffle member order feeds the RNG directly (the shuffle's swaps
//! depend on pool size and order), so a stale or re-ordered member would
//! not fail loudly — it would silently rearrange the merged prefix. If
//! dirty-slot repair of the membership ever drifted from the fresh
//! `is_unexplored` scan, some schedule here would surface it either as a
//! differing pool or as a differing answer.

mod common;

use common::{apply_mutation, arb_ops, queries, seed_service, ServeShape, GRID};
use proptest::prelude::*;
use rrp_core::{Document, RankPromotionEngine};
use rrp_serve::ShardedPromotionService;

/// The from-scratch pool: unexplored documents' canonical slots, in
/// sequence order — what the per-query scan used to derive.
fn fresh_pool(corpus: &[Document]) -> Vec<usize> {
    corpus
        .iter()
        .enumerate()
        .filter(|(_, d)| d.is_unexplored)
        .map(|(slot, _)| slot)
        .collect()
}

proptest! {
    /// Apply an arbitrary interleaving of inserts, visits, popularity
    /// updates and top-k batches; after every step the incremental pool
    /// must equal the from-scratch recomputation, and after every batch
    /// each top-k answer must equal the length-`k` prefix of the full
    /// rerank of a from-scratch service — for every shard × worker
    /// combination at the end.
    #[test]
    fn incremental_pool_equals_from_scratch_and_top_k_stays_a_prefix(
        ops in arb_ops(ServeShape::TopK),
        initial in 0usize..30,
        seed in 0u64..1_000,
    ) {
        let engine = RankPromotionEngine::recommended().with_seed(seed);
        let mut service = ShardedPromotionService::new(engine, 4).with_workers(4);
        seed_service(&mut service, initial, 3, 0.03);

        let mut batch_salt = 0u64;
        for &op in &ops {
            if let Some((q, Some(k))) = apply_mutation(&mut service, op) {
                batch_salt += 1;
                let qs = queries(q, batch_salt);
                let mut top = Vec::new();
                service.rerank_batch_top_k_into(&qs, k, &mut top);
                let fresh =
                    ShardedPromotionService::new(engine, 1).with_workers(1);
                fresh.extend(service.store().snapshot());
                let full = fresh.rerank_batch(&qs);
                for (i, got) in top.iter().enumerate() {
                    prop_assert_eq!(
                        got,
                        &full[i][..k.min(full[i].len())],
                        "mid-schedule top-{} of query {}",
                        k,
                        i
                    );
                }
            }
            // The pool index is repaired, never rebuilt — and after every
            // single step it must equal the from-scratch recomputation
            // (the membership drift hazard this suite exists to pin).
            let expected = fresh_pool(&service.store().snapshot());
            prop_assert_eq!(service.pooled_slots(), expected.as_slice());
        }

        // Final sweep: the mutated service equals a from-scratch build of
        // its final corpus on the top-k path for every shard × worker
        // combination and several k.
        let corpus = service.store().snapshot();
        let qs = queries(6, 0xF00D);
        let full = service.rerank_batch(&qs);
        for shards in GRID {
            for workers in GRID {
                let fresh =
                    ShardedPromotionService::new(engine, shards).with_workers(workers);
                fresh.extend(corpus.iter().copied());
                for k in [1usize, 3, 10] {
                    let mut top = Vec::new();
                    fresh.rerank_batch_top_k_into(&qs, k, &mut top);
                    for (i, got) in top.iter().enumerate() {
                        prop_assert_eq!(
                            got,
                            &full[i][..k.min(full[i].len())],
                            "{} shards × {} workers, top-{} of query {}",
                            shards,
                            workers,
                            k,
                            i
                        );
                    }
                }
            }
        }

        // The steady-state probe: nothing in this schedule may have caused
        // a snapshot rebuild, a from-scratch sort, a pool rebuild, or a
        // single per-query pool scan (the engine is selective) — and no
        // top-k batch may have materialised a global ranking: every one
        // was answered from shard-local candidate retrieval.
        prop_assert_eq!(service.serve_stats().snapshot_rebuilds, 0);
        prop_assert_eq!(service.serve_stats().full_sorts, 0);
        prop_assert_eq!(service.serve_stats().pool_rebuilds, 0);
        prop_assert_eq!(service.serve_stats().mask_resets, 0);
    }
}
