//! The shard-merge conformance suite: **shard-local serving ≡
//! single-engine output**, under arbitrary mutate-while-serving schedules,
//! across shard × worker grids and all four serving policies.
//!
//! The contract on the line: every answer the service produces from its
//! shard tier — a top-k query via per-shard candidate retrieval, or a
//! full rerank (and the Uniform rule's per-page coin scan) via the
//! complete merged order — must be *bit-identical* to
//! [`RankPromotionEngine::rerank`] on the canonical corpus, the
//! single-engine reference that every recorded golden and every RNG
//! stream is defined against. The merged pool's pre-shuffle order and the
//! merged complete order both feed the generator directly, so a shard
//! cache that listed one member out of order, dropped a candidate, or
//! merged one entry too few would not fail loudly: it would silently
//! rearrange the served ranking. If any schedule, shard count, worker
//! count, or policy can tell the sharded read path from the single
//! engine, this suite fails.

mod common;

use common::{apply_mutation, arb_ops, queries, seed_service, ServeShape, GRID};
use proptest::prelude::*;
use rrp_core::{QueryContext, RankPromotionEngine};
use rrp_ranking::{PromotionConfig, PromotionRule};
use rrp_serve::ShardedPromotionService;

/// The four serving policies: both promotion rules, with and without a
/// protected top result. Selective engines serve top-k through shard
/// retrieval; Uniform engines draw their per-page coins over the complete
/// merged order — the conformance bar is the same for both.
fn policies() -> [RankPromotionEngine; 4] {
    [
        RankPromotionEngine::recommended(), // selective, r = 0.1, k = 2
        RankPromotionEngine::new(PromotionConfig::new(PromotionRule::Selective, 1, 0.5).unwrap()),
        RankPromotionEngine::new(PromotionConfig::new(PromotionRule::Uniform, 1, 0.3).unwrap()),
        RankPromotionEngine::new(PromotionConfig::new(PromotionRule::Uniform, 2, 0.1).unwrap()),
    ]
}

/// The single-engine reference: the length-`k` prefix of a plain
/// `engine.rerank` over the canonical corpus.
fn reference_top_k(
    engine: &RankPromotionEngine,
    corpus: &[rrp_core::Document],
    ctx: QueryContext,
    k: usize,
) -> Vec<u64> {
    let mut full = engine.rerank(corpus, ctx);
    full.truncate(k);
    full
}

proptest! {
    /// Drive one service per policy through an arbitrary schedule; after
    /// every serve step each top-k answer must equal the single-engine
    /// prefix over the then-current corpus, and at the end the same holds
    /// for every shard × worker combination — plus the routing probe:
    /// selective top-k traffic performs zero complete-order merges and
    /// exactly shards × queries retrievals, Uniform traffic zero
    /// retrievals.
    #[test]
    fn shard_merged_top_k_equals_the_single_engine(
        ops in arb_ops(ServeShape::TopK),
        initial in 0usize..40,
        seed in 0u64..1_000,
        policy_index in 0usize..4,
    ) {
        let engine = policies()[policy_index].with_seed(seed);
        let selective = engine.reads_pool_index();
        let mut service = ShardedPromotionService::new(engine, 4).with_workers(4);
        seed_service(&mut service, initial, 4, 0.02);

        let mut batch_salt = 0u64;
        let mut topk_queries = 0u64;
        for &op in &ops {
            if let Some((q, Some(k))) = apply_mutation(&mut service, op) {
                batch_salt += 1;
                let qs = queries(q, batch_salt);
                let corpus = service.store().snapshot();
                // Empty-corpus serves charge nothing (the probe
                // over-counting regression), so only live queries count
                // toward the expected retrievals.
                if !corpus.is_empty() {
                    topk_queries += q;
                }
                let mut top = Vec::new();
                service.rerank_batch_top_k_into(&qs, k, &mut top);
                for (i, got) in top.iter().enumerate() {
                    prop_assert_eq!(
                        got,
                        &reference_top_k(&engine, &corpus, qs[i], k),
                        "mid-schedule top-{} of query {} ({})",
                        k,
                        i,
                        engine.config().label()
                    );
                }
            }
        }

        // The routing probe: selective engines answered every top-k query
        // from shard retrieval alone (zero complete-order merges, one
        // retrieval per shard per query); Uniform engines answered every
        // one from the complete merged order (zero retrievals, at most
        // one lazy merge per serve point). Neither route ever rebuilds.
        let stats = service.serve_stats();
        prop_assert_eq!(stats.snapshot_rebuilds, 0);
        if selective {
            prop_assert_eq!(stats.order_merges, 0);
            prop_assert_eq!(stats.shard_retrievals, 4 * topk_queries);
        } else {
            prop_assert_eq!(stats.shard_retrievals, 0);
            prop_assert!(stats.order_merges <= batch_salt);
        }

        // Final sweep: every shard × worker combination serves the same
        // corpus with the same answers, on the batch and sequential top-k
        // paths alike.
        let corpus = service.store().snapshot();
        let qs = queries(5, 0xD1CE);
        let expected: Vec<Vec<Vec<u64>>> = [1usize, 4, 11]
            .iter()
            .map(|&k| qs.iter().map(|&ctx| reference_top_k(&engine, &corpus, ctx, k)).collect())
            .collect();
        for shards in GRID {
            for workers in GRID {
                let fresh =
                    ShardedPromotionService::new(engine, shards).with_workers(workers);
                fresh.extend(corpus.iter().copied());
                for (ki, &k) in [1usize, 4, 11].iter().enumerate() {
                    let mut top = Vec::new();
                    fresh.rerank_batch_top_k_into(&qs, k, &mut top);
                    prop_assert_eq!(
                        &top,
                        &expected[ki],
                        "{} shards × {} workers, top-{} ({})",
                        shards,
                        workers,
                        k,
                        engine.config().label()
                    );
                    for (i, &ctx) in qs.iter().enumerate() {
                        prop_assert_eq!(
                            &fresh.rerank_top_k(ctx, k),
                            &expected[ki][i],
                            "sequential top-{} of query {}",
                            k,
                            i
                        );
                    }
                }
            }
        }
    }

    /// The full-rerank twin: drive one service per policy through an
    /// arbitrary schedule of full-rerank serve points; after every serve
    /// step each answer must equal `engine.rerank` over the then-current
    /// corpus — the complete merged order standing in for the deleted
    /// corpus-wide snapshot — and at the end the same holds for every
    /// shard × worker combination, batched and sequential. The probe pins
    /// the route: full reranks retrieve nothing, rebuild nothing, and
    /// re-merge the complete order at most once per serve point.
    #[test]
    fn shard_merged_full_rerank_equals_the_single_engine(
        ops in arb_ops(ServeShape::Full),
        initial in 0usize..40,
        seed in 0u64..1_000,
        policy_index in 0usize..4,
    ) {
        let engine = policies()[policy_index].with_seed(seed);
        let mut service = ShardedPromotionService::new(engine, 4).with_workers(4);
        seed_service(&mut service, initial, 4, 0.02);

        let mut batch_salt = 0u64;
        for &op in &ops {
            if let Some((q, None)) = apply_mutation(&mut service, op) {
                batch_salt += 1;
                let qs = queries(q, batch_salt);
                let corpus = service.store().snapshot();
                let mut full = Vec::new();
                service.rerank_batch_into(&qs, &mut full);
                for (i, got) in full.iter().enumerate() {
                    prop_assert_eq!(
                        got,
                        &engine.rerank(&corpus, qs[i]),
                        "mid-schedule full rerank of query {} ({})",
                        i,
                        engine.config().label()
                    );
                }
            }
        }

        let stats = service.serve_stats();
        prop_assert_eq!(stats.shard_retrievals, 0);
        prop_assert_eq!(stats.snapshot_rebuilds, 0);
        prop_assert!(stats.order_merges <= batch_salt);

        // Final sweep: every shard × worker combination reproduces the
        // single engine on the batch and sequential full paths alike.
        let corpus = service.store().snapshot();
        let qs = queries(5, 0xD1CE);
        let expected: Vec<Vec<u64>> =
            qs.iter().map(|&ctx| engine.rerank(&corpus, ctx)).collect();
        for shards in GRID {
            for workers in GRID {
                let fresh =
                    ShardedPromotionService::new(engine, shards).with_workers(workers);
                fresh.extend(corpus.iter().copied());
                prop_assert_eq!(
                    &fresh.rerank_batch(&qs),
                    &expected,
                    "{} shards × {} workers ({})",
                    shards,
                    workers,
                    engine.config().label()
                );
                for (i, &ctx) in qs.iter().enumerate() {
                    prop_assert_eq!(
                        &fresh.rerank_one(ctx),
                        &expected[i],
                        "sequential full rerank of query {}",
                        i
                    );
                }
            }
        }
    }
}
