//! The replica conformance suite: **a replica tailing the leader's live
//! log is bit-identical to the leader at every applied sequence**, under
//! arbitrary mutate-while-serving schedules, across shard × policy ×
//! engine-version grids.
//!
//! Each case drives a leader [`DurableService`] through a schedule while
//! a [`ReplicaService`] tails the same directory — the leader keeps its
//! log open and keeps appending the whole time. At every serve point the
//! leader hands off with `sync_for_followers()`, the replica catches up,
//! and every serving path (full rerank and top-k, batched and
//! sequential) plus the corpus bits must match. The sweep also pins:
//!
//! * **replica crash-restart** — drop the replica mid-schedule, re-open
//!   (re-bootstrap from whatever snapshot the leader has written by
//!   then, plus tail resume) and land on the same state;
//! * **time travel** — a fresh replica capped at an arbitrary historical
//!   sequence equals an in-memory service fed exactly that log prefix;
//! * **mid-write polls** — a byte-at-a-time replay of the leader's log
//!   shows the replica only ever applying complete frames, never
//!   misreading a partial one;
//! * **lag stats** — `behind_by` counts a capped backlog exactly and
//!   drains to 0 after `catch_up()` on a quiesced leader.

mod common;

use common::{
    apply_mutation_durable, arb_ops, assert_same_corpus, inserted_document, queries, ServeShape,
    TempDir, GRID,
};
use proptest::prelude::*;
use rrp_core::{Document, EngineVersion, RankPromotionEngine};
use rrp_ranking::{PromotionConfig, PromotionRule};
use rrp_serve::{
    BootstrapSource, DurableService, ReplicaService, ServeError, ShardedPromotionService,
};
use rrp_wal::{WalEvent, WalReader, WAL_HEADER_LEN};
use std::io::Write;
use std::path::Path;

/// The four serving policies of the shard-merge suites: both promotion
/// rules, with and without a protected top result.
fn policies() -> [RankPromotionEngine; 4] {
    [
        RankPromotionEngine::recommended(), // selective, r = 0.1, k = 2
        RankPromotionEngine::new(PromotionConfig::new(PromotionRule::Selective, 1, 0.5).unwrap()),
        RankPromotionEngine::new(PromotionConfig::new(PromotionRule::Uniform, 1, 0.3).unwrap()),
        RankPromotionEngine::new(PromotionConfig::new(PromotionRule::Uniform, 2, 0.1).unwrap()),
    ]
}

/// The first `count` events of a leader's log applied to a fresh
/// in-memory service — the reference state for time-travel reads.
fn state_after(
    path: &Path,
    engine: RankPromotionEngine,
    shards: usize,
    count: u64,
) -> ShardedPromotionService {
    let service = ShardedPromotionService::new(engine, shards);
    let mut reader = WalReader::open(path).expect("leader log is readable");
    for _ in 0..count {
        let (_, event) = reader
            .next_event()
            .expect("no I/O error")
            .expect("log holds the requested prefix");
        match event {
            WalEvent::Insert(doc) => {
                service.insert(doc);
            }
            WalEvent::Visit { seq } => service.try_record_visit(seq).unwrap(),
            WalEvent::SetPopularity { seq, popularity } => {
                service.try_update_popularity(seq, popularity).unwrap()
            }
        }
    }
    service
}

/// Bit-identical serving on every path, plus bit-identical corpus.
fn assert_same_serving(got: &ShardedPromotionService, want: &ShardedPromotionService, salt: u64) {
    let qs = queries(4, salt);
    assert_eq!(
        got.rerank_batch(&qs),
        want.rerank_batch(&qs),
        "full rerank (salt {salt})"
    );
    for k in [1usize, 3, 9] {
        let mut g = Vec::new();
        got.rerank_batch_top_k_into(&qs, k, &mut g);
        let mut w = Vec::new();
        want.rerank_batch_top_k_into(&qs, k, &mut w);
        assert_eq!(g, w, "top-{k} (salt {salt})");
    }
    for &ctx in &qs {
        assert_eq!(
            got.rerank_one(ctx),
            want.rerank_one(ctx),
            "sequential full rerank (salt {salt})"
        );
        assert_eq!(
            got.rerank_top_k(ctx, 3),
            want.rerank_top_k(ctx, 3),
            "sequential top-3 (salt {salt})"
        );
    }
    assert_same_corpus(&got.store().snapshot(), &want.store().snapshot());
}

proptest! {
    /// One schedule, every shard count: the leader mutates (and
    /// snapshots, at a drawn cadence) while a replica tails the live
    /// directory. At every serve point — and across one mid-schedule
    /// replica crash-restart — the caught-up replica is bit-identical to
    /// the leader; afterwards a fresh capped replica time-travels to an
    /// arbitrary historical sequence.
    #[test]
    fn a_tailing_replica_reproduces_the_leader(
        ops in arb_ops(ServeShape::TopK),
        initial in 0usize..30,
        seed in 0u64..1_000,
        policy_index in 0usize..4,
        v2 in prop::bool::ANY,
        snapshot_every in 1u64..24,
        restart_salt in 0u64..4,
        travel_salt in 0u64..10_000,
    ) {
        let version = if v2 { EngineVersion::V2 } else { EngineVersion::V1 };
        let engine = policies()[policy_index].with_seed(seed).with_version(version);
        for shards in GRID {
            let dir = TempDir::new("replica");
            let (leader, _) = DurableService::open(dir.path(), engine, shards).unwrap();
            let mut leader = leader.with_snapshot_every(snapshot_every);
            for i in 0..initial {
                leader
                    .insert(inserted_document(i as u64, (i % 7) as f64 / 5.0, i as u64))
                    .unwrap();
            }

            // The replica comes up mid-history: bootstrap from whatever
            // snapshot exists by now (possibly none) plus the log tail.
            let mut replica = ReplicaService::open(dir.path(), engine, shards).unwrap();
            replica.catch_up().unwrap();
            assert_same_serving(replica.service(), leader.service(), 0);

            let mut serves = 0u64;
            for &op in &ops {
                if apply_mutation_durable(&mut leader, op).is_some() {
                    serves += 1;
                    // Crash-restart the replica at one serve point:
                    // re-bootstrap + tail resume must land on the same
                    // state the continuous replica would hold.
                    if serves == restart_salt + 1 {
                        replica = ReplicaService::open(dir.path(), engine, shards).unwrap();
                    }
                    // The handoff: the leader syncs and returns the mark
                    // a follower can reach; the replica catches up to
                    // exactly that mark while the leader keeps the log
                    // open for further appends.
                    let mark = leader.sync_for_followers().unwrap();
                    replica.catch_up().unwrap();
                    let stats = replica.stats();
                    prop_assert_eq!(stats.last_applied_seq.map_or(0, |s| s + 1), mark);
                    prop_assert_eq!(stats.behind_by, 0, "caught up on a quiesced leader");
                    assert_same_serving(replica.service(), leader.service(), serves);
                }
            }

            // Final convergence after the whole schedule.
            let total = leader.sync_for_followers().unwrap();
            replica.catch_up().unwrap();
            prop_assert_eq!(replica.stats().behind_by, 0);
            assert_same_serving(replica.service(), leader.service(), 0xF1AA);

            // Time travel: a fresh replica capped at any sequence between
            // the current snapshot's mark and full history equals the
            // in-memory service fed exactly that prefix of the log.
            let mut traveler = ReplicaService::open(dir.path(), engine, shards).unwrap();
            let hwm = traveler.stats().last_applied_seq.map_or(0, |s| s + 1);
            prop_assert!(hwm <= total, "snapshots never outrun the log");
            let cap = hwm + travel_salt % (total - hwm + 1);
            traveler.apply_up_to(cap).unwrap();
            let stats = traveler.stats();
            prop_assert_eq!(stats.last_applied_seq.map_or(0, |s| s + 1), cap);
            prop_assert_eq!(stats.events_applied, cap - hwm);
            prop_assert_eq!(stats.behind_by, total - cap);
            let past = state_after(&dir.wal_path(), engine, shards, cap);
            assert_same_serving(traveler.service(), &past, 0xCA9);
        }
    }
}

/// Replay the leader's log into the replica's directory one byte at a
/// time, polling after every byte — every prefix is a state some
/// unluckily timed poll could observe mid-append. The replica applies
/// exactly the complete frames, never errors, never misreads a partial
/// one, and tracks a lockstep twin the whole way.
#[test]
fn a_replica_polling_mid_write_applies_only_complete_frames() {
    let engine = RankPromotionEngine::recommended().with_seed(99);
    let shards = 2;
    let src = TempDir::new("midwrite-leader");
    let (leader, _) = DurableService::open(src.path(), engine, shards).unwrap();
    let mut leader = leader.with_snapshot_every(u64::MAX);
    for i in 0..20u64 {
        leader
            .insert(Document::established(i, 0.95 - i as f64 * 0.02).with_age(i))
            .unwrap();
    }
    for i in 0..10u64 {
        leader.record_visit(i).unwrap();
    }
    for i in 0..5u64 {
        leader.update_popularity(i, 0.3 + i as f64 * 0.1).unwrap();
    }
    let total = leader.sync_for_followers().unwrap();
    drop(leader);
    let bytes = std::fs::read(src.wal_path()).unwrap();

    let dst = TempDir::new("midwrite-replica");
    std::fs::write(dst.wal_path(), &bytes[..WAL_HEADER_LEN as usize]).unwrap();
    let mut replica = ReplicaService::open(dst.path(), engine, shards).unwrap();
    assert_eq!(
        replica.stats().bootstrap_source,
        BootstrapSource::FullLog,
        "no snapshot was copied"
    );
    let twin = ShardedPromotionService::new(engine, shards);
    let mut reader = WalReader::open(&src.wal_path()).unwrap();
    let mut applied = 0u64;
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(dst.wal_path())
        .unwrap();
    for grow in WAL_HEADER_LEN as usize + 1..=bytes.len() {
        file.write_all(&bytes[grow - 1..grow]).unwrap();
        let newly = replica.catch_up().unwrap();
        for _ in 0..newly {
            let (_, event) = reader.next_event().unwrap().expect("twin runs behind");
            match event {
                WalEvent::Insert(doc) => {
                    twin.insert(doc);
                }
                WalEvent::Visit { seq } => twin.try_record_visit(seq).unwrap(),
                WalEvent::SetPopularity { seq, popularity } => {
                    twin.try_update_popularity(seq, popularity).unwrap()
                }
            }
            applied += 1;
        }
        // Between polls the replica serves a consistent historical state:
        // exactly the twin at its applied prefix.
        if newly > 0 {
            let qs = queries(2, grow as u64);
            assert_eq!(
                replica.service().rerank_batch(&qs),
                twin.rerank_batch(&qs),
                "mid-write state at byte {grow}"
            );
        }
    }
    assert_eq!(applied, total, "every frame eventually applied");
    let stats = replica.stats();
    assert_eq!(stats.events_applied, total);
    assert_eq!(stats.behind_by, 0);
    assert_eq!(stats.last_applied_seq, Some(total - 1));
    assert_same_serving(replica.service(), &twin, 0xB17E);
}

/// Lag introspection end to end: a capped replica counts its backlog in
/// `behind_by`, a later catch-up applies the held-back events without
/// re-reading them, and the drained stats hit zero.
#[test]
fn lag_stats_track_the_backlog_and_drain_on_catch_up() {
    let engine = RankPromotionEngine::recommended().with_seed(17);
    let dir = TempDir::new("replica-lag");
    let (leader, _) = DurableService::open(dir.path(), engine, 2).unwrap();
    let mut leader = leader.with_snapshot_every(u64::MAX);
    for i in 0..10u64 {
        leader
            .insert(Document::established(i, 0.9 - i as f64 * 0.04).with_age(i))
            .unwrap();
    }
    leader.sync_for_followers().unwrap();

    let mut replica = ReplicaService::open(dir.path(), engine, 2).unwrap();
    let stats = replica.stats();
    assert_eq!(stats.bootstrap_source, BootstrapSource::FullLog);
    assert_eq!(stats.events_applied, 0, "open applies nothing by itself");
    assert_eq!(stats.last_applied_seq, None);
    assert_eq!(stats.behind_by, 0, "nothing polled yet");

    // A capped apply holds the rest back — and counts it.
    assert_eq!(replica.apply_up_to(4).unwrap(), 4);
    let stats = replica.stats();
    assert_eq!(stats.events_applied, 4);
    assert_eq!(stats.last_applied_seq, Some(3));
    assert_eq!(stats.behind_by, 6);
    assert_eq!(replica.store().len(), 4);

    // The leader keeps writing while the replica sits capped.
    leader.insert(Document::unexplored(100)).unwrap();
    leader.insert(Document::unexplored(101)).unwrap();
    let mark = leader.sync_for_followers().unwrap();
    assert_eq!(mark, 12);

    // Catch-up drains the backlog and the new tail in one call.
    assert_eq!(replica.catch_up().unwrap(), 8);
    let stats = replica.stats();
    assert_eq!(stats.events_applied, 12);
    assert_eq!(stats.last_applied_seq, Some(11));
    assert_eq!(stats.behind_by, 0);
    assert_same_serving(replica.service(), leader.service(), 7);
}

/// A corrupt frame on the tail is a typed, sticky error — but the
/// verified events before it are applied and keep serving.
#[test]
fn a_corrupt_tail_surfaces_as_a_typed_error_but_reads_keep_serving() {
    let engine = RankPromotionEngine::recommended().with_seed(5);
    let dir = TempDir::new("replica-corrupt");
    let (leader, _) = DurableService::open(dir.path(), engine, 2).unwrap();
    let mut leader = leader.with_snapshot_every(u64::MAX);
    for i in 0..8u64 {
        leader
            .insert(Document::established(i, 0.8 - i as f64 * 0.03).with_age(i))
            .unwrap();
    }
    leader.sync_for_followers().unwrap();
    drop(leader);

    // Rot one payload byte inside the final frame: a complete frame that
    // can never verify, whatever arrives after it.
    let boundary = {
        let mut reader = WalReader::open(&dir.wal_path()).unwrap();
        for _ in 0..7 {
            reader.next_event().unwrap().unwrap();
        }
        reader.valid_len()
    };
    rrp_wal::fault::flip_byte(&dir.wal_path(), boundary + 20).unwrap();

    let mut replica = ReplicaService::open(dir.path(), engine, 2).unwrap();
    let err = replica.catch_up().unwrap_err();
    assert!(
        matches!(err, ServeError::Wal(rrp_wal::WalError::Corrupt { .. })),
        "got {err:?}"
    );
    // The seven verified events landed before the error surfaced…
    assert_eq!(replica.stats().events_applied, 7);
    assert_eq!(replica.store().len(), 7);
    let reference = state_after(&dir.wal_path(), engine, 2, 7);
    assert_same_serving(replica.service(), &reference, 11);
    // …and the corruption is sticky on every later poll.
    assert!(replica.catch_up().is_err());
    assert!(replica.apply_up_to(u64::MAX).is_err());
}
