//! The prefix-replay property: **replaying any prefix of the log yields
//! exactly the state produced by applying that prefix of mutations
//! live** — the time-travel invariant of an event-sourced store.
//!
//! A durable service runs an arbitrary schedule with snapshots disabled,
//! so its log is the complete mutation history. The test then picks an
//! arbitrary prefix length P, cuts a copy of the log at the P-th record
//! boundary, recovers a service from the cut copy, and pins it — corpus
//! bits and serving output — against a twin that applied the same first
//! P events live, in memory, never having heard of a log. Every
//! point-in-time restore is therefore exactly the state the service
//! passed through on the way here (and, read as a replica story: a
//! follower that has consumed P events equals the leader at event P).

mod common;

use common::{apply_mutation_durable, arb_ops, assert_same_corpus, queries, ServeShape, TempDir};
use proptest::prelude::*;
use rrp_core::{EngineVersion, RankPromotionEngine};
use rrp_serve::{DurableService, ShardedPromotionService};
use rrp_wal::{fault::truncate_at, WalEvent, WalReader};

/// Read every event of a (clean) log plus the byte boundary after each
/// record, so a prefix cut can land exactly between records.
fn scan_log(path: &std::path::Path) -> (Vec<WalEvent>, Vec<u64>) {
    let mut reader = WalReader::open(path).expect("log opens");
    let mut events = Vec::new();
    let mut boundaries = vec![reader.valid_len()];
    while let Some((_, event)) = reader.next_event().expect("log reads") {
        events.push(event);
        boundaries.push(reader.valid_len());
    }
    assert_eq!(reader.tail(), rrp_wal::TailStatus::Clean);
    (events, boundaries)
}

/// Apply one logged event to an in-memory service, the way recovery does.
fn apply_live(service: &mut ShardedPromotionService, event: &WalEvent) {
    match *event {
        WalEvent::Insert(doc) => {
            service.insert(doc);
        }
        WalEvent::Visit { seq } => service.try_record_visit(seq).expect("logged visit applies"),
        WalEvent::SetPopularity { seq, popularity } => service
            .try_update_popularity(seq, popularity)
            .expect("logged update applies"),
    }
}

proptest! {
    #[test]
    fn every_log_prefix_replays_to_the_live_state(
        ops in arb_ops(ServeShape::Full),
        seed in 0u64..1_000,
        v2 in prop::bool::ANY,
        shards in 1usize..6,
        prefix_salt in 0u64..10_000,
    ) {
        let version = if v2 { EngineVersion::V2 } else { EngineVersion::V1 };
        let engine = RankPromotionEngine::recommended()
            .with_seed(seed)
            .with_version(version);

        // Write the full history (snapshots off: one snapshot would move
        // the replay start and hide part of the prefix).
        let dir = TempDir::new("prefix-replay");
        let (durable, _) = DurableService::open(dir.path(), engine, shards).unwrap();
        let mut durable = durable.with_snapshot_every(u64::MAX);
        for &op in &ops {
            apply_mutation_durable(&mut durable, op);
        }
        drop(durable); // crash

        let (events, boundaries) = scan_log(&dir.wal_path());
        let prefix = (prefix_salt as usize) % (events.len() + 1);

        // The live twin: the first `prefix` mutations applied in memory.
        let mut live = ShardedPromotionService::new(engine, shards);
        for event in &events[..prefix] {
            apply_live(&mut live, event);
        }

        // The replayed twin: a copy of the log cut at the prefix
        // boundary, recovered from disk.
        let replay_dir = TempDir::new("prefix-replay-cut");
        std::fs::copy(dir.wal_path(), replay_dir.wal_path()).unwrap();
        truncate_at(&replay_dir.wal_path(), boundaries[prefix]).unwrap();
        let (replayed, report) =
            DurableService::open(replay_dir.path(), engine, shards).unwrap();
        prop_assert_eq!(report.events_replayed, prefix as u64);
        prop_assert_eq!(report.events_lost, 0);
        prop_assert_eq!(report.bytes_dropped, 0, "cuts at record boundaries are clean");

        assert_same_corpus(&replayed.store().snapshot(), &live.store().snapshot());
        let qs = queries(5, prefix_salt);
        prop_assert_eq!(
            replayed.rerank_batch(&qs),
            live.rerank_batch(&qs),
            "full rerank at prefix {}/{}",
            prefix,
            events.len()
        );
        let mut got = Vec::new();
        replayed.rerank_batch_top_k_into(&qs, 7, &mut got);
        let mut want = Vec::new();
        live.rerank_batch_top_k_into(&qs, 7, &mut want);
        prop_assert_eq!(got, want, "top-7 at prefix {}/{}", prefix, events.len());
    }
}
