//! Shared mutate-while-serving schedule scaffolding for the `rrp-serve`
//! property suites.
//!
//! Every suite in this directory drives a [`ShardedPromotionService`]
//! through an arbitrary interleaving of inserts, visit feedback,
//! popularity updates and serve points, then pins some invariant after
//! every serve step. The schedule generator, the document shapes and the
//! query derivation live here once so the suites can never drift apart in
//! *what* they exercise — they differ only in what they assert.

// Each test binary compiles this module independently and uses a subset
// of it.
#![allow(dead_code)]

use proptest::prelude::*;
use rrp_core::{Document, QueryContext};
use rrp_serve::{DurableService, ShardedPromotionService};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// One step of a mutate-while-serving schedule.
#[derive(Debug, Clone, Copy)]
pub enum Op {
    /// Insert a fresh document (unexplored when `popularity` rounds to 0,
    /// see [`inserted_document`]).
    Insert { id: u64, popularity: f64, age: u64 },
    /// Record a user visit to sequence `seq % len` (pool membership off).
    Visit { seq: u64 },
    /// Replace the popularity score of sequence `seq % len` (membership
    /// unchanged — the pool must not move when only popularity does).
    SetPopularity { seq: u64, popularity: f64 },
    /// Serve a batch right here, mid-schedule, so repairs interleave with
    /// serving: a full-rerank batch when `k` is `None`, a top-`k` batch
    /// otherwise.
    Serve { queries: u64, k: Option<usize> },
}

/// Which serve points a schedule contains.
#[derive(Debug, Clone, Copy)]
pub enum ServeShape {
    /// Full-rerank batches.
    Full,
    /// Top-`k` batches with `k ∈ 1..=12`.
    TopK,
}

/// Arbitrary interleavings of inserts, visits, popularity updates and
/// serve points (1–40 steps; roughly a quarter of the steps serve).
pub fn arb_ops(shape: ServeShape) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((0usize..4, 0u64..10_000, 0.0f64..1.5, 0u64..300), 1..40).prop_map(
        move |raw| {
            raw.into_iter()
                .map(|(kind, a, popularity, age)| match kind {
                    0 => Op::Insert {
                        id: a,
                        popularity,
                        age,
                    },
                    1 => Op::Visit { seq: a },
                    2 => Op::SetPopularity { seq: a, popularity },
                    _ => Op::Serve {
                        queries: 1 + a % 5,
                        k: match shape {
                            ServeShape::Full => None,
                            ServeShape::TopK => Some(1 + (age as usize % 12)),
                        },
                    },
                })
                .collect()
        },
    )
}

/// The document an `Insert` op produces: unexplored when the drawn
/// popularity rounds to zero, established otherwise.
pub fn inserted_document(id: u64, popularity: f64, age: u64) -> Document {
    if popularity < 0.05 {
        Document::unexplored(id)
    } else {
        Document::established(id, popularity).with_age(age)
    }
}

/// Seed a service with `initial` documents, every `unexplored_every`-th
/// one unexplored, the rest established with linearly decreasing
/// popularity (`1 − i · popularity_step`) and age `i`.
pub fn seed_service(
    service: &mut ShardedPromotionService,
    initial: usize,
    unexplored_every: usize,
    popularity_step: f64,
) {
    for i in 0..initial {
        let doc = if i % unexplored_every == 0 {
            Document::unexplored(i as u64)
        } else {
            Document::established(i as u64, 1.0 - i as f64 * popularity_step).with_age(i as u64)
        };
        service.insert(doc);
    }
}

/// A batch of query contexts derived from a per-serve-point salt, shared
/// by every suite so "the same schedule" means the same queries.
pub fn queries(n: u64, salt: u64) -> Vec<QueryContext> {
    (0..n)
        .map(|q| QueryContext::new(q * 7 + salt, q ^ (salt << 3)))
        .collect()
}

/// Apply one mutation op to the service (sequence-targeting ops are
/// remapped modulo the live corpus and skipped while it is empty).
/// `Serve` ops are *not* executed — their `(queries, k)` is handed back so
/// each suite can serve and assert its own invariant.
pub fn apply_mutation(
    service: &mut ShardedPromotionService,
    op: Op,
) -> Option<(u64, Option<usize>)> {
    match op {
        Op::Insert {
            id,
            popularity,
            age,
        } => {
            service.insert(inserted_document(id, popularity, age));
        }
        Op::Visit { seq } => {
            let len = service.store().len() as u64;
            if len > 0 {
                assert!(service.record_visit(seq % len));
            }
        }
        Op::SetPopularity { seq, popularity } => {
            let len = service.store().len() as u64;
            if len > 0 {
                assert!(service.update_popularity(seq % len, popularity));
            }
        }
        Op::Serve { queries, k } => return Some((queries, k)),
    }
    None
}

/// Apply one mutation op to a [`DurableService`], mirroring
/// [`apply_mutation`] exactly (same remapping, same skip-while-empty), so
/// a durable service and a plain twin fed the same schedule hold the same
/// corpus. Serve ops are handed back untouched.
pub fn apply_mutation_durable(
    service: &mut DurableService,
    op: Op,
) -> Option<(u64, Option<usize>)> {
    match op {
        Op::Insert {
            id,
            popularity,
            age,
        } => {
            service
                .insert(inserted_document(id, popularity, age))
                .expect("durable insert");
        }
        Op::Visit { seq } => {
            let len = service.store().len() as u64;
            if len > 0 {
                service.record_visit(seq % len).expect("durable visit");
            }
        }
        Op::SetPopularity { seq, popularity } => {
            let len = service.store().len() as u64;
            if len > 0 {
                service
                    .update_popularity(seq % len, popularity)
                    .expect("durable popularity update");
            }
        }
        Op::Serve { queries, k } => return Some((queries, k)),
    }
    None
}

/// A scratch directory under the system temp dir, removed on drop — the
/// recovery suites get one per (case, shard count) so crashed and
/// recovered services never share a log by accident.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// A fresh, empty, uniquely named directory.
    pub fn new(tag: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "rrp-serve-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::remove_dir_all(&path).ok();
        std::fs::create_dir_all(&path).expect("create scratch dir");
        TempDir { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The WAL file a [`DurableService`] keeps inside this directory.
    pub fn wal_path(&self) -> PathBuf {
        self.path.join("wal.log")
    }

    /// The snapshot file a [`DurableService`] keeps inside this directory.
    pub fn snapshot_path(&self) -> PathBuf {
        self.path.join("snapshot.bin")
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.path).ok();
    }
}

/// Bit-exact corpus equality: ids, popularity *bits*, flags and ages all
/// equal — the bar recovered state is held to (plain `==` on `f64` would
/// let `0.1000000000000001` impersonate `0.1`).
pub fn assert_same_corpus(got: &[Document], expected: &[Document]) {
    assert_eq!(got.len(), expected.len(), "corpus sizes differ");
    for (i, (g, e)) in got.iter().zip(expected).enumerate() {
        assert_eq!(g.id, e.id, "seq {i}: id");
        assert_eq!(
            g.popularity.to_bits(),
            e.popularity.to_bits(),
            "seq {i}: popularity bits ({} vs {})",
            g.popularity,
            e.popularity
        );
        assert_eq!(g.is_unexplored, e.is_unexplored, "seq {i}: unexplored");
        assert_eq!(g.age_days, e.age_days, "seq {i}: age");
    }
}

/// The shard and worker counts every final sweep pins: singleton,
/// power-of-two, and "more than the corpus has any use for".
pub const GRID: [usize; 3] = [1, 2, 8];
