//! Real-thread mutate-while-serving stress: reader threads hammer the
//! epoch-versioned rerank paths through `&ShardedPromotionService` while
//! a writer thread applies a deterministic mutation schedule, and every
//! versioned answer is checked **bit-identical** against a sequential
//! twin stepped through the same schedule.
//!
//! The bridge between the racing world and the sequential one is the
//! epoch: every mutation bumps it by exactly one, so the twin's state
//! after `m` mutations is the state any reader observing epoch
//! `base + m` must have been served from. Validation-at-merge guarantees
//! a versioned read's answer belongs to the epoch it returns — if a
//! writer raced past underneath, the path retried (sequential reads) or
//! kept the version it pinned (batch reads), never blending two states.
//!
//! Also pinned here:
//! * read-only traffic never records an epoch conflict, and
//! * publication happens at most once per mutation epoch
//!   (`version_publications ≤ mutations + 1`).

use proptest::prelude::*;
use rrp_core::{Document, EngineVersion, QueryContext, RankPromotionEngine};
use rrp_ranking::{PromotionConfig, PromotionRule};
use rrp_serve::ShardedPromotionService;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;

/// Reader threads racing the writer in each stress run.
const READERS: usize = 3;
/// The top-k cut the top-k read path is checked at.
const K: usize = 5;

/// A corpus mixing unexplored and established documents so both the
/// promotion pool and the popularity order are exercised.
fn corpus(n: u64) -> Vec<Document> {
    (0..n)
        .map(|i| {
            if i % 5 == 0 {
                Document::unexplored(i)
            } else {
                Document::established(i, 0.95 - i as f64 * 0.013).with_age(i % 9)
            }
        })
        .collect()
}

/// The fixed query set every thread serves from.
fn queries() -> Vec<QueryContext> {
    (0..4u64)
        .map(|q| QueryContext::new(q * 13 + 1, q * 31 + 7))
        .collect()
}

/// Mutation step `m` of the deterministic schedule: one visit or one
/// popularity update, bumping the epoch by exactly one.
fn apply_mutation(service: &ShardedPromotionService, m: u64, n: u64) {
    let seq = (m * 97 + 3) % n;
    if m.is_multiple_of(2) {
        assert!(service.record_visit(seq), "seq {seq} exists");
    } else {
        let score = 0.05 + ((seq * 31 + m) % 100) as f64 / 100.0;
        assert!(service.update_popularity(seq, score), "seq {seq} exists");
    }
}

/// Per-epoch expected answers, computed on a sequential twin stepped
/// through the same mutation schedule: `full[&epoch][q]` is the full
/// rerank of query `q` at that epoch, `top[&epoch][q]` its top-K.
struct Expected {
    full: HashMap<u64, Vec<Vec<u64>>>,
    top: HashMap<u64, Vec<Vec<u64>>>,
}

fn expected_answers(
    engine: RankPromotionEngine,
    shards: usize,
    docs: &[Document],
    mutations: u64,
) -> Expected {
    let twin = ShardedPromotionService::new(engine, shards);
    twin.extend(docs.iter().copied());
    let qs = queries();
    let mut full = HashMap::new();
    let mut top = HashMap::new();
    for m in 0..=mutations {
        if m > 0 {
            apply_mutation(&twin, m - 1, docs.len() as u64);
        }
        let epoch = twin.epoch();
        full.insert(
            epoch,
            qs.iter().map(|&q| twin.rerank_one(q)).collect::<Vec<_>>(),
        );
        top.insert(
            epoch,
            qs.iter()
                .map(|&q| twin.rerank_top_k(q, K))
                .collect::<Vec<_>>(),
        );
    }
    Expected { full, top }
}

/// Raises the stop flag when dropped, so readers cannot spin forever
/// even if the writer thread panics mid-schedule.
struct StopOnDrop<'a>(&'a AtomicBool);

impl Drop for StopOnDrop<'_> {
    fn drop(&mut self) {
        self.0.store(true, Ordering::Release);
    }
}

/// One full stress run: precompute the twin's per-epoch answers, race
/// `READERS` reader threads against a writer applying the schedule, then
/// verify the probe invariants and a conflict-free read-only round.
fn stress(engine: RankPromotionEngine, shards: usize, workers: usize, n: u64, mutations: u64) {
    let docs = corpus(n);
    let expected = expected_answers(engine, shards, &docs, mutations);
    let service = ShardedPromotionService::new(engine, shards).with_workers(workers);
    service.extend(docs.iter().copied());
    let qs = queries();
    let base = service.epoch();
    let done = AtomicBool::new(false);

    thread::scope(|scope| {
        for r in 0..READERS {
            let (service, qs, done, expected) = (&service, &qs, &done, &expected);
            scope.spawn(move || {
                let mut i = r;
                loop {
                    // Load the flag *before* serving so every reader gets
                    // at least one read after the final mutation landed.
                    let stop = done.load(Ordering::Acquire);
                    let slot = i % qs.len();
                    match i % 3 {
                        0 => {
                            let (epoch, got) = service.rerank_one_versioned(qs[slot]);
                            assert_eq!(got, expected.full[&epoch][slot], "epoch {epoch}");
                        }
                        1 => {
                            let (epoch, got) = service.rerank_top_k_versioned(qs[slot], K);
                            assert_eq!(got, expected.top[&epoch][slot], "epoch {epoch}");
                        }
                        _ => {
                            let (epoch, got) = service.rerank_batch_versioned(qs);
                            assert_eq!(got, expected.full[&epoch], "epoch {epoch}");
                        }
                    }
                    i += 1;
                    if stop {
                        break;
                    }
                }
            });
        }
        scope.spawn(|| {
            let _stop = StopOnDrop(&done);
            for m in 0..mutations {
                apply_mutation(&service, m, docs.len() as u64);
                thread::yield_now();
            }
        });
    });

    assert_eq!(
        service.epoch(),
        base + mutations,
        "every mutation bumped the epoch exactly once"
    );
    let raced = service.serve_stats();
    assert!(
        raced.version_publications <= mutations + 1,
        "at most one publication per mutation epoch: {} published for {} epochs",
        raced.version_publications,
        mutations + 1
    );

    // Read-only round: with no writer racing, validation never fails and
    // at most one (catch-up) publication happens across all readers.
    thread::scope(|scope| {
        for _ in 0..READERS {
            scope.spawn(|| {
                for (slot, &q) in qs.iter().enumerate() {
                    let (epoch, got) = service.rerank_one_versioned(q);
                    assert_eq!(epoch, base + mutations, "reads serve the live epoch");
                    assert_eq!(got, expected.full[&epoch][slot]);
                    let (epoch, got) = service.rerank_top_k_versioned(q, K);
                    assert_eq!(epoch, base + mutations);
                    assert_eq!(got, expected.top[&epoch][slot]);
                }
            });
        }
    });
    let settled = service.serve_stats();
    assert_eq!(
        settled.epoch_conflicts, raced.epoch_conflicts,
        "read-only traffic records no epoch conflicts"
    );
    assert!(
        settled.version_publications <= raced.version_publications + 1,
        "an already-current version is never republished"
    );
}

fn selective(seed: u64) -> RankPromotionEngine {
    RankPromotionEngine::recommended().with_seed(seed)
}

fn uniform(seed: u64) -> RankPromotionEngine {
    RankPromotionEngine::new(PromotionConfig::new(PromotionRule::Uniform, 2, 0.25).unwrap())
        .with_seed(seed)
}

/// The four serving policies of the conformance suites: both promotion
/// rules, with and without a protected top slot.
fn policies() -> [RankPromotionEngine; 4] {
    [
        RankPromotionEngine::recommended(),
        RankPromotionEngine::new(PromotionConfig::new(PromotionRule::Selective, 1, 0.5).unwrap()),
        RankPromotionEngine::new(PromotionConfig::new(PromotionRule::Uniform, 1, 0.3).unwrap()),
        RankPromotionEngine::new(PromotionConfig::new(PromotionRule::Uniform, 2, 0.1).unwrap()),
    ]
}

#[test]
fn the_recommended_policy_survives_a_deep_shard_by_worker_grid() {
    for shards in [1usize, 2, 8] {
        for workers in [1usize, 2, 8] {
            stress(selective(42), shards, workers, 48, 24);
        }
    }
}

#[test]
fn every_policy_and_version_survives_the_shard_by_worker_grid() {
    for engine in policies() {
        for version in [EngineVersion::V1, EngineVersion::V2] {
            for shards in [1usize, 2, 8] {
                for workers in [1usize, 2, 8] {
                    stress(
                        engine.with_seed(42).with_version(version),
                        shards,
                        workers,
                        32,
                        12,
                    );
                }
            }
        }
    }
}

proptest! {
    /// The randomized variant: arbitrary corpus sizes, schedules, shard
    /// and worker counts, seeds and policies — every racing read still
    /// lands bit-identical on its epoch's sequential twin. Scaled up in
    /// CI via `PROPTEST_CASES`.
    #[test]
    fn racing_reads_are_bit_identical_to_the_sequential_twin(
        n in 8u64..64,
        mutations in 1u64..24,
        shards in 1usize..6,
        workers in 1usize..4,
        seed in 0u64..1_000,
        pick_uniform in prop::bool::ANY,
        v2 in prop::bool::ANY,
    ) {
        let mut engine = if pick_uniform { uniform(seed) } else { selective(seed) };
        if v2 {
            engine = engine.with_version(EngineVersion::V2);
        }
        stress(engine, shards, workers, n, mutations);
    }
}
