//! The v2 twin of the shard-merge conformance suite: **shard-local v2
//! serving ≡ single-engine v2 output**, under arbitrary
//! mutate-while-serving schedules, across shard × worker grids and all
//! four serving policies.
//!
//! Engine v2 replaces the eager copy-and-shuffle of the promotion pool
//! with the lazy Fisher–Yates overlay ([`rrp_ranking::LazyShuffle`]), so
//! a v2 top-k answer is **not** the prefix of the v2 full rerank — the
//! reference here is [`RankPromotionEngine::rerank_top_k`] on the
//! canonical corpus, the single-engine pooled route that the service's
//! shard-retrieval route must reproduce bit for bit. The two routes share
//! the draw *sequence* but none of the code that assembles their inputs:
//! a shard cache that listed a pool member out of order or merged one
//! candidate too few would silently rearrange the served ranking, and a
//! lazy overlay that drew one swap too many would shift the entire RNG
//! stream. If any schedule, shard count, worker count, or policy can tell
//! the sharded v2 read path from the single v2 engine, this suite fails.
//!
//! The probe rides along: v2 selective traffic draws **at most `k` swaps
//! per query** ([`rrp_serve::ServeStats::pool_draws`]) — the O(k)-draw
//! contract that motivates v2 — while still performing zero
//! complete-order merges and zero corpus scans.

mod common;

use common::{apply_mutation, arb_ops, queries, seed_service, ServeShape, GRID};
use proptest::prelude::*;
use rrp_core::{EngineVersion, QueryContext, RankPromotionEngine};
use rrp_ranking::{PromotionConfig, PromotionRule};
use rrp_serve::ShardedPromotionService;

/// The four serving policies, all running engine v2. The Selective rules
/// exercise the lazy overlay; the Uniform rules pin that v2 leaves their
/// coin-scan stream untouched (bit-identical to v1, zero draws booked).
fn policies_v2() -> [RankPromotionEngine; 4] {
    [
        RankPromotionEngine::recommended(),
        RankPromotionEngine::new(PromotionConfig::new(PromotionRule::Selective, 1, 0.5).unwrap()),
        RankPromotionEngine::new(PromotionConfig::new(PromotionRule::Uniform, 1, 0.3).unwrap()),
        RankPromotionEngine::new(PromotionConfig::new(PromotionRule::Uniform, 2, 0.1).unwrap()),
    ]
    .map(|engine| engine.with_version(EngineVersion::V2))
}

/// The single-engine v2 reference: `engine.rerank_top_k` on the canonical
/// corpus — the pooled lazy route, deliberately *not* a truncated full
/// rerank (v2 spends its pool randomness lazily, so the prefix property
/// holds only within the top-k family).
fn reference_top_k(
    engine: &RankPromotionEngine,
    corpus: &[rrp_core::Document],
    ctx: QueryContext,
    k: usize,
) -> Vec<u64> {
    engine.rerank_top_k(corpus, ctx, k)
}

proptest! {
    /// Drive one v2 service per policy through an arbitrary schedule;
    /// after every serve step each top-k answer must equal the
    /// single-engine v2 top-k over the then-current corpus, and at the
    /// end the same holds for every shard × worker combination — plus the
    /// probes: selective v2 traffic performs zero complete-order merges,
    /// exactly shards × queries retrievals, and at most `k` lazy swap
    /// draws per query; Uniform v2 traffic books zero draws.
    #[test]
    fn shard_merged_v2_top_k_equals_the_single_v2_engine(
        ops in arb_ops(ServeShape::TopK),
        initial in 0usize..40,
        seed in 0u64..1_000,
        policy_index in 0usize..4,
    ) {
        let engine = policies_v2()[policy_index].with_seed(seed);
        prop_assert_eq!(engine.version(), EngineVersion::V2);
        let selective = engine.reads_pool_index();
        let mut service = ShardedPromotionService::new(engine, 4).with_workers(4);
        seed_service(&mut service, initial, 4, 0.02);

        let mut batch_salt = 0u64;
        let mut topk_queries = 0u64;
        let mut draw_budget = 0u64;
        for &op in &ops {
            if let Some((q, Some(k))) = apply_mutation(&mut service, op) {
                batch_salt += 1;
                let qs = queries(q, batch_salt);
                let corpus = service.store().snapshot();
                if !corpus.is_empty() {
                    topk_queries += q;
                    draw_budget += q * k as u64;
                }
                let mut top = Vec::new();
                service.rerank_batch_top_k_into(&qs, k, &mut top);
                for (i, got) in top.iter().enumerate() {
                    prop_assert_eq!(
                        got,
                        &reference_top_k(&engine, &corpus, qs[i], k),
                        "mid-schedule v2 top-{} of query {} ({})",
                        k,
                        i,
                        engine.config().label()
                    );
                }
            }
        }

        // The routing and draw probes: the lazy route keeps the v1
        // retrieval guarantees (no complete-order merge, one retrieval
        // per shard per query, no rebuild) and adds the O(k)-draw cap.
        // Uniform engines take the merged-order route unchanged and never
        // touch the overlay.
        let stats = service.serve_stats();
        prop_assert_eq!(stats.snapshot_rebuilds, 0);
        if selective {
            prop_assert_eq!(stats.order_merges, 0);
            prop_assert_eq!(stats.shard_retrievals, 4 * topk_queries);
            prop_assert!(
                stats.pool_draws <= draw_budget,
                "{} swap draws exceed the k-per-query budget {}",
                stats.pool_draws,
                draw_budget
            );
        } else {
            prop_assert_eq!(stats.shard_retrievals, 0);
            prop_assert!(stats.order_merges <= batch_salt);
            prop_assert_eq!(stats.pool_draws, 0);
        }

        // Final sweep: every shard × worker combination serves the same
        // corpus with the same v2 answers, batched and sequential alike,
        // each fresh service under the same per-query draw cap.
        let corpus = service.store().snapshot();
        let qs = queries(5, 0xD1CE);
        let expected: Vec<Vec<Vec<u64>>> = [1usize, 4, 11]
            .iter()
            .map(|&k| qs.iter().map(|&ctx| reference_top_k(&engine, &corpus, ctx, k)).collect())
            .collect();
        for shards in GRID {
            for workers in GRID {
                let fresh =
                    ShardedPromotionService::new(engine, shards).with_workers(workers);
                fresh.extend(corpus.iter().copied());
                let mut served = 0u64;
                for (ki, &k) in [1usize, 4, 11].iter().enumerate() {
                    let mut top = Vec::new();
                    fresh.rerank_batch_top_k_into(&qs, k, &mut top);
                    prop_assert_eq!(
                        &top,
                        &expected[ki],
                        "{} shards × {} workers, v2 top-{} ({})",
                        shards,
                        workers,
                        k,
                        engine.config().label()
                    );
                    for (i, &ctx) in qs.iter().enumerate() {
                        prop_assert_eq!(
                            &fresh.rerank_top_k(ctx, k),
                            &expected[ki][i],
                            "sequential v2 top-{} of query {}",
                            k,
                            i
                        );
                    }
                    if !corpus.is_empty() {
                        served += 2 * qs.len() as u64 * k as u64;
                    }
                }
                prop_assert!(
                    fresh.serve_stats().pool_draws <= served,
                    "fresh sweep drew {} swaps against a budget of {}",
                    fresh.serve_stats().pool_draws,
                    served
                );
            }
        }

        // One spot check per run on the untouched route: a v2 full rerank
        // is still bit-identical to the single v2 engine (which is itself
        // bit-identical to v1 — the lazy overlay only serves top-k).
        if !corpus.is_empty() {
            prop_assert_eq!(
                service.rerank_one(qs[0]),
                engine.rerank(&corpus, qs[0]),
                "v2 full rerank diverged from the single engine"
            );
        }
    }
}
