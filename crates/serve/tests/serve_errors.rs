//! Regression tests for the typed-error contract of the serving tier:
//! bad external input — unknown sequence handles, a zero shard count, a
//! shard index past the partition, a reopen under the wrong deployment
//! configuration — surfaces a [`ServeError`] and leaves state untouched,
//! instead of panicking or silently clamping.

mod common;

use common::{queries, seed_service, TempDir};
use rrp_core::{Document, RankPromotionEngine};
use rrp_serve::{DurableService, ServeError, ShardedPromotionService, ShardedStore};

fn engine() -> RankPromotionEngine {
    RankPromotionEngine::recommended().with_seed(99)
}

#[test]
fn unknown_sequences_are_typed_errors_and_touch_nothing() {
    let mut service = ShardedPromotionService::new(engine(), 2);
    seed_service(&mut service, 10, 3, 0.05);
    let mut twin = ShardedPromotionService::new(engine(), 2);
    seed_service(&mut twin, 10, 3, 0.05);

    // Both mutation kinds reject a handle the store never issued, with
    // the real bounds in the error.
    match service.try_record_visit(10) {
        Err(ServeError::UnknownSequence { seq, len }) => {
            assert_eq!(seq, 10);
            assert_eq!(len, 10);
        }
        other => panic!("expected UnknownSequence, got {other:?}"),
    }
    match service.try_update_popularity(u64::MAX, 0.5) {
        Err(ServeError::UnknownSequence { seq, len }) => {
            assert_eq!(seq, u64::MAX);
            assert_eq!(len, 10);
        }
        other => panic!("expected UnknownSequence, got {other:?}"),
    }

    // The rejected mutations left no trace: the corpus and every serving
    // answer still match a twin that never saw them.
    common::assert_same_corpus(&service.store().snapshot(), &twin.store().snapshot());
    let qs = queries(4, 77);
    assert_eq!(service.rerank_batch(&qs), twin.rerank_batch(&qs));

    // And the valid twins of the same calls still work.
    service.try_record_visit(9).unwrap();
    service.try_update_popularity(0, 0.5).unwrap();
}

#[test]
fn a_zero_shard_count_is_rejected_by_try_new_and_clamped_by_new() {
    match ShardedPromotionService::try_new(engine(), 0) {
        Err(ServeError::InvalidShardCount { requested: 0 }) => {}
        other => panic!("expected InvalidShardCount, got {other:?}"),
    }
    // The infallible constructor keeps its documented clamping contract.
    let service = ShardedPromotionService::new(engine(), 0);
    assert_eq!(service.store().shard_count(), 1);
    // And valid counts pass through try_new unclamped.
    let service = ShardedPromotionService::try_new(engine(), 8).unwrap();
    assert_eq!(service.store().shard_count(), 8);
}

#[test]
fn shard_len_rejects_out_of_range_shards() {
    let mut store = ShardedStore::new(3);
    store.extend((0..7).map(Document::unexplored));
    let total: usize = (0..3).map(|s| store.shard_len(s).unwrap()).sum();
    assert_eq!(total, 7);
    match store.shard_len(3) {
        Err(ServeError::ShardOutOfRange {
            shard: 3,
            shards: 3,
        }) => {}
        other => panic!("expected ShardOutOfRange, got {other:?}"),
    }
    match store.shard_len(usize::MAX) {
        Err(ServeError::ShardOutOfRange { .. }) => {}
        other => panic!("expected ShardOutOfRange, got {other:?}"),
    }
}

#[test]
fn a_durable_service_cannot_open_with_zero_shards() {
    let dir = TempDir::new("zero-shards");
    match DurableService::open(dir.path(), engine(), 0) {
        Err(ServeError::InvalidShardCount { requested: 0 }) => {}
        other => {
            let other = other.map(|_| "a service");
            panic!("expected InvalidShardCount, got {other:?}");
        }
    }
}

#[test]
fn durable_rejections_never_reach_the_log() {
    let dir = TempDir::new("rejected-mutations");
    let (mut durable, _) = DurableService::open(dir.path(), engine(), 2).unwrap();
    for i in 0..5u64 {
        durable.insert(Document::unexplored(i)).unwrap();
    }
    let appends = durable.serve_stats().wal_appends;

    assert!(matches!(
        durable.record_visit(5),
        Err(ServeError::UnknownSequence { seq: 5, len: 5 })
    ));
    assert!(matches!(
        durable.update_popularity(17, 0.4),
        Err(ServeError::UnknownSequence { seq: 17, len: 5 })
    ));
    assert_eq!(
        durable.serve_stats().wal_appends,
        appends,
        "rejected mutations must not be logged"
    );
    drop(durable);

    // …so recovery replays exactly the accepted history.
    let (_, report) = DurableService::open(dir.path(), engine(), 2).unwrap();
    assert_eq!(report.events_replayed, appends);
    assert_eq!(report.events_lost, 0);
}

#[test]
fn reopening_under_a_different_configuration_is_a_recovery_error() {
    let dir = TempDir::new("config-mismatch");
    let (mut durable, _) = DurableService::open(dir.path(), engine(), 2).unwrap();
    for i in 0..6u64 {
        durable
            .insert(Document::established(i, 0.5).with_age(i))
            .unwrap();
    }
    durable.snapshot_now().unwrap();
    drop(durable);

    // A different engine (seed ⇒ different RNG streams) must not replay
    // into silently different rankings.
    let reseeded = RankPromotionEngine::recommended().with_seed(100);
    match DurableService::open(dir.path(), reseeded, 2) {
        Err(ServeError::Recovery { detail }) => {
            assert!(detail.contains("engine"), "unhelpful detail: {detail}");
        }
        other => {
            let other = other.map(|_| "a service");
            panic!("expected Recovery, got {other:?}");
        }
    }

    // A different shard count is a different partition of the same data.
    match DurableService::open(dir.path(), engine(), 4) {
        Err(ServeError::Recovery { detail }) => {
            assert!(detail.contains("shard"), "unhelpful detail: {detail}");
        }
        other => {
            let other = other.map(|_| "a service");
            panic!("expected Recovery, got {other:?}");
        }
    }

    // The matching configuration still opens fine after the refusals.
    let (_, report) = DurableService::open(dir.path(), engine(), 2).unwrap();
    assert!(report.snapshot_loaded);
}
