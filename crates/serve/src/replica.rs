//! Read replicas off the write-ahead log: one leader writes, any number
//! of [`ReplicaService`]s tail its log file and serve reads.
//!
//! ## Leader / replica state machine
//!
//! ```text
//!   leader (DurableService)                replica (ReplicaService)
//!   ───────────────────────                ────────────────────────
//!   mutation:                              open:
//!     validate → append to WAL               1. bootstrap from the latest
//!     → apply in memory                         *verified* snapshot (or
//!     → maybe snapshot                          empty + full-log replay)
//!                                            2. open the live log tail
//!   sync_for_followers():                  catch_up() / apply_up_to(cap):
//!     fsync the log, return the              poll the tail: complete
//!     follower-reachable mark ──────────▶    frames apply (or wait in a
//!                                            backlog past the cap),
//!                                            incomplete frames are
//!                                            Pending — poll again later
//!                                          reads (&self):
//!                                            served off the published
//!                                            version at the replica's
//!                                            pinned epoch, exactly like
//!                                            the leader's own reads
//! ```
//!
//! The replica invariant is the prefix-replay property made live: a
//! replica that has applied the leader's first `P` events is
//! **bit-identical** to the leader as it was after its first `P` events —
//! every rerank answer, every popularity bit. `apply_up_to(P)` therefore
//! doubles as a time-travel query: cap the replay and ask the past.
//!
//! A replica never writes: it opens the log read-only, never truncates,
//! and never snapshots. Corruption on the tail is therefore *terminal*
//! for a replica (a complete frame that fails verification can never be
//! repaired by more bytes, and repair is the leader's job on its next
//! recovery) — [`catch_up`](ReplicaService::catch_up) surfaces it as a
//! typed error while already-applied state keeps serving. Likewise, a
//! leader that *resets* its log file (unreadable header, log behind
//! snapshot) replaces the file the replica is holding open; a replica
//! stranded at [`Pending`](rrp_wal::WalPoll::Pending) across such a
//! reset must be re-opened.

use crate::durable::{apply_event, bootstrap_snapshot, ReplayCursor, SNAPSHOT_FILE, WAL_FILE};
use crate::error::ServeError;
use crate::service::{ServeStats, ShardedPromotionService, StoreGuard};
use rrp_core::{QueryContext, RankPromotionEngine};
use rrp_wal::{WalEvent, WalPoll, WalTailReader};
use std::collections::VecDeque;
use std::path::Path;

/// Where a replica's starting state came from, for lag introspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BootstrapSource {
    /// No snapshot existed: started empty, the whole log replays.
    FullLog,
    /// A verified snapshot seeded the state; only the tail replays.
    Snapshot,
    /// A snapshot existed but failed verification and was bypassed —
    /// started empty, the whole log replays (the leader's log is never
    /// truncated by snapshots, so full history is available).
    SnapshotFallback,
}

/// A point-in-time view of a replica's replication lag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Events this replica process applied from the live tail (events
    /// already covered by the bootstrap snapshot are not counted).
    pub events_applied: u64,
    /// The sequence of the last event reflected in serving state —
    /// whether applied live or covered by the bootstrap snapshot. `None`
    /// until any history exists at all.
    pub last_applied_seq: Option<u64>,
    /// Events read off the log but held back by an
    /// [`apply_up_to`](ReplicaService::apply_up_to) cap, as of the last
    /// poll. An uncapped [`catch_up`](ReplicaService::catch_up) drains
    /// this to 0 on a quiesced leader.
    pub behind_by: u64,
    /// Where the starting state came from.
    pub bootstrap_source: BootstrapSource,
}

/// A live read replica: bootstraps from the leader's latest verified
/// snapshot, then tails the leader's write-ahead log file, applying
/// events incrementally between serves. All query paths take `&self`
/// and serve off the epoch-versioned published state, exactly like the
/// leader's own reads — a replica mid-`catch_up` never serves a torn
/// view.
///
/// Lifecycle: [`open`](Self::open) (bootstrap only — applies nothing
/// from the log), then [`catch_up`](Self::catch_up) or
/// [`apply_up_to`](Self::apply_up_to) whenever freshness is wanted, with
/// [`stats`](Self::stats) exposing the lag in between.
pub struct ReplicaService {
    inner: ShardedPromotionService,
    tail: WalTailReader,
    cursor: ReplayCursor,
    /// The sequence the next applied event must carry: the bootstrap
    /// high-water mark, advanced by every applied event.
    next_to_apply: u64,
    events_applied: u64,
    /// Events read off the log but not yet applied (held back by a cap).
    buffered: VecDeque<(u64, WalEvent)>,
    bootstrap_source: BootstrapSource,
}

impl ReplicaService {
    /// Open a replica over a leader's durable directory: verify and load
    /// the snapshot (or start empty for full-log replay) and open the
    /// log for live tailing. Nothing is applied from the log yet — call
    /// [`catch_up`](Self::catch_up) (or a capped
    /// [`apply_up_to`](Self::apply_up_to)) to consume it.
    ///
    /// The `engine` and `shard_count` must match the leader's, exactly
    /// as for [`DurableService::open`](crate::DurableService::open). The
    /// log file must already exist (any `DurableService::open` creates
    /// it) — a replica never creates leader state.
    pub fn open(
        dir: &Path,
        engine: RankPromotionEngine,
        shard_count: usize,
    ) -> Result<Self, ServeError> {
        let boot = bootstrap_snapshot(&dir.join(SNAPSHOT_FILE), engine, shard_count)?;
        let tail = WalTailReader::open(&dir.join(WAL_FILE)).map_err(ServeError::from)?;
        let bootstrap_source = if boot.snapshot_loaded {
            BootstrapSource::Snapshot
        } else if boot.snapshot_fallback {
            BootstrapSource::SnapshotFallback
        } else {
            BootstrapSource::FullLog
        };
        Ok(ReplicaService {
            inner: boot.service,
            tail,
            cursor: ReplayCursor::new(boot.hwm),
            next_to_apply: boot.hwm,
            events_applied: 0,
            buffered: VecDeque::new(),
            bootstrap_source,
        })
    }

    /// Apply every event currently visible in the leader's log. Returns
    /// how many were newly applied. After the leader has quiesced (or
    /// called [`sync_for_followers`](crate::DurableService::sync_for_followers)
    /// and returned mark `m`), the replica's state is bit-identical to
    /// the leader's at mark `m` and [`ReplicaStats::behind_by`] is 0.
    pub fn catch_up(&mut self) -> Result<u64, ServeError> {
        self.apply_up_to(u64::MAX)
    }

    /// Apply visible events with sequence **below** `seq_cap` — after
    /// `apply_up_to(p)` (given the log reaches that far) the replica
    /// reproduces the leader as it was after its first `p` events, which
    /// makes the cap a time-travel query. Events past the cap are read
    /// and held in order (visible as [`ReplicaStats::behind_by`]); a
    /// later call with a higher cap applies them without re-reading the
    /// file. The cap only moves forward in effect: events already
    /// applied are never rolled back.
    ///
    /// Returns how many events were newly applied. Errors are typed: a
    /// corrupt tail frame surfaces as [`ServeError::Wal`] on this call
    /// and every call after it (see the module docs), a log that starts
    /// past the snapshot's high-water mark as [`ServeError::Recovery`].
    /// The verified events *before* a corrupt frame are still applied
    /// before the error returns, so the replica serves everything that
    /// survives — check [`ReplicaStats::events_applied`] for how far it
    /// got.
    pub fn apply_up_to(&mut self, seq_cap: u64) -> Result<u64, ServeError> {
        // Drain everything the file currently shows into the backlog…
        let mut tail_error = None;
        loop {
            match self.tail.poll_next_event() {
                Ok(WalPoll::Pending) => break,
                Ok(WalPoll::Event { seq, event }) => {
                    if self.cursor.admit(seq)? {
                        self.buffered.push_back((seq, event));
                    }
                }
                // Hold the error until the verified prefix is applied.
                Err(e) => {
                    tail_error = Some(e);
                    break;
                }
            }
        }
        // …then apply the prefix under the cap, in sequence order.
        let mut newly = 0u64;
        while self.buffered.front().is_some_and(|&(seq, _)| seq < seq_cap) {
            let (seq, event) = self.buffered.pop_front().expect("front was Some");
            debug_assert_eq!(seq, self.next_to_apply, "log tailing skipped a sequence");
            apply_event(&self.inner, &event)?;
            self.next_to_apply = seq + 1;
            self.events_applied += 1;
            newly += 1;
        }
        match tail_error {
            Some(e) => Err(e.into()),
            None => Ok(newly),
        }
    }

    /// Replication lag, as of the last poll (a snapshot in time — call
    /// [`catch_up`](Self::catch_up)/[`apply_up_to`](Self::apply_up_to)
    /// first for a current reading).
    pub fn stats(&self) -> ReplicaStats {
        ReplicaStats {
            events_applied: self.events_applied,
            last_applied_seq: self.next_to_apply.checked_sub(1),
            behind_by: self.buffered.len() as u64,
            bootstrap_source: self.bootstrap_source,
        }
    }

    /// The wrapped in-memory service — every query path is served from
    /// here, at the replica's pinned epoch.
    pub fn service(&self) -> &ShardedPromotionService {
        &self.inner
    }

    /// The underlying store (read-only; holds the writer lock while the
    /// guard lives, so drop it before the next `catch_up`).
    pub fn store(&self) -> StoreGuard<'_> {
        self.inner.store()
    }

    /// The wrapped service's serving counters.
    pub fn serve_stats(&self) -> ServeStats {
        self.inner.serve_stats()
    }

    // ── Serving delegates ───────────────────────────────────────────────

    /// See [`ShardedPromotionService::rerank_one`].
    pub fn rerank_one(&self, ctx: QueryContext) -> Vec<u64> {
        self.inner.rerank_one(ctx)
    }

    /// See [`ShardedPromotionService::rerank_top_k`].
    pub fn rerank_top_k(&self, ctx: QueryContext, k: usize) -> Vec<u64> {
        self.inner.rerank_top_k(ctx, k)
    }

    /// See [`ShardedPromotionService::rerank_batch`].
    pub fn rerank_batch(&self, queries: &[QueryContext]) -> Vec<Vec<u64>> {
        self.inner.rerank_batch(queries)
    }

    /// See [`ShardedPromotionService::rerank_batch_top_k_into`].
    pub fn rerank_batch_top_k_into(
        &self,
        queries: &[QueryContext],
        k: usize,
        results: &mut Vec<Vec<u64>>,
    ) {
        self.inner.rerank_batch_top_k_into(queries, k, results)
    }
}
