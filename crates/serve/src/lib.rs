//! # rrp-serve — sharded batch serving over randomized rank promotion
//!
//! The paper pitches rank promotion as something a production search engine
//! embeds; this crate is the serving tier of that picture. It partitions a
//! document corpus across N shards, answers batches of queries on std
//! scoped threads, and keeps its serving state **alive across batches** in
//! two tiers: the canonical snapshot with its corpus-wide ranking caches
//! (consulted only by full reranks), and one per-shard ranking cache per
//! store shard — what top-k queries read. Mutations
//! ([`ShardedPromotionService::insert`],
//! [`ShardedPromotionService::record_visit`],
//! [`ShardedPromotionService::update_popularity`]) patch single slots in
//! both tiers and each tier is repaired by dirty-slot reinsertion when
//! next consulted, so an unchanged corpus pays zero sorts and zero
//! snapshot rebuilds per batch.
//!
//! The top-k path ([`ShardedPromotionService::rerank_top_k`],
//! [`ShardedPromotionService::rerank_batch_top_k_into`]) is
//! **shard-local**: per query each shard contributes only its
//! popularity-order prefix, a deterministic k-way merge reassembles the
//! exact global order prefix, and the (maintained) merged global pool is
//! shuffled into it — the canonical full-corpus snapshot is neither
//! rebuilt nor consulted, pinned by
//! [`ServeStats::global_materialisations`]` == 0` and
//! [`ServeStats::shard_retrievals`]` == shards × queries`. Batch fan-out
//! writes into disjoint `&mut` result regions (no result lock). All of it
//! preserves the `(engine seed, query, session)` determinism of
//! [`rrp_core::RankPromotionEngine`] exactly: batch, sequential and top-k
//! answers are bit-identical (top-k ≡ the full rerank's prefix) at any
//! shard or worker count.
//!
//! ```
//! use rrp_core::{Document, QueryContext, RankPromotionEngine};
//! use rrp_serve::ShardedPromotionService;
//!
//! // An 8-shard service over the paper-recommended engine.
//! let mut service =
//!     ShardedPromotionService::new(RankPromotionEngine::recommended(), 8);
//! service.extend((0..100).map(|i| {
//!     if i % 10 == 0 {
//!         Document::unexplored(i)
//!     } else {
//!         Document::established(i, 1.0 - i as f64 * 0.01)
//!     }
//! }));
//!
//! let queries: Vec<QueryContext> = (0..4)
//!     .map(|q| QueryContext::from_strings("swimming", &format!("session-{q}")))
//!     .collect();
//! let answers = service.rerank_batch(&queries);
//!
//! assert_eq!(answers.len(), 4);
//! // Batch answers equal the sequential engine, query by query.
//! assert_eq!(answers[0], service.rerank_one(queries[0]));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod service;
pub mod store;

pub use service::{available_workers, ServeStats, ShardedPromotionService};
pub use store::ShardedStore;
