//! # rrp-serve — sharded batch serving over randomized rank promotion
//!
//! The paper pitches rank promotion as something a production search engine
//! embeds; this crate is the serving tier of that picture. It partitions a
//! document corpus across N shards, answers batches of queries on std
//! scoped threads, and amortises the per-query popularity sort across each
//! batch — while preserving the `(engine seed, query, session)` determinism
//! of [`rrp_core::RankPromotionEngine`] exactly: batch and sequential
//! answers are bit-identical at any shard or worker count.
//!
//! ```
//! use rrp_core::{Document, QueryContext, RankPromotionEngine};
//! use rrp_serve::ShardedPromotionService;
//!
//! // An 8-shard service over the paper-recommended engine.
//! let mut service =
//!     ShardedPromotionService::new(RankPromotionEngine::recommended(), 8);
//! service.extend((0..100).map(|i| {
//!     if i % 10 == 0 {
//!         Document::unexplored(i)
//!     } else {
//!         Document::established(i, 1.0 - i as f64 * 0.01)
//!     }
//! }));
//!
//! let queries: Vec<QueryContext> = (0..4)
//!     .map(|q| QueryContext::from_strings("swimming", &format!("session-{q}")))
//!     .collect();
//! let answers = service.rerank_batch(&queries);
//!
//! assert_eq!(answers.len(), 4);
//! // Batch answers equal the sequential engine, query by query.
//! assert_eq!(answers[0], service.rerank_one(queries[0]));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod service;
pub mod store;

pub use service::{available_workers, ShardedPromotionService};
pub use store::ShardedStore;
