//! # rrp-serve — sharded batch serving over randomized rank promotion
//!
//! The paper pitches rank promotion as something a production search engine
//! embeds; this crate is the serving tier of that picture. It partitions a
//! document corpus across N shards, answers batches of queries on std
//! scoped threads, and keeps its serving state **alive across batches** in
//! a *single* tier: one per-shard ranking cache per store shard, holding
//! that shard's statistics, popularity order and promotion-pool
//! membership — there is no corpus-wide snapshot or cache anywhere in the
//! service. Mutations ([`ShardedPromotionService::insert`],
//! [`ShardedPromotionService::record_visit`],
//! [`ShardedPromotionService::update_popularity`]) patch one shard-local
//! slot, repaired by dirty-slot reinsertion when next queried, so an
//! unchanged corpus pays zero sorts and zero rebuilds per batch.
//!
//! Every query route reads that tier. Full reranks (and the Uniform
//! rule's per-page coin scan, which needs every slot) consume the
//! **complete merged order** — the shard popularity orders streamed
//! through the same deterministic k-way merge as top-k candidates,
//! re-merged lazily at most once per mutation epoch (pinned by
//! [`ServeStats::order_merges`]). Selective top-k
//! ([`ShardedPromotionService::rerank_top_k`],
//! [`ShardedPromotionService::rerank_batch_top_k_into`]) is
//! **shard-local retrieval**: per query each shard contributes only its
//! popularity-order prefix, the merge reassembles the exact global order
//! prefix, and the maintained merged global pool is shuffled into it —
//! the complete order is never consulted, pinned by
//! [`ServeStats::order_merges`]` == 0` and
//! [`ServeStats::shard_retrievals`]` == shards × queries`. Batch fan-out
//! writes into disjoint `&mut` result regions (no result lock). All of it
//! preserves the `(engine seed, query, session)` determinism of
//! [`rrp_core::RankPromotionEngine`] exactly: batch, sequential and top-k
//! answers are bit-identical (top-k ≡ the full rerank's prefix) at any
//! shard or worker count.
//!
//! Since PR 8 the tier can also be **durable**: [`DurableService`] wraps
//! the service behind a write-ahead log (`rrp-wal`), appending every
//! mutation before applying it and snapshotting periodically, so
//! [`DurableService::open`] recovers bit-identical serving state after a
//! crash — snapshot plus tail replay, torn tails dropped cleanly, corrupt
//! records truncated with a reported loss count ([`RecoveryReport`]).
//! Since PR 10 the same log also fans out: a [`ReplicaService`]
//! bootstraps from the leader's snapshot and *tails the live log*
//! (snapshot + incremental replay between serves), giving one-writer /
//! many-reader deployments where every replica answer is bit-identical
//! to the leader at the applied sequence — and, via a capped
//! [`ReplicaService::apply_up_to`], time-travel reads at any historical
//! sequence.
//! Bad external input (unknown sequences, zero shard counts, out-of-range
//! shard indexes, mismatched snapshots) degrades to a typed
//! [`ServeError`] instead of a panic.
//!
//! ```
//! use rrp_core::{Document, QueryContext, RankPromotionEngine};
//! use rrp_serve::ShardedPromotionService;
//!
//! // An 8-shard service over the paper-recommended engine.
//! let mut service =
//!     ShardedPromotionService::new(RankPromotionEngine::recommended(), 8);
//! service.extend((0..100).map(|i| {
//!     if i % 10 == 0 {
//!         Document::unexplored(i)
//!     } else {
//!         Document::established(i, 1.0 - i as f64 * 0.01)
//!     }
//! }));
//!
//! let queries: Vec<QueryContext> = (0..4)
//!     .map(|q| QueryContext::from_strings("swimming", &format!("session-{q}")))
//!     .collect();
//! let answers = service.rerank_batch(&queries);
//!
//! assert_eq!(answers.len(), 4);
//! // Batch answers equal the sequential engine, query by query.
//! assert_eq!(answers[0], service.rerank_one(queries[0]));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod durable;
pub mod error;
pub mod replica;
pub mod service;
pub mod store;

pub use durable::{DurableService, RecoveryReport};
pub use error::ServeError;
pub use replica::{BootstrapSource, ReplicaService, ReplicaStats};
pub use service::{available_workers, ServeStats, ShardedPromotionService, StoreGuard};
pub use store::ShardedStore;
