//! Typed serving-tier errors.
//!
//! Bad external input — an unknown sequence handle, a zero shard count, a
//! shard index past the partition count, a snapshot from a different
//! deployment — degrades to a [`ServeError`] instead of a panic or a
//! silently clamped value. The infallible constructors and the
//! `bool`-returning mutation APIs remain for callers that prefer the old
//! contracts; the `try_*` twins and everything on the durable path speak
//! `Result`.

use rrp_wal::WalError;
use std::fmt;

/// Everything the serving tier can reject without aborting.
#[derive(Debug)]
pub enum ServeError {
    /// A mutation targeted a sequence number the store has never issued.
    UnknownSequence {
        /// The sequence the caller supplied.
        seq: u64,
        /// The number of documents (= one past the largest valid handle).
        len: u64,
    },
    /// A service cannot be partitioned into zero shards.
    InvalidShardCount {
        /// The shard count the caller requested.
        requested: usize,
    },
    /// A per-shard accessor was asked about a shard past the partition
    /// count.
    ShardOutOfRange {
        /// The shard index the caller supplied.
        shard: usize,
        /// The number of shards that exist.
        shards: usize,
    },
    /// The write-ahead log or snapshot layer failed (I/O, bad header,
    /// corruption that cannot be recovered around).
    Wal(WalError),
    /// A snapshot was readable but does not belong to this service
    /// configuration, or recovery could not replay the log onto it.
    Recovery {
        /// What exactly went wrong.
        detail: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownSequence { seq, len } => {
                write!(f, "unknown sequence {seq} (store holds {len} documents)")
            }
            ServeError::InvalidShardCount { requested } => {
                write!(f, "invalid shard count {requested} (need at least 1)")
            }
            ServeError::ShardOutOfRange { shard, shards } => {
                write!(f, "shard {shard} out of range ({shards} shards exist)")
            }
            ServeError::Wal(e) => write!(f, "durability layer: {e}"),
            ServeError::Recovery { detail } => write!(f, "recovery failed: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Wal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WalError> for ServeError {
    fn from(e: WalError) -> Self {
        ServeError::Wal(e)
    }
}
