//! A document store partitioned across shards.
//!
//! Documents are routed to shards by a stable hash of their id, as a real
//! deployment would partition a corpus across index servers. Every insert
//! also receives a *global sequence number*; the canonical snapshot order
//! (and therefore every ranking decision) is defined by that sequence, not
//! by the shard layout — so re-sharding the same corpus from 1 to N shards
//! never changes a single query result.
//!
//! The sequence number doubles as the document's stable mutation handle:
//! [`record_visit`](ShardedStore::record_visit) and
//! [`update_popularity`](ShardedStore::update_popularity) address documents
//! by it, and because sequences are dense (`0..len`, no removal path) it is
//! also the document's slot in the canonical snapshot — which is what lets
//! the serving tier map store mutations straight onto dirty snapshot slots.

use crate::error::ServeError;
use rrp_core::Document;
use serde::{Deserialize, Serialize};

/// A sharded document store with a canonical, shard-count-independent
/// snapshot order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardedStore {
    /// Per-shard `(sequence, document)` pairs; each shard is ascending in
    /// sequence because inserts are globally ordered.
    shards: Vec<Vec<(u64, Document)>>,
    /// Dense `sequence → (shard, index)` placement map, appended on every
    /// insert. Sequences are dense (`0..len`, no removal path), so its
    /// length is also the total document count, and every mutation handle
    /// resolves in `O(1)` — the old per-mutation binary search over every
    /// shard was `O(shards · log n)`. `u32` halves the map's footprint;
    /// it caps shards and per-shard lengths at `u32::MAX`, far beyond the
    /// in-memory corpus this store can hold anyway.
    placement: Vec<(u32, u32)>,
}

impl ShardedStore {
    /// An empty store with `shard_count` partitions (at least 1).
    pub fn new(shard_count: usize) -> Self {
        ShardedStore {
            shards: vec![Vec::new(); shard_count.max(1)],
            placement: Vec::new(),
        }
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total number of stored documents. `O(1)`: sequences are dense with
    /// no removal path, so the placement map's length *is* the count (a
    /// per-shard sum would be `O(shards)` on a per-batch call).
    #[inline]
    pub fn len(&self) -> usize {
        debug_assert_eq!(
            self.shards.iter().map(Vec::len).sum::<usize>(),
            self.placement.len()
        );
        self.placement.len()
    }

    /// Whether the store holds no documents.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.placement.is_empty()
    }

    /// Number of documents on one shard. A shard index past the
    /// partition count is a typed [`ServeError::ShardOutOfRange`] —
    /// monitoring endpoints feed this from deployment config, which must
    /// not be able to abort the process.
    pub fn shard_len(&self, shard: usize) -> Result<usize, ServeError> {
        self.shards
            .get(shard)
            .map(Vec::len)
            .ok_or(ServeError::ShardOutOfRange {
                shard,
                shards: self.shards.len(),
            })
    }

    /// The shard a document with `id` routes to. Exposed so the serving
    /// tier can mirror the store's placement in its per-shard ranking
    /// caches — the two layouts must agree document by document for
    /// shard-local candidate retrieval to cover the corpus exactly.
    #[inline]
    pub fn shard_of_id(&self, id: u64) -> usize {
        shard_of(id, self.shards.len())
    }

    /// Insert one document, returning its global sequence number — the
    /// stable handle for later [`record_visit`](Self::record_visit) /
    /// [`update_popularity`](Self::update_popularity) calls, and the
    /// document's slot in the canonical snapshot.
    pub fn insert(&mut self, document: Document) -> u64 {
        let seq = self.placement.len() as u64;
        let shard = shard_of(document.id, self.shards.len());
        self.placement
            .push((shard as u32, self.shards[shard].len() as u32));
        self.shards[shard].push((seq, document));
        seq
    }

    /// Insert every document of an iterator, in order.
    pub fn extend(&mut self, documents: impl IntoIterator<Item = Document>) {
        for document in documents {
            self.insert(document);
        }
    }

    /// The document with global sequence number `seq`, if it exists —
    /// `O(1)` through the placement map.
    pub fn get(&self, seq: u64) -> Option<&Document> {
        self.locate(seq)
            .map(|(shard, index)| &self.shards[shard][index].1)
    }

    /// Record a user visit to the document with sequence number `seq`:
    /// clears its unexplored flag (a first recorded exposure removes it
    /// from the selective promotion pool). Returns the updated document,
    /// or `None` if no such sequence exists.
    pub fn record_visit(&mut self, seq: u64) -> Option<Document> {
        let (shard, index) = self.locate(seq)?;
        let document = &mut self.shards[shard][index].1;
        document.is_unexplored = false;
        Some(*document)
    }

    /// Replace the popularity score of the document with sequence number
    /// `seq` (clamped to be non-negative). Returns the updated document,
    /// or `None` if no such sequence exists.
    pub fn update_popularity(&mut self, seq: u64, popularity: f64) -> Option<Document> {
        let (shard, index) = self.locate(seq)?;
        let document = &mut self.shards[shard][index].1;
        document.popularity = popularity.max(0.0);
        Some(*document)
    }

    /// The canonical snapshot slot of sequence number `seq`, if it exists.
    /// Sequences are dense (`0..len`), so the slot *is* the sequence — but
    /// the `u64 → usize` conversion and the bounds check live here, once,
    /// instead of being re-derived (or skipped) at every mutation call
    /// site that needs to hand a store mutation to the serving tier.
    #[inline]
    pub fn slot_of(&self, seq: u64) -> Option<usize> {
        let slot = usize::try_from(seq).ok()?;
        (slot < self.placement.len()).then_some(slot)
    }

    /// Find `(shard, index)` of the entry with sequence `seq` — one
    /// placement-map read, `O(1)` for every mutation instead of a binary
    /// search over every shard.
    fn locate(&self, seq: u64) -> Option<(usize, usize)> {
        let &(shard, index) = self.placement.get(self.slot_of(seq)?)?;
        debug_assert_eq!(self.shards[shard as usize][index as usize].0, seq);
        Some((shard as usize, index as usize))
    }

    /// Write the canonical snapshot — all documents in global insertion
    /// order, independent of the shard layout — into `out` (cleared first).
    ///
    /// Sequence numbers are dense (`0..len`, assigned by `insert` with no
    /// removal path), so each shard's documents scatter directly to their
    /// final position: one `O(n)` pass, independent of the shard count.
    pub fn snapshot_into(&self, out: &mut Vec<Document>) {
        out.clear();
        out.resize(self.len(), Document::unexplored(0));
        // The `unexplored(0)` pre-fill is storage, never content: every
        // slot must be overwritten by exactly one shard entry, or the
        // snapshot would silently serve placeholder documents.
        #[cfg(debug_assertions)]
        let mut written = vec![false; out.len()];
        for shard in &self.shards {
            for &(seq, document) in shard {
                #[cfg(debug_assertions)]
                {
                    assert!(!written[seq as usize], "sequence {seq} written twice");
                    written[seq as usize] = true;
                }
                out[seq as usize] = document;
            }
        }
        #[cfg(debug_assertions)]
        assert!(
            written.iter().all(|&w| w),
            "every snapshot slot must be written exactly once"
        );
    }

    /// The canonical snapshot as a fresh vector.
    pub fn snapshot(&self) -> Vec<Document> {
        let mut out = Vec::new();
        self.snapshot_into(&mut out);
        out
    }
}

/// Stable shard routing: SplitMix64-style mix of the document id, reduced
/// onto `0..shards` with a Lemire multiply-shift (`(hash · shards) >> 64`)
/// instead of an integer division — the reduction sits on every insert and
/// lookup, and `%` costs 20–40 cycles where the multiply-high costs ~3.
/// Deterministic across runs and platforms. (The routing changed from the
/// old `%` reduction in the same change that made it cheaper; shard layout
/// is invisible in query results, so routing is free to evolve.)
fn shard_of(id: u64, shards: usize) -> usize {
    let mut z = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    ((u128::from(z) * shards as u128) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs(n: u64) -> Vec<Document> {
        (0..n)
            .map(|i| {
                if i % 7 == 0 {
                    Document::unexplored(i)
                } else {
                    Document::established(i, 1.0 / (i + 1) as f64).with_age(i)
                }
            })
            .collect()
    }

    #[test]
    fn snapshot_is_insertion_order_for_any_shard_count() {
        let reference = docs(100);
        for shards in [1, 2, 3, 8, 13] {
            let mut store = ShardedStore::new(shards);
            store.extend(reference.iter().copied());
            assert_eq!(store.shard_count(), shards);
            assert_eq!(store.len(), 100);
            assert_eq!(store.snapshot(), reference, "{shards} shards");
        }
    }

    #[test]
    fn zero_shards_is_clamped_to_one() {
        let store = ShardedStore::new(0);
        assert_eq!(store.shard_count(), 1);
        assert!(store.is_empty());
    }

    #[test]
    fn routing_spreads_documents_across_shards() {
        let mut store = ShardedStore::new(8);
        store.extend(docs(1_000));
        for shard in 0..8 {
            let len = store.shard_len(shard).unwrap();
            assert!(
                (60..190).contains(&len),
                "shard {shard} holds {len} of 1000 documents"
            );
        }
    }

    #[test]
    fn lemire_reduction_stays_in_range_at_extremes() {
        for shards in [1usize, 2, 7, 8, 64, 1023] {
            for id in [0u64, 1, 7, u64::MAX, u64::MAX - 1, 0x8000_0000_0000_0000] {
                assert!(shard_of(id, shards) < shards, "id {id}, {shards} shards");
            }
        }
    }

    #[test]
    fn shard_of_id_reports_where_inserts_land() {
        let mut store = ShardedStore::new(5);
        for doc in docs(200) {
            let shard = store.shard_of_id(doc.id);
            let before = store.shard_len(shard).unwrap();
            store.insert(doc);
            assert_eq!(store.shard_len(shard).unwrap(), before + 1, "id {}", doc.id);
        }
    }

    #[test]
    fn duplicate_ids_stay_distinct_entries() {
        let mut store = ShardedStore::new(4);
        store.insert(Document::established(7, 0.9));
        store.insert(Document::established(7, 0.1));
        store.insert(Document::unexplored(7));
        assert_eq!(store.len(), 3);
        let snap = store.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].popularity, 0.9);
        assert_eq!(snap[1].popularity, 0.1);
        assert!(snap[2].is_unexplored);
    }

    #[test]
    fn sequence_numbers_address_documents_across_shards() {
        let reference = docs(50);
        let mut store = ShardedStore::new(5);
        let seqs: Vec<u64> = reference.iter().map(|&d| store.insert(d)).collect();
        assert_eq!(seqs, (0..50).collect::<Vec<u64>>(), "sequences are dense");
        for (seq, expected) in seqs.iter().zip(&reference) {
            assert_eq!(store.get(*seq), Some(expected));
        }
        assert_eq!(store.get(50), None);
    }

    #[test]
    fn mutations_update_the_addressed_document_only() {
        let mut store = ShardedStore::new(3);
        store.extend(docs(21));
        let before = store.snapshot();

        let visited = store.record_visit(7).expect("seq 7 exists");
        assert!(!visited.is_unexplored, "visit clears the unexplored flag");
        let bumped = store.update_popularity(3, 0.75).expect("seq 3 exists");
        assert_eq!(bumped.popularity, 0.75);
        let clamped = store.update_popularity(4, -1.0).expect("seq 4 exists");
        assert_eq!(clamped.popularity, 0.0, "scores clamp to non-negative");

        let after = store.snapshot();
        for (seq, (b, a)) in before.iter().zip(&after).enumerate() {
            match seq {
                7 => assert!(!a.is_unexplored),
                3 => assert_eq!(a.popularity, 0.75),
                4 => assert_eq!(a.popularity, 0.0),
                _ => assert_eq!(b, a, "seq {seq} must be untouched"),
            }
        }
        assert!(store.record_visit(999).is_none());
        assert!(store.update_popularity(999, 0.5).is_none());
    }

    #[test]
    fn mutations_agree_across_shard_counts() {
        // Regression for the placement map: `locate` must resolve every
        // sequence to the same document at any shard count, so a mutation
        // schedule leaves 1-, 2- and 8-shard stores with identical
        // canonical snapshots.
        let reference = docs(120);
        let snapshots: Vec<Vec<Document>> = [1usize, 2, 8]
            .into_iter()
            .map(|shards| {
                let mut store = ShardedStore::new(shards);
                store.extend(reference.iter().copied());
                for seq in (0..120).step_by(7) {
                    assert!(store.record_visit(seq).is_some(), "{shards} shards");
                }
                for seq in (0..120).step_by(5) {
                    let bumped = store.update_popularity(seq, 0.5 + seq as f64 / 240.0);
                    assert!(bumped.is_some(), "{shards} shards");
                }
                assert!(store.record_visit(120).is_none());
                assert!(store.update_popularity(u64::MAX, 1.0).is_none());
                for seq in 0..120 {
                    assert!(store.get(seq).is_some(), "seq {seq}, {shards} shards");
                }
                store.snapshot()
            })
            .collect();
        assert_eq!(snapshots[0], snapshots[1]);
        assert_eq!(snapshots[0], snapshots[2]);
    }

    #[test]
    fn slot_of_checks_the_boundary_exactly() {
        let mut store = ShardedStore::new(3);
        store.extend(docs(20));
        assert_eq!(store.slot_of(0), Some(0));
        assert_eq!(store.slot_of(19), Some(19));
        assert_eq!(store.slot_of(20), None, "one past the end is rejected");
        assert_eq!(store.slot_of(u64::MAX), None, "no overflow on conversion");
        // The slot is the sequence: mutations and lookups agree with it.
        for seq in 0..20u64 {
            assert_eq!(store.slot_of(seq), Some(seq as usize));
            assert!(store.get(seq).is_some());
        }
        assert_eq!(ShardedStore::new(1).slot_of(0), None, "empty store");
    }

    #[test]
    fn snapshot_into_reuses_storage() {
        let mut store = ShardedStore::new(2);
        store.extend(docs(50));
        let mut out = Vec::new();
        store.snapshot_into(&mut out);
        let capacity = out.capacity();
        store.snapshot_into(&mut out);
        assert_eq!(out.capacity(), capacity);
        assert_eq!(out.len(), 50);
    }
}
