//! A document store partitioned across shards.
//!
//! Documents are routed to shards by a stable hash of their id, as a real
//! deployment would partition a corpus across index servers. Every insert
//! also receives a *global sequence number*; the canonical snapshot order
//! (and therefore every ranking decision) is defined by that sequence, not
//! by the shard layout — so re-sharding the same corpus from 1 to N shards
//! never changes a single query result.

use rrp_core::Document;

/// A sharded document store with a canonical, shard-count-independent
/// snapshot order.
#[derive(Debug, Clone)]
pub struct ShardedStore {
    /// Per-shard `(sequence, document)` pairs; each shard is ascending in
    /// sequence because inserts are globally ordered.
    shards: Vec<Vec<(u64, Document)>>,
    next_seq: u64,
}

impl ShardedStore {
    /// An empty store with `shard_count` partitions (at least 1).
    pub fn new(shard_count: usize) -> Self {
        ShardedStore {
            shards: vec![Vec::new(); shard_count.max(1)],
            next_seq: 0,
        }
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total number of stored documents.
    pub fn len(&self) -> usize {
        self.shards.iter().map(Vec::len).sum()
    }

    /// Whether the store holds no documents.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(Vec::is_empty)
    }

    /// Number of documents on one shard.
    pub fn shard_len(&self, shard: usize) -> usize {
        self.shards[shard].len()
    }

    /// Insert one document, returning its global sequence number.
    pub fn insert(&mut self, document: Document) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let shard = shard_of(document.id, self.shards.len());
        self.shards[shard].push((seq, document));
        seq
    }

    /// Insert every document of an iterator, in order.
    pub fn extend(&mut self, documents: impl IntoIterator<Item = Document>) {
        for document in documents {
            self.insert(document);
        }
    }

    /// Write the canonical snapshot — all documents in global insertion
    /// order, independent of the shard layout — into `out` (cleared first).
    ///
    /// Sequence numbers are dense (`0..len`, assigned by `insert` with no
    /// removal path), so each shard's documents scatter directly to their
    /// final position: one `O(n)` pass, independent of the shard count.
    pub fn snapshot_into(&self, out: &mut Vec<Document>) {
        debug_assert_eq!(self.len() as u64, self.next_seq, "sequences are dense");
        out.clear();
        out.resize(self.len(), Document::unexplored(0));
        for shard in &self.shards {
            for &(seq, document) in shard {
                out[seq as usize] = document;
            }
        }
    }

    /// The canonical snapshot as a fresh vector.
    pub fn snapshot(&self) -> Vec<Document> {
        let mut out = Vec::new();
        self.snapshot_into(&mut out);
        out
    }
}

/// Stable shard routing: SplitMix64-style mix of the document id, reduced
/// modulo the shard count. Deterministic across runs and platforms.
fn shard_of(id: u64, shards: usize) -> usize {
    let mut z = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs(n: u64) -> Vec<Document> {
        (0..n)
            .map(|i| {
                if i % 7 == 0 {
                    Document::unexplored(i)
                } else {
                    Document::established(i, 1.0 / (i + 1) as f64).with_age(i)
                }
            })
            .collect()
    }

    #[test]
    fn snapshot_is_insertion_order_for_any_shard_count() {
        let reference = docs(100);
        for shards in [1, 2, 3, 8, 13] {
            let mut store = ShardedStore::new(shards);
            store.extend(reference.iter().copied());
            assert_eq!(store.shard_count(), shards);
            assert_eq!(store.len(), 100);
            assert_eq!(store.snapshot(), reference, "{shards} shards");
        }
    }

    #[test]
    fn zero_shards_is_clamped_to_one() {
        let store = ShardedStore::new(0);
        assert_eq!(store.shard_count(), 1);
        assert!(store.is_empty());
    }

    #[test]
    fn routing_spreads_documents_across_shards() {
        let mut store = ShardedStore::new(8);
        store.extend(docs(1_000));
        for shard in 0..8 {
            let len = store.shard_len(shard);
            assert!(
                (60..190).contains(&len),
                "shard {shard} holds {len} of 1000 documents"
            );
        }
    }

    #[test]
    fn duplicate_ids_stay_distinct_entries() {
        let mut store = ShardedStore::new(4);
        store.insert(Document::established(7, 0.9));
        store.insert(Document::established(7, 0.1));
        store.insert(Document::unexplored(7));
        assert_eq!(store.len(), 3);
        let snap = store.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].popularity, 0.9);
        assert_eq!(snap[1].popularity, 0.1);
        assert!(snap[2].is_unexplored);
    }

    #[test]
    fn snapshot_into_reuses_storage() {
        let mut store = ShardedStore::new(2);
        store.extend(docs(50));
        let mut out = Vec::new();
        store.snapshot_into(&mut out);
        let capacity = out.capacity();
        store.snapshot_into(&mut out);
        assert_eq!(out.capacity(), capacity);
        assert_eq!(out.len(), 50);
    }
}
