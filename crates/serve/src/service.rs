//! The sharded batch rerank service.

use crate::store::ShardedStore;
use rrp_core::{Document, PublishedVersion, QueryContext, RankPromotionEngine, ShardedCorpusCache};
use rrp_ranking::{merge_shard_candidates_into, MergedCandidates, RankBuffers, ShardCandidates};
use std::marker::PhantomData;
use std::ops::{Deref, Range};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// Operation counters for the incremental serving state — the probe that
/// pins the steady-state contract in tests: when the corpus is unchanged a
/// batch performs **zero** repairs, **zero** order merges and **zero**
/// version publications, and a mutated corpus costs one publication
/// repairing exactly the dirty slots plus one lazy re-merge of the
/// complete order (paid only by the next full-order consumer).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Batches answered (one per `rerank_batch*` call).
    pub batches: u64,
    /// Queries answered, across batch, single and top-k paths.
    pub queries: u64,
    /// Full re-derivations of the serving tier from the store —
    /// incremented only by
    /// [`ShardedPromotionService::rebuild_from_store`]. The shard caches
    /// are maintained in place on every mutation, so no query or mutation
    /// path ever triggers one; tests pin this at 0 to catch a future
    /// change that routes serving back through a rebuild.
    pub snapshot_rebuilds: u64,
    /// From-scratch `O(n log n)` sorts of the popularity orders — likewise
    /// incremented only by the explicit rebuild path; the query paths
    /// only ever repair.
    pub full_sorts: u64,
    /// Dirty slots handed to the shard-tier repairs (distinct slots per
    /// shard: the dirty lists deduplicate on entry).
    pub dirty_slots_repaired: u64,
    /// Full-corpus promotion-pool derivations (`O(n)` scan over every
    /// document) — incremented only by
    /// [`ShardedPromotionService::rebuild_from_store`]. The pool
    /// membership persists in each shard cache's `PoolIndex` and is
    /// repaired alongside the popularity orders, so no query or mutation
    /// path ever re-derives it; tests pin this at 0.
    pub pool_rebuilds: u64,
    /// Incremental repairs of the pool membership (runs with every
    /// shard-tier repair, from the same dirty slots — counted only while
    /// pools are maintained, i.e. for selective engines).
    pub pool_repairs: u64,
    /// Per-query membership-mask resets reported by the ranking arenas —
    /// each one marks an `O(n)` pool scan inside a query. The pooled
    /// selective path performs none (tests pin 0 for selective engines);
    /// a Uniform-rule engine necessarily pays one per query, its per-page
    /// coins being part of the observable RNG stream.
    pub mask_resets: u64,
    /// Shard-local candidate retrievals: one per shard per top-k query
    /// answered through the retrieve→merge→rank path, so a clean top-k
    /// batch reads exactly `shards × queries` (pinned in tests). The
    /// complete merged order is never consulted on that path.
    pub shard_retrievals: u64,
    /// Repair events on the per-shard caches: one per version publication
    /// that found at least one dirty slot. Every query path runs through
    /// this single repair site — there is no other tier to keep current.
    pub shard_repairs: u64,
    /// Swap draws consumed by the v2 engines' lazy pool shuffle (one per
    /// promoted slot actually taken, except the pool's last remaining
    /// member which is emitted draw-free). A v2 selective top-k batch
    /// reads at most `k × queries` here — the probe that pins the
    /// O(k)-draw contract in tests. V1 engines never report any: their
    /// eager shuffle is not instrumented, being exactly the `O(pool)`
    /// cost v2 exists to remove.
    pub pool_draws: u64,
    /// Lazy re-merges of the **complete** global popularity order — the
    /// `O(n)` k-way merge a full rerank or a Uniform-rule query reads
    /// instead of any corpus-wide snapshot. Paid at most once per
    /// published version: clean batches between mutations re-merge
    /// nothing (pinned in tests), and top-k traffic under a selective
    /// engine never merges at all.
    pub order_merges: u64,
    /// Merge-time epoch-validation conflicts: a query or batch ranked
    /// against a published version whose epoch no longer matched the live
    /// mutation epoch by the time its answer was assembled. The answer
    /// itself is always internally consistent (versions are immutable);
    /// the sequential paths retry once against the freshly published
    /// version (one conflict counted per retry), while the batch path
    /// validates once per batch and only counts. Read-only workloads pin
    /// this at 0.
    pub epoch_conflicts: u64,
    /// Immutable serving-version publications — at most one per mutation
    /// epoch: the first query after a mutation stretch cuts exactly one
    /// new version (repairing the dirty slots on the way), and clean
    /// stretches publish nothing (pinned in tests).
    pub version_publications: u64,
    /// Mutation events appended to the write-ahead log — counted only by
    /// the durable wrapper ([`crate::DurableService`]); a plain in-memory
    /// service always reads 0. One per *successful* append: an injected
    /// or real append failure charges nothing, matching the untouched
    /// serving state.
    pub wal_appends: u64,
    /// Snapshots written to disk by the durable wrapper (periodic plus
    /// explicit), each one an atomic rename-into-place.
    pub snapshots_written: u64,
    /// Events replayed from the log tail during the most recent recovery
    /// — 0 for a service that was never recovered, and exactly the
    /// events-past-the-snapshot for one that was.
    pub events_replayed: u64,
}

/// The service-side probe counters, each in its own atomic cell so the
/// `&self` query paths can charge them concurrently. Folded into a
/// [`ServeStats`] snapshot on demand; the WAL counters belong to the
/// durable wrapper and stay 0 here.
#[derive(Debug, Default)]
struct ProbeCells {
    batches: AtomicU64,
    queries: AtomicU64,
    snapshot_rebuilds: AtomicU64,
    full_sorts: AtomicU64,
    dirty_slots_repaired: AtomicU64,
    pool_rebuilds: AtomicU64,
    pool_repairs: AtomicU64,
    mask_resets: AtomicU64,
    shard_retrievals: AtomicU64,
    shard_repairs: AtomicU64,
    pool_draws: AtomicU64,
    order_merges: AtomicU64,
    epoch_conflicts: AtomicU64,
    version_publications: AtomicU64,
}

impl ProbeCells {
    fn add(cell: &AtomicU64, n: u64) {
        cell.fetch_add(n, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ServeStats {
        ServeStats {
            batches: self.batches.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            snapshot_rebuilds: self.snapshot_rebuilds.load(Ordering::Relaxed),
            full_sorts: self.full_sorts.load(Ordering::Relaxed),
            dirty_slots_repaired: self.dirty_slots_repaired.load(Ordering::Relaxed),
            pool_rebuilds: self.pool_rebuilds.load(Ordering::Relaxed),
            pool_repairs: self.pool_repairs.load(Ordering::Relaxed),
            mask_resets: self.mask_resets.load(Ordering::Relaxed),
            shard_retrievals: self.shard_retrievals.load(Ordering::Relaxed),
            shard_repairs: self.shard_repairs.load(Ordering::Relaxed),
            pool_draws: self.pool_draws.load(Ordering::Relaxed),
            order_merges: self.order_merges.load(Ordering::Relaxed),
            epoch_conflicts: self.epoch_conflicts.load(Ordering::Relaxed),
            version_publications: self.version_publications.load(Ordering::Relaxed),
            wal_appends: 0,
            snapshots_written: 0,
            events_replayed: 0,
        }
    }
}

/// The writer-side state: everything a mutation touches, serialised behind
/// one mutex. Queries never lock it on a clean stretch — they read the
/// published version instead.
#[derive(Debug)]
struct WriterState {
    store: ShardedStore,
    /// The writer generation of the serving tier: one cache per store
    /// shard, mutated in place and published as immutable epoch-stamped
    /// versions (see [`ShardedCorpusCache`]).
    shards: ShardedCorpusCache,
    /// Snapshot scratch for [`ShardedPromotionService::rebuild_from_store`]'s
    /// replay — the one path that still assembles a global document list.
    rebuild_scratch: Vec<Document>,
}

/// Per-query scratch (rank arenas, slot list, top-k retrieval buffers),
/// pooled so concurrent `&self` readers each borrow a private set and the
/// steady-state query path stays allocation-free.
#[derive(Debug, Default)]
struct QueryScratch {
    buffers: RankBuffers,
    slots: Vec<usize>,
    retrieval: TopKRetrieval,
}

/// A read guard over the service's document store, handed out by
/// [`ShardedPromotionService::store`]. Holds the writer lock for its
/// lifetime: drop it before calling any method on the same service that
/// mutates or publishes (queries on a stale service publish).
pub struct StoreGuard<'a> {
    writer: MutexGuard<'a, WriterState>,
}

impl Deref for StoreGuard<'_> {
    type Target = ShardedStore;

    fn deref(&self) -> &ShardedStore {
        &self.writer.store
    }
}

impl std::fmt::Debug for StoreGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

/// Serves randomized rank promotion over a sharded document store.
///
/// The service owns the corpus (partitioned across N shards by document-id
/// hash, as an index tier would be) and answers batches of queries on std
/// scoped threads. Five properties make it safe to scale:
///
/// 1. **Shard-count independence** — ranking is defined over the store's
///    canonical snapshot order, so 1-shard and 64-shard deployments answer
///    every query identically.
/// 2. **Worker-count independence** — each query's randomization is a pure
///    function of `(engine seed, query, session)`, never of scheduling, so
///    [`rerank_batch`](Self::rerank_batch) equals a sequential loop of
///    [`rerank_one`](Self::rerank_one) bit for bit at any worker count.
/// 3. **Incremental steady state** — the serving state is a *single*
///    tier: one shard-local cache per store shard
///    ([`ShardedCorpusCache`]), holding the ranking statistics,
///    popularity order and promotion-pool membership of its shard's
///    documents. It persists *across* batches and is repaired at
///    publication time instead of being re-derived per batch or per
///    query: an unchanged corpus pays zero sorts, zero rebuilds and zero
///    order merges (pinned by [`ServeStats`]), a full rerank reads the
///    lazily maintained complete merged order, and a selective-promotion
///    [`rerank_top_k`](Self::rerank_top_k) query is truly `O(pool + k)` —
///    no full-corpus scan, no membership-mask reset (also pinned, via
///    [`ServeStats::mask_resets`]).
/// 4. **Contention-free fan-out** — batch results are written into
///    disjoint `&mut` regions claimed chunk-by-chunk from an atomic
///    cursor; workers never take a lock and never touch another worker's
///    slots, and per-worker scratch arenas keep the per-query path
///    allocation-free.
/// 5. **Epoch-versioned shared reads** — every query path takes `&self`:
///    mutations bump a mutation-epoch counter and patch the writer
///    generation under a mutex, while readers rank against an immutable
///    epoch-stamped [`PublishedVersion`] (cut at most once per epoch, on
///    the first query that finds the published epoch trailing the live
///    one) and validate the epoch at merge time — a conflict is counted
///    ([`ServeStats::epoch_conflicts`]) and the sequential paths retry
///    once against the fresh version. Any number of reader threads can
///    therefore serve concurrently with a mutating writer, each answer
///    bit-identical to a sequential rerank at its version's epoch.
#[derive(Debug)]
pub struct ShardedPromotionService {
    engine: RankPromotionEngine,
    workers: usize,
    /// The live mutation epoch: bumped (release) once per successful
    /// mutation, read (acquire) by readers to detect a stale published
    /// version and to validate at merge time.
    epoch: AtomicU64,
    /// The writer generation: store + shard caches + rebuild scratch,
    /// locked by mutations and by the (at most once per epoch)
    /// publication step.
    writer: Mutex<WriterState>,
    /// The published immutable serving version readers rank against.
    /// Swapped wholesale at publication; reads only ever clone the `Arc`.
    published: RwLock<Arc<PublishedVersion>>,
    probe: ProbeCells,
    /// Pooled per-query scratch for the sequential `&self` paths.
    scratch: Mutex<Vec<QueryScratch>>,
}

impl ShardedPromotionService {
    /// A service over an empty `shard_count`-way store (at least 1 shard),
    /// answering batches with up to [`available_workers`] threads.
    pub fn new(engine: RankPromotionEngine, shard_count: usize) -> Self {
        let store = ShardedStore::new(shard_count);
        let mut shards = ShardedCorpusCache::new(store.shard_count());
        // Pool maintenance is dead weight for engines that re-derive
        // their pool per query (the Uniform rule's coin scan draws one
        // coin per page instead of reading any membership index).
        shards.set_pool_maintained(engine.reads_pool_index());
        Self::from_parts(engine, store, shards)
    }

    /// Like [`new`](Self::new), but a zero `shard_count` is a typed
    /// [`ServeError::InvalidShardCount`](crate::ServeError::InvalidShardCount)
    /// instead of being clamped to 1 — for callers (deployment config
    /// parsing, the durable recovery path) that want bad input surfaced
    /// rather than absorbed.
    pub fn try_new(
        engine: RankPromotionEngine,
        shard_count: usize,
    ) -> Result<Self, crate::ServeError> {
        if shard_count == 0 {
            return Err(crate::ServeError::InvalidShardCount { requested: 0 });
        }
        Ok(Self::new(engine, shard_count))
    }

    /// Reassemble a service from recovered state: the engine, the store
    /// and the serving tier exactly as a snapshot captured them. Scratch
    /// and probes start fresh — they are per-process, not part of the
    /// durable state. The caller (the recovery path) guarantees the three
    /// parts belong together.
    pub(crate) fn from_parts(
        engine: RankPromotionEngine,
        store: ShardedStore,
        shards: ShardedCorpusCache,
    ) -> Self {
        // A non-empty recovered corpus must start one epoch ahead of the
        // empty sentinel version, so the first query publishes instead of
        // serving the sentinel; an empty corpus is exactly the sentinel.
        let epoch = if store.is_empty() { 0 } else { 1 };
        let published = Arc::new(PublishedVersion::empty(
            store.shard_count(),
            shards.pool_maintained(),
        ));
        ShardedPromotionService {
            engine,
            workers: available_workers(),
            epoch: AtomicU64::new(epoch),
            writer: Mutex::new(WriterState {
                store,
                shards,
                rebuild_scratch: Vec::new(),
            }),
            published: RwLock::new(published),
            probe: ProbeCells::default(),
            scratch: Mutex::new(Vec::new()),
        }
    }

    /// Run `f` over the writer-side store and serving tier under the
    /// writer lock — the durable wrapper's snapshot path, which needs a
    /// single consistent view of both halves.
    pub(crate) fn with_writer<R>(
        &self,
        f: impl FnOnce(&ShardedStore, &ShardedCorpusCache) -> R,
    ) -> R {
        let writer = self.writer.lock().expect("writer lock");
        f(&writer.store, &writer.shards)
    }

    /// Set the number of batch worker threads (clamped to at least 1).
    /// Results are identical at every worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The rank-promotion engine in use.
    pub fn engine(&self) -> RankPromotionEngine {
        self.engine
    }

    /// The underlying sharded store (read-only: all mutation goes through
    /// the service so the cached serving state can never go stale). The
    /// guard holds the writer lock — drop it before mutating or querying
    /// the same service.
    pub fn store(&self) -> StoreGuard<'_> {
        StoreGuard {
            writer: self.writer.lock().expect("writer lock"),
        }
    }

    /// Number of batch worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The steady-state operation counters.
    pub fn serve_stats(&self) -> ServeStats {
        self.probe.snapshot()
    }

    /// The live mutation epoch: 0 for a fresh empty service, bumped by
    /// exactly one per successful mutation. The epoch returned by the
    /// `*_versioned` read paths compares against this — equality means
    /// the answer reflects every mutation applied before the call.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Insert one document into its shard, returning its global sequence
    /// number — the handle for [`record_visit`](Self::record_visit) and
    /// [`update_popularity`](Self::update_popularity). The owning shard's
    /// cache is extended in place (`O(1)`): the new slot joins its
    /// popularity order at the next publication via dirty-slot
    /// reinsertion.
    pub fn insert(&self, document: Document) -> u64 {
        let mut writer = self.writer.lock().expect("writer lock");
        let WriterState { store, shards, .. } = &mut *writer;
        let seq = store.insert(document);
        let shard = store.shard_of_id(document.id);
        shards.push(shard, &document);
        self.epoch.fetch_add(1, Ordering::Release);
        seq
    }

    /// Insert every document of an iterator, in order.
    pub fn extend(&self, documents: impl IntoIterator<Item = Document>) {
        for document in documents {
            self.insert(document);
        }
    }

    /// Record a user visit to the document with sequence number `seq`:
    /// clears its unexplored flag, which removes it from the selective
    /// promotion pool. The cached slot is patched in place and marked
    /// dirty. Returns `false` if no such sequence exists (and the epoch
    /// does not move).
    pub fn record_visit(&self, seq: u64) -> bool {
        let mut writer = self.writer.lock().expect("writer lock");
        let WriterState { store, shards, .. } = &mut *writer;
        match store.record_visit(seq) {
            Some(document) => {
                let slot = store
                    .slot_of(seq)
                    .expect("a recorded visit has a placement slot");
                shards.patch(slot, &document);
                self.epoch.fetch_add(1, Ordering::Release);
                true
            }
            None => false,
        }
    }

    /// Replace the popularity score of the document with sequence number
    /// `seq` (clamped to non-negative). The cached slot is patched in
    /// place and marked dirty. Returns `false` if no such sequence exists
    /// (and the epoch does not move).
    pub fn update_popularity(&self, seq: u64, popularity: f64) -> bool {
        let mut writer = self.writer.lock().expect("writer lock");
        let WriterState { store, shards, .. } = &mut *writer;
        match store.update_popularity(seq, popularity) {
            Some(document) => {
                let slot = store
                    .slot_of(seq)
                    .expect("an updated document has a placement slot");
                shards.patch(slot, &document);
                self.epoch.fetch_add(1, Ordering::Release);
                true
            }
            None => false,
        }
    }

    /// [`record_visit`](Self::record_visit) with the failure typed: an
    /// unknown sequence is a
    /// [`ServeError::UnknownSequence`](crate::ServeError::UnknownSequence),
    /// and the serving state is untouched.
    pub fn try_record_visit(&self, seq: u64) -> Result<(), crate::ServeError> {
        if self.record_visit(seq) {
            Ok(())
        } else {
            Err(crate::ServeError::UnknownSequence {
                seq,
                len: self.store().len() as u64,
            })
        }
    }

    /// [`update_popularity`](Self::update_popularity) with the failure
    /// typed: an unknown sequence is a
    /// [`ServeError::UnknownSequence`](crate::ServeError::UnknownSequence),
    /// and the serving state is untouched.
    pub fn try_update_popularity(
        &self,
        seq: u64,
        popularity: f64,
    ) -> Result<(), crate::ServeError> {
        if self.update_popularity(seq, popularity) {
            Ok(())
        } else {
            Err(crate::ServeError::UnknownSequence {
                seq,
                len: self.store().len() as u64,
            })
        }
    }

    /// Discard the incremental state and re-derive it from the store:
    /// replay the store's placement document by document (global order
    /// keeps the local↔global slot maps dense), recompute every
    /// `PageStats`, re-sort the per-shard popularity orders and re-scan
    /// the pool membership from scratch. **Not** part of any query or
    /// mutation path — serving never needs it, and the [`ServeStats`]
    /// counters it increments are pinned at 0 in the steady-state tests
    /// precisely to catch a change that reintroduces per-batch rebuilds.
    /// It exists as the recovery/maintenance escape hatch (and as the one
    /// honest increment site for those counters). Bumps the epoch: the
    /// next query publishes the rebuilt state.
    pub fn rebuild_from_store(&self) {
        let mut writer = self.writer.lock().expect("writer lock");
        ProbeCells::add(&self.probe.snapshot_rebuilds, 1);
        ProbeCells::add(&self.probe.full_sorts, 1);
        if writer.shards.pool_maintained() {
            ProbeCells::add(&self.probe.pool_rebuilds, 1);
        }
        let WriterState {
            store,
            shards,
            rebuild_scratch,
        } = &mut *writer;
        store.snapshot_into(rebuild_scratch);
        shards.clear();
        for document in rebuild_scratch.iter() {
            shards.push(store.shard_of_id(document.id), document);
        }
        // Part of the same rebuild event, not a lazy repair — left out of
        // the repair counters on purpose (the rebuild also invalidates
        // the publication diff log, so the follow-up publication charges
        // nothing extra).
        shards.repair();
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// The serving version for the current epoch: the published one if it
    /// is current, else a fresh publication (at most one ever happens per
    /// epoch — racing readers converge on the same version).
    fn current_version(&self) -> Arc<PublishedVersion> {
        // Clone the Arc only when the version is current: carrying a
        // stale clone into `publish_current` would keep the retired
        // version's refcount above one right when `recycle` tries to
        // reclaim its buffers, silently downgrading every publication
        // from O(dirty) to a full copy-on-write of the next mutation.
        {
            let published = self.published.read().expect("published version lock");
            if published.epoch() == self.epoch.load(Ordering::Acquire) {
                return published.clone();
            }
        }
        self.publish_current()
    }

    /// Cut and install a version for the live epoch under the writer
    /// lock: repair the writer generation (charging the repair probes),
    /// swap the new version in, and recycle the retired one's buffers.
    fn publish_current(&self) -> Arc<PublishedVersion> {
        let mut writer = self.writer.lock().expect("writer lock");
        // The epoch is stable while we hold the writer lock (every bump
        // site holds it too); another reader may have published for this
        // epoch while we waited on the lock.
        let epoch = self.epoch.load(Ordering::Acquire);
        {
            let published = self.published.read().expect("published version lock");
            if published.epoch() == epoch {
                return published.clone();
            }
        }
        let WriterState { store, shards, .. } = &mut *writer;
        let (version, charged) = shards.publish(epoch);
        if charged > 0 {
            ProbeCells::add(&self.probe.shard_repairs, 1);
            if shards.pool_maintained() {
                ProbeCells::add(&self.probe.pool_repairs, 1);
            }
            ProbeCells::add(&self.probe.dirty_slots_repaired, charged);
        }
        ProbeCells::add(&self.probe.version_publications, 1);
        let prev = std::mem::replace(
            &mut *self.published.write().expect("published version lock"),
            version.clone(),
        );
        shards.recycle(prev, |slot| {
            *store
                .get(slot as u64)
                .expect("every published slot exists in the store")
        });
        version
    }

    /// Borrow a pooled scratch set (or start a fresh one).
    fn take_scratch(&self) -> QueryScratch {
        self.scratch
            .lock()
            .expect("scratch pool lock")
            .pop()
            .unwrap_or_default()
    }

    /// Return a scratch set to the pool for the next query.
    fn put_scratch(&self, scratch: QueryScratch) {
        self.scratch
            .lock()
            .expect("scratch pool lock")
            .push(scratch);
    }

    /// The current selective-promotion pool: the unexplored slots in
    /// ascending canonical-sequence order, read off the current published
    /// version (publishing first if the corpus mutated). Exposed for
    /// introspection and for the property suite that pins the incremental
    /// pool against a from-scratch recomputation. Empty for engines that
    /// never read the pool index (the Uniform rule) — their pool is
    /// re-drawn per query and no index is maintained.
    pub fn pooled_slots(&self) -> Vec<usize> {
        self.current_version().pool_slots().to_vec()
    }

    /// Answer one query sequentially: the canonical snapshot order
    /// re-ranked by the engine. This is the reference the batch path is
    /// measured against — and must stay bit-identical to. Served from the
    /// published version's complete merged order, so the only per-call
    /// allocation after warm-up is the returned vector itself
    /// ([`rerank_one_into`](Self::rerank_one_into) removes that too).
    pub fn rerank_one(&self, context: QueryContext) -> Vec<u64> {
        self.rerank_one_versioned(context).1
    }

    /// [`rerank_one`](Self::rerank_one) plus the epoch of the version
    /// that answered: equal to [`epoch`](Self::epoch) when no mutation
    /// raced the query.
    pub fn rerank_one_versioned(&self, context: QueryContext) -> (u64, Vec<u64>) {
        let mut out = Vec::new();
        let epoch = self.one_versioned_into(context, &mut out);
        (epoch, out)
    }

    /// [`rerank_one`](Self::rerank_one) writing the document ids into
    /// `out` (cleared first): allocation-free once the serving state and
    /// `out` have grown to the corpus size.
    pub fn rerank_one_into(&self, context: QueryContext, out: &mut Vec<u64>) {
        self.one_versioned_into(context, out);
    }

    fn one_versioned_into(&self, context: QueryContext, out: &mut Vec<u64>) -> u64 {
        ProbeCells::add(&self.probe.queries, 1);
        let mut version = self.current_version();
        if version.is_empty() {
            // Degenerate path: answer without touching (or charging) the
            // serving tier.
            out.clear();
            return version.epoch();
        }
        let mut scratch = self.take_scratch();
        let mut retried = false;
        let epoch = loop {
            let (order, ran) = version.ensure_merged_order();
            if ran {
                ProbeCells::add(&self.probe.order_merges, 1);
            }
            self.engine.rerank_merged_into(
                version.pool_slots(),
                order,
                |s| version.in_pool(s),
                context,
                &mut scratch.buffers,
                &mut scratch.slots,
            );
            // Validate at merge time: a racing mutation leaves the answer
            // consistent at the version's epoch, merely stale — retry
            // once against the fresh version, then accept (the writer may
            // always be one step ahead).
            if retried || self.epoch.load(Ordering::Acquire) == version.epoch() {
                break version.epoch();
            }
            ProbeCells::add(&self.probe.epoch_conflicts, 1);
            retried = true;
            version = self.current_version();
        };
        ProbeCells::add(&self.probe.mask_resets, scratch.buffers.take_mask_resets());
        ProbeCells::add(&self.probe.pool_draws, scratch.buffers.take_pool_draws());
        out.clear();
        out.extend(scratch.slots.iter().map(|&s| version.page_of(s).0));
        self.put_scratch(scratch);
        epoch
    }

    /// The first `min(k, n)` document ids of
    /// [`rerank_one`](Self::rerank_one), computed with the early-exit
    /// merge: bit-identical to the length-`k` prefix of the full rerank.
    ///
    /// Under a selective engine this is the **shard-retrieval path**: each
    /// shard cache contributes only its pool members and a
    /// popularity-order prefix, the deterministic merge reassembles the
    /// global pool and order prefix, and the query ranks against that view
    /// alone — the complete merged order is neither re-merged nor
    /// consulted (pinned by [`ServeStats::order_merges`]). A Uniform-rule
    /// engine must keep scanning every slot for its per-page coins and
    /// reads the complete merged order instead. `k = 0` answers without
    /// consulting — or publishing — any serving state.
    pub fn rerank_top_k(&self, context: QueryContext, k: usize) -> Vec<u64> {
        self.rerank_top_k_versioned(context, k).1
    }

    /// [`rerank_top_k`](Self::rerank_top_k) plus the answering version's
    /// epoch (the currently published epoch when `k = 0`).
    pub fn rerank_top_k_versioned(&self, context: QueryContext, k: usize) -> (u64, Vec<u64>) {
        let mut out = Vec::new();
        let epoch = self.top_k_versioned_into(context, k, &mut out);
        (epoch, out)
    }

    /// [`rerank_top_k`](Self::rerank_top_k) writing into `out` (cleared
    /// first); allocation-free after warm-up.
    pub fn rerank_top_k_into(&self, context: QueryContext, k: usize, out: &mut Vec<u64>) {
        self.top_k_versioned_into(context, k, out);
    }

    fn top_k_versioned_into(&self, context: QueryContext, k: usize, out: &mut Vec<u64>) -> u64 {
        ProbeCells::add(&self.probe.queries, 1);
        if k == 0 {
            // A zero-rank query is answerable from nothing: charge no
            // probes and publish no version, whatever the backlog.
            out.clear();
            return self
                .published
                .read()
                .expect("published version lock")
                .epoch();
        }
        let mut version = self.current_version();
        if version.is_empty() {
            // Degenerate path: an empty corpus must not book retrievals
            // (or merges) that never happen.
            out.clear();
            return version.epoch();
        }
        let mut scratch = self.take_scratch();
        let mut retried = false;
        let epoch = loop {
            if self.engine.reads_pool_index() {
                ProbeCells::add(&self.probe.shard_retrievals, version.shard_count() as u64);
                scratch.retrieval.answer_into(
                    &self.engine,
                    &version,
                    context,
                    k,
                    &mut scratch.buffers,
                    &mut scratch.slots,
                    out,
                );
            } else {
                let (order, ran) = version.ensure_merged_order();
                if ran {
                    ProbeCells::add(&self.probe.order_merges, 1);
                }
                self.engine.rerank_top_k_merged_into(
                    version.pool_slots(),
                    order,
                    |s| version.in_pool(s),
                    k,
                    context,
                    &mut scratch.buffers,
                    &mut scratch.slots,
                );
                out.clear();
                out.extend(scratch.slots.iter().map(|&s| version.page_of(s).0));
            }
            if retried || self.epoch.load(Ordering::Acquire) == version.epoch() {
                break version.epoch();
            }
            ProbeCells::add(&self.probe.epoch_conflicts, 1);
            retried = true;
            version = self.current_version();
        };
        ProbeCells::add(&self.probe.mask_resets, scratch.buffers.take_mask_resets());
        ProbeCells::add(&self.probe.pool_draws, scratch.buffers.take_pool_draws());
        self.put_scratch(scratch);
        epoch
    }

    /// Answer a batch of queries, fanning out across scoped worker
    /// threads. Per query, the returned document ids equal
    /// [`rerank_one`](Self::rerank_one) — and therefore
    /// [`RankPromotionEngine::rerank`] on the canonical snapshot —
    /// regardless of shard count, worker count, or scheduling.
    pub fn rerank_batch(&self, queries: &[QueryContext]) -> Vec<Vec<u64>> {
        let mut results = Vec::new();
        self.rerank_batch_into(queries, &mut results);
        results
    }

    /// [`rerank_batch`](Self::rerank_batch) plus the epoch of the single
    /// published version every query in the batch ranked against.
    pub fn rerank_batch_versioned(&self, queries: &[QueryContext]) -> (u64, Vec<Vec<u64>>) {
        let mut results = Vec::new();
        let epoch = self.batch_into(queries, None, &mut results);
        (epoch, results)
    }

    /// [`rerank_batch`](Self::rerank_batch) writing into `results`
    /// (resized to `queries.len()`); existing entries keep their heap
    /// storage, so a caller that reuses `results` across batches pays no
    /// result allocations at steady state.
    pub fn rerank_batch_into(&self, queries: &[QueryContext], results: &mut Vec<Vec<u64>>) {
        self.batch_into(queries, None, results);
    }

    /// The top-`k` batch path: every result holds only the first
    /// `min(k, n)` ranks, each bit-identical to the length-`k` prefix of
    /// the corresponding full rerank. Routed through shard-local candidate
    /// retrieval for selective engines (see
    /// [`rerank_top_k`](Self::rerank_top_k)): the batch performs **zero**
    /// complete-order merges and exactly `shards × queries` shard
    /// retrievals.
    pub fn rerank_batch_top_k_into(
        &self,
        queries: &[QueryContext],
        k: usize,
        results: &mut Vec<Vec<u64>>,
    ) {
        self.batch_into(queries, Some(k), results);
    }

    fn batch_into(
        &self,
        queries: &[QueryContext],
        k: Option<usize>,
        results: &mut Vec<Vec<u64>>,
    ) -> u64 {
        ProbeCells::add(&self.probe.batches, 1);
        ProbeCells::add(&self.probe.queries, queries.len() as u64);

        // Resize without discarding inner-vector capacity.
        results.truncate(queries.len());
        results.resize_with(queries.len(), Vec::new);
        if queries.is_empty() {
            // Explicit early return: an empty batch must publish nothing
            // and, above all, never reach the region-claim fan-out below —
            // `chunk_len`/`SlotRegions` are defined over at least one
            // result slot.
            return self
                .published
                .read()
                .expect("published version lock")
                .epoch();
        }
        if k == Some(0) {
            // Zero-rank batches are answerable from nothing: clear the
            // (possibly reused) result slots, publish and charge nothing.
            for out in results.iter_mut() {
                out.clear();
            }
            return self
                .published
                .read()
                .expect("published version lock")
                .epoch();
        }
        let version = self.current_version();
        if version.is_empty() {
            // An empty corpus answers every query with an empty ranking
            // and charges nothing — no repair, no retrievals, no merge.
            // `resize_with` keeps reused entries' stale contents, so
            // clear each result explicitly.
            for out in results.iter_mut() {
                out.clear();
            }
            return version.epoch();
        }

        // Pick the batch's path: top-k under a selective engine retrieves
        // per shard; everything else (full reranks, the Uniform rule's
        // coin scan) consumes the complete merged order, brought current
        // once for the batch.
        let mode = match k {
            Some(k) if self.engine.reads_pool_index() => {
                ProbeCells::add(
                    &self.probe.shard_retrievals,
                    (version.shard_count() * queries.len()) as u64,
                );
                BatchMode::TopKShards(k)
            }
            Some(k) => {
                let (_, ran) = version.ensure_merged_order();
                if ran {
                    ProbeCells::add(&self.probe.order_merges, 1);
                }
                BatchMode::TopKMerged(k)
            }
            None => {
                let (_, ran) = version.ensure_merged_order();
                if ran {
                    ProbeCells::add(&self.probe.order_merges, 1);
                }
                BatchMode::Full
            }
        };

        let engine = &self.engine;
        let workers = self.workers.min(queries.len());
        if workers <= 1 {
            let mut worker = BatchWorker::new(engine, &version, self.take_scratch());
            for (&ctx, out) in queries.iter().zip(results.iter_mut()) {
                worker.answer_into(ctx, mode, out);
            }
            ProbeCells::add(
                &self.probe.mask_resets,
                worker.scratch.buffers.take_mask_resets(),
            );
            ProbeCells::add(
                &self.probe.pool_draws,
                worker.scratch.buffers.take_pool_draws(),
            );
            self.put_scratch(worker.scratch);
        } else {
            // Contention-free fan-out: the result slots are pre-split into
            // disjoint `&mut` regions that workers claim chunk-by-chunk
            // from an atomic cursor — chunked work-stealing by index
            // ranges, no result lock anywhere. Chunks are a few queries
            // wide so a slow query does not serialise its neighbours
            // behind one worker.
            let regions = SlotRegions::new(results, chunk_len(queries.len(), workers));
            // Mask resets and lazy-shuffle draws are accumulated per
            // worker arena and folded into the probe once per worker —
            // one relaxed add each at scope exit, nothing on the query
            // path.
            let mask_resets = AtomicU64::new(0);
            let pool_draws = AtomicU64::new(0);
            let version = &*version;
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        // Each worker borrows a private scratch set from
                        // the pool: queries are allocation-free once the
                        // pool has warmed up to the worker fan-out.
                        let mut worker = BatchWorker::new(engine, version, self.take_scratch());
                        while let Some((range, slots)) = regions.claim() {
                            for (&ctx, out) in queries[range].iter().zip(slots.iter_mut()) {
                                worker.answer_into(ctx, mode, out);
                            }
                        }
                        mask_resets.fetch_add(
                            worker.scratch.buffers.take_mask_resets(),
                            Ordering::Relaxed,
                        );
                        pool_draws
                            .fetch_add(worker.scratch.buffers.take_pool_draws(), Ordering::Relaxed);
                        self.put_scratch(worker.scratch);
                    });
                }
            });
            ProbeCells::add(&self.probe.mask_resets, mask_resets.into_inner());
            ProbeCells::add(&self.probe.pool_draws, pool_draws.into_inner());
        }
        // Validate once at merge time, count-only: each answer is
        // consistent at the version's epoch by construction (versions are
        // immutable), so a conflict records bounded staleness rather than
        // forcing a batch-wide retry.
        if self.epoch.load(Ordering::Acquire) != version.epoch() {
            ProbeCells::add(&self.probe.epoch_conflicts, 1);
        }
        version.epoch()
    }
}

/// How a batch's queries are answered (decided once per batch).
#[derive(Clone, Copy)]
enum BatchMode {
    /// Full rerank off the complete merged order (all `n` ranks
    /// materialised per query).
    Full,
    /// Top-k off the complete merged order (the Uniform rule's per-page
    /// coin scan needs every slot).
    TopKMerged(usize),
    /// Top-k via per-shard candidate retrieval and the deterministic
    /// merge — no complete order touched.
    TopKShards(usize),
}

/// Chunk width for the batch fan-out: a handful of chunks per worker
/// amortises the atomic claim while still letting fast workers steal work
/// from slow ones.
fn chunk_len(queries: usize, workers: usize) -> usize {
    queries.div_ceil(workers * 4).max(1)
}

/// Disjoint `&mut` regions over a batch's result slots, claimed
/// chunk-by-chunk from an atomic cursor (chunked work-stealing by index
/// ranges). This is what replaces the old `Mutex<Vec<Option<Vec<u64>>>>`:
/// no lock is taken on the result path, and each slot is handed to exactly
/// one worker.
struct SlotRegions<'a> {
    base: *mut Vec<u64>,
    len: usize,
    chunk: usize,
    next: AtomicUsize,
    _slots: PhantomData<&'a mut [Vec<u64>]>,
}

// SAFETY: `SlotRegions` hands out raw-pointer-derived slices, but `claim`
// guarantees every chunk index is observed by exactly one thread (it comes
// from `fetch_add` on the cursor), and chunks are disjoint index ranges of
// one allocation that outlives `'a`. `Vec<u64>` is `Send`, so moving the
// exclusive regions across worker threads is sound.
unsafe impl Send for SlotRegions<'_> {}
unsafe impl Sync for SlotRegions<'_> {}

impl<'a> SlotRegions<'a> {
    fn new(slots: &'a mut [Vec<u64>], chunk: usize) -> Self {
        debug_assert!(chunk >= 1);
        SlotRegions {
            base: slots.as_mut_ptr(),
            len: slots.len(),
            chunk,
            next: AtomicUsize::new(0),
            _slots: PhantomData,
        }
    }

    /// Claim the next unclaimed chunk: its query-index range plus the
    /// matching exclusive result region. Returns `None` once all slots
    /// are handed out.
    fn claim(&self) -> Option<(Range<usize>, &'a mut [Vec<u64>])> {
        let chunk_index = self.next.fetch_add(1, Ordering::Relaxed);
        let start = chunk_index.checked_mul(self.chunk)?;
        if start >= self.len {
            return None;
        }
        let end = (start + self.chunk).min(self.len);
        // SAFETY: `fetch_add` yields each chunk index exactly once, so
        // `start..end` ranges never overlap across calls; `base..base+len`
        // stays valid and un-aliased for `'a` because `new` took the whole
        // slice `&'a mut`.
        let region = unsafe { std::slice::from_raw_parts_mut(self.base.add(start), end - start) };
        Some((start..end, region))
    }
}

/// Reusable scratch for one top-k query's retrieve→merge→rank round trip:
/// the per-shard rest candidates, the merged view, and the slot list the
/// merged rest flattens into. Owned per caller (a pooled sequential
/// scratch set, or one per batch worker), so steady-state top-k queries
/// allocate nothing.
#[derive(Debug, Default)]
struct TopKRetrieval {
    shards: Vec<ShardCandidates>,
    merged: MergedCandidates,
    rest_slots: Vec<usize>,
}

impl TopKRetrieval {
    /// Answer one top-`k` query from a published version's shard caches
    /// alone: retrieve each shard's rest prefix (`O(k)` per shard), merge
    /// them deterministically, and rank against that prefix plus the
    /// version's merged pool — the complete order is never read, and the
    /// ranked global slots resolve to document ids through the version's
    /// page table. Output is bit-identical to the length-`k` prefix of
    /// the full rerank.
    #[allow(clippy::too_many_arguments)]
    fn answer_into(
        &mut self,
        engine: &RankPromotionEngine,
        version: &PublishedVersion,
        context: QueryContext,
        k: usize,
        buffers: &mut RankBuffers,
        slots: &mut Vec<usize>,
        out: &mut Vec<u64>,
    ) {
        let limit = engine.config().candidate_prefix_len(k);
        version.collect_rest_candidates(limit, &mut self.shards);
        merge_shard_candidates_into(&self.shards, limit, &mut self.merged);
        self.rest_slots.clear();
        self.rest_slots
            .extend(self.merged.rest().iter().map(|p| p.slot));
        engine.rerank_top_k_retrieved_into(
            version.pool_slots(),
            &self.rest_slots,
            k,
            context,
            buffers,
            slots,
        );
        out.clear();
        out.extend(slots.iter().map(|&s| version.page_of(s).0));
    }
}

/// Per-worker state: a shared read-only published version plus private
/// scratch.
struct BatchWorker<'a> {
    engine: &'a RankPromotionEngine,
    version: &'a PublishedVersion,
    scratch: QueryScratch,
}

impl<'a> BatchWorker<'a> {
    /// Wrap a pooled scratch set: the arenas were grown by earlier
    /// queries and go back to the pool after the batch, so steady-state
    /// batches allocate nothing per batch (not even the first query's
    /// arena growth — that warm-up happened once per service).
    fn new(
        engine: &'a RankPromotionEngine,
        version: &'a PublishedVersion,
        scratch: QueryScratch,
    ) -> Self {
        BatchWorker {
            engine,
            version,
            scratch,
        }
    }

    /// Answer one query into `out` (cleared first) according to the
    /// batch's mode. Reuses the worker's arenas and `out`'s storage — no
    /// allocation once both have warmed up.
    fn answer_into(&mut self, context: QueryContext, mode: BatchMode, out: &mut Vec<u64>) {
        match mode {
            BatchMode::Full => self.engine.rerank_merged_into(
                self.version.pool_slots(),
                self.version.merged_order(),
                |s| self.version.in_pool(s),
                context,
                &mut self.scratch.buffers,
                &mut self.scratch.slots,
            ),
            BatchMode::TopKMerged(k) => self.engine.rerank_top_k_merged_into(
                self.version.pool_slots(),
                self.version.merged_order(),
                |s| self.version.in_pool(s),
                k,
                context,
                &mut self.scratch.buffers,
                &mut self.scratch.slots,
            ),
            BatchMode::TopKShards(k) => {
                return self.scratch.retrieval.answer_into(
                    self.engine,
                    self.version,
                    context,
                    k,
                    &mut self.scratch.buffers,
                    &mut self.scratch.slots,
                    out,
                );
            }
        }
        out.clear();
        out.extend(
            self.scratch
                .slots
                .iter()
                .map(|&s| self.version.page_of(s).0),
        );
    }
}

/// Default worker count: the machine's available parallelism (1 if
/// unknown).
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrp_ranking::{PromotionConfig, PromotionRule};

    fn corpus(n: u64) -> Vec<Document> {
        (0..n)
            .map(|i| {
                if i % 10 == 0 {
                    Document::unexplored(i)
                } else {
                    Document::established(i, 1.0 - i as f64 / (n as f64 + 1.0)).with_age(i % 200)
                }
            })
            .collect()
    }

    fn queries(q: u64) -> Vec<QueryContext> {
        (0..q)
            .map(|i| QueryContext::new(i * 3 + 1, i ^ 0x5A5A))
            .collect()
    }

    fn uniform_engine() -> RankPromotionEngine {
        RankPromotionEngine::new(PromotionConfig::new(PromotionRule::Uniform, 1, 0.3).unwrap())
    }

    #[test]
    fn batch_equals_sequential_engine_for_any_shard_and_worker_count() {
        let engine = RankPromotionEngine::recommended().with_seed(11);
        let docs = corpus(200);
        let qs = queries(23);
        let expected: Vec<Vec<u64>> = qs.iter().map(|&ctx| engine.rerank(&docs, ctx)).collect();
        for shards in [1usize, 2, 8] {
            for workers in [1usize, 2, 8] {
                let service = ShardedPromotionService::new(engine, shards).with_workers(workers);
                service.extend(docs.iter().copied());
                assert_eq!(
                    service.rerank_batch(&qs),
                    expected,
                    "{shards} shards, {workers} workers"
                );
            }
        }
    }

    #[test]
    fn rerank_one_matches_batch_of_one() {
        let engine = uniform_engine().with_seed(5);
        let service = ShardedPromotionService::new(engine, 4);
        service.extend(corpus(77));
        let ctx = QueryContext::from_strings("stacked deck", "session-1");
        let one = service.rerank_one(ctx);
        assert_eq!(service.rerank_batch(&[ctx]), vec![one]);
    }

    #[test]
    fn batch_results_are_stable_across_repeated_calls() {
        let service =
            ShardedPromotionService::new(RankPromotionEngine::recommended(), 3).with_workers(4);
        service.extend(corpus(150));
        let qs = queries(9);
        assert_eq!(service.rerank_batch(&qs), service.rerank_batch(&qs));
    }

    #[test]
    fn empty_batch_and_empty_store_are_fine() {
        let service = ShardedPromotionService::new(RankPromotionEngine::recommended(), 2);
        assert!(service.rerank_batch(&[]).is_empty());
        let out = service.rerank_batch(&queries(3));
        assert_eq!(out, vec![Vec::<u64>::new(); 3]);
        assert!(service.store().is_empty());
        assert!(service.rerank_top_k(QueryContext::new(1, 2), 5).is_empty());
    }

    #[test]
    fn empty_corpus_and_empty_batch_queries_charge_nothing() {
        // Regression for the probe over-counting bug: the old routing
        // charged `shard_retrievals += shards × queries` (and merged-path
        // work) *before* noticing the corpus was empty, booking
        // retrievals that never happened.
        for engine in [RankPromotionEngine::recommended(), uniform_engine()] {
            let service = ShardedPromotionService::new(engine, 4).with_workers(2);
            let qs = queries(3);
            let mut results = vec![vec![7u64; 4], vec![8u64; 2]];
            service.rerank_batch_top_k_into(&qs, 5, &mut results);
            assert_eq!(
                results,
                vec![Vec::<u64>::new(); 3],
                "stale reused result entries must be cleared"
            );
            service.rerank_batch_into(&qs, &mut results);
            service.rerank_top_k(qs[0], 5);
            service.rerank_one(qs[0]);
            let stats = service.serve_stats();
            assert_eq!(stats.batches, 2);
            assert_eq!(stats.queries, 8);
            assert_eq!(
                stats.shard_retrievals, 0,
                "an empty corpus performs no retrievals"
            );
            assert_eq!(stats.order_merges, 0);
            assert_eq!(stats.shard_repairs, 0);
            assert_eq!(stats.mask_resets, 0, "not even the Uniform coin scan runs");
            assert_eq!(
                stats.version_publications, 0,
                "an empty corpus serves the epoch-0 sentinel forever"
            );
            assert_eq!(stats.epoch_conflicts, 0);
        }
    }

    #[test]
    fn accessors_report_configuration() {
        let engine = RankPromotionEngine::recommended().with_seed(9);
        let service = ShardedPromotionService::new(engine, 6).with_workers(3);
        assert_eq!(service.engine(), engine);
        assert_eq!(service.store().shard_count(), 6);
        assert_eq!(service.workers(), 3);
        assert!(available_workers() >= 1);
    }

    #[test]
    fn steady_state_batches_pay_zero_sorts_and_zero_snapshot_rebuilds() {
        let service =
            ShardedPromotionService::new(RankPromotionEngine::recommended(), 4).with_workers(4);
        service.extend(corpus(300));
        let qs = queries(16);

        // Warm-up: the 300 inserted slots enter the shard orders via one
        // publication's repair, and the complete order is merged once for
        // the batch.
        service.rerank_batch(&qs);
        let warm = service.serve_stats();
        assert_eq!(warm.shard_repairs, 1);
        assert_eq!(warm.dirty_slots_repaired, 300);
        assert_eq!(warm.order_merges, 1);
        assert_eq!(warm.version_publications, 1);

        // Steady state, corpus unchanged: no repair, no re-merge, no sort,
        // no rebuild, no publication — and with a selective engine, no
        // per-query pool scan or mask reset either: every query reads the
        // persistent pool index.
        service.rerank_batch(&qs);
        service.rerank_batch(&qs);
        let steady = service.serve_stats();
        assert_eq!(steady.shard_repairs, 1, "clean batches must not repair");
        assert_eq!(steady.order_merges, 1, "clean batches must not re-merge");
        assert_eq!(
            steady.version_publications, 1,
            "clean batches must not publish"
        );
        assert_eq!(steady.snapshot_rebuilds, 0);
        assert_eq!(steady.full_sorts, 0);
        assert_eq!(steady.pool_rebuilds, 0);
        assert_eq!(steady.pool_repairs, 1);
        assert_eq!(steady.mask_resets, 0, "no query may scan the corpus");
        assert_eq!(steady.batches, 3);
        assert_eq!(steady.queries, 48);
        assert_eq!(steady.epoch_conflicts, 0, "no writer raced these batches");

        // A mutation dirties exactly the touched slots; the next batch
        // publishes once, repairs those, re-merges the order once, and
        // nothing else — still no sort, no rebuild, no pool rebuild.
        assert!(service.record_visit(0));
        assert!(service.update_popularity(7, 0.99));
        service.rerank_batch(&qs);
        let mutated = service.serve_stats();
        assert_eq!(mutated.shard_repairs, 2);
        assert_eq!(mutated.dirty_slots_repaired, 302);
        assert_eq!(mutated.order_merges, 2);
        assert_eq!(mutated.version_publications, 2);
        assert_eq!(mutated.snapshot_rebuilds, 0);
        assert_eq!(mutated.full_sorts, 0);
        assert_eq!(mutated.pool_rebuilds, 0);
        assert_eq!(mutated.pool_repairs, 2);
        assert_eq!(mutated.mask_resets, 0);
        assert_eq!(mutated.epoch_conflicts, 0);
    }

    #[test]
    fn top_k_on_a_clean_batch_never_scans_or_resets() {
        // The acceptance gate for the pooled top-k path: on a clean batch,
        // a selective engine's `rerank_top_k` performs zero full-corpus
        // pool derivations (mask resets), zero pool rebuilds and zero
        // complete-order merges, on the sequential and the fan-out paths
        // alike.
        let service =
            ShardedPromotionService::new(RankPromotionEngine::recommended(), 4).with_workers(4);
        service.extend(corpus(500));
        let qs = queries(32);
        service.rerank_batch(&qs); // absorb the warm-up publication
        let before = service.serve_stats();

        for (i, &ctx) in qs.iter().enumerate() {
            service.rerank_top_k(ctx, 1 + i % 16);
        }
        let mut results = Vec::new();
        service.rerank_batch_top_k_into(&qs, 10, &mut results);
        let after = service.serve_stats();
        assert_eq!(after.mask_resets, before.mask_resets);
        assert_eq!(after.pool_rebuilds, 0);
        assert_eq!(after.shard_repairs, before.shard_repairs);
        assert_eq!(after.order_merges, before.order_merges);
        assert_eq!(after.version_publications, before.version_publications);
        assert_eq!(after.queries, before.queries + 64);
    }

    #[test]
    fn selective_top_k_never_merges_the_complete_order() {
        // The acceptance gate for shard-local retrieval: a selective
        // engine's top-k traffic — batched or sequential, clean or
        // mutated — never merges (or otherwise consults) the complete
        // global order, and performs exactly one candidate retrieval per
        // shard per query.
        let shards = 4u64;
        let service =
            ShardedPromotionService::new(RankPromotionEngine::recommended(), shards as usize)
                .with_workers(4);
        service.extend(corpus(300));
        let qs = queries(16);

        let mut results = Vec::new();
        service.rerank_batch_top_k_into(&qs, 10, &mut results);
        for (i, &ctx) in qs.iter().enumerate() {
            service.rerank_top_k(ctx, 1 + i % 8);
        }
        assert!(service.record_visit(0));
        assert!(service.update_popularity(7, 0.99));
        service.rerank_batch_top_k_into(&qs, 10, &mut results);

        let stats = service.serve_stats();
        assert_eq!(stats.order_merges, 0, "no complete-order merge on top-k");
        assert_eq!(stats.shard_retrievals, shards * (16 + 16 + 16));
        assert_eq!(stats.snapshot_rebuilds, 0);
        assert_eq!(stats.full_sorts, 0);
        assert_eq!(stats.mask_resets, 0);
        // Two publications repaired dirt: the warm-up (300 inserted
        // slots) and the two mutations — there is only one tier, so the
        // top-k traffic left no deferred backlog behind.
        assert_eq!(stats.shard_repairs, 2);
        assert_eq!(stats.dirty_slots_repaired, 302);

        // The first full batch pays exactly the one deferred merge of the
        // complete order; the published version is already current.
        service.rerank_batch(&qs);
        let stats = service.serve_stats();
        assert_eq!(stats.order_merges, 1);
        assert_eq!(stats.shard_repairs, 2);
        assert_eq!(stats.dirty_slots_repaired, 302);
    }

    #[test]
    fn empty_batches_skip_repair_and_fan_out() {
        // Regression for the empty-batch edge: zero queries must not
        // exercise the region-claim path (`chunk_len`/`SlotRegions` are
        // defined over at least one slot) and must not trigger a
        // publication.
        let service =
            ShardedPromotionService::new(RankPromotionEngine::recommended(), 3).with_workers(4);
        service.extend(corpus(50));

        let mut results = vec![vec![1u64, 2, 3]];
        service.rerank_batch_into(&[], &mut results);
        assert!(results.is_empty(), "stale results are truncated away");
        service.rerank_batch_top_k_into(&[], 10, &mut results);
        assert!(results.is_empty());

        let stats = service.serve_stats();
        assert_eq!(stats.batches, 2, "empty batches are still counted");
        assert_eq!(stats.queries, 0);
        assert_eq!(
            stats.shard_repairs, 0,
            "nothing consulted, nothing repaired"
        );
        assert_eq!(stats.shard_retrievals, 0);
        assert_eq!(stats.order_merges, 0);
        assert_eq!(stats.version_publications, 0);

        // The pending warm-up dirt is published by the first real query.
        service.rerank_batch(&queries(2));
        assert_eq!(service.serve_stats().shard_repairs, 1);
        assert_eq!(service.serve_stats().version_publications, 1);
    }

    #[test]
    fn uniform_top_k_serves_from_the_merged_shard_order() {
        // The Uniform rule's per-page coins require every slot, so its
        // top-k traffic reads the complete merged order — assembled from
        // the shard caches, not from any corpus-wide snapshot — and pays
        // the merge once per published version, not per query.
        let service = ShardedPromotionService::new(uniform_engine(), 4).with_workers(2);
        service.extend(corpus(80));
        let qs = queries(6);
        let mut results = Vec::new();
        service.rerank_batch_top_k_into(&qs, 5, &mut results);
        service.rerank_top_k(qs[0], 5);
        let stats = service.serve_stats();
        assert_eq!(
            stats.shard_retrievals, 0,
            "no retrieval path without a maintained pool"
        );
        assert_eq!(stats.shard_repairs, 1, "one warm-up repair");
        assert_eq!(stats.order_merges, 1, "one merge serves the clean stretch");
        assert_eq!(stats.mask_resets, 7, "the coin scan stays mandatory");
        assert_eq!(stats.snapshot_rebuilds, 0);
        // And the answers are still the full-rerank prefix.
        let full = service.rerank_one(qs[0]);
        assert_eq!(results[0], full[..5]);
    }

    #[test]
    fn uniform_engines_still_pay_their_mandatory_per_query_coin_scan() {
        // The Uniform rule's pool is drawn per query — one coin per page is
        // part of the observable RNG stream — so the probe documents one
        // mask reset per query rather than pretending the scan is gone.
        let service = ShardedPromotionService::new(uniform_engine(), 2).with_workers(2);
        service.extend(corpus(100));
        let qs = queries(8);
        service.rerank_batch(&qs);
        service.rerank_top_k(qs[0], 5);
        let stats = service.serve_stats();
        assert_eq!(stats.mask_resets, 9, "one per query, none avoidable");
        assert_eq!(stats.pool_rebuilds, 0);
        assert_eq!(
            stats.pool_repairs, 0,
            "no pool index is maintained for an engine that never reads one"
        );
        assert!(service.pooled_slots().is_empty());
    }

    #[test]
    fn pooled_slots_tracks_mutations_incrementally() {
        let service = ShardedPromotionService::new(RankPromotionEngine::recommended(), 3);
        service.extend(corpus(50));
        let expected: Vec<usize> = (0..50).step_by(10).collect();
        assert_eq!(service.pooled_slots(), expected.as_slice());

        assert!(service.record_visit(10));
        service.insert(Document::unexplored(777));
        let expected = vec![0usize, 20, 30, 40, 50];
        assert_eq!(service.pooled_slots(), expected.as_slice());
        assert_eq!(service.serve_stats().pool_rebuilds, 0);
    }

    #[test]
    fn rebuild_from_store_is_observable_but_never_changes_answers() {
        let service =
            ShardedPromotionService::new(RankPromotionEngine::recommended(), 3).with_workers(2);
        service.extend(corpus(120));
        let qs = queries(6);
        let incremental = service.rerank_batch(&qs);

        service.rebuild_from_store();
        assert_eq!(service.serve_stats().snapshot_rebuilds, 1);
        assert_eq!(service.serve_stats().full_sorts, 1);
        assert_eq!(service.serve_stats().pool_rebuilds, 1);
        assert_eq!(
            service.rerank_batch(&qs),
            incremental,
            "a from-scratch rebuild must reproduce the repaired state exactly"
        );
        // The rebuild drained the dirty lists itself, so the publication
        // that followed charged no lazy repair — only the complete order
        // had to re-merge for the new version.
        assert_eq!(service.serve_stats().shard_repairs, 1);
        assert_eq!(service.serve_stats().order_merges, 2);
        assert_eq!(service.serve_stats().version_publications, 2);
    }

    #[test]
    fn mutations_change_answers_like_a_fresh_service() {
        let engine = RankPromotionEngine::recommended().with_seed(3);
        let service = ShardedPromotionService::new(engine, 4).with_workers(2);
        service.extend(corpus(120));
        let qs = queries(7);
        service.rerank_batch(&qs); // warm the incremental state

        assert!(service.record_visit(10), "seq 10 is the unexplored doc 10");
        assert!(service.update_popularity(55, 2.5));
        let incremental = service.rerank_batch(&qs);

        let fresh = ShardedPromotionService::new(engine, 4).with_workers(2);
        fresh.extend(service.store().snapshot());
        assert_eq!(incremental, fresh.rerank_batch(&qs));

        assert!(!service.record_visit(999), "unknown sequence is rejected");
    }

    #[test]
    fn inserts_between_batches_join_the_order_incrementally() {
        let engine = RankPromotionEngine::recommended().with_seed(8);
        let service = ShardedPromotionService::new(engine, 3).with_workers(3);
        service.extend(corpus(90));
        let qs = queries(5);
        service.rerank_batch(&qs);

        let seq = service.insert(Document::established(1_000, 0.42).with_age(17));
        assert_eq!(seq, 90);
        service.insert(Document::unexplored(1_001));
        let incremental = service.rerank_batch(&qs);

        let fresh = ShardedPromotionService::new(engine, 3).with_workers(3);
        fresh.extend(service.store().snapshot());
        assert_eq!(incremental, fresh.rerank_batch(&qs));
        assert_eq!(service.serve_stats().snapshot_rebuilds, 0);
        assert_eq!(service.serve_stats().full_sorts, 0);
    }

    #[test]
    fn top_k_equals_the_full_rerank_prefix() {
        let engine = RankPromotionEngine::recommended().with_seed(13);
        let service = ShardedPromotionService::new(engine, 4).with_workers(4);
        service.extend(corpus(150));
        let qs = queries(11);
        let full = service.rerank_batch(&qs);
        for k in [0usize, 1, 5, 10, 150, 500] {
            for (i, &ctx) in qs.iter().enumerate() {
                assert_eq!(
                    service.rerank_top_k(ctx, k),
                    full[i][..k.min(full[i].len())],
                    "query {i}, k={k}"
                );
            }
            let mut batch = Vec::new();
            service.rerank_batch_top_k_into(&qs, k, &mut batch);
            for (i, got) in batch.iter().enumerate() {
                assert_eq!(
                    got,
                    &full[i][..k.min(full[i].len())],
                    "batch query {i}, k={k}"
                );
            }
        }
    }

    #[test]
    fn uniform_top_k_equals_the_full_rerank_prefix() {
        // The merged-order top-k path (Uniform has no retrieval route)
        // must stay bit-identical to the full rerank's prefix too.
        let engine = uniform_engine().with_seed(21);
        let service = ShardedPromotionService::new(engine, 4).with_workers(4);
        service.extend(corpus(150));
        let qs = queries(7);
        let full = service.rerank_batch(&qs);
        for k in [0usize, 1, 5, 10, 150, 500] {
            for (i, &ctx) in qs.iter().enumerate() {
                assert_eq!(
                    service.rerank_top_k(ctx, k),
                    full[i][..k.min(full[i].len())],
                    "query {i}, k={k}"
                );
            }
            let mut batch = Vec::new();
            service.rerank_batch_top_k_into(&qs, k, &mut batch);
            for (i, got) in batch.iter().enumerate() {
                assert_eq!(
                    got,
                    &full[i][..k.min(full[i].len())],
                    "batch query {i}, k={k}"
                );
            }
        }
    }

    #[test]
    fn batch_into_reuses_result_arenas() {
        let service =
            ShardedPromotionService::new(RankPromotionEngine::recommended(), 2).with_workers(2);
        service.extend(corpus(64));
        let qs = queries(8);
        let mut results = Vec::new();
        service.rerank_batch_into(&qs, &mut results);
        let capacities: Vec<usize> = results.iter().map(Vec::capacity).collect();
        let expected = results.clone();
        service.rerank_batch_into(&qs, &mut results);
        assert_eq!(results, expected);
        assert_eq!(
            capacities,
            results.iter().map(Vec::capacity).collect::<Vec<_>>(),
            "inner result vectors must keep their storage across batches"
        );

        // Shrinking the batch truncates; growing it appends fresh slots.
        service.rerank_batch_into(&qs[..3], &mut results);
        assert_eq!(results.len(), 3);
        service.rerank_batch_into(&qs, &mut results);
        assert_eq!(results, expected);
    }

    #[test]
    fn v2_top_k_batches_draw_at_most_k_swaps_per_query() {
        // The serving half of the O(k)-draw contract: a v2 selective
        // engine's top-k traffic books at most `k` lazy-shuffle swap
        // draws per query — batched (any worker count) and sequential
        // alike — while a v1 engine books none (its eager shuffle is the
        // O(pool) cost v2 removes, not an instrumented draw).
        use rrp_core::EngineVersion;
        let k = 10usize;
        let qs = queries(16);
        let v1 = RankPromotionEngine::recommended().with_seed(17);
        let v2 = v1.with_version(EngineVersion::V2);
        let mut results = Vec::new();

        let service = ShardedPromotionService::new(v1, 4).with_workers(4);
        service.extend(corpus(300));
        service.rerank_batch_top_k_into(&qs, k, &mut results);
        service.rerank_top_k(qs[0], k);
        assert_eq!(service.serve_stats().pool_draws, 0, "v1 draws nothing");

        let service = ShardedPromotionService::new(v2, 4).with_workers(4);
        service.extend(corpus(300));
        service.rerank_batch_top_k_into(&qs, k, &mut results);
        let batched = service.serve_stats().pool_draws;
        assert!(batched > 0, "v2 promotions must register their draws");
        assert!(
            batched <= (k * qs.len()) as u64,
            "at most k draws per query: {batched} > {}",
            k * qs.len()
        );
        service.rerank_top_k(qs[0], k);
        let sequential = service.serve_stats().pool_draws - batched;
        assert!(sequential <= k as u64, "sequential path obeys the same cap");
        assert_eq!(
            service.serve_stats().mask_resets,
            0,
            "the lazy route still never scans the corpus"
        );
    }

    #[test]
    fn top_k_zero_charges_nothing_and_publishes_no_version() {
        // The pinned zero-rank edge: k = 0 answers from nothing, even on
        // a service with a full mutation backlog — no publication, no
        // repair, no retrieval, no merge.
        let service =
            ShardedPromotionService::new(RankPromotionEngine::recommended(), 3).with_workers(2);
        service.extend(corpus(60));
        assert!(service.rerank_top_k(QueryContext::new(1, 2), 0).is_empty());
        let mut results = vec![vec![9u64]];
        service.rerank_batch_top_k_into(&queries(4), 0, &mut results);
        assert_eq!(results, vec![Vec::<u64>::new(); 4]);
        let stats = service.serve_stats();
        assert_eq!(stats.queries, 5);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.version_publications, 0, "k = 0 must not publish");
        assert_eq!(stats.shard_repairs, 0);
        assert_eq!(stats.shard_retrievals, 0);
        assert_eq!(stats.order_merges, 0);
        assert_eq!(stats.epoch_conflicts, 0);
        // k > n is the whole full rerank (one publication, shared by both
        // calls).
        let full = service.rerank_one(QueryContext::new(1, 2));
        assert_eq!(service.rerank_top_k(QueryContext::new(1, 2), 500), full);
        assert_eq!(service.serve_stats().version_publications, 1);
    }

    #[test]
    fn mutation_handles_are_checked_before_any_state_changes() {
        // The seq→slot conversion is checked in one place (the store's
        // `slot_of`); a bad handle fails closed without bumping the epoch
        // or touching the serving tier.
        let service = ShardedPromotionService::new(RankPromotionEngine::recommended(), 2);
        service.extend(corpus(10));
        let before = service.epoch();
        assert!(!service.record_visit(u64::MAX));
        assert!(!service.record_visit(10));
        assert!(!service.update_popularity(10, 1.0));
        assert!(matches!(
            service.try_record_visit(u64::MAX),
            Err(crate::ServeError::UnknownSequence {
                seq: u64::MAX,
                len: 10
            })
        ));
        assert!(matches!(
            service.try_update_popularity(10, 0.5),
            Err(crate::ServeError::UnknownSequence { seq: 10, len: 10 })
        ));
        assert_eq!(
            service.epoch(),
            before,
            "failed mutations must not bump the epoch"
        );
    }

    #[test]
    fn versioned_reads_expose_the_published_epoch() {
        let engine = RankPromotionEngine::recommended().with_seed(4);
        let service = ShardedPromotionService::new(engine, 3).with_workers(2);
        assert_eq!(service.epoch(), 0);
        service.extend(corpus(40));
        assert_eq!(service.epoch(), 40, "every mutation bumps the epoch by one");
        let ctx = QueryContext::new(1, 2);
        let (epoch, ids) = service.rerank_one_versioned(ctx);
        assert_eq!(epoch, 40);
        assert_eq!(ids, service.rerank_one(ctx));
        let (epoch, top) = service.rerank_top_k_versioned(ctx, 5);
        assert_eq!(epoch, 40);
        assert_eq!(top, ids[..5]);
        let qs = queries(3);
        let (epoch, batch) = service.rerank_batch_versioned(&qs);
        assert_eq!(epoch, 40);
        assert_eq!(batch, service.rerank_batch(&qs));
        // A mutation advances the epoch; the next read publishes for it.
        assert!(service.record_visit(0));
        let (epoch, _) = service.rerank_one_versioned(ctx);
        assert_eq!(epoch, 41);
        let stats = service.serve_stats();
        assert_eq!(stats.version_publications, 2);
        assert_eq!(stats.epoch_conflicts, 0);
    }

    #[test]
    fn chunk_len_covers_all_indices() {
        for queries in [1usize, 2, 7, 64, 1000] {
            for workers in [1usize, 2, 8, 64] {
                let chunk = chunk_len(queries, workers);
                assert!(chunk >= 1);
                // Walking chunk-by-chunk covers 0..queries exactly.
                let mut covered = 0;
                let mut index = 0;
                while index * chunk < queries {
                    covered += ((index + 1) * chunk).min(queries) - index * chunk;
                    index += 1;
                }
                assert_eq!(covered, queries, "{queries} queries, {workers} workers");
            }
        }
    }
}
