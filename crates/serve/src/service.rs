//! The sharded batch rerank service.

use crate::store::ShardedStore;
use rrp_core::{Document, QueryContext, RankPromotionEngine};
use rrp_ranking::{PageStats, PopularityRanking, RankBuffers};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Serves randomized rank promotion over a sharded document store.
///
/// The service owns the corpus (partitioned across N shards by document-id
/// hash, as an index tier would be) and answers batches of queries on std
/// scoped threads. Three properties make it safe to scale:
///
/// 1. **Shard-count independence** — ranking is defined over the store's
///    canonical snapshot order, so 1-shard and 64-shard deployments answer
///    every query identically.
/// 2. **Worker-count independence** — each query's randomization is a pure
///    function of `(engine seed, query, session)`, never of scheduling, so
///    [`rerank_batch`](Self::rerank_batch) equals a sequential loop of
///    [`rerank_one`](Self::rerank_one) bit for bit at any worker count.
/// 3. **Batch-amortised sorting** — the popularity order of the corpus is
///    computed once per batch and shared read-only across workers; each
///    query then costs `O(n)` (pool scan + shuffle + coin-flip merge)
///    instead of `O(n log n)`, and per-worker scratch arenas keep the
///    per-query path allocation-free.
#[derive(Debug)]
pub struct ShardedPromotionService {
    engine: RankPromotionEngine,
    store: ShardedStore,
    workers: usize,
}

impl ShardedPromotionService {
    /// A service over an empty `shard_count`-way store (at least 1 shard),
    /// answering batches with up to [`available_workers`] threads.
    pub fn new(engine: RankPromotionEngine, shard_count: usize) -> Self {
        ShardedPromotionService {
            engine,
            store: ShardedStore::new(shard_count),
            workers: available_workers(),
        }
    }

    /// Set the number of batch worker threads (clamped to at least 1).
    /// Results are identical at every worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The rank-promotion engine in use.
    pub fn engine(&self) -> RankPromotionEngine {
        self.engine
    }

    /// The underlying sharded store.
    pub fn store(&self) -> &ShardedStore {
        &self.store
    }

    /// Number of batch worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Insert one document into its shard.
    pub fn insert(&mut self, document: Document) {
        self.store.insert(document);
    }

    /// Insert every document of an iterator, in order.
    pub fn extend(&mut self, documents: impl IntoIterator<Item = Document>) {
        self.store.extend(documents);
    }

    /// Answer one query sequentially: the canonical snapshot re-ranked by
    /// the engine. This is the reference the batch path is measured
    /// against — and must stay bit-identical to.
    pub fn rerank_one(&self, context: QueryContext) -> Vec<u64> {
        let snapshot = self.store.snapshot();
        self.engine.rerank(&snapshot, context)
    }

    /// Answer a batch of queries, fanning out across scoped worker
    /// threads. Per query, the returned document ids equal
    /// [`rerank_one`](Self::rerank_one) — and therefore
    /// [`RankPromotionEngine::rerank`] on the canonical snapshot —
    /// regardless of shard count, worker count, or scheduling.
    pub fn rerank_batch(&self, queries: &[QueryContext]) -> Vec<Vec<u64>> {
        if queries.is_empty() {
            return Vec::new();
        }

        // Per batch: assemble the canonical snapshot, its ranking
        // statistics, and the shared popularity order, once. The order
        // comes from the ranking crate's own policy (stats slots are
        // dense, so the ranked slots are the sorted index list), keeping
        // the serve layer bit-aligned with the policy's sort by
        // construction.
        let mut snapshot = Vec::new();
        self.store.snapshot_into(&mut snapshot);
        let mut stats: Vec<PageStats> = Vec::with_capacity(snapshot.len());
        RankPromotionEngine::document_stats(&snapshot, &mut stats);
        let mut sorted: Vec<usize> = Vec::with_capacity(stats.len());
        PopularityRanking.rank_order_into(&stats, &mut sorted);

        let workers = self.workers.min(queries.len());
        if workers <= 1 {
            let mut worker = BatchWorker::new(&self.engine, &snapshot, &stats, &sorted);
            return queries.iter().map(|&ctx| worker.answer(ctx)).collect();
        }

        let results: Mutex<Vec<Option<Vec<u64>>>> =
            Mutex::new((0..queries.len()).map(|_| None).collect());
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    // Each worker owns its scratch: queries after the first
                    // are allocation-free up to the result vector itself.
                    let mut worker = BatchWorker::new(&self.engine, &snapshot, &stats, &sorted);
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&ctx) = queries.get(index) else {
                            break;
                        };
                        let answer = worker.answer(ctx);
                        results.lock().expect("batch worker poisoned results")[index] =
                            Some(answer);
                    }
                });
            }
        });
        results
            .into_inner()
            .expect("batch worker poisoned results")
            .into_iter()
            .map(|r| r.expect("every query was answered"))
            .collect()
    }
}

/// Per-worker state: shared read-only snapshot plus private scratch.
struct BatchWorker<'a> {
    engine: &'a RankPromotionEngine,
    snapshot: &'a [Document],
    stats: &'a [PageStats],
    sorted: &'a [usize],
    buffers: RankBuffers,
    slots: Vec<usize>,
}

impl<'a> BatchWorker<'a> {
    fn new(
        engine: &'a RankPromotionEngine,
        snapshot: &'a [Document],
        stats: &'a [PageStats],
        sorted: &'a [usize],
    ) -> Self {
        BatchWorker {
            engine,
            snapshot,
            stats,
            sorted,
            buffers: RankBuffers::with_capacity(stats.len()),
            slots: Vec::with_capacity(stats.len()),
        }
    }

    fn answer(&mut self, context: QueryContext) -> Vec<u64> {
        self.engine.rerank_presorted_slots_into(
            self.stats,
            self.sorted,
            context,
            &mut self.buffers,
            &mut self.slots,
        );
        self.slots.iter().map(|&s| self.snapshot[s].id).collect()
    }
}

/// Default worker count: the machine's available parallelism (1 if
/// unknown).
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrp_ranking::{PromotionConfig, PromotionRule};

    fn corpus(n: u64) -> Vec<Document> {
        (0..n)
            .map(|i| {
                if i % 10 == 0 {
                    Document::unexplored(i)
                } else {
                    Document::established(i, 1.0 - i as f64 / (n as f64 + 1.0)).with_age(i % 200)
                }
            })
            .collect()
    }

    fn queries(q: u64) -> Vec<QueryContext> {
        (0..q)
            .map(|i| QueryContext::new(i * 3 + 1, i ^ 0x5A5A))
            .collect()
    }

    #[test]
    fn batch_equals_sequential_engine_for_any_shard_and_worker_count() {
        let engine = RankPromotionEngine::recommended().with_seed(11);
        let docs = corpus(200);
        let qs = queries(23);
        let expected: Vec<Vec<u64>> = qs.iter().map(|&ctx| engine.rerank(&docs, ctx)).collect();
        for shards in [1usize, 2, 8] {
            for workers in [1usize, 2, 8] {
                let mut service =
                    ShardedPromotionService::new(engine, shards).with_workers(workers);
                service.extend(docs.iter().copied());
                assert_eq!(
                    service.rerank_batch(&qs),
                    expected,
                    "{shards} shards, {workers} workers"
                );
            }
        }
    }

    #[test]
    fn rerank_one_matches_batch_of_one() {
        let engine =
            RankPromotionEngine::new(PromotionConfig::new(PromotionRule::Uniform, 1, 0.3).unwrap())
                .with_seed(5);
        let mut service = ShardedPromotionService::new(engine, 4);
        service.extend(corpus(77));
        let ctx = QueryContext::from_strings("stacked deck", "session-1");
        assert_eq!(service.rerank_batch(&[ctx]), vec![service.rerank_one(ctx)]);
    }

    #[test]
    fn batch_results_are_stable_across_repeated_calls() {
        let mut service =
            ShardedPromotionService::new(RankPromotionEngine::recommended(), 3).with_workers(4);
        service.extend(corpus(150));
        let qs = queries(9);
        assert_eq!(service.rerank_batch(&qs), service.rerank_batch(&qs));
    }

    #[test]
    fn empty_batch_and_empty_store_are_fine() {
        let service = ShardedPromotionService::new(RankPromotionEngine::recommended(), 2);
        assert!(service.rerank_batch(&[]).is_empty());
        let out = service.rerank_batch(&queries(3));
        assert_eq!(out, vec![Vec::<u64>::new(); 3]);
        assert!(service.store().is_empty());
    }

    #[test]
    fn accessors_report_configuration() {
        let engine = RankPromotionEngine::recommended().with_seed(9);
        let service = ShardedPromotionService::new(engine, 6).with_workers(3);
        assert_eq!(service.engine(), engine);
        assert_eq!(service.store().shard_count(), 6);
        assert_eq!(service.workers(), 3);
        assert!(available_workers() >= 1);
    }
}
