//! The durable serving wrapper: every mutation is appended to a
//! write-ahead log before it touches memory, periodic snapshots bound
//! recovery time, and [`DurableService::open`] rebuilds **bit-identical**
//! serving state from disk after a crash.
//!
//! ## State machine
//!
//! ```text
//!            ┌──────────────── mutation ────────────────┐
//!            │ 1. validate (unknown seq → ServeError,   │
//!            │    nothing logged)                       │
//!            │ 2. append event to WAL  ──failure──▶ typed error,
//!            │ 3. apply to in-memory service            │  state unchanged
//!            │ 4. every `snapshot_every` events:        │
//!            │    sync WAL, write snapshot atomically   │
//!            └──────────────────────────────────────────┘
//!
//!            ┌──────────────── recovery ────────────────┐
//!            │ 1. read + CRC-verify snapshot            │
//!            │    (corrupt/missing → start empty,       │
//!            │     replay the whole log instead)        │
//!            │ 2. replay the log tail (events ≥ the     │
//!            │    snapshot's high-water mark)           │
//!            │ 3. classify the tail: torn final write   │
//!            │    dropped cleanly; CRC failure truncates│
//!            │    at the first bad record, loss counted │
//!            │ 4. truncate the log to its valid prefix, │
//!            │    resume appending                      │
//!            └──────────────────────────────────────────┘
//! ```
//!
//! Replay reproduces bit-identical output because every serving answer is
//! a pure function of (engine seed, query, session) over the store's
//! canonical order, and both the snapshot (exact-bit floats through the
//! shortest-round-trip JSON codec) and the log (floats as IEEE bit
//! patterns) preserve that state exactly — the crash-recovery conformance
//! suite pins recovered output against an uncrashed twin across shard ×
//! worker × policy × engine-version grids.
//!
//! The log is retained across snapshots (a snapshot only moves the replay
//! start), so any *prefix* of history can be replayed — the time-travel
//! property pinned by the prefix-replay suite.

use crate::error::ServeError;
use crate::service::{ServeStats, ShardedPromotionService, StoreGuard};
use crate::store::ShardedStore;
use rrp_core::{Document, QueryContext, RankPromotionEngine, ShardedCorpusCache};
use rrp_wal::fault::{Failpoint, FailpointSink};
use rrp_wal::snapshot::{read_snapshot, write_snapshot_atomic};
use rrp_wal::{
    create_log_file, resume_log_file, FileSink, TailStatus, WalError, WalEvent, WalReader,
    WalWriter,
};
use serde::{Deserialize, Serialize, Value};
use std::path::{Path, PathBuf};

/// File name of the log inside a durable directory.
pub(crate) const WAL_FILE: &str = "wal.log";
/// File name of the snapshot inside a durable directory.
pub(crate) const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Default mutation count between automatic snapshots.
const DEFAULT_SNAPSHOT_EVERY: u64 = 1024;

/// What [`DurableService::open`] found on disk and what it did about it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a verified snapshot seeded the state (false = started
    /// empty and replayed the log from its first event).
    pub snapshot_loaded: bool,
    /// Whether a snapshot file existed but failed verification and was
    /// recovered *around* by replaying the full log instead.
    pub snapshot_fallback: bool,
    /// Events replayed from the log onto the starting state.
    pub events_replayed: u64,
    /// Events lost to a corrupt record (0 for a clean or merely torn
    /// log): the first failed record plus every complete frame after it,
    /// counted best-effort by the reader.
    pub events_lost: u64,
    /// Bytes discarded past the log's valid prefix (torn tail, corrupt
    /// tail, or an unreadable log that had to be reset).
    pub bytes_dropped: u64,
    /// Whether the log file had to be reset — recreated empty, with
    /// appends resuming at the snapshot's high-water mark — because it
    /// could not be appended to as found: an unreadable header, an
    /// unsupported format version, or a log that ends *before* the
    /// snapshot's mark (appending there would leave a sequence gap in
    /// the file). The discarded bytes are counted in
    /// [`bytes_dropped`](Self::bytes_dropped). Regression guard: the
    /// behind-snapshot reset used to happen silently.
    pub log_reset: bool,
}

/// [`ShardedPromotionService`] behind a write-ahead log: mutations are
/// durable, queries are served from the same in-memory tier, and
/// [`open`](Self::open) recovers bit-identical state after a crash.
pub struct DurableService {
    inner: ShardedPromotionService,
    wal: WalWriter,
    snapshot_path: PathBuf,
    snapshot_every: u64,
    events_since_snapshot: u64,
    wal_appends: u64,
    snapshots_written: u64,
    events_replayed: u64,
}

impl DurableService {
    /// Open (or create) the durable service rooted at `dir`: load and
    /// verify the snapshot if one exists, replay the log tail, truncate
    /// any torn or corrupt suffix, and resume appending. The requested
    /// `engine` and `shard_count` must match a pre-existing snapshot —
    /// recovering under a different deployment configuration is a typed
    /// error, not silently divergent state.
    pub fn open(
        dir: &Path,
        engine: RankPromotionEngine,
        shard_count: usize,
    ) -> Result<(Self, RecoveryReport), ServeError> {
        Self::open_with_failpoint(dir, engine, shard_count, Failpoint::new())
    }

    /// [`open`](Self::open) with an armed-able [`Failpoint`] interposed on
    /// the append path — the fault-injection entry used by the recovery
    /// tests. A disarmed failpoint (the default) changes nothing.
    pub fn open_with_failpoint(
        dir: &Path,
        engine: RankPromotionEngine,
        shard_count: usize,
        failpoint: Failpoint,
    ) -> Result<(Self, RecoveryReport), ServeError> {
        std::fs::create_dir_all(dir).map_err(WalError::from)?;
        let wal_path = dir.join(WAL_FILE);
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let mut report = RecoveryReport::default();

        // 1. The snapshot, if one verifies (shared with the replica
        // bootstrap — see `bootstrap_snapshot`).
        let boot = bootstrap_snapshot(&snapshot_path, engine, shard_count)?;
        let next_event = boot.hwm;
        let inner = boot.service;
        report.snapshot_loaded = boot.snapshot_loaded;
        report.snapshot_fallback = boot.snapshot_fallback;

        // 2–3. Replay the tail and classify how the log ends.
        let mut cursor = ReplayCursor::new(next_event);
        let mut log_state = match WalReader::open(&wal_path) {
            Ok(mut reader) => {
                while let Some((seq, event)) = reader.next_event().map_err(ServeError::from)? {
                    cursor.offer(&inner, seq, &event)?;
                }
                match reader.tail() {
                    TailStatus::Clean => {}
                    TailStatus::TornWrite { dropped_bytes } => {
                        report.bytes_dropped += dropped_bytes;
                    }
                    TailStatus::Corrupt {
                        events_lost,
                        dropped_bytes,
                        ..
                    } => {
                        report.events_lost += events_lost;
                        report.bytes_dropped += dropped_bytes;
                    }
                }
                // Where appending must resume. The reader reports the
                // sequence one past its last verified record; a scan that
                // yielded records but cannot say where they end would be
                // a sequencing bug, surfaced as a typed error instead of
                // silently restarting numbering at 0 (the old
                // `unwrap_or(0)` swallowed it — appends would then fork
                // the log's history at sequence 0).
                let log_next = match (reader.next_seq(), cursor.first_seq()) {
                    (Some(next), _) => next,
                    (None, Some(first)) => {
                        return Err(ServeError::Recovery {
                            detail: format!(
                                "log yielded records starting at event {first} but reports \
                                 no resume sequence"
                            ),
                        });
                    }
                    // An empty valid prefix: resume at the snapshot mark.
                    (None, None) => next_event,
                };
                Some((reader.valid_len(), log_next))
            }
            // No log yet: a fresh directory (or snapshot-only survivor).
            Err(WalError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => None,
            // A log whose *header* is unreadable cannot be scanned at
            // all. The snapshot state (possibly empty) stands; the log is
            // reset rather than appended to blindly.
            Err(WalError::BadHeader { .. }) | Err(WalError::UnsupportedVersion { .. }) => {
                report.log_reset = true;
                report.bytes_dropped += std::fs::metadata(&wal_path).map(|m| m.len()).unwrap_or(0);
                None
            }
            Err(e) => return Err(e.into()),
        };

        // A log that ends before the snapshot's high-water mark cannot be
        // appended to at `next_event` without leaving a sequence gap in
        // the file — reset it and let the snapshot carry the past. The
        // discarded valid prefix joins whatever tail bytes were already
        // counted, so `bytes_dropped` covers the whole file.
        if let Some((valid_len, log_next)) = log_state {
            if log_next < next_event {
                report.log_reset = true;
                report.bytes_dropped += valid_len;
                log_state = None;
            }
        }

        // 4. Truncate to the valid prefix and resume appending.
        let (file, writer_next) = match log_state {
            Some((valid_len, log_next)) => (resume_log_file(&wal_path, valid_len)?, log_next),
            None => (create_log_file(&wal_path)?, next_event),
        };
        debug_assert!(writer_next >= next_event);
        let sink = FailpointSink::new(FileSink::new(file), failpoint);
        let wal = WalWriter::new(Box::new(sink), writer_next);

        let replayed = cursor.applied();
        report.events_replayed = replayed;
        let service = DurableService {
            inner,
            wal,
            snapshot_path,
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
            // The snapshot on disk is `replayed` events behind the log;
            // seeding the cadence counter keeps the next automatic
            // snapshot on schedule. Starting at 0 here would let the
            // replay tail grow to ~2× `snapshot_every` across repeated
            // crashes.
            events_since_snapshot: replayed,
            wal_appends: 0,
            snapshots_written: 0,
            events_replayed: replayed,
        };
        Ok((service, report))
    }

    /// Set the mutation count between automatic snapshots (clamped to at
    /// least 1). Lower bounds recovery replay at the price of more
    /// snapshot writes.
    pub fn with_snapshot_every(mut self, every: u64) -> Self {
        self.snapshot_every = every.max(1);
        self
    }

    /// Set the worker count of the wrapped service (see
    /// [`ShardedPromotionService::with_workers`]).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.inner = self.inner.with_workers(workers);
        self
    }

    /// The wrapped in-memory service — every query path is served from
    /// here, unchanged (reads are never logged).
    pub fn service(&self) -> &ShardedPromotionService {
        &self.inner
    }

    /// Mutable access to the wrapped service. Since the epoch-versioned
    /// refactor every rerank *and* mutation path takes `&self`, so this
    /// exists only for builder-style reconfiguration; applying mutations
    /// through [`service`](Self::service) (or this) would bypass the log,
    /// so don't.
    pub fn service_mut(&mut self) -> &mut ShardedPromotionService {
        &mut self.inner
    }

    /// The underlying store (read-only; holds the writer lock while the
    /// guard lives, so drop it before mutating or snapshotting).
    pub fn store(&self) -> StoreGuard<'_> {
        self.inner.store()
    }

    /// The wrapped service's counters plus the durability probes
    /// ([`ServeStats::wal_appends`], [`ServeStats::snapshots_written`],
    /// [`ServeStats::events_replayed`]).
    pub fn serve_stats(&self) -> ServeStats {
        let mut stats = self.inner.serve_stats();
        stats.wal_appends = self.wal_appends;
        stats.snapshots_written = self.snapshots_written;
        stats.events_replayed = self.events_replayed;
        stats
    }

    /// Durably insert one document: the insert event is appended to the
    /// log first, then applied in memory. On an append failure nothing is
    /// applied and nothing is logged — the error is typed, the state
    /// consistent.
    pub fn insert(&mut self, document: Document) -> Result<u64, ServeError> {
        self.log_event(&WalEvent::Insert(document))?;
        let seq = self.inner.insert(document);
        self.maybe_snapshot()?;
        Ok(seq)
    }

    /// Durably insert every document of an iterator, in order. Stops at
    /// the first failed append (documents before it are in).
    pub fn extend(
        &mut self,
        documents: impl IntoIterator<Item = Document>,
    ) -> Result<(), ServeError> {
        for document in documents {
            self.insert(document)?;
        }
        Ok(())
    }

    /// Durably record a user visit. An unknown sequence is rejected
    /// *before* anything reaches the log, so the log only ever holds
    /// replayable events.
    pub fn record_visit(&mut self, seq: u64) -> Result<(), ServeError> {
        self.check_seq(seq)?;
        self.log_event(&WalEvent::Visit { seq })?;
        self.inner.try_record_visit(seq)?;
        self.maybe_snapshot()
    }

    /// Durably replace a popularity score. An unknown sequence is
    /// rejected before anything reaches the log.
    pub fn update_popularity(&mut self, seq: u64, popularity: f64) -> Result<(), ServeError> {
        self.check_seq(seq)?;
        self.log_event(&WalEvent::SetPopularity { seq, popularity })?;
        self.inner.try_update_popularity(seq, popularity)?;
        self.maybe_snapshot()
    }

    /// Write a snapshot right now: sync the log, serialise the engine,
    /// store and serving tier, and rename it into place atomically. A
    /// crash at any instant leaves either the previous snapshot or this
    /// one.
    pub fn snapshot_now(&mut self) -> Result<(), ServeError> {
        self.wal.sync()?;
        let payload = encode_snapshot(&self.inner, self.wal.next_seq())?;
        write_snapshot_atomic(&self.snapshot_path, payload.as_bytes())?;
        self.snapshots_written += 1;
        self.events_since_snapshot = 0;
        Ok(())
    }

    /// The leader-side replication handoff: flush the log all the way to
    /// disk and return the sequence one past the last durable event —
    /// the mark a follower tailing this directory can reach. After this
    /// returns, a `ReplicaService::catch_up` over the same directory is
    /// guaranteed to see every event below the returned mark (the frames
    /// are fully visible to same-machine readers even before the sync;
    /// the sync makes the handoff crash-durable).
    pub fn sync_for_followers(&mut self) -> Result<u64, ServeError> {
        self.wal.sync()?;
        Ok(self.wal.next_seq())
    }

    /// Reject mutations against sequences the store never issued, before
    /// they can be logged.
    fn check_seq(&self, seq: u64) -> Result<(), ServeError> {
        if self.inner.store().get(seq).is_none() {
            return Err(ServeError::UnknownSequence {
                seq,
                len: self.inner.store().len() as u64,
            });
        }
        Ok(())
    }

    /// Append one event; accounting only happens on success.
    fn log_event(&mut self, event: &WalEvent) -> Result<(), ServeError> {
        self.wal.append(event)?;
        self.wal_appends += 1;
        self.events_since_snapshot += 1;
        Ok(())
    }

    /// The periodic snapshot trigger on the mutation path.
    fn maybe_snapshot(&mut self) -> Result<(), ServeError> {
        if self.events_since_snapshot >= self.snapshot_every {
            self.snapshot_now()?;
        }
        Ok(())
    }

    // ── Serving delegates ───────────────────────────────────────────────
    // Queries never touch the log; these forward to the wrapped service
    // so the common paths don't need `service_mut` at every call site.

    /// See [`ShardedPromotionService::rerank_one`].
    pub fn rerank_one(&self, ctx: QueryContext) -> Vec<u64> {
        self.inner.rerank_one(ctx)
    }

    /// See [`ShardedPromotionService::rerank_top_k`].
    pub fn rerank_top_k(&self, ctx: QueryContext, k: usize) -> Vec<u64> {
        self.inner.rerank_top_k(ctx, k)
    }

    /// See [`ShardedPromotionService::rerank_batch`].
    pub fn rerank_batch(&self, queries: &[QueryContext]) -> Vec<Vec<u64>> {
        self.inner.rerank_batch(queries)
    }

    /// See [`ShardedPromotionService::rerank_batch_top_k_into`].
    pub fn rerank_batch_top_k_into(
        &self,
        queries: &[QueryContext],
        k: usize,
        results: &mut Vec<Vec<u64>>,
    ) {
        self.inner.rerank_batch_top_k_into(queries, k, results)
    }
}

/// What the snapshot half of recovery produced: the seeded service and
/// where log replay must pick up. Shared by [`DurableService::open`] and
/// the replica bootstrap (`crate::replica`).
pub(crate) struct SnapshotBootstrap {
    /// The service, seeded from the snapshot (or empty).
    pub(crate) service: ShardedPromotionService,
    /// The event sequence the snapshot is current through: replay
    /// applies events at or past this mark.
    pub(crate) hwm: u64,
    /// Whether a verified snapshot seeded the state.
    pub(crate) snapshot_loaded: bool,
    /// Whether a snapshot existed but failed verification (recovery goes
    /// around it: the log holds full history, snapshots never truncate
    /// it).
    pub(crate) snapshot_fallback: bool,
}

/// Load and verify the snapshot at `snapshot_path`, if one exists, and
/// seed a service from it. A snapshot that exists but fails verification
/// is recovered *around* — start empty, replay everything; a snapshot
/// that verifies but belongs to a different deployment (engine, shard
/// count) is a typed error.
pub(crate) fn bootstrap_snapshot(
    snapshot_path: &Path,
    engine: RankPromotionEngine,
    shard_count: usize,
) -> Result<SnapshotBootstrap, ServeError> {
    match read_snapshot(snapshot_path) {
        Ok(Some(payload)) => {
            let state = decode_snapshot(&payload, &engine, shard_count)?;
            Ok(SnapshotBootstrap {
                service: ShardedPromotionService::from_parts(engine, state.store, state.shards),
                hwm: state.next_event,
                snapshot_loaded: true,
                snapshot_fallback: false,
            })
        }
        Ok(None) => Ok(SnapshotBootstrap {
            service: ShardedPromotionService::try_new(engine, shard_count)?,
            hwm: 0,
            snapshot_loaded: false,
            snapshot_fallback: false,
        }),
        Err(_) => Ok(SnapshotBootstrap {
            service: ShardedPromotionService::try_new(engine, shard_count)?,
            hwm: 0,
            snapshot_loaded: false,
            snapshot_fallback: true,
        }),
    }
}

/// The resumable replay loop shared by [`DurableService::open`] and the
/// replica: offered records below the snapshot's high-water mark are
/// already part of the bootstrapped state and skipped; records at or
/// past it are applied. The first record seen is checked against the
/// mark — a log that starts *past* it is missing history, and replaying
/// it would silently skip events.
pub(crate) struct ReplayCursor {
    hwm: u64,
    first_seq: Option<u64>,
    applied: u64,
}

impl ReplayCursor {
    /// A cursor replaying onto state current through `hwm`.
    pub(crate) fn new(hwm: u64) -> Self {
        ReplayCursor {
            hwm,
            first_seq: None,
            applied: 0,
        }
    }

    /// Check the next record's place in the replay without applying it:
    /// `Ok(true)` = past the snapshot mark (apply it, or hold it back),
    /// `Ok(false)` = already covered by the snapshot, `Err` = the log is
    /// missing history.
    pub(crate) fn admit(&mut self, seq: u64) -> Result<bool, ServeError> {
        if self.first_seq.is_none() {
            self.first_seq = Some(seq);
            if seq > self.hwm {
                return Err(ServeError::Recovery {
                    detail: format!(
                        "log starts at event {seq} but the snapshot only covers events \
                         before {}: history is missing",
                        self.hwm
                    ),
                });
            }
        }
        Ok(seq >= self.hwm)
    }

    /// Offer the next record from the log, in log order. Returns whether
    /// it was applied (false = covered by the snapshot).
    pub(crate) fn offer(
        &mut self,
        service: &ShardedPromotionService,
        seq: u64,
        event: &WalEvent,
    ) -> Result<bool, ServeError> {
        if !self.admit(seq)? {
            return Ok(false);
        }
        apply_event(service, event)?;
        self.applied += 1;
        Ok(true)
    }

    /// Events applied so far (offers past the snapshot mark).
    pub(crate) fn applied(&self) -> u64 {
        self.applied
    }

    /// The sequence of the first record offered, if any.
    pub(crate) fn first_seq(&self) -> Option<u64> {
        self.first_seq
    }
}

/// The serialized form of a snapshot payload: engine, store, serving
/// tier, and the event sequence the snapshot is current through.
struct SnapshotState {
    store: ShardedStore,
    shards: ShardedCorpusCache,
    next_event: u64,
}

fn encode_snapshot(
    service: &ShardedPromotionService,
    next_event: u64,
) -> Result<String, ServeError> {
    // One writer-lock scope covers both halves: taking `store()` and a
    // second guard in the same expression would deadlock on the
    // non-reentrant writer mutex.
    let (store, shards) =
        service.with_writer(|store, shards| (store.to_value(), shards.to_value()));
    let value = Value::Map(vec![
        ("engine".to_string(), service.engine().to_value()),
        ("store".to_string(), store),
        ("shards".to_string(), shards),
        ("next_event".to_string(), next_event.to_value()),
    ]);
    serde_json::to_string(&value).map_err(|e| ServeError::Recovery {
        detail: format!("snapshot serialisation failed: {e}"),
    })
}

fn decode_snapshot(
    payload: &[u8],
    engine: &RankPromotionEngine,
    shard_count: usize,
) -> Result<SnapshotState, ServeError> {
    let recovery = |detail: String| ServeError::Recovery { detail };
    let text = std::str::from_utf8(payload)
        .map_err(|e| recovery(format!("snapshot is not UTF-8: {e}")))?;
    let value: Value = serde_json::from_str(text)
        .map_err(|e| recovery(format!("snapshot is not valid JSON: {e}")))?;
    let field = |name: &str| {
        value
            .get(name)
            .ok_or_else(|| recovery(format!("snapshot is missing the `{name}` field")))
    };
    let stored_engine = RankPromotionEngine::from_value(field("engine")?)
        .map_err(|e| recovery(format!("snapshot engine: {e}")))?;
    // The engine (config, seed, version) defines every RNG stream; a
    // snapshot from a different engine would replay into silently
    // different rankings, so the mismatch is surfaced instead.
    if stored_engine.to_value() != engine.to_value() {
        return Err(recovery(
            "snapshot was written by a different engine configuration".to_string(),
        ));
    }
    let store = ShardedStore::from_value(field("store")?)
        .map_err(|e| recovery(format!("snapshot store: {e}")))?;
    if store.shard_count() != shard_count {
        return Err(recovery(format!(
            "snapshot has {} shards, the service was opened with {shard_count}",
            store.shard_count()
        )));
    }
    let shards = ShardedCorpusCache::from_value(field("shards")?)
        .map_err(|e| recovery(format!("snapshot serving tier: {e}")))?;
    if shards.len() != store.len() {
        return Err(recovery(format!(
            "snapshot serving tier covers {} slots but the store holds {} documents",
            shards.len(),
            store.len()
        )));
    }
    let next_event = u64::from_value(field("next_event")?)
        .map_err(|e| recovery(format!("snapshot next_event: {e}")))?;
    Ok(SnapshotState {
        store,
        shards,
        next_event,
    })
}

/// Apply one replayed event. Events were validated before they were
/// logged, so a failure here means the log and snapshot do not belong
/// together — a typed recovery error, never a panic.
pub(crate) fn apply_event(
    service: &ShardedPromotionService,
    event: &WalEvent,
) -> Result<(), ServeError> {
    let result = match *event {
        WalEvent::Insert(document) => {
            service.insert(document);
            Ok(())
        }
        WalEvent::Visit { seq } => service.try_record_visit(seq),
        WalEvent::SetPopularity { seq, popularity } => {
            service.try_update_popularity(seq, popularity)
        }
    };
    result.map_err(|e| ServeError::Recovery {
        detail: format!("replay could not apply {event:?}: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrp_core::RankPromotionEngine;
    use rrp_wal::WalReader;
    use std::path::PathBuf;

    fn engine() -> RankPromotionEngine {
        RankPromotionEngine::recommended().with_seed(42)
    }

    /// A unique scratch directory, cleaned up on drop.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(name: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("rrp-durable-{name}-{}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            std::fs::create_dir_all(&dir).unwrap();
            Scratch(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }

        fn wal_path(&self) -> PathBuf {
            self.0.join(WAL_FILE)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    fn doc(i: u64) -> Document {
        Document::established(i, 0.9 - i as f64 * 0.01).with_age(i)
    }

    /// Byte length of the log's valid prefix after `events` records.
    fn boundary_after(path: &Path, events: usize) -> u64 {
        let mut reader = WalReader::open(path).unwrap();
        for _ in 0..events {
            reader.next_event().unwrap().unwrap();
        }
        reader.valid_len()
    }

    fn truncate_log(path: &Path, len: u64) {
        let file = std::fs::OpenOptions::new().write(true).open(path).unwrap();
        file.set_len(len).unwrap();
    }

    #[test]
    fn extend_batches_snapshot_exactly_on_cadence() {
        let dir = Scratch::new("cadence");
        let (svc, _) = DurableService::open(dir.path(), engine(), 2).unwrap();
        let mut svc = svc.with_snapshot_every(4);
        // A 10-document batch crosses the threshold twice mid-batch:
        // snapshots fire at events 4 and 8, never doubled, never skipped.
        svc.extend((0..10).map(doc)).unwrap();
        assert_eq!(svc.serve_stats().snapshots_written, 2);
        assert_eq!(svc.events_since_snapshot, 2);
        // Two more mutations reach the threshold again, exactly once.
        svc.insert(doc(10)).unwrap();
        assert_eq!(svc.serve_stats().snapshots_written, 2);
        svc.record_visit(0).unwrap();
        assert_eq!(svc.serve_stats().snapshots_written, 3);
        assert_eq!(svc.events_since_snapshot, 0);
    }

    #[test]
    fn recovery_seeds_the_cadence_counter_from_the_replayed_tail() {
        let dir = Scratch::new("cadence-recovery");
        {
            let (svc, _) = DurableService::open(dir.path(), engine(), 2).unwrap();
            let mut svc = svc.with_snapshot_every(4);
            svc.extend((0..6).map(doc)).unwrap(); // snapshot at 4, then 2 more
            assert_eq!(svc.serve_stats().snapshots_written, 1);
        } // crash
        let (svc, report) = DurableService::open(dir.path(), engine(), 2).unwrap();
        assert_eq!(report.events_replayed, 2);
        // The snapshot on disk is 2 events behind the log; the counter
        // says so, and the next automatic snapshot stays on the original
        // schedule (event 8) instead of drifting to event 10.
        assert_eq!(svc.events_since_snapshot, 2);
        let mut svc = svc.with_snapshot_every(4);
        svc.insert(doc(6)).unwrap();
        assert_eq!(svc.serve_stats().snapshots_written, 0);
        svc.insert(doc(7)).unwrap();
        assert_eq!(svc.serve_stats().snapshots_written, 1);
        drop(svc);
        let (_, report) = DurableService::open(dir.path(), engine(), 2).unwrap();
        assert_eq!(report.events_replayed, 0, "the snapshot is current again");
    }

    #[test]
    fn a_log_behind_the_snapshot_resets_with_reported_bytes() {
        let dir = Scratch::new("behind-snapshot");
        {
            let (mut svc, _) = DurableService::open(dir.path(), engine(), 2).unwrap();
            svc.extend((0..8).map(doc)).unwrap();
            svc.snapshot_now().unwrap(); // high-water mark 8
        }
        // Cut the log back to its first three events: everything it still
        // holds is older than the snapshot's mark.
        let keep = boundary_after(&dir.wal_path(), 3);
        truncate_log(&dir.wal_path(), keep);

        let (mut svc, report) = DurableService::open(dir.path(), engine(), 2).unwrap();
        // Regression: this reset used to be completely silent.
        assert!(report.log_reset);
        assert_eq!(
            report.bytes_dropped, keep,
            "the whole remaining file is dropped"
        );
        assert_eq!(report.events_replayed, 0);
        assert!(report.snapshot_loaded);
        // Appending resumes at the snapshot's sequence, gap-free.
        assert_eq!(svc.insert(doc(100)).unwrap(), 8);
        drop(svc);
        let (svc, report) = DurableService::open(dir.path(), engine(), 2).unwrap();
        assert!(!report.log_reset);
        assert_eq!(report.events_replayed, 1);
        assert_eq!(svc.store().len(), 9);
    }

    #[test]
    fn an_emptied_valid_prefix_resumes_at_the_snapshot_mark_without_reset() {
        let dir = Scratch::new("empty-prefix");
        {
            let (mut svc, _) = DurableService::open(dir.path(), engine(), 2).unwrap();
            svc.extend((0..5).map(doc)).unwrap();
            svc.snapshot_now().unwrap();
        }
        // Cut the log to exactly its header: no records survive, but
        // there is nothing to reset either — the empty log is kept and
        // appends simply resume at the snapshot's mark (this used to
        // take the silent-reset path via a defaulted sequence of 0).
        truncate_log(&dir.wal_path(), rrp_wal::WAL_HEADER_LEN);

        let (mut svc, report) = DurableService::open(dir.path(), engine(), 2).unwrap();
        assert!(!report.log_reset);
        assert_eq!(report.bytes_dropped, 0);
        assert_eq!(report.events_replayed, 0);
        assert_eq!(svc.insert(doc(50)).unwrap(), 5);
        drop(svc);
        let (_, report) = DurableService::open(dir.path(), engine(), 2).unwrap();
        assert_eq!(report.events_lost, 0);
        assert_eq!(report.events_replayed, 1);
    }
}
