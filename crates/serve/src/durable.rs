//! The durable serving wrapper: every mutation is appended to a
//! write-ahead log before it touches memory, periodic snapshots bound
//! recovery time, and [`DurableService::open`] rebuilds **bit-identical**
//! serving state from disk after a crash.
//!
//! ## State machine
//!
//! ```text
//!            ┌──────────────── mutation ────────────────┐
//!            │ 1. validate (unknown seq → ServeError,   │
//!            │    nothing logged)                       │
//!            │ 2. append event to WAL  ──failure──▶ typed error,
//!            │ 3. apply to in-memory service            │  state unchanged
//!            │ 4. every `snapshot_every` events:        │
//!            │    sync WAL, write snapshot atomically   │
//!            └──────────────────────────────────────────┘
//!
//!            ┌──────────────── recovery ────────────────┐
//!            │ 1. read + CRC-verify snapshot            │
//!            │    (corrupt/missing → start empty,       │
//!            │     replay the whole log instead)        │
//!            │ 2. replay the log tail (events ≥ the     │
//!            │    snapshot's high-water mark)           │
//!            │ 3. classify the tail: torn final write   │
//!            │    dropped cleanly; CRC failure truncates│
//!            │    at the first bad record, loss counted │
//!            │ 4. truncate the log to its valid prefix, │
//!            │    resume appending                      │
//!            └──────────────────────────────────────────┘
//! ```
//!
//! Replay reproduces bit-identical output because every serving answer is
//! a pure function of (engine seed, query, session) over the store's
//! canonical order, and both the snapshot (exact-bit floats through the
//! shortest-round-trip JSON codec) and the log (floats as IEEE bit
//! patterns) preserve that state exactly — the crash-recovery conformance
//! suite pins recovered output against an uncrashed twin across shard ×
//! worker × policy × engine-version grids.
//!
//! The log is retained across snapshots (a snapshot only moves the replay
//! start), so any *prefix* of history can be replayed — the time-travel
//! property pinned by the prefix-replay suite.

use crate::error::ServeError;
use crate::service::{ServeStats, ShardedPromotionService, StoreGuard};
use crate::store::ShardedStore;
use rrp_core::{Document, QueryContext, RankPromotionEngine, ShardedCorpusCache};
use rrp_wal::fault::{Failpoint, FailpointSink};
use rrp_wal::snapshot::{read_snapshot, write_snapshot_atomic};
use rrp_wal::{
    create_log_file, resume_log_file, FileSink, TailStatus, WalError, WalEvent, WalReader,
    WalWriter,
};
use serde::{Deserialize, Serialize, Value};
use std::path::{Path, PathBuf};

/// File name of the log inside a durable directory.
const WAL_FILE: &str = "wal.log";
/// File name of the snapshot inside a durable directory.
const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Default mutation count between automatic snapshots.
const DEFAULT_SNAPSHOT_EVERY: u64 = 1024;

/// What [`DurableService::open`] found on disk and what it did about it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a verified snapshot seeded the state (false = started
    /// empty and replayed the log from its first event).
    pub snapshot_loaded: bool,
    /// Whether a snapshot file existed but failed verification and was
    /// recovered *around* by replaying the full log instead.
    pub snapshot_fallback: bool,
    /// Events replayed from the log onto the starting state.
    pub events_replayed: u64,
    /// Events lost to a corrupt record (0 for a clean or merely torn
    /// log): the first failed record plus every complete frame after it,
    /// counted best-effort by the reader.
    pub events_lost: u64,
    /// Bytes discarded past the log's valid prefix (torn tail, corrupt
    /// tail, or an unreadable log that had to be reset).
    pub bytes_dropped: u64,
}

/// [`ShardedPromotionService`] behind a write-ahead log: mutations are
/// durable, queries are served from the same in-memory tier, and
/// [`open`](Self::open) recovers bit-identical state after a crash.
pub struct DurableService {
    inner: ShardedPromotionService,
    wal: WalWriter,
    snapshot_path: PathBuf,
    snapshot_every: u64,
    events_since_snapshot: u64,
    wal_appends: u64,
    snapshots_written: u64,
    events_replayed: u64,
}

impl DurableService {
    /// Open (or create) the durable service rooted at `dir`: load and
    /// verify the snapshot if one exists, replay the log tail, truncate
    /// any torn or corrupt suffix, and resume appending. The requested
    /// `engine` and `shard_count` must match a pre-existing snapshot —
    /// recovering under a different deployment configuration is a typed
    /// error, not silently divergent state.
    pub fn open(
        dir: &Path,
        engine: RankPromotionEngine,
        shard_count: usize,
    ) -> Result<(Self, RecoveryReport), ServeError> {
        Self::open_with_failpoint(dir, engine, shard_count, Failpoint::new())
    }

    /// [`open`](Self::open) with an armed-able [`Failpoint`] interposed on
    /// the append path — the fault-injection entry used by the recovery
    /// tests. A disarmed failpoint (the default) changes nothing.
    pub fn open_with_failpoint(
        dir: &Path,
        engine: RankPromotionEngine,
        shard_count: usize,
        failpoint: Failpoint,
    ) -> Result<(Self, RecoveryReport), ServeError> {
        std::fs::create_dir_all(dir).map_err(WalError::from)?;
        let wal_path = dir.join(WAL_FILE);
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let mut report = RecoveryReport::default();

        // 1. The snapshot, if one verifies. A snapshot that exists but
        // fails its checksum is recovered *around*: the log holds the
        // full history (snapshots never truncate it), so starting empty
        // and replaying everything reaches the same state.
        let mut next_event = 0u64;
        let inner = match read_snapshot(&snapshot_path) {
            Ok(Some(payload)) => {
                let state = decode_snapshot(&payload, &engine, shard_count)?;
                next_event = state.next_event;
                report.snapshot_loaded = true;
                ShardedPromotionService::from_parts(engine, state.store, state.shards)
            }
            Ok(None) => ShardedPromotionService::try_new(engine, shard_count)?,
            Err(_) => {
                report.snapshot_fallback = true;
                ShardedPromotionService::try_new(engine, shard_count)?
            }
        };

        // 2–3. Replay the tail and classify how the log ends.
        let mut replayed = 0u64;
        let mut log_state = match WalReader::open(&wal_path) {
            Ok(mut reader) => {
                let mut first_seq = None;
                while let Some((seq, event)) = reader.next_event().map_err(ServeError::from)? {
                    first_seq.get_or_insert(seq);
                    if seq >= next_event {
                        apply_event(&inner, &event)?;
                        replayed += 1;
                    }
                }
                if let Some(first) = first_seq {
                    if first > next_event {
                        return Err(ServeError::Recovery {
                            detail: format!(
                                "log starts at event {first} but the snapshot only covers \
                                 events before {next_event}: history is missing"
                            ),
                        });
                    }
                }
                match reader.tail() {
                    TailStatus::Clean => {}
                    TailStatus::TornWrite { dropped_bytes } => {
                        report.bytes_dropped += dropped_bytes;
                    }
                    TailStatus::Corrupt {
                        events_lost,
                        dropped_bytes,
                        ..
                    } => {
                        report.events_lost += events_lost;
                        report.bytes_dropped += dropped_bytes;
                    }
                }
                Some((reader.valid_len(), reader.next_seq().unwrap_or(0)))
            }
            // No log yet: a fresh directory (or snapshot-only survivor).
            Err(WalError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => None,
            // A log whose *header* is unreadable cannot be scanned at
            // all. The snapshot state (possibly empty) stands; the log is
            // reset rather than appended to blindly.
            Err(WalError::BadHeader { .. }) | Err(WalError::UnsupportedVersion { .. }) => {
                report.bytes_dropped += std::fs::metadata(&wal_path).map(|m| m.len()).unwrap_or(0);
                None
            }
            Err(e) => return Err(e.into()),
        };

        // A log that ends before the snapshot's high-water mark cannot be
        // appended to at `next_event` without leaving a sequence gap in
        // the file — reset it and let the snapshot carry the past.
        if let Some((_, log_next)) = log_state {
            if log_next < next_event {
                log_state = None;
            }
        }

        // 4. Truncate to the valid prefix and resume appending.
        let (file, writer_next) = match log_state {
            Some((valid_len, log_next)) => (resume_log_file(&wal_path, valid_len)?, log_next),
            None => (create_log_file(&wal_path)?, next_event),
        };
        let sink = FailpointSink::new(FileSink::new(file), failpoint);
        let wal = WalWriter::new(Box::new(sink), writer_next.max(next_event));

        report.events_replayed = replayed;
        let service = DurableService {
            inner,
            wal,
            snapshot_path,
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
            events_since_snapshot: 0,
            wal_appends: 0,
            snapshots_written: 0,
            events_replayed: replayed,
        };
        Ok((service, report))
    }

    /// Set the mutation count between automatic snapshots (clamped to at
    /// least 1). Lower bounds recovery replay at the price of more
    /// snapshot writes.
    pub fn with_snapshot_every(mut self, every: u64) -> Self {
        self.snapshot_every = every.max(1);
        self
    }

    /// Set the worker count of the wrapped service (see
    /// [`ShardedPromotionService::with_workers`]).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.inner = self.inner.with_workers(workers);
        self
    }

    /// The wrapped in-memory service — every query path is served from
    /// here, unchanged (reads are never logged).
    pub fn service(&self) -> &ShardedPromotionService {
        &self.inner
    }

    /// Mutable access to the wrapped service. Since the epoch-versioned
    /// refactor every rerank *and* mutation path takes `&self`, so this
    /// exists only for builder-style reconfiguration; applying mutations
    /// through [`service`](Self::service) (or this) would bypass the log,
    /// so don't.
    pub fn service_mut(&mut self) -> &mut ShardedPromotionService {
        &mut self.inner
    }

    /// The underlying store (read-only; holds the writer lock while the
    /// guard lives, so drop it before mutating or snapshotting).
    pub fn store(&self) -> StoreGuard<'_> {
        self.inner.store()
    }

    /// The wrapped service's counters plus the durability probes
    /// ([`ServeStats::wal_appends`], [`ServeStats::snapshots_written`],
    /// [`ServeStats::events_replayed`]).
    pub fn serve_stats(&self) -> ServeStats {
        let mut stats = self.inner.serve_stats();
        stats.wal_appends = self.wal_appends;
        stats.snapshots_written = self.snapshots_written;
        stats.events_replayed = self.events_replayed;
        stats
    }

    /// Durably insert one document: the insert event is appended to the
    /// log first, then applied in memory. On an append failure nothing is
    /// applied and nothing is logged — the error is typed, the state
    /// consistent.
    pub fn insert(&mut self, document: Document) -> Result<u64, ServeError> {
        self.log_event(&WalEvent::Insert(document))?;
        let seq = self.inner.insert(document);
        self.maybe_snapshot()?;
        Ok(seq)
    }

    /// Durably insert every document of an iterator, in order. Stops at
    /// the first failed append (documents before it are in).
    pub fn extend(
        &mut self,
        documents: impl IntoIterator<Item = Document>,
    ) -> Result<(), ServeError> {
        for document in documents {
            self.insert(document)?;
        }
        Ok(())
    }

    /// Durably record a user visit. An unknown sequence is rejected
    /// *before* anything reaches the log, so the log only ever holds
    /// replayable events.
    pub fn record_visit(&mut self, seq: u64) -> Result<(), ServeError> {
        self.check_seq(seq)?;
        self.log_event(&WalEvent::Visit { seq })?;
        self.inner.try_record_visit(seq)?;
        self.maybe_snapshot()
    }

    /// Durably replace a popularity score. An unknown sequence is
    /// rejected before anything reaches the log.
    pub fn update_popularity(&mut self, seq: u64, popularity: f64) -> Result<(), ServeError> {
        self.check_seq(seq)?;
        self.log_event(&WalEvent::SetPopularity { seq, popularity })?;
        self.inner.try_update_popularity(seq, popularity)?;
        self.maybe_snapshot()
    }

    /// Write a snapshot right now: sync the log, serialise the engine,
    /// store and serving tier, and rename it into place atomically. A
    /// crash at any instant leaves either the previous snapshot or this
    /// one.
    pub fn snapshot_now(&mut self) -> Result<(), ServeError> {
        self.wal.sync()?;
        let payload = encode_snapshot(&self.inner, self.wal.next_seq())?;
        write_snapshot_atomic(&self.snapshot_path, payload.as_bytes())?;
        self.snapshots_written += 1;
        self.events_since_snapshot = 0;
        Ok(())
    }

    /// Reject mutations against sequences the store never issued, before
    /// they can be logged.
    fn check_seq(&self, seq: u64) -> Result<(), ServeError> {
        if self.inner.store().get(seq).is_none() {
            return Err(ServeError::UnknownSequence {
                seq,
                len: self.inner.store().len() as u64,
            });
        }
        Ok(())
    }

    /// Append one event; accounting only happens on success.
    fn log_event(&mut self, event: &WalEvent) -> Result<(), ServeError> {
        self.wal.append(event)?;
        self.wal_appends += 1;
        self.events_since_snapshot += 1;
        Ok(())
    }

    /// The periodic snapshot trigger on the mutation path.
    fn maybe_snapshot(&mut self) -> Result<(), ServeError> {
        if self.events_since_snapshot >= self.snapshot_every {
            self.snapshot_now()?;
        }
        Ok(())
    }

    // ── Serving delegates ───────────────────────────────────────────────
    // Queries never touch the log; these forward to the wrapped service
    // so the common paths don't need `service_mut` at every call site.

    /// See [`ShardedPromotionService::rerank_one`].
    pub fn rerank_one(&self, ctx: QueryContext) -> Vec<u64> {
        self.inner.rerank_one(ctx)
    }

    /// See [`ShardedPromotionService::rerank_top_k`].
    pub fn rerank_top_k(&self, ctx: QueryContext, k: usize) -> Vec<u64> {
        self.inner.rerank_top_k(ctx, k)
    }

    /// See [`ShardedPromotionService::rerank_batch`].
    pub fn rerank_batch(&self, queries: &[QueryContext]) -> Vec<Vec<u64>> {
        self.inner.rerank_batch(queries)
    }

    /// See [`ShardedPromotionService::rerank_batch_top_k_into`].
    pub fn rerank_batch_top_k_into(
        &self,
        queries: &[QueryContext],
        k: usize,
        results: &mut Vec<Vec<u64>>,
    ) {
        self.inner.rerank_batch_top_k_into(queries, k, results)
    }
}

/// The serialized form of a snapshot payload: engine, store, serving
/// tier, and the event sequence the snapshot is current through.
struct SnapshotState {
    store: ShardedStore,
    shards: ShardedCorpusCache,
    next_event: u64,
}

fn encode_snapshot(
    service: &ShardedPromotionService,
    next_event: u64,
) -> Result<String, ServeError> {
    // One writer-lock scope covers both halves: taking `store()` and a
    // second guard in the same expression would deadlock on the
    // non-reentrant writer mutex.
    let (store, shards) =
        service.with_writer(|store, shards| (store.to_value(), shards.to_value()));
    let value = Value::Map(vec![
        ("engine".to_string(), service.engine().to_value()),
        ("store".to_string(), store),
        ("shards".to_string(), shards),
        ("next_event".to_string(), next_event.to_value()),
    ]);
    serde_json::to_string(&value).map_err(|e| ServeError::Recovery {
        detail: format!("snapshot serialisation failed: {e}"),
    })
}

fn decode_snapshot(
    payload: &[u8],
    engine: &RankPromotionEngine,
    shard_count: usize,
) -> Result<SnapshotState, ServeError> {
    let recovery = |detail: String| ServeError::Recovery { detail };
    let text = std::str::from_utf8(payload)
        .map_err(|e| recovery(format!("snapshot is not UTF-8: {e}")))?;
    let value: Value = serde_json::from_str(text)
        .map_err(|e| recovery(format!("snapshot is not valid JSON: {e}")))?;
    let field = |name: &str| {
        value
            .get(name)
            .ok_or_else(|| recovery(format!("snapshot is missing the `{name}` field")))
    };
    let stored_engine = RankPromotionEngine::from_value(field("engine")?)
        .map_err(|e| recovery(format!("snapshot engine: {e}")))?;
    // The engine (config, seed, version) defines every RNG stream; a
    // snapshot from a different engine would replay into silently
    // different rankings, so the mismatch is surfaced instead.
    if stored_engine.to_value() != engine.to_value() {
        return Err(recovery(
            "snapshot was written by a different engine configuration".to_string(),
        ));
    }
    let store = ShardedStore::from_value(field("store")?)
        .map_err(|e| recovery(format!("snapshot store: {e}")))?;
    if store.shard_count() != shard_count {
        return Err(recovery(format!(
            "snapshot has {} shards, the service was opened with {shard_count}",
            store.shard_count()
        )));
    }
    let shards = ShardedCorpusCache::from_value(field("shards")?)
        .map_err(|e| recovery(format!("snapshot serving tier: {e}")))?;
    if shards.len() != store.len() {
        return Err(recovery(format!(
            "snapshot serving tier covers {} slots but the store holds {} documents",
            shards.len(),
            store.len()
        )));
    }
    let next_event = u64::from_value(field("next_event")?)
        .map_err(|e| recovery(format!("snapshot next_event: {e}")))?;
    Ok(SnapshotState {
        store,
        shards,
        next_event,
    })
}

/// Apply one replayed event. Events were validated before they were
/// logged, so a failure here means the log and snapshot do not belong
/// together — a typed recovery error, never a panic.
fn apply_event(service: &ShardedPromotionService, event: &WalEvent) -> Result<(), ServeError> {
    let result = match *event {
        WalEvent::Insert(document) => {
            service.insert(document);
            Ok(())
        }
        WalEvent::Visit { seq } => service.try_record_visit(seq),
        WalEvent::SetPopularity { seq, popularity } => {
            service.try_update_popularity(seq, popularity)
        }
    };
    result.map_err(|e| ServeError::Recovery {
        detail: format!("replay could not apply {event:?}: {e}"),
    })
}
