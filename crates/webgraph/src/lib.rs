//! # rrp-webgraph — Web-graph substrate
//!
//! The paper's popularity measures (in-degree, PageRank) are defined over
//! the Web link graph, and its Section 8 mixed-browsing model needs a
//! random surfer. This crate provides the from-scratch substrate:
//!
//! * [`DiGraph`] / [`GraphBuilder`] — a compact CSR directed graph;
//! * [`generator`] — preferential-attachment, copy-model and uniform random
//!   graph generators (the rich-get-richer structure that causes the
//!   entrenchment effect in the first place);
//! * [`pagerank`] — PageRank by power iteration with teleportation;
//! * [`random_surf`] — a simulated random surfer, used both to validate
//!   PageRank and as the browsing-traffic model of Section 8;
//! * [`GraphPopularity`] — normalisation of graph measures into the
//!   `[0, 1]` popularity scale used by the ranking and simulation crates.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod generator;
pub mod graph;
pub mod pagerank;
pub mod popularity;
pub mod surfer;

pub use generator::{copy_model, preferential_attachment, uniform_random};
pub use graph::{DiGraph, GraphBuilder, NodeId};
pub use pagerank::{pagerank, PageRankOptions, PageRankResult};
pub use popularity::{normalize, GraphPopularity, PopularityMeasure};
pub use surfer::{random_surf, SurferOptions, SurferResult};
