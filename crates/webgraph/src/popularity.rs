//! Turning graph measures into the popularity scores the ranking layer
//! expects.
//!
//! The paper treats "popularity" abstractly (in-degree, PageRank, visit
//! counts, …). This module normalises any of those raw measures into the
//! `[0, 1]` popularity scale used by `rrp-ranking`/`rrp-sim`, and provides
//! a convenience that computes all three classic measures for a graph.

use crate::graph::DiGraph;
use crate::pagerank::{pagerank, PageRankOptions};
use serde::{Deserialize, Serialize};

/// Which graph-derived popularity measure to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PopularityMeasure {
    /// Number of in-links.
    InDegree,
    /// PageRank score with the default options.
    PageRank,
}

/// All popularity measures computed for one graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphPopularity {
    /// Raw in-degree per node.
    pub in_degree: Vec<usize>,
    /// PageRank score per node (sums to 1).
    pub pagerank: Vec<f64>,
}

impl GraphPopularity {
    /// Compute every supported measure for `graph`.
    pub fn compute(graph: &DiGraph) -> Self {
        GraphPopularity {
            in_degree: graph.in_degrees().to_vec(),
            pagerank: pagerank(graph, PageRankOptions::default()).scores,
        }
    }

    /// The selected measure normalised to `[0, 1]` by dividing by the
    /// maximum (an empty graph yields an empty vector; an all-zero measure
    /// yields all zeros).
    pub fn normalized(&self, measure: PopularityMeasure) -> Vec<f64> {
        match measure {
            PopularityMeasure::InDegree => {
                normalize(&self.in_degree.iter().map(|&d| d as f64).collect::<Vec<_>>())
            }
            PopularityMeasure::PageRank => normalize(&self.pagerank),
        }
    }
}

/// Divide by the max value; all-zero input stays all zero.
pub fn normalize(values: &[f64]) -> Vec<f64> {
    let max = values.iter().cloned().fold(0.0_f64, f64::max);
    if max <= 0.0 {
        return vec![0.0; values.len()];
    }
    values.iter().map(|&v| (v / max).clamp(0.0, 1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::preferential_attachment;
    use rrp_model::new_rng;

    #[test]
    fn normalize_handles_zero_and_scales_max_to_one() {
        assert_eq!(normalize(&[]), Vec::<f64>::new());
        assert_eq!(normalize(&[0.0, 0.0]), vec![0.0, 0.0]);
        let n = normalize(&[1.0, 2.0, 4.0]);
        assert_eq!(n, vec![0.25, 0.5, 1.0]);
    }

    #[test]
    fn compute_produces_consistent_lengths() {
        let mut rng = new_rng(1);
        let g = preferential_attachment(500, 2, &mut rng);
        let pop = GraphPopularity::compute(&g);
        assert_eq!(pop.in_degree.len(), 500);
        assert_eq!(pop.pagerank.len(), 500);
        let norm = pop.normalized(PopularityMeasure::PageRank);
        assert_eq!(norm.len(), 500);
        assert!(norm.iter().cloned().fold(0.0_f64, f64::max) <= 1.0 + 1e-12);
        assert!((norm.iter().cloned().fold(0.0_f64, f64::max) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn indegree_and_pagerank_rank_hubs_similarly() {
        let mut rng = new_rng(2);
        let g = preferential_attachment(1_000, 3, &mut rng);
        let pop = GraphPopularity::compute(&g);
        let top_indeg = pop
            .in_degree
            .iter()
            .enumerate()
            .max_by_key(|(_, &d)| d)
            .unwrap()
            .0;
        // The biggest in-degree hub should be in the PageRank top 10.
        let mut by_pr: Vec<usize> = (0..1_000).collect();
        by_pr.sort_by(|&a, &b| pop.pagerank[b].partial_cmp(&pop.pagerank[a]).unwrap());
        let rank_of_hub = by_pr.iter().position(|&v| v == top_indeg).unwrap();
        assert!(
            rank_of_hub < 10,
            "in-degree hub should also be a PageRank hub, found at rank {rank_of_hub}"
        );
    }

    #[test]
    fn normalized_in_degree_matches_manual_computation() {
        let g = DiGraph::from_edges(3, &[(0, 2), (1, 2), (0, 1)]);
        let pop = GraphPopularity::compute(&g);
        let norm = pop.normalized(PopularityMeasure::InDegree);
        assert_eq!(norm, vec![0.0, 0.5, 1.0]);
    }
}
