//! A random surfer over the link graph.
//!
//! Section 8 of the paper mixes search-driven visits with classic random
//! surfing: with probability `1 − c` the surfer follows an out-link of the
//! current page, with probability `c` ("teleportation") she jumps to a
//! uniformly random page. Simulating the surfer and counting visits gives an
//! empirical estimate of PageRank, which the tests use to cross-validate the
//! power-iteration implementation — and which the mixed-browsing experiment
//! uses as its browsing-traffic substrate.

use crate::graph::{DiGraph, NodeId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the random surfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurferOptions {
    /// Teleportation probability `c` (0.15 by convention).
    pub teleportation: f64,
    /// Number of steps to simulate.
    pub steps: usize,
    /// Number of warm-up steps discarded before counting visits.
    pub warmup: usize,
}

impl Default for SurferOptions {
    fn default() -> Self {
        SurferOptions {
            teleportation: 0.15,
            steps: 100_000,
            warmup: 1_000,
        }
    }
}

/// Outcome of a random walk: per-node visit counts and frequencies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurferResult {
    /// Number of counted visits to each node.
    pub visits: Vec<u64>,
    /// Visit frequencies (sums to 1 when any step was counted).
    pub frequencies: Vec<f64>,
}

/// Simulate a single random surfer for `options.steps` steps and return the
/// visit statistics.
pub fn random_surf<R: Rng + ?Sized>(
    graph: &DiGraph,
    options: SurferOptions,
    rng: &mut R,
) -> SurferResult {
    let n = graph.node_count();
    if n == 0 {
        return SurferResult {
            visits: Vec::new(),
            frequencies: Vec::new(),
        };
    }
    assert!(
        (0.0..=1.0).contains(&options.teleportation),
        "teleportation probability must be in [0, 1]"
    );
    let mut visits = vec![0u64; n];
    let mut current: NodeId = rng.gen_range(0..n);
    let total = options.warmup + options.steps;
    for step in 0..total {
        if step >= options.warmup {
            visits[current] += 1;
        }
        let teleport = rng.gen::<f64>() < options.teleportation;
        let neighbors = graph.out_neighbors(current);
        current = if teleport || neighbors.is_empty() {
            rng.gen_range(0..n)
        } else {
            neighbors[rng.gen_range(0..neighbors.len())]
        };
    }
    let counted: u64 = visits.iter().sum();
    let frequencies = if counted == 0 {
        vec![0.0; n]
    } else {
        visits.iter().map(|&v| v as f64 / counted as f64).collect()
    };
    SurferResult {
        visits,
        frequencies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::preferential_attachment;
    use crate::pagerank::{pagerank, PageRankOptions};
    use rrp_model::new_rng;

    #[test]
    fn empty_graph_yields_empty_result() {
        let g = DiGraph::from_edges(0, &[]);
        let mut rng = new_rng(0);
        let r = random_surf(&g, SurferOptions::default(), &mut rng);
        assert!(r.visits.is_empty());
        assert!(r.frequencies.is_empty());
    }

    #[test]
    fn frequencies_sum_to_one() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let mut rng = new_rng(1);
        let r = random_surf(
            &g,
            SurferOptions {
                steps: 20_000,
                ..SurferOptions::default()
            },
            &mut rng,
        );
        let sum: f64 = r.frequencies.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(r.visits.iter().sum::<u64>(), 20_000);
    }

    #[test]
    fn surfer_frequencies_approximate_pagerank() {
        let mut rng = new_rng(2);
        let g = preferential_attachment(200, 3, &mut rng);
        let pr = pagerank(&g, PageRankOptions::default());
        let surf = random_surf(
            &g,
            SurferOptions {
                steps: 400_000,
                warmup: 5_000,
                ..SurferOptions::default()
            },
            &mut rng,
        );
        // Compare the top-10 PageRank pages: surfer frequency should be
        // within 25% relative error for these well-visited nodes.
        let mut order: Vec<usize> = (0..g.node_count()).collect();
        order.sort_by(|&a, &b| pr.scores[b].partial_cmp(&pr.scores[a]).unwrap());
        for &v in order.iter().take(10) {
            let rel = (surf.frequencies[v] - pr.scores[v]).abs() / pr.scores[v];
            assert!(
                rel < 0.25,
                "node {v}: surfer {:.5} vs pagerank {:.5} (rel err {rel:.3})",
                surf.frequencies[v],
                pr.scores[v]
            );
        }
    }

    #[test]
    fn zero_steps_counts_nothing() {
        let g = DiGraph::from_edges(2, &[(0, 1)]);
        let mut rng = new_rng(3);
        let r = random_surf(
            &g,
            SurferOptions {
                steps: 0,
                warmup: 10,
                ..SurferOptions::default()
            },
            &mut rng,
        );
        assert_eq!(r.visits, vec![0, 0]);
        assert_eq!(r.frequencies, vec![0.0, 0.0]);
    }

    #[test]
    fn dangling_nodes_teleport_instead_of_getting_stuck() {
        // 0 -> 1, node 1 dangles; the walk must still visit node 0 again.
        let g = DiGraph::from_edges(2, &[(0, 1)]);
        let mut rng = new_rng(4);
        let r = random_surf(
            &g,
            SurferOptions {
                steps: 10_000,
                warmup: 0,
                ..SurferOptions::default()
            },
            &mut rng,
        );
        assert!(r.visits[0] > 1_000);
        assert!(r.visits[1] > 1_000);
    }

    #[test]
    fn full_teleportation_is_uniform() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut rng = new_rng(5);
        let r = random_surf(
            &g,
            SurferOptions {
                teleportation: 1.0,
                steps: 40_000,
                warmup: 0,
            },
            &mut rng,
        );
        for &f in &r.frequencies {
            assert!((f - 0.25).abs() < 0.02, "frequency {f} should be ≈ 0.25");
        }
    }

    #[test]
    #[should_panic(expected = "teleportation probability")]
    fn invalid_teleportation_panics() {
        let g = DiGraph::from_edges(2, &[(0, 1)]);
        let mut rng = new_rng(0);
        random_surf(
            &g,
            SurferOptions {
                teleportation: -0.1,
                ..SurferOptions::default()
            },
            &mut rng,
        );
    }
}
