//! Synthetic Web-graph generators.
//!
//! The paper's entrenchment story is rooted in the rich-get-richer dynamics
//! of the Web link graph (see also Chakrabarti, Frieze & Vera, SODA 2005, on
//! how search engines affect preferential attachment). These generators
//! produce graphs whose in-degree distribution has the heavy tail that makes
//! in-degree / PageRank popularity so skewed:
//!
//! * [`preferential_attachment`] — each new node links to `m` existing
//!   nodes chosen with probability proportional to (in-degree + 1);
//! * [`copy_model`] — each new node copies the out-links of a random
//!   existing node with probability `1 − β`, otherwise links uniformly;
//! * [`uniform_random`] — an Erdős–Rényi style baseline with no
//!   preferential attachment (used to contrast the popularity skew).

use crate::graph::{DiGraph, GraphBuilder};
use rand::seq::SliceRandom;
use rand::Rng;

/// Generate a preferential-attachment digraph with `nodes` nodes, each new
/// node creating `links_per_node` out-links to earlier nodes.
///
/// The first `links_per_node + 1` nodes form a small seed clique so early
/// choices are well defined.
pub fn preferential_attachment<R: Rng + ?Sized>(
    nodes: usize,
    links_per_node: usize,
    rng: &mut R,
) -> DiGraph {
    assert!(links_per_node >= 1, "need at least one link per node");
    let mut builder = GraphBuilder::with_nodes(nodes);
    if nodes == 0 {
        return builder.build();
    }
    // Target pool: node v appears (in-degree(v) + 1) times, giving the
    // "+1" smoothing that lets brand-new nodes attract links at all.
    let mut pool: Vec<usize> = Vec::with_capacity(nodes * (links_per_node + 1));
    let seed = (links_per_node + 1).min(nodes);
    for v in 0..seed {
        for w in 0..seed {
            if v != w {
                builder.add_edge(v, w);
                pool.push(w);
            }
        }
        pool.push(v);
    }
    for v in seed..nodes {
        let mut chosen = Vec::with_capacity(links_per_node);
        for _ in 0..links_per_node {
            // Sample from the pool (preferential) and deduplicate lazily.
            let mut target = pool[rng.gen_range(0..pool.len())];
            let mut guard = 0;
            while (target == v || chosen.contains(&target)) && guard < 32 {
                target = pool[rng.gen_range(0..pool.len())];
                guard += 1;
            }
            if target == v || chosen.contains(&target) {
                continue;
            }
            builder.add_edge(v, target);
            pool.push(target);
            chosen.push(target);
        }
        pool.push(v);
    }
    builder.build()
}

/// Generate a copy-model digraph: each new node picks a random "prototype"
/// among earlier nodes and, for each of `links_per_node` link slots, copies
/// the prototype's corresponding out-link with probability `1 − beta` or
/// links to a uniformly random earlier node with probability `beta`.
pub fn copy_model<R: Rng + ?Sized>(
    nodes: usize,
    links_per_node: usize,
    beta: f64,
    rng: &mut R,
) -> DiGraph {
    assert!(links_per_node >= 1, "need at least one link per node");
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0, 1]");
    let mut builder = GraphBuilder::with_nodes(nodes);
    if nodes == 0 {
        return builder.build();
    }
    let mut out_links: Vec<Vec<usize>> = vec![Vec::new(); nodes];
    let seed = (links_per_node + 1).min(nodes);
    for (v, links) in out_links.iter_mut().enumerate().take(seed) {
        for w in 0..seed {
            if v != w {
                builder.add_edge(v, w);
                links.push(w);
            }
        }
    }
    for v in seed..nodes {
        let prototype = rng.gen_range(0..v);
        for slot in 0..links_per_node {
            let target = if rng.gen::<f64>() < beta || out_links[prototype].is_empty() {
                rng.gen_range(0..v)
            } else {
                let proto_links = &out_links[prototype];
                proto_links[slot % proto_links.len()]
            };
            if target != v {
                builder.add_edge(v, target);
                out_links[v].push(target);
            }
        }
    }
    builder.build()
}

/// Uniform random digraph: every node links to `links_per_node` distinct
/// targets chosen uniformly at random (no preferential attachment).
pub fn uniform_random<R: Rng + ?Sized>(
    nodes: usize,
    links_per_node: usize,
    rng: &mut R,
) -> DiGraph {
    let mut builder = GraphBuilder::with_nodes(nodes);
    if nodes <= 1 {
        return builder.build();
    }
    let all: Vec<usize> = (0..nodes).collect();
    for v in 0..nodes {
        let mut targets = all.clone();
        targets.retain(|&t| t != v);
        targets.shuffle(rng);
        for &t in targets.iter().take(links_per_node) {
            builder.add_edge(v, t);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrp_model::new_rng;

    #[test]
    fn preferential_attachment_sizes() {
        let mut rng = new_rng(1);
        let g = preferential_attachment(500, 3, &mut rng);
        assert_eq!(g.node_count(), 500);
        assert!(
            g.edge_count() > 500,
            "every non-seed node adds up to 3 edges"
        );
        assert!(g.edge_count() <= 500 * 3 + 12);
    }

    #[test]
    fn preferential_attachment_has_heavy_tail() {
        let mut rng = new_rng(2);
        let g = preferential_attachment(2_000, 3, &mut rng);
        let mut in_degs: Vec<usize> = g.in_degrees().to_vec();
        in_degs.sort_unstable_by(|a, b| b.cmp(a));
        let max = in_degs[0];
        let median = in_degs[in_degs.len() / 2];
        assert!(
            max >= 10 * median.max(1),
            "rich-get-richer: max in-degree {max} should dwarf median {median}"
        );
    }

    #[test]
    fn uniform_random_has_no_heavy_tail() {
        let mut rng = new_rng(3);
        let g = uniform_random(2_000, 3, &mut rng);
        let max = *g.in_degrees().iter().max().unwrap();
        // Max of 2000 Binomial(2000, 3/1999) draws is far below a
        // preferential-attachment hub.
        assert!(
            max < 20,
            "uniform graph max in-degree {max} should be small"
        );
        assert_eq!(g.edge_count(), 2_000 * 3);
    }

    #[test]
    fn copy_model_sizes_and_determinism() {
        let mut rng = new_rng(4);
        let g = copy_model(1_000, 2, 0.2, &mut rng);
        assert_eq!(g.node_count(), 1_000);
        assert!(g.edge_count() > 1_000);
        let mut rng2 = new_rng(4);
        let g2 = copy_model(1_000, 2, 0.2, &mut rng2);
        assert_eq!(g.edge_count(), g2.edge_count(), "same seed, same graph");
    }

    #[test]
    fn copy_model_concentrates_links_more_than_uniform() {
        let mut rng = new_rng(5);
        let copy = copy_model(2_000, 3, 0.1, &mut rng);
        let uniform = uniform_random(2_000, 3, &mut rng);
        let max_copy = *copy.in_degrees().iter().max().unwrap();
        let max_uni = *uniform.in_degrees().iter().max().unwrap();
        assert!(
            max_copy > max_uni,
            "copy model hub {max_copy} should exceed uniform hub {max_uni}"
        );
    }

    #[test]
    fn no_self_loops_in_generated_graphs() {
        let mut rng = new_rng(6);
        for g in [
            preferential_attachment(300, 2, &mut rng),
            copy_model(300, 2, 0.3, &mut rng),
            uniform_random(300, 2, &mut rng),
        ] {
            assert!(g.edges().all(|(a, b)| a != b), "self loop found");
        }
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let mut rng = new_rng(7);
        assert_eq!(preferential_attachment(0, 2, &mut rng).node_count(), 0);
        assert_eq!(copy_model(0, 2, 0.5, &mut rng).node_count(), 0);
        assert_eq!(uniform_random(1, 2, &mut rng).edge_count(), 0);
        let g = preferential_attachment(2, 3, &mut rng);
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn preferential_attachment_requires_links() {
        let mut rng = new_rng(0);
        preferential_attachment(10, 0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "beta must be in")]
    fn copy_model_validates_beta() {
        let mut rng = new_rng(0);
        copy_model(10, 2, 1.5, &mut rng);
    }
}
