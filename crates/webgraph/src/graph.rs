//! A compact directed-graph representation for Web-graph experiments.
//!
//! The paper's popularity measures (in-degree, PageRank) are defined over
//! the Web link graph. Rather than depending on an external graph library,
//! this module provides the small substrate the workspace needs:
//!
//! * [`GraphBuilder`] — incremental edge insertion while generating
//!   synthetic graphs;
//! * [`DiGraph`] — a frozen CSR (compressed sparse row) representation with
//!   O(1) out-neighbour slices and precomputed in-degrees, which is all that
//!   PageRank and the random surfer need.

use serde::{Deserialize, Serialize};

/// Node identifier inside a [`DiGraph`]; dense `0..node_count`.
pub type NodeId = usize;

/// Mutable edge-list builder.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GraphBuilder {
    nodes: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Create a builder with `nodes` isolated nodes.
    pub fn with_nodes(nodes: usize) -> Self {
        GraphBuilder {
            nodes,
            edges: Vec::new(),
        }
    }

    /// Add one node and return its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = self.nodes;
        self.nodes += 1;
        id
    }

    /// Current node count.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Current edge count (parallel edges are kept).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Add a directed edge `from → to`.
    ///
    /// # Panics
    /// Panics if either endpoint does not exist.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) {
        assert!(from < self.nodes, "edge source {from} out of range");
        assert!(to < self.nodes, "edge target {to} out of range");
        self.edges.push((from, to));
    }

    /// Freeze into a CSR [`DiGraph`].
    pub fn build(self) -> DiGraph {
        DiGraph::from_edges(self.nodes, &self.edges)
    }
}

/// Immutable directed graph in CSR form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiGraph {
    /// `offsets[v]..offsets[v+1]` indexes `targets` with v's out-neighbours.
    offsets: Vec<usize>,
    /// Concatenated out-neighbour lists.
    targets: Vec<NodeId>,
    /// In-degree of every node.
    in_degrees: Vec<usize>,
}

impl DiGraph {
    /// Build from an explicit edge list over `nodes` nodes.
    pub fn from_edges(nodes: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut out_degree = vec![0usize; nodes];
        let mut in_degrees = vec![0usize; nodes];
        for &(from, to) in edges {
            assert!(
                from < nodes && to < nodes,
                "edge ({from}, {to}) out of range"
            );
            out_degree[from] += 1;
            in_degrees[to] += 1;
        }
        let mut offsets = Vec::with_capacity(nodes + 1);
        offsets.push(0);
        for v in 0..nodes {
            offsets.push(offsets[v] + out_degree[v]);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0usize; edges.len()];
        for &(from, to) in edges {
            targets[cursor[from]] = to;
            cursor[from] += 1;
        }
        DiGraph {
            offsets,
            targets,
            in_degrees,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighbours of `v` as a slice.
    #[inline]
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_degrees[v]
    }

    /// In-degrees of all nodes (the simplest popularity measure the paper
    /// mentions).
    pub fn in_degrees(&self) -> &[usize] {
        &self.in_degrees
    }

    /// Iterate over all edges `(from, to)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.node_count()).flat_map(move |v| self.out_neighbors(v).iter().map(move |&t| (v, t)))
    }

    /// Nodes with no outgoing links ("dangling" nodes for PageRank).
    pub fn dangling_nodes(&self) -> Vec<NodeId> {
        (0..self.node_count())
            .filter(|&v| self.out_degree(v) == 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn builder_counts_nodes_and_edges() {
        let mut b = GraphBuilder::with_nodes(2);
        let c = b.add_node();
        assert_eq!(c, 2);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        assert_eq!(b.node_count(), 3);
        assert_eq!(b.edge_count(), 2);
        let g = b.build();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_rejects_dangling_endpoint() {
        let mut b = GraphBuilder::with_nodes(1);
        b.add_edge(0, 5);
    }

    #[test]
    fn csr_neighbors_and_degrees() {
        let g = diamond();
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.out_neighbors(3), &[] as &[usize]);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.in_degrees(), &[0, 1, 1, 2]);
    }

    #[test]
    fn edges_iterator_matches_input() {
        let g = diamond();
        let mut edges: Vec<(usize, usize)> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn dangling_nodes_have_no_outlinks() {
        let g = diamond();
        assert_eq!(g.dangling_nodes(), vec![3]);
    }

    #[test]
    fn parallel_edges_are_preserved() {
        let g = DiGraph::from_edges(2, &[(0, 1), (0, 1)]);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.in_degree(1), 2);
        assert_eq!(g.out_neighbors(0), &[1, 1]);
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::from_edges(0, &[]);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.dangling_nodes().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_validates_range() {
        DiGraph::from_edges(2, &[(0, 2)]);
    }
}
