//! PageRank by power iteration.
//!
//! PageRank is one of the popularity measures the paper names in its first
//! paragraph and the one its quality distribution is calibrated against
//! (Section 6.1). The random-surfer teleportation probability `c` is the
//! same constant that appears in the mixed surfing model of Section 8
//! (typically 0.15).

use crate::graph::DiGraph;
use serde::{Deserialize, Serialize};

/// Options controlling the power iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PageRankOptions {
    /// Teleportation probability `c` (the paper's Section 8 constant;
    /// 0.15 following Jeh & Widom).
    pub teleportation: f64,
    /// Maximum number of power iterations.
    pub max_iterations: usize,
    /// L1 convergence tolerance between successive iterations.
    pub tolerance: f64,
}

impl Default for PageRankOptions {
    fn default() -> Self {
        PageRankOptions {
            teleportation: 0.15,
            max_iterations: 200,
            tolerance: 1e-10,
        }
    }
}

/// Result of a PageRank computation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PageRankResult {
    /// Final score vector (sums to 1).
    pub scores: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was reached before the iteration cap.
    pub converged: bool,
}

/// Compute PageRank scores for every node of `graph`.
///
/// Dangling nodes (no out-links) redistribute their mass uniformly, the
/// standard fix that keeps the scores a probability distribution.
pub fn pagerank(graph: &DiGraph, options: PageRankOptions) -> PageRankResult {
    let n = graph.node_count();
    if n == 0 {
        return PageRankResult {
            scores: Vec::new(),
            iterations: 0,
            converged: true,
        };
    }
    assert!(
        (0.0..=1.0).contains(&options.teleportation),
        "teleportation probability must be in [0, 1]"
    );
    let c = options.teleportation;
    let uniform = 1.0 / n as f64;
    let mut scores = vec![uniform; n];
    let mut next = vec![0.0; n];
    let dangling = graph.dangling_nodes();

    let mut iterations = 0;
    let mut converged = false;
    while iterations < options.max_iterations {
        iterations += 1;
        next.iter_mut().for_each(|x| *x = 0.0);

        // Mass from dangling nodes is spread uniformly.
        let dangling_mass: f64 = dangling.iter().map(|&v| scores[v]).sum();

        for (v, &score) in scores.iter().enumerate() {
            let out = graph.out_degree(v);
            if out == 0 {
                continue;
            }
            let share = score / out as f64;
            for &t in graph.out_neighbors(v) {
                next[t] += share;
            }
        }

        let mut delta = 0.0;
        for v in 0..n {
            let rank = c * uniform + (1.0 - c) * (next[v] + dangling_mass * uniform);
            delta += (rank - scores[v]).abs();
            next[v] = rank;
        }
        std::mem::swap(&mut scores, &mut next);

        if delta < options.tolerance {
            converged = true;
            break;
        }
    }

    PageRankResult {
        scores,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{preferential_attachment, uniform_random};
    use rrp_model::new_rng;

    fn assert_distribution(scores: &[f64]) {
        let sum: f64 = scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-8, "scores must sum to 1, got {sum}");
        assert!(scores.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn empty_graph_is_trivial() {
        let g = DiGraph::from_edges(0, &[]);
        let r = pagerank(&g, PageRankOptions::default());
        assert!(r.scores.is_empty());
        assert!(r.converged);
    }

    #[test]
    fn isolated_nodes_share_rank_equally() {
        let g = DiGraph::from_edges(4, &[]);
        let r = pagerank(&g, PageRankOptions::default());
        assert_distribution(&r.scores);
        for &s in &r.scores {
            assert!((s - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn symmetric_cycle_gives_equal_scores() {
        // 0 -> 1 -> 2 -> 0
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let r = pagerank(&g, PageRankOptions::default());
        assert!(r.converged);
        assert_distribution(&r.scores);
        for &s in &r.scores {
            assert!((s - 1.0 / 3.0).abs() < 1e-8);
        }
    }

    #[test]
    fn sink_of_a_star_gets_the_highest_score() {
        // Nodes 1..=4 all link to 0.
        let g = DiGraph::from_edges(5, &[(1, 0), (2, 0), (3, 0), (4, 0)]);
        let r = pagerank(&g, PageRankOptions::default());
        assert_distribution(&r.scores);
        for v in 1..5 {
            assert!(r.scores[0] > r.scores[v]);
        }
    }

    #[test]
    fn known_two_node_solution() {
        // 0 -> 1 only. With damping d = 1 - c:
        // pr(0) = c/2, pr(1) = c/2 + (1-c)*(pr(0) + pr(0_dangling... )
        // Easier: verify against an independent fixed-point computed by
        // solving the 2x2 system numerically with many iterations.
        let g = DiGraph::from_edges(2, &[(0, 1)]);
        let r = pagerank(
            &g,
            PageRankOptions {
                tolerance: 1e-14,
                max_iterations: 10_000,
                ..PageRankOptions::default()
            },
        );
        assert_distribution(&r.scores);
        assert!(r.converged);
        // Node 1 receives everything node 0 has, plus teleportation, so it
        // must outrank node 0.
        assert!(r.scores[1] > r.scores[0]);
        // Fixed point check: recompute one iteration by hand and confirm it
        // is (numerically) unchanged.
        let c = 0.15;
        let dangling_mass = r.scores[1]; // node 1 has no out-links
        let expected0 = c * 0.5 + (1.0 - c) * (dangling_mass * 0.5);
        let expected1 = c * 0.5 + (1.0 - c) * (r.scores[0] + dangling_mass * 0.5);
        assert!((expected0 - r.scores[0]).abs() < 1e-9);
        assert!((expected1 - r.scores[1]).abs() < 1e-9);
    }

    #[test]
    fn preferential_attachment_produces_skewed_pagerank() {
        let mut rng = new_rng(8);
        let g = preferential_attachment(3_000, 3, &mut rng);
        let r = pagerank(&g, PageRankOptions::default());
        assert!(r.converged);
        assert_distribution(&r.scores);
        let mut sorted = r.scores.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top_1pct: f64 = sorted.iter().take(30).sum();
        assert!(
            top_1pct > 0.05,
            "top 1% of pages should hold a disproportionate share, got {top_1pct}"
        );
    }

    #[test]
    fn uniform_graph_is_much_flatter() {
        let mut rng = new_rng(9);
        let g = uniform_random(3_000, 3, &mut rng);
        let r = pagerank(&g, PageRankOptions::default());
        let max = r.scores.iter().cloned().fold(0.0, f64::max);
        assert!(max < 5.0 / 3_000.0, "no node should dominate, max {max}");
    }

    #[test]
    fn higher_teleportation_flattens_scores() {
        let g = DiGraph::from_edges(5, &[(1, 0), (2, 0), (3, 0), (4, 0)]);
        let low = pagerank(
            &g,
            PageRankOptions {
                teleportation: 0.05,
                ..PageRankOptions::default()
            },
        );
        let high = pagerank(
            &g,
            PageRankOptions {
                teleportation: 0.9,
                ..PageRankOptions::default()
            },
        );
        assert!(low.scores[0] > high.scores[0]);
    }

    #[test]
    fn iteration_cap_is_respected() {
        let mut rng = new_rng(10);
        let g = preferential_attachment(500, 2, &mut rng);
        let r = pagerank(
            &g,
            PageRankOptions {
                max_iterations: 2,
                tolerance: 0.0,
                ..PageRankOptions::default()
            },
        );
        assert_eq!(r.iterations, 2);
        assert!(!r.converged);
    }

    #[test]
    #[should_panic(expected = "teleportation probability")]
    fn invalid_teleportation_panics() {
        let g = DiGraph::from_edges(2, &[(0, 1)]);
        pagerank(
            &g,
            PageRankOptions {
                teleportation: 1.5,
                ..PageRankOptions::default()
            },
        );
    }
}
