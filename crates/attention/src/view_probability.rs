//! The rank-bias law `F2`: how user attention decays with rank position.
//!
//! Section 5.3 of the paper splits the popularity→visit-rate relationship
//! into `F(x) = F2(F1(x))`, where `F2` maps a *rank position* to an expected
//! number of visits. Analysis of AltaVista usage logs (Cho & Roy 2004,
//! Lempel & Moran 2003) showed
//!
//! ```text
//! F2(rank) = θ · rank^(-3/2),    θ = v / Σ_{i=1..n} i^(-3/2)
//! ```
//!
//! i.e. attention follows a power law in rank with exponent 3/2, normalised
//! so that the expected visits over all `n` result positions sum to the
//! per-day visit budget `v`. The live study of Appendix A independently
//! measured "a power-law with an exponent remarkably close to −3/2" for its
//! volunteers.
//!
//! [`RankBias`] implements the general `θ · rank^(-s)` family; the paper's
//! law is [`RankBias::altavista`] with `s = 3/2`.

use crate::harmonic::generalized_harmonic;
use serde::{Deserialize, Serialize};

/// A power-law rank-bias model `F2(rank) = θ · rank^(-s)` over `n` result
/// positions, normalised to a total visit budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankBias {
    /// Power-law exponent `s` (3/2 for the AltaVista law).
    exponent: f64,
    /// Number of result positions `n`.
    positions: usize,
    /// Total expected visits per unit time distributed over all positions.
    total_visits: f64,
    /// Normalisation constant `θ = total_visits / H(n, s)`.
    theta: f64,
}

/// The paper's rank-bias exponent (Equation 4).
pub const ALTAVISTA_EXPONENT: f64 = 1.5;

impl RankBias {
    /// Build a rank-bias model with the given exponent over `positions`
    /// ranks, distributing `total_visits` visits per unit time.
    ///
    /// # Panics
    /// Panics if `positions == 0`, `exponent <= 0`, or `total_visits < 0`.
    pub fn new(exponent: f64, positions: usize, total_visits: f64) -> Self {
        assert!(positions > 0, "rank-bias model needs at least one position");
        assert!(exponent > 0.0, "rank-bias exponent must be positive");
        assert!(
            total_visits.is_finite() && total_visits >= 0.0,
            "total visits must be finite and non-negative"
        );
        let h = generalized_harmonic(positions, exponent);
        RankBias {
            exponent,
            positions,
            total_visits,
            theta: total_visits / h,
        }
    }

    /// The paper's AltaVista law: exponent 3/2.
    pub fn altavista(positions: usize, total_visits: f64) -> Self {
        RankBias::new(ALTAVISTA_EXPONENT, positions, total_visits)
    }

    /// Expected number of visits to the page shown at `rank` (1-based).
    ///
    /// Ranks beyond the number of positions receive zero visits.
    #[inline]
    pub fn visits_at_rank(&self, rank: usize) -> f64 {
        if rank == 0 || rank > self.positions {
            return 0.0;
        }
        self.theta * (rank as f64).powf(-self.exponent)
    }

    /// Expected visits at a *fractional* rank position. The analytic model
    /// works with expected ranks, which are generally not integers.
    #[inline]
    pub fn visits_at_fractional_rank(&self, rank: f64) -> f64 {
        if rank < 1.0 {
            return self.theta;
        }
        if rank > self.positions as f64 {
            return 0.0;
        }
        self.theta * rank.powf(-self.exponent)
    }

    /// Probability that a single visit lands on the page at `rank`
    /// (1-based): `visits_at_rank(rank) / total_visits`.
    #[inline]
    pub fn view_probability(&self, rank: usize) -> f64 {
        if self.total_visits == 0.0 {
            return 0.0;
        }
        self.visits_at_rank(rank) / self.total_visits
    }

    /// The full vector of expected visits by rank, `[rank 1, rank 2, …]`.
    pub fn visits_by_rank(&self) -> Vec<f64> {
        (1..=self.positions)
            .map(|r| self.visits_at_rank(r))
            .collect()
    }

    /// The full vector of view probabilities by rank; sums to 1.
    pub fn probabilities_by_rank(&self) -> Vec<f64> {
        let h = generalized_harmonic(self.positions, self.exponent);
        (1..=self.positions)
            .map(|r| (r as f64).powf(-self.exponent) / h)
            .collect()
    }

    /// Power-law exponent `s`.
    #[inline]
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Number of positions `n`.
    #[inline]
    pub fn positions(&self) -> usize {
        self.positions
    }

    /// Total visit budget per unit time.
    #[inline]
    pub fn total_visits(&self) -> f64 {
        self.total_visits
    }

    /// Normalisation constant `θ`.
    #[inline]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// A copy of the model rescaled to a different total visit budget
    /// (used when converting between monitored-user visits `v` and
    /// all-user visits `v_u`).
    pub fn with_total_visits(&self, total_visits: f64) -> Self {
        RankBias::new(self.exponent, self.positions, total_visits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn altavista_uses_three_halves() {
        let rb = RankBias::altavista(100, 50.0);
        assert_eq!(rb.exponent(), 1.5);
        assert_eq!(rb.positions(), 100);
        assert_eq!(rb.total_visits(), 50.0);
    }

    #[test]
    fn visits_sum_to_total_budget() {
        let rb = RankBias::altavista(1_000, 123.0);
        let total: f64 = rb.visits_by_rank().iter().sum();
        assert!((total - 123.0).abs() < 1e-9);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let rb = RankBias::altavista(500, 42.0);
        let total: f64 = rb.probabilities_by_rank().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Consistent with view_probability.
        assert!((rb.view_probability(1) - rb.probabilities_by_rank()[0]).abs() < 1e-12);
    }

    #[test]
    fn rank_one_gets_most_attention() {
        let rb = RankBias::altavista(100, 10.0);
        let v = rb.visits_by_rank();
        for w in v.windows(2) {
            assert!(w[0] > w[1], "attention must strictly decay with rank");
        }
    }

    #[test]
    fn three_halves_ratio_between_ranks() {
        let rb = RankBias::altavista(1000, 1.0);
        // F2(1)/F2(4) = 4^{1.5} = 8.
        let ratio = rb.visits_at_rank(1) / rb.visits_at_rank(4);
        assert!((ratio - 8.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_ranks_get_zero() {
        let rb = RankBias::altavista(10, 5.0);
        assert_eq!(rb.visits_at_rank(0), 0.0);
        assert_eq!(rb.visits_at_rank(11), 0.0);
        assert_eq!(rb.view_probability(0), 0.0);
        assert_eq!(rb.visits_at_fractional_rank(11.0), 0.0);
    }

    #[test]
    fn fractional_rank_interpolates_the_power_law() {
        let rb = RankBias::altavista(100, 10.0);
        let at_2 = rb.visits_at_rank(2);
        let frac = rb.visits_at_fractional_rank(2.0);
        assert!((at_2 - frac).abs() < 1e-12);
        // Fractional ranks below 1 are treated as rank 1.
        assert_eq!(rb.visits_at_fractional_rank(0.5), rb.theta());
        // Between ranks the value is between the neighbours.
        let mid = rb.visits_at_fractional_rank(2.5);
        assert!(mid < rb.visits_at_rank(2));
        assert!(mid > rb.visits_at_rank(3));
    }

    #[test]
    fn zero_budget_gives_zero_everywhere() {
        let rb = RankBias::altavista(10, 0.0);
        assert_eq!(rb.visits_at_rank(1), 0.0);
        assert_eq!(rb.view_probability(1), 0.0);
    }

    #[test]
    fn rescaling_total_visits() {
        let rb = RankBias::altavista(100, 100.0);
        let scaled = rb.with_total_visits(1_000.0);
        assert!((scaled.visits_at_rank(3) / rb.visits_at_rank(3) - 10.0).abs() < 1e-9);
        assert_eq!(scaled.exponent(), rb.exponent());
    }

    #[test]
    #[should_panic(expected = "at least one position")]
    fn zero_positions_panics() {
        RankBias::altavista(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exponent must be positive")]
    fn non_positive_exponent_panics() {
        RankBias::new(0.0, 10, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_budget_panics() {
        RankBias::new(1.5, 10, -1.0);
    }
}
