//! Generalized harmonic numbers.
//!
//! The rank-bias law of the paper (Equation 4) is `F2(rank) = θ · rank^(-3/2)`
//! with `θ = v / Σ_{i=1..n} i^(-3/2)`. The normalising sum is a generalized
//! harmonic number `H(n, s) = Σ_{i=1..n} i^(-s)`; this module computes it
//! exactly for small `n` and with an Euler–Maclaurin tail approximation for
//! very large `n` so that Figure 7(a)'s `n = 10^6` sweep does not need a
//! million-term sum per evaluation.

/// Threshold below which the sum is computed exactly term by term.
const EXACT_LIMIT: usize = 200_000;

/// Generalized harmonic number `H(n, s) = Σ_{i=1..n} i^(-s)` for `s > 0`.
///
/// For `n` up to [`EXACT_LIMIT`] the sum is exact (to f64 rounding); beyond
/// that the head is summed exactly and the tail is approximated with the
/// Euler–Maclaurin formula, giving at least 10 significant digits for the
/// exponents used in this workspace (`s = 1.5`, `s = 1`).
pub fn generalized_harmonic(n: usize, s: f64) -> f64 {
    assert!(s > 0.0, "harmonic exponent must be positive");
    if n == 0 {
        return 0.0;
    }
    if n <= EXACT_LIMIT {
        return exact_sum(1, n, s);
    }
    let head_end = EXACT_LIMIT;
    let head = exact_sum(1, head_end, s);
    head + tail_euler_maclaurin(head_end + 1, n, s)
}

/// Exact sum `Σ_{i=lo..=hi} i^(-s)`, summed smallest-terms-first to limit
/// floating-point error.
fn exact_sum(lo: usize, hi: usize, s: f64) -> f64 {
    let mut sum = 0.0;
    let mut i = hi;
    while i >= lo {
        sum += (i as f64).powf(-s);
        if i == 0 {
            break;
        }
        i -= 1;
    }
    sum
}

/// Euler–Maclaurin approximation of `Σ_{i=a..=b} i^(-s)`:
/// `∫_a^b x^(-s) dx + (a^(-s) + b^(-s))/2 + s·(a^(-s-1) − b^(-s-1))/12`.
fn tail_euler_maclaurin(a: usize, b: usize, s: f64) -> f64 {
    let af = a as f64;
    let bf = b as f64;
    let integral = if (s - 1.0).abs() < 1e-12 {
        (bf / af).ln()
    } else {
        (bf.powf(1.0 - s) - af.powf(1.0 - s)) / (1.0 - s)
    };
    integral
        + 0.5 * (af.powf(-s) + bf.powf(-s))
        + s / 12.0 * (af.powf(-s - 1.0) - bf.powf(-s - 1.0))
}

/// The Riemann zeta value `ζ(3/2) ≈ 2.612375…`, the limit of
/// `H(n, 3/2)` as `n → ∞`. Exposed because the analytic model uses it to
/// sanity-check normalisation constants for very large communities.
pub const ZETA_3_2: f64 = 2.612_375_348_685_488;

#[cfg(test)]
mod tests {
    use super::*;

    fn brute(n: usize, s: f64) -> f64 {
        (1..=n).map(|i| (i as f64).powf(-s)).sum()
    }

    #[test]
    fn zero_terms_is_zero() {
        assert_eq!(generalized_harmonic(0, 1.5), 0.0);
    }

    #[test]
    fn single_term_is_one() {
        assert_eq!(generalized_harmonic(1, 1.5), 1.0);
        assert_eq!(generalized_harmonic(1, 1.0), 1.0);
    }

    #[test]
    fn matches_brute_force_for_small_n() {
        for &n in &[2usize, 10, 100, 1000, 12345] {
            for &s in &[0.5, 1.0, 1.5, 2.0] {
                let fast = generalized_harmonic(n, s);
                let slow = brute(n, s);
                assert!((fast - slow).abs() < 1e-9, "n={n} s={s}: {fast} vs {slow}");
            }
        }
    }

    #[test]
    fn large_n_approximation_is_accurate() {
        // Compare the approximated path (n > EXACT_LIMIT) against the full
        // exact sum for a case big enough to exercise the tail.
        let n = 300_000;
        let s = 1.5;
        let approx = generalized_harmonic(n, s);
        let exact = brute(n, s);
        assert!(
            (approx - exact).abs() / exact < 1e-10,
            "relative error too large: {approx} vs {exact}"
        );
    }

    #[test]
    fn harmonic_s1_large_n() {
        let n = 500_000;
        let approx = generalized_harmonic(n, 1.0);
        let exact = brute(n, 1.0);
        assert!((approx - exact).abs() / exact < 1e-10);
    }

    #[test]
    fn converges_toward_zeta_three_halves() {
        let h = generalized_harmonic(10_000_000, 1.5);
        assert!(h < ZETA_3_2);
        assert!(
            ZETA_3_2 - h < 1e-3,
            "H(1e7, 1.5) = {h} should be close to ζ(3/2)"
        );
    }

    #[test]
    fn monotone_in_n() {
        let mut prev = 0.0;
        for n in [1usize, 10, 100, 1_000, 10_000] {
            let h = generalized_harmonic(n, 1.5);
            assert!(h > prev);
            prev = h;
        }
    }

    #[test]
    #[should_panic(expected = "harmonic exponent must be positive")]
    fn rejects_non_positive_exponent() {
        generalized_harmonic(10, 0.0);
    }
}
