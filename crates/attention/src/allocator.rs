//! Distributing a day's visit budget over a ranked result list.
//!
//! The simulator needs, every day, to turn a ranking (an ordering of page
//! slots) into per-page visit counts. Two allocation modes are provided:
//!
//! * [`AllocationMode::Expected`] — each page receives its *expected*
//!   (fractional) number of visits `F2(rank)`. This is what the paper's own
//!   simulator does ("distributes user visits to pages according to
//!   Equation 4") and what the analytic model assumes; it converges fast and
//!   is deterministic.
//! * [`AllocationMode::Sampled`] — the integer visit budget is drawn
//!   multinomially from the rank-bias distribution, modelling individual
//!   users clicking. Used in ablation experiments to confirm the
//!   expected-value shortcut does not change any conclusion.

use crate::view_probability::RankBias;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How the daily visit budget is split over ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocationMode {
    /// Deterministic expected-value allocation (fractional visits).
    Expected,
    /// Multinomial sampling of an integer number of visits.
    Sampled,
}

/// Allocates visits to page slots according to a [`RankBias`] law.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VisitAllocator {
    bias: RankBias,
    mode: AllocationMode,
    /// Cumulative view-probability table, built lazily for sampled mode.
    #[serde(skip)]
    cumulative: Vec<f64>,
}

impl VisitAllocator {
    /// Create an allocator for the given rank-bias law and mode.
    pub fn new(bias: RankBias, mode: AllocationMode) -> Self {
        let cumulative = if mode == AllocationMode::Sampled {
            cumulative_probabilities(&bias)
        } else {
            Vec::new()
        };
        VisitAllocator {
            bias,
            mode,
            cumulative,
        }
    }

    /// The rank-bias law in use.
    pub fn bias(&self) -> &RankBias {
        &self.bias
    }

    /// The allocation mode in use.
    pub fn mode(&self) -> AllocationMode {
        self.mode
    }

    /// Distribute the allocator's visit budget over `ranking`.
    ///
    /// `ranking[r]` is the slot index of the page shown at rank `r + 1`;
    /// `n_slots` is the total number of page slots. Returns a vector of
    /// length `n_slots` whose entry `s` is the number of visits slot `s`
    /// receives this day (fractional in expected mode, integral in sampled
    /// mode). Slots not present in `ranking` receive zero.
    pub fn allocate<R: Rng + ?Sized>(
        &self,
        ranking: &[usize],
        n_slots: usize,
        rng: &mut R,
    ) -> Vec<f64> {
        let mut visits = vec![0.0; n_slots];
        match self.mode {
            AllocationMode::Expected => {
                for (idx, &slot) in ranking.iter().enumerate() {
                    debug_assert!(slot < n_slots, "slot index out of range");
                    visits[slot] += self.bias.visits_at_rank(idx + 1);
                }
            }
            AllocationMode::Sampled => {
                let budget = self.bias.total_visits().round() as u64;
                for _ in 0..budget {
                    let rank = sample_rank(&self.cumulative, rng);
                    if let Some(&slot) = ranking.get(rank) {
                        visits[slot] += 1.0;
                    }
                }
            }
        }
        visits
    }

    /// Total visits distributed per call (the budget of the underlying
    /// rank-bias law, truncated to the length of the ranking).
    pub fn budget(&self) -> f64 {
        self.bias.total_visits()
    }
}

/// Cumulative distribution over 0-based rank indices.
fn cumulative_probabilities(bias: &RankBias) -> Vec<f64> {
    let probs = bias.probabilities_by_rank();
    let mut cumulative = Vec::with_capacity(probs.len());
    let mut acc = 0.0;
    for p in probs {
        acc += p;
        cumulative.push(acc);
    }
    if let Some(last) = cumulative.last_mut() {
        *last = 1.0; // guard against rounding drift
    }
    cumulative
}

/// Draw a 0-based rank index from the cumulative distribution.
fn sample_rank<R: Rng + ?Sized>(cumulative: &[f64], rng: &mut R) -> usize {
    let u: f64 = rng.gen();
    match cumulative.binary_search_by(|c| c.partial_cmp(&u).expect("finite")) {
        Ok(i) => i,
        Err(i) => i.min(cumulative.len().saturating_sub(1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bias(n: usize, v: f64) -> RankBias {
        RankBias::altavista(n, v)
    }

    #[test]
    fn expected_allocation_preserves_budget() {
        let alloc = VisitAllocator::new(bias(100, 50.0), AllocationMode::Expected);
        let ranking: Vec<usize> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let visits = alloc.allocate(&ranking, 100, &mut rng);
        let total: f64 = visits.iter().sum();
        assert!((total - 50.0).abs() < 1e-9);
        assert_eq!(alloc.budget(), 50.0);
    }

    #[test]
    fn expected_allocation_follows_rank_order_not_slot_order() {
        let alloc = VisitAllocator::new(bias(3, 10.0), AllocationMode::Expected);
        // Slot 2 is ranked first, slot 0 second, slot 1 third.
        let ranking = vec![2, 0, 1];
        let mut rng = StdRng::seed_from_u64(0);
        let visits = alloc.allocate(&ranking, 3, &mut rng);
        assert!(visits[2] > visits[0]);
        assert!(visits[0] > visits[1]);
        assert!((visits[2] - alloc.bias().visits_at_rank(1)).abs() < 1e-12);
        assert!((visits[1] - alloc.bias().visits_at_rank(3)).abs() < 1e-12);
    }

    #[test]
    fn partial_ranking_leaves_other_slots_unvisited() {
        let alloc = VisitAllocator::new(bias(2, 10.0), AllocationMode::Expected);
        let ranking = vec![4, 1];
        let mut rng = StdRng::seed_from_u64(0);
        let visits = alloc.allocate(&ranking, 6, &mut rng);
        assert_eq!(visits[0], 0.0);
        assert_eq!(visits[2], 0.0);
        assert!(visits[4] > 0.0);
        assert!(visits[1] > 0.0);
    }

    #[test]
    fn sampled_allocation_distributes_integer_budget() {
        let alloc = VisitAllocator::new(bias(50, 200.0), AllocationMode::Sampled);
        let ranking: Vec<usize> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(7);
        let visits = alloc.allocate(&ranking, 50, &mut rng);
        let total: f64 = visits.iter().sum();
        assert_eq!(total, 200.0);
        assert!(visits.iter().all(|v| v.fract() == 0.0));
    }

    #[test]
    fn sampled_allocation_concentrates_on_top_ranks() {
        let alloc = VisitAllocator::new(bias(100, 10_000.0), AllocationMode::Sampled);
        let ranking: Vec<usize> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(11);
        let visits = alloc.allocate(&ranking, 100, &mut rng);
        // Rank 1 expected share is 1/H(100, 1.5) ≈ 0.4; allow slack.
        assert!(visits[0] > 3_000.0, "rank 1 got {}", visits[0]);
        assert!(visits[0] > visits[50]);
    }

    #[test]
    fn sampled_mean_matches_expected_allocation() {
        let expected_alloc = VisitAllocator::new(bias(20, 100.0), AllocationMode::Expected);
        let sampled_alloc = VisitAllocator::new(bias(20, 100.0), AllocationMode::Sampled);
        let ranking: Vec<usize> = (0..20).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let expected = expected_alloc.allocate(&ranking, 20, &mut rng);
        let trials = 400;
        let mut mean = vec![0.0; 20];
        for _ in 0..trials {
            let v = sampled_alloc.allocate(&ranking, 20, &mut rng);
            for (m, x) in mean.iter_mut().zip(v) {
                *m += x / trials as f64;
            }
        }
        for (rank0, (e, m)) in expected.iter().zip(&mean).enumerate() {
            assert!(
                (e - m).abs() < 0.15 * e.max(1.0),
                "rank {}: expected {e}, sampled mean {m}",
                rank0 + 1
            );
        }
    }

    #[test]
    fn empty_ranking_allocates_nothing() {
        let alloc = VisitAllocator::new(bias(10, 5.0), AllocationMode::Expected);
        let mut rng = StdRng::seed_from_u64(0);
        let visits = alloc.allocate(&[], 4, &mut rng);
        assert_eq!(visits, vec![0.0; 4]);
    }

    #[test]
    fn mode_and_bias_accessors() {
        let alloc = VisitAllocator::new(bias(10, 5.0), AllocationMode::Sampled);
        assert_eq!(alloc.mode(), AllocationMode::Sampled);
        assert_eq!(alloc.bias().positions(), 10);
    }
}
