//! # rrp-attention — user attention and visit-allocation models
//!
//! Implements the rank-bias side of the paper's popularity model
//! (Section 5.3): the empirical AltaVista law `F2(rank) = θ · rank^(-3/2)`
//! that maps a result-list position to an expected number of user visits,
//! plus the machinery to distribute a day's visit budget over a concrete
//! ranking (deterministically in expectation or by multinomial sampling).
//!
//! * [`RankBias`] — the `θ · rank^(-s)` family, normalised to a visit
//!   budget ([`RankBias::altavista`] is the paper's law with `s = 3/2`).
//! * [`VisitAllocator`] — turns `(ranking, budget)` into per-page visits.
//! * [`generalized_harmonic`] — the normalising sums `Σ i^(-s)`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod allocator;
pub mod harmonic;
pub mod view_probability;

pub use allocator::{AllocationMode, VisitAllocator};
pub use harmonic::{generalized_harmonic, ZETA_3_2};
pub use view_probability::{RankBias, ALTAVISTA_EXPONENT};
