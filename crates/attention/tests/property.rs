//! Property-based tests for the attention model's invariants.

use proptest::prelude::*;
use rrp_attention::{generalized_harmonic, AllocationMode, RankBias, VisitAllocator};
use rrp_model::new_rng;

proptest! {
    /// The generalized harmonic number is positive, monotone in `n`, and
    /// bounded above by `n` (every term is at most 1).
    #[test]
    fn harmonic_monotone_and_bounded(n in 1usize..5_000, s in 0.5f64..3.0) {
        let h_n = generalized_harmonic(n, s);
        let h_n1 = generalized_harmonic(n + 1, s);
        prop_assert!(h_n > 0.0);
        prop_assert!(h_n1 > h_n);
        prop_assert!(h_n <= n as f64 + 1e-9);
    }

    /// View probabilities over all rank positions always sum to 1 and decay
    /// monotonically with rank.
    #[test]
    fn rank_bias_probabilities_are_a_distribution(
        positions in 1usize..2_000,
        exponent in 0.5f64..3.0,
        budget in 0.1f64..10_000.0,
    ) {
        let bias = RankBias::new(exponent, positions, budget);
        let probs = bias.probabilities_by_rank();
        prop_assert_eq!(probs.len(), positions);
        let sum: f64 = probs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum = {}", sum);
        for w in probs.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        // Visits scale the same distribution by the budget.
        let visits: f64 = bias.visits_by_rank().iter().sum();
        prop_assert!((visits - budget).abs() / budget < 1e-6);
    }

    /// Expected-value allocation conserves the visit budget and never
    /// assigns visits to slots that are not ranked.
    #[test]
    fn expected_allocation_conserves_budget(
        ranked in 1usize..300,
        extra_slots in 0usize..50,
        budget in 0.0f64..1_000.0,
        seed in proptest::num::u64::ANY,
    ) {
        let n_slots = ranked + extra_slots;
        let bias = RankBias::altavista(ranked, budget);
        let allocator = VisitAllocator::new(bias, AllocationMode::Expected);
        // Rank the last `ranked` slots, leaving the first `extra_slots`
        // unranked.
        let ranking: Vec<usize> = (extra_slots..n_slots).collect();
        let mut rng = new_rng(seed);
        let visits = allocator.allocate(&ranking, n_slots, &mut rng);
        prop_assert_eq!(visits.len(), n_slots);
        let total: f64 = visits.iter().sum();
        prop_assert!((total - budget).abs() < 1e-6 * budget.max(1.0));
        for &v in &visits[..extra_slots] {
            prop_assert_eq!(v, 0.0);
        }
    }

    /// Sampled allocation distributes exactly the rounded integer budget.
    #[test]
    fn sampled_allocation_is_integral(
        ranked in 1usize..200,
        budget in 1.0f64..500.0,
        seed in proptest::num::u64::ANY,
    ) {
        let bias = RankBias::altavista(ranked, budget);
        let allocator = VisitAllocator::new(bias, AllocationMode::Sampled);
        let ranking: Vec<usize> = (0..ranked).collect();
        let mut rng = new_rng(seed);
        let visits = allocator.allocate(&ranking, ranked, &mut rng);
        let total: f64 = visits.iter().sum();
        prop_assert_eq!(total, budget.round());
        prop_assert!(visits.iter().all(|v| v.fract() == 0.0 && *v >= 0.0));
    }
}
