//! Figure 7 — robustness of the recommended recipe across community types:
//! community size, page lifetime, visit rate, and user-population size.

use crate::options::{ExperimentOptions, Scale};
use crate::report::{FigureReport, Series};
use crate::runner::SweepExecutor;
use crate::runners::simulate_qpc;
use rrp_analytic::RankingModel;
use rrp_model::CommunityConfig;

/// The three ranking methods compared throughout Figure 7.
fn methods() -> Vec<(&'static str, RankingModel)> {
    vec![
        ("No randomization", RankingModel::NonRandomized),
        (
            "Selective randomization (k=1)",
            RankingModel::Selective {
                start_rank: 1,
                degree: 0.1,
            },
        ),
        (
            "Selective randomization (k=2)",
            RankingModel::Selective {
                start_rank: 2,
                degree: 0.1,
            },
        ),
    ]
}

/// Shared sweep driver: for every `(x, community)` pair, measure normalized
/// QPC under each of the three methods.
fn sweep_qpc(
    id: &str,
    title: &str,
    x_label: &str,
    points: Vec<(f64, CommunityConfig)>,
    options: &ExperimentOptions,
    notes: &[&str],
) -> FigureReport {
    let mut jobs = Vec::new();
    for (x, community) in &points {
        for (name, model) in methods() {
            jobs.push((*x, *community, name, model));
        }
    }
    let executor = SweepExecutor::new(id);
    let results = executor.run(
        jobs,
        |&(x, _, name, _)| format!("{name} x={x}"),
        |&(x, community, name, model), stream| {
            let qpc = simulate_qpc(community, model, 0.0, options, stream).normalized_qpc;
            (name, x, qpc)
        },
    );

    let mut report = FigureReport::new(id, title, x_label, "normalized QPC");
    for (name, _) in methods() {
        let series: Vec<(f64, f64)> = results
            .iter()
            .filter(|&&(n, ..)| n == name)
            .map(|&(_, x, q)| (x, q))
            .collect();
        report.push_series(Series::new(name, series));
    }
    for note in notes {
        report.push_note(*note);
    }
    report
}

/// Figure 7(a): influence of community size `n` (u/n, m/u and v_u/u held at
/// the paper's proportions).
pub fn figure7a(options: &ExperimentOptions) -> FigureReport {
    let sizes: Vec<usize> = match options.scale {
        Scale::Tiny => vec![200, 400, 800],
        Scale::Quick => vec![500, 2_000, 8_000],
        Scale::Full => vec![1_000, 10_000, 100_000],
    };
    let points: Vec<(f64, CommunityConfig)> = sizes
        .iter()
        .map(|&n| {
            (
                n as f64,
                CommunityConfig::builder()
                    .scaled_to_pages(n)
                    .expected_lifetime_years(1.5)
                    .build()
                    .expect("scaled community is valid"),
            )
        })
        .collect();
    sweep_qpc(
        "Figure 7(a)",
        "Influence of community size",
        "community size (n)",
        points,
        options,
        &[
            "u/n = 10%, m/u = 10%, one visit per user per day, 1.5-year lifetimes",
            "paper expectation: QPC of nonrandomized ranking declines as the community grows; \
             randomized promotion stays high and fairly steady",
            "the paper sweeps n up to 10^6; this harness caps the largest point (10^5 in full \
             mode) to keep runtimes reasonable — the trend is already visible",
        ],
    )
}

/// Figure 7(b): influence of the expected page lifetime `l`.
pub fn figure7b(options: &ExperimentOptions) -> FigureReport {
    let lifetimes_years: Vec<f64> = match options.scale {
        Scale::Tiny => vec![0.5, 1.5],
        Scale::Quick => vec![0.5, 1.5, 3.0],
        Scale::Full => vec![0.5, 1.5, 2.5, 3.5, 4.5],
    };
    let base = options.default_community();
    let points: Vec<(f64, CommunityConfig)> = lifetimes_years
        .iter()
        .map(|&years| {
            (
                years,
                CommunityConfig::builder()
                    .pages(base.pages())
                    .users(base.users())
                    .monitored_users(base.monitored_users())
                    .total_visits_per_day(base.total_visits_per_day())
                    .expected_lifetime_years(years)
                    .build()
                    .expect("valid community"),
            )
        })
        .collect();
    sweep_qpc(
        "Figure 7(b)",
        "Influence of page lifetime",
        "expected page lifetime (years)",
        points,
        options,
        &[
            "paper expectation: longer-lived pages suffer less from entrenchment (baseline QPC \
             rises with lifetime), and the improvement from randomization is larger for \
             longer-lived pages",
        ],
    )
}

/// Figure 7(c): influence of the aggregate visit rate `v_u` (the number of
/// users scales with it so that each user still makes one visit per day).
pub fn figure7c(options: &ExperimentOptions) -> FigureReport {
    let base = options.default_community();
    let visit_rates: Vec<f64> = match options.scale {
        Scale::Tiny => vec![4.0, 40.0, 400.0],
        Scale::Quick => vec![20.0, 200.0, 2_000.0],
        Scale::Full => vec![100.0, 1_000.0, 10_000.0, 100_000.0],
    };
    let points: Vec<(f64, CommunityConfig)> = visit_rates
        .iter()
        .map(|&vu| {
            let users = (vu.round() as usize).max(10);
            let monitored = (users / 10).max(1);
            (
                vu,
                CommunityConfig::builder()
                    .pages(base.pages())
                    .users(users)
                    .monitored_users(monitored)
                    .total_visits_per_day(vu)
                    .expected_lifetime_years(1.5)
                    .build()
                    .expect("valid community"),
            )
        })
        .collect();
    sweep_qpc(
        "Figure 7(c)",
        "Influence of visit rate",
        "total user visits per day (v_u)",
        points,
        options,
        &[
            "v_u/u = 1 and m/u = 10% are held fixed while v_u varies; n is the default size",
            "paper expectation: popularity-based ranking fails when visits are very scarce; \
             when visits are plentiful randomization is unnecessary (but harmless); in between \
             — around v_u ≈ 0.1·n — randomized promotion helps significantly",
            "the paper sweeps v_u up to 10^7; the largest points are capped here because the \
             simulator samples each monitored visit individually",
        ],
    )
}

/// Figure 7(d): influence of the user-population size `u` with the total
/// visit volume held fixed.
pub fn figure7d(options: &ExperimentOptions) -> FigureReport {
    let base = options.default_community();
    let user_counts: Vec<usize> = match options.scale {
        Scale::Tiny => vec![20, 40, 400],
        Scale::Quick => vec![50, 200, 2_000, 20_000],
        Scale::Full => vec![100, 1_000, 10_000, 100_000],
    };
    let points: Vec<(f64, CommunityConfig)> = user_counts
        .iter()
        .map(|&u| {
            (
                u as f64,
                CommunityConfig::builder()
                    .pages(base.pages())
                    .users(u)
                    .monitored_users((u / 10).max(1))
                    .total_visits_per_day(base.total_visits_per_day())
                    .expected_lifetime_years(1.5)
                    .build()
                    .expect("valid community"),
            )
        })
        .collect();
    sweep_qpc(
        "Figure 7(d)",
        "Influence of the size of the user population",
        "number of users (u)",
        points,
        options,
        &[
            "the total number of visits per day is held fixed while the number of users making \
             them varies; m/u = 10%",
            "paper expectation: all three ranking methods perform somewhat worse with a large \
             pool of occasional visitors, but their relative order is unchanged",
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7a_produces_full_series_with_sane_qpc_values() {
        // Tiny-scale communities have so few monitored users (m = 2–8) that
        // the entrenchment regime the paper studies does not arise; this
        // test therefore only checks the sweep structure and value ranges.
        // The baseline-vs-promotion comparison is asserted at Quick scale by
        // the integration tests and regenerated by the bench harness.
        let report = figure7a(&ExperimentOptions::tiny(17));
        assert_eq!(report.series.len(), 3);
        for series in &report.series {
            assert_eq!(series.points.len(), 3, "one point per community size");
            for &(x, qpc) in &series.points {
                assert!(x >= 200.0);
                assert!(qpc > 0.0 && qpc <= 1.05, "QPC {qpc} out of range");
            }
        }
        assert!(report.to_markdown().contains("Figure 7(a)"));
    }

    #[test]
    fn figure7_sweeps_have_the_right_shape() {
        // Only construct the community grids (no simulation) for the other
        // sub-figures; the sweep mechanics are already covered above.
        let options = ExperimentOptions::tiny(1);
        for builder in [figure7b, figure7c, figure7d] {
            let report = builder(&options);
            assert_eq!(report.series.len(), 3);
            assert!(!report.series[0].points.is_empty());
            assert!(!report.to_markdown().is_empty());
        }
    }
}
