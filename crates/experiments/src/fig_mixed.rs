//! Figure 8 — mixed surfing and searching.

use crate::options::{ExperimentOptions, Scale};
use crate::report::{FigureReport, Series};
use crate::runner::SweepExecutor;
use crate::runners::simulate_qpc;
use rrp_analytic::RankingModel;

/// Reproduce Figure 8: absolute QPC as the fraction of browsing done by
/// random surfing (`x`) varies from 0 (pure search) to 1 (pure surfing),
/// for nonrandomized ranking and selective promotion with k = 1 and k = 2.
///
/// As in the paper, *absolute* QPC is reported because the ideal achievable
/// QPC itself changes with `x`.
pub fn figure8(options: &ExperimentOptions) -> FigureReport {
    let community = options.default_community();
    let surf_fractions: Vec<f64> = match options.scale {
        Scale::Tiny => vec![0.0, 0.5, 1.0],
        Scale::Quick => vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
        Scale::Full => vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0],
    };
    let methods = [
        ("No randomization", RankingModel::NonRandomized),
        (
            "Selective randomization (k=1)",
            RankingModel::Selective {
                start_rank: 1,
                degree: 0.1,
            },
        ),
        (
            "Selective randomization (k=2)",
            RankingModel::Selective {
                start_rank: 2,
                degree: 0.1,
            },
        ),
    ];

    let mut jobs = Vec::new();
    for (name, model) in &methods {
        for &x in &surf_fractions {
            jobs.push((*name, *model, x));
        }
    }
    let executor = SweepExecutor::new("Figure 8");
    let results = executor.run(
        jobs,
        |&(name, _, x)| format!("{name} x={x}"),
        |&(name, model, x), stream| {
            let metrics = simulate_qpc(community, model, x, options, stream);
            (name, x, metrics.absolute_qpc)
        },
    );

    let mut report = FigureReport::new(
        "Figure 8",
        "Influence of the extent of random surfing",
        "fraction of random surfing (x)",
        "absolute QPC",
    );
    for (name, _) in methods {
        let series: Vec<(f64, f64)> = results
            .iter()
            .filter(|&&(n, ..)| n == name)
            .map(|&(_, x, q)| (x, q))
            .collect();
        report.push_series(Series::new(name, series));
    }
    report.push_note("absolute (not normalized) QPC, as in the paper: the ideal QPC varies with x");
    report.push_note(
        "paper expectation: randomized promotion is at least as good as nonrandomized ranking \
         for every x; a little random surfing helps nonrandomized ranking (it explores unpopular \
         pages via teleportation) but too much hurts everyone",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8_has_three_methods_over_the_surf_grid() {
        let report = figure8(&ExperimentOptions::tiny(8));
        assert_eq!(report.series.len(), 3);
        for series in &report.series {
            assert_eq!(series.points.len(), 3);
            for &(x, qpc) in &series.points {
                assert!((0.0..=1.0).contains(&x));
                assert!(qpc > 0.0 && qpc <= 0.4 + 1e-9, "absolute QPC {qpc}");
            }
        }
    }
}
