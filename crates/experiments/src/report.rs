//! Report containers for reproduced figures.
//!
//! Every experiment driver returns a [`FigureReport`]: a set of named data
//! series plus axis labels and free-form notes (including the paper's
//! qualitative expectation, so the generated output can be eyeballed
//! against it). Reports render to aligned markdown tables and to CSV.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One named data series: `(x, y)` points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Display name (e.g. `"Selective (simulation)"`).
    pub name: String,
    /// Data points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Build a series.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            points,
        }
    }

    /// Look up the y value at an exact x (used by tests).
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() < 1e-12)
            .map(|&(_, y)| y)
    }
}

/// A reproduced figure or table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureReport {
    /// Identifier matching the paper ("Figure 5", "Figure 7(a)", …).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Label of the x axis.
    pub x_label: String,
    /// Label of the y axis.
    pub y_label: String,
    /// The data series.
    pub series: Vec<Series>,
    /// Notes: configuration used, paper expectation, caveats.
    pub notes: Vec<String>,
}

impl FigureReport {
    /// Create an empty report.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        FigureReport {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Add a series.
    pub fn push_series(&mut self, series: Series) -> &mut Self {
        self.series.push(series);
        self
    }

    /// Add a note.
    pub fn push_note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Find a series by name.
    pub fn series_named(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// The sorted union of all x values across series.
    fn x_grid(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x values"));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        xs
    }

    /// Render as a markdown table (one row per x value, one column per
    /// series), preceded by the title and followed by the notes.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {} — {}\n", self.id, self.title);
        let _ = write!(out, "| {} |", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {} |", s.name);
        }
        let _ = writeln!(out);
        let _ = write!(out, "|---|");
        for _ in &self.series {
            let _ = write!(out, "---|");
        }
        let _ = writeln!(out);
        for x in self.x_grid() {
            let _ = write!(out, "| {x:.4} |");
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(out, " {y:.4} |");
                    }
                    None => {
                        let _ = write!(out, " — |");
                    }
                }
            }
            let _ = writeln!(out);
        }
        if !self.notes.is_empty() {
            let _ = writeln!(out);
            for note in &self.notes {
                let _ = writeln!(out, "> {note}");
            }
        }
        out
    }

    /// Render as CSV: `x,series,value` rows.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("x,series,value\n");
        for s in &self.series {
            for &(x, y) in &s.points {
                let _ = writeln!(out, "{x},{},{y}", csv_escape(&s.name));
            }
        }
        out
    }
}

/// Quote a CSV field when needed.
fn csv_escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureReport {
        let mut r = FigureReport::new("Figure X", "demo", "r", "QPC");
        r.push_series(Series::new("baseline", vec![(0.0, 0.5), (0.1, 0.5)]));
        r.push_series(Series::new(
            "promoted",
            vec![(0.0, 0.5), (0.1, 0.8), (0.2, 0.85)],
        ));
        r.push_note("paper expectation: promoted > baseline");
        r
    }

    #[test]
    fn series_lookup() {
        let s = Series::new("a", vec![(1.0, 2.0), (3.0, 4.0)]);
        assert_eq!(s.y_at(3.0), Some(4.0));
        assert_eq!(s.y_at(2.0), None);
    }

    #[test]
    fn x_grid_is_sorted_union() {
        let r = sample();
        assert_eq!(r.x_grid(), vec![0.0, 0.1, 0.2]);
        assert!(r.series_named("baseline").is_some());
        assert!(r.series_named("missing").is_none());
    }

    #[test]
    fn markdown_contains_all_points_and_gaps() {
        let md = sample().to_markdown();
        assert!(md.contains("## Figure X — demo"));
        assert!(md.contains("| r | baseline | promoted |"));
        assert!(md.contains("0.8000"));
        assert!(md.contains("—"), "missing values are rendered as a dash");
        assert!(md.contains("> paper expectation"));
    }

    #[test]
    fn csv_roundtrips_every_point() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines[0], "x,series,value");
        assert_eq!(lines.len(), 1 + 2 + 3);
        assert!(lines.iter().any(|l| l.starts_with("0.2,promoted,")));
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
