//! Figures 5–6 — quality-per-click as a function of the degree of
//! randomization and the starting rank.

use crate::options::{ExperimentOptions, Scale};
use crate::report::{FigureReport, Series};
use crate::runner::SweepExecutor;
use crate::runners::{simulate_qpc, solve_analytic};
use rrp_analytic::RankingModel;

/// Reproduce Figure 5: normalized QPC vs degree of randomization `r`
/// (holding `k = 1`) for selective and uniform promotion, from both the
/// analytic model and simulation.
pub fn figure5(options: &ExperimentOptions) -> FigureReport {
    let community = options.default_community();
    let degrees: Vec<f64> = match options.scale {
        Scale::Tiny => vec![0.0, 0.1, 0.2],
        Scale::Quick => vec![0.0, 0.05, 0.1, 0.15, 0.2],
        Scale::Full => vec![0.0, 0.02, 0.05, 0.1, 0.15, 0.2],
    };

    // Both rules degenerate to the same NonRandomized model at r = 0, so
    // that cell is swept once and shared by both curves below.
    let mut jobs = Vec::new();
    for &degree in &degrees {
        if degree == 0.0 {
            jobs.push(("Baseline", degree));
        } else {
            for rule in ["Selective", "Uniform"] {
                jobs.push((rule, degree));
            }
        }
    }
    let executor = SweepExecutor::new("Figure 5");
    let results = executor.run(
        jobs,
        |&(rule, degree)| format!("rule={rule} r={degree}"),
        |&(rule, degree), stream| {
            let model = match rule {
                "Baseline" => RankingModel::NonRandomized,
                "Selective" => RankingModel::Selective {
                    start_rank: 1,
                    degree,
                },
                _ => RankingModel::Uniform {
                    start_rank: 1,
                    degree,
                },
            };
            let analytic = solve_analytic(community, model).normalized_qpc();
            let sim = simulate_qpc(community, model, 0.0, options, stream).normalized_qpc;
            (rule, degree, analytic, sim)
        },
    );

    let mut report = FigureReport::new(
        "Figure 5",
        "Quality-per-click for the default Web community vs degree of randomization",
        "degree of randomization (r)",
        "normalized QPC",
    );
    for rule in ["Selective", "Uniform"] {
        // Each curve includes the shared r = 0 baseline cell. Results come
        // back in input order, which is ascending in degree.
        let analysis: Vec<(f64, f64)> = results
            .iter()
            .filter(|&&(r, ..)| r == rule || r == "Baseline")
            .map(|&(_, d, a, _)| (d, a))
            .collect();
        let simulation: Vec<(f64, f64)> = results
            .iter()
            .filter(|&&(r, ..)| r == rule || r == "Baseline")
            .map(|&(_, d, _, s)| (d, s))
            .collect();
        report.push_series(Series::new(format!("{rule} (analysis)"), analysis));
        report.push_series(Series::new(format!("{rule} (simulation)"), simulation));
    }
    report.push_note(
        "paper expectation: a moderate dose of randomization increases QPC substantially, and \
         selective promotion outperforms uniform promotion",
    );
    report
}

/// Reproduce Figure 6: normalized QPC under selective randomized promotion
/// as both the degree of randomization `r` and the starting rank `k` vary
/// (simulation, as in the paper).
pub fn figure6(options: &ExperimentOptions) -> FigureReport {
    let community = options.default_community();
    let degrees: Vec<f64> = match options.scale {
        Scale::Tiny => vec![0.0, 0.5, 1.0],
        Scale::Quick => vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
        Scale::Full => vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0],
    };
    let start_ranks: Vec<usize> = match options.scale {
        Scale::Tiny => vec![1, 21],
        Scale::Quick | Scale::Full => vec![1, 2, 6, 11, 21],
    };

    let mut jobs = Vec::new();
    for &k in &start_ranks {
        for &degree in &degrees {
            jobs.push((k, degree));
        }
    }
    let executor = SweepExecutor::new("Figure 6");
    let results = executor.run(
        jobs,
        |&(k, degree)| format!("k={k} r={degree}"),
        |&(k, degree), stream| {
            let model = if degree == 0.0 {
                RankingModel::NonRandomized
            } else {
                RankingModel::Selective {
                    start_rank: k,
                    degree,
                }
            };
            let qpc = simulate_qpc(community, model, 0.0, options, stream).normalized_qpc;
            (k, degree, qpc)
        },
    );

    let mut report = FigureReport::new(
        "Figure 6",
        "Quality-per-click under selective randomized promotion as r and k vary",
        "degree of randomization (r)",
        "normalized QPC",
    );
    for &k in &start_ranks {
        let points: Vec<(f64, f64)> = results
            .iter()
            .filter(|&&(rk, ..)| rk == k)
            .map(|&(_, d, q)| (d, q))
            .collect();
        report.push_series(Series::new(format!("k={k}"), points));
    }
    report.push_note(
        "paper expectation: for small k, around 10% randomization captures most of the benefit; \
         larger k needs larger r to reach the same QPC; very large r erodes quality again",
    );
    report
        .push_note("paper recommendation (Section 6.4): selective promotion, r = 0.1, k ∈ {1, 2}");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_produces_analysis_and_simulation_series() {
        let report = figure5(&ExperimentOptions::tiny(5));
        assert_eq!(report.series.len(), 4);
        for series in &report.series {
            assert_eq!(series.points.len(), 3, "one point per degree");
            for &(r, qpc) in &series.points {
                assert!((0.0..=0.2).contains(&r));
                assert!(qpc > 0.0 && qpc <= 1.05, "QPC {qpc} out of range");
            }
        }
        // The analytic model is deterministic and shows the paper's
        // direction even at tiny scale: more randomization, better QPC.
        let analytic = report.series_named("Selective (analysis)").unwrap();
        assert!(analytic.y_at(0.2).unwrap() >= analytic.y_at(0.0).unwrap());
        // Note: the *simulated* comparison is intentionally not asserted at
        // tiny scale (m = 4 monitored users is outside the entrenchment
        // regime); it is covered by the Quick-scale integration test and
        // the bench harness.
    }
}
