//! The deterministic sweep executor behind every figure driver.
//!
//! Each figure evaluates a grid of `(policy, community configuration,
//! parameter)` cells. Two properties must hold at once:
//!
//! 1. **Parallelism** — cells are independent simulations, so they should
//!    fan out across all cores ([`crate::sweep::parallel_map`]).
//! 2. **Determinism** — the random stream a cell consumes must depend only
//!    on *what the cell is*, never on which worker ran it, how the grid was
//!    enumerated, or which other cells exist. Adding a grid point must not
//!    perturb the results of the others.
//!
//! [`SweepExecutor`] reconciles the two: every cell gets a human-readable
//! label (e.g. `"rule=Selective r=0.1"`), and its RNG stream is derived
//! from a stable FNV-1a hash of `(figure id, cell label)` finished with a
//! SplitMix64 mix. The label→stream map is a pure function, so the serial
//! and parallel paths — any worker count, any scheduling — produce
//! bit-identical figures.

use crate::sweep::{parallel_map_with_workers, worker_threads};
use rrp_model::splitmix64;

/// FNV-1a hash of a byte string (stable across platforms and releases).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Deterministic parallel executor for one figure's sweep grid.
#[derive(Debug, Clone)]
pub struct SweepExecutor {
    figure: String,
    workers: usize,
}

impl SweepExecutor {
    /// Build an executor for the figure with the given identifier. The
    /// identifier participates in every cell's stream derivation, so two
    /// figures never share random streams even for identical cell labels.
    pub fn new(figure: impl Into<String>) -> Self {
        SweepExecutor {
            figure: figure.into(),
            workers: worker_threads(),
        }
    }

    /// Override the worker count (used by determinism tests; `1` forces the
    /// serial path).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The figure identifier.
    pub fn figure(&self) -> &str {
        &self.figure
    }

    /// The stable stream identifier for a cell label: a pure function of
    /// `(figure, label)`, independent of grid shape and execution order.
    /// Figure drivers pass this as the `stream` argument of
    /// [`crate::runners::simulate_qpc`] and friends.
    pub fn stream(&self, label: &str) -> u64 {
        splitmix64(fnv1a(self.figure.as_bytes()) ^ fnv1a(label.as_bytes()).rotate_left(31))
    }

    /// Run the sweep: `label` names each cell, `work` receives the cell and
    /// its derived stream identifier. Results come back in input order.
    ///
    /// Labels must be unique within one run — two cells with the same label
    /// would silently consume the *same* random stream, spuriously
    /// correlating their results, so every build panics on a duplicate (the
    /// check is O(cells) string hashing, negligible next to the sweeps). A
    /// cell that several curves genuinely share (e.g. a common `r = 0`
    /// baseline) should be swept once and reused by the caller.
    pub fn run<T, R, L, W>(&self, cells: Vec<T>, label: L, work: W) -> Vec<R>
    where
        T: Sync,
        R: Send,
        L: Fn(&T) -> String + Sync,
        W: Fn(&T, u64) -> R + Sync,
    {
        let mut seen = std::collections::HashSet::new();
        for cell in &cells {
            let cell_label = label(cell);
            assert!(
                seen.insert(cell_label.clone()),
                "sweep {:?}: duplicate cell label {cell_label:?} would reuse a random stream",
                self.figure
            );
        }
        parallel_map_with_workers(cells, self.workers, |cell| {
            work(cell, self.stream(&label(cell)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_a_pure_function_of_figure_and_label() {
        let a = SweepExecutor::new("Figure 5");
        let b = SweepExecutor::new("Figure 5");
        assert_eq!(a.stream("r=0.1"), b.stream("r=0.1"));
        assert_ne!(a.stream("r=0.1"), a.stream("r=0.2"));
        assert_ne!(
            SweepExecutor::new("Figure 5").stream("r=0.1"),
            SweepExecutor::new("Figure 6").stream("r=0.1"),
            "figures must not share streams"
        );
    }

    #[test]
    fn streams_do_not_collide_across_a_realistic_grid() {
        let executor = SweepExecutor::new("Figure 6");
        let mut streams: Vec<u64> = Vec::new();
        for k in [1usize, 2, 6, 11, 21] {
            for r in 0..=10 {
                streams.push(executor.stream(&format!("k={k} r={}", r as f64 / 10.0)));
            }
        }
        let total = streams.len();
        streams.sort_unstable();
        streams.dedup();
        assert_eq!(streams.len(), total, "stream collision in a small grid");
    }

    #[test]
    fn run_hands_each_cell_its_label_stream() {
        let executor = SweepExecutor::new("Test figure").with_workers(3);
        let cells: Vec<u32> = (0..10).collect();
        let out = executor.run(cells, |c| format!("cell={c}"), |&c, stream| (c, stream));
        for &(c, stream) in &out {
            assert_eq!(stream, executor.stream(&format!("cell={c}")));
        }
    }

    #[test]
    fn serial_and_parallel_runs_are_identical() {
        let cells: Vec<u32> = (0..24).collect();
        let serial = SweepExecutor::new("Det check").with_workers(1).run(
            cells.clone(),
            |c| format!("c{c}"),
            |&c, s| s.wrapping_add(c as u64),
        );
        let parallel = SweepExecutor::new("Det check").with_workers(8).run(
            cells,
            |c| format!("c{c}"),
            |&c, s| s.wrapping_add(c as u64),
        );
        assert_eq!(serial, parallel);
    }

    #[test]
    fn adding_a_cell_does_not_perturb_the_others() {
        let executor = SweepExecutor::new("Figure 5");
        let small = executor.run(vec![1u32, 2], |c| format!("c{c}"), |_, s| s);
        let large = executor.run(vec![1u32, 2, 3], |c| format!("c{c}"), |_, s| s);
        assert_eq!(small[..], large[..2]);
    }
}
