//! Figures 2–4 — the exploration/exploitation tradeoff, the steady-state
//! awareness distribution, popularity evolution, and time-to-become-popular.

use crate::options::{ExperimentOptions, Scale};
use crate::report::{FigureReport, Series};
use crate::runner::SweepExecutor;
use crate::runners::{build_simulation, simulate_tbp, solve_analytic};
use rrp_analytic::RankingModel;
use rrp_model::SeedSequence;

/// Downsample a per-day curve to at most ~60 points so reports stay
/// readable, always keeping the first and last day.
fn downsample(curve: &[f64]) -> Vec<(f64, f64)> {
    let n = curve.len();
    if n == 0 {
        return Vec::new();
    }
    let step = (n / 60).max(1);
    let mut points: Vec<(f64, f64)> = curve
        .iter()
        .enumerate()
        .filter(|(i, _)| i % step == 0)
        .map(|(i, &y)| (i as f64, y))
        .collect();
    if points.last().map(|&(x, _)| x as usize) != Some(n - 1) {
        points.push(((n - 1) as f64, curve[n - 1]));
    }
    points
}

/// Reproduce Figure 2: the visit rate of a freshly created high-quality page
/// over its lifetime, with and without rank promotion (simulation). The area
/// between the curves before the crossover is the exploration benefit; after
/// it, the exploitation loss.
pub fn figure2(options: &ExperimentOptions) -> FigureReport {
    let community = options.default_community();
    let days = match options.scale {
        Scale::Tiny => 200,
        Scale::Quick | Scale::Full => 550,
    };
    let seeds = SeedSequence::new(options.seed).child_sequence(2);

    let models = [
        ("without rank promotion", RankingModel::NonRandomized),
        (
            "with rank promotion",
            RankingModel::Selective {
                start_rank: 1,
                degree: 0.2,
            },
        ),
    ];
    let executor = SweepExecutor::new("Figure 2");
    let traces = executor.run(
        models.to_vec(),
        |(name, _)| (*name).to_string(),
        |(name, model), stream| {
            let mut sim = build_simulation(community, *model, 0.0, seeds.child_seed(stream));
            sim.run(options.warmup_days());
            let trace = sim.trace_fresh_best_page(days);
            (name.to_string(), trace)
        },
    );

    let mut report = FigureReport::new(
        "Figure 2",
        "Exploration/exploitation tradeoff: visit rate of a new high-quality page",
        "day since page creation",
        "monitored visits per day",
    );
    for (name, trace) in traces {
        report.push_series(Series::new(name, downsample(&trace.daily_visits)));
    }
    report.push_note(format!(
        "community: {} pages, quality-0.4 probe page, selective promotion r=0.2, k=1",
        community.pages()
    ));
    report.push_note(
        "paper expectation: with promotion the page starts receiving visits much earlier \
         (exploration benefit); once popular it receives slightly fewer visits than without \
         promotion (exploitation loss)",
    );
    report
}

/// Reproduce Figure 3: steady-state awareness distribution of the
/// highest-quality pages under nonrandomized ranking and under selective
/// randomized promotion (r = 0.2, k = 1), from the analytic model.
pub fn figure3(options: &ExperimentOptions) -> FigureReport {
    let community = options.default_community();
    let models = [
        ("No randomization", RankingModel::NonRandomized),
        (
            "Selective randomization (r=0.2, k=1)",
            RankingModel::Selective {
                start_rank: 1,
                degree: 0.2,
            },
        ),
    ];

    let mut report = FigureReport::new(
        "Figure 3",
        "Awareness distribution of pages of high quality",
        "awareness",
        "probability",
    );
    let solved = SweepExecutor::new("Figure 3").run(
        models.to_vec(),
        |(name, _)| (*name).to_string(),
        |(name, model), _stream| (name.to_string(), solve_analytic(community, *model)),
    );
    for (name, model) in solved {
        let quality = model.groups.max_quality();
        let dist = model.awareness_distribution_for(quality);
        let m = dist.len() - 1;
        let step = (m / 20).max(1);
        let points: Vec<(f64, f64)> = dist
            .iter()
            .enumerate()
            .filter(|(i, _)| i % step == 0 || *i == m)
            .map(|(i, &p)| (i as f64 / m as f64, p))
            .collect();
        report.push_series(Series::new(name, points));
    }
    report.push_note(
        "paper expectation: without randomization most high-quality pages sit at near-zero \
         awareness; with selective promotion most sit at near-full awareness; either way the \
         middle of the awareness scale holds little mass",
    );
    report
}

/// Reproduce Figure 4(a): popularity evolution of a page of quality 0.4
/// under nonrandomized, uniform-randomized and selective-randomized ranking
/// (analytic model, r = 0.2, k = 1).
pub fn figure4a(options: &ExperimentOptions) -> FigureReport {
    let community = options.default_community();
    let days = match options.scale {
        Scale::Tiny => 300,
        Scale::Quick | Scale::Full => 500,
    };
    let models = [
        ("No randomization", RankingModel::NonRandomized),
        (
            "Uniform randomization",
            RankingModel::Uniform {
                start_rank: 1,
                degree: 0.2,
            },
        ),
        (
            "Selective randomization",
            RankingModel::Selective {
                start_rank: 1,
                degree: 0.2,
            },
        ),
    ];
    let curves = SweepExecutor::new("Figure 4(a)").run(
        models.to_vec(),
        |(name, _)| (*name).to_string(),
        |(name, model), _stream| {
            let solved = solve_analytic(community, *model);
            let quality = solved.groups.max_quality();
            (name.to_string(), solved.popularity_evolution(quality, days))
        },
    );

    let mut report = FigureReport::new(
        "Figure 4(a)",
        "Popularity evolution of a page of quality 0.4",
        "time (days)",
        "popularity",
    );
    for (name, curve) in curves {
        report.push_series(Series::new(name, downsample(&curve)));
    }
    report.push_note(
        "paper expectation: selective randomization makes the page popular soonest, uniform \
         randomization is intermediate, and without randomization the page stays near zero \
         popularity for a very long time",
    );
    report
}

/// Reproduce Figure 4(b): time to become popular (TBP) of a quality-0.4 page
/// as the degree of randomization `r` varies, for selective and uniform
/// promotion, from both the analytic model and simulation.
pub fn figure4b(options: &ExperimentOptions) -> FigureReport {
    let community = options.default_community();
    let degrees: Vec<f64> = match options.scale {
        Scale::Tiny => vec![0.1, 0.2],
        Scale::Quick => vec![0.05, 0.1, 0.15, 0.2],
        Scale::Full => vec![0.02, 0.05, 0.1, 0.15, 0.2],
    };

    let mut jobs = Vec::new();
    for &degree in &degrees {
        jobs.push((
            "Selective",
            RankingModel::Selective {
                start_rank: 1,
                degree,
            },
            degree,
        ));
        jobs.push((
            "Uniform",
            RankingModel::Uniform {
                start_rank: 1,
                degree,
            },
            degree,
        ));
    }

    let executor = SweepExecutor::new("Figure 4(b)");
    let results = executor.run(
        jobs,
        |(rule, _, degree)| format!("rule={rule} r={degree}"),
        |(rule, model, degree), stream| {
            let analytic = solve_analytic(community, *model).expected_tbp(0.4);
            let sim = simulate_tbp(community, *model, options, stream);
            (rule.to_string(), *degree, analytic, sim.mean_days)
        },
    );

    let mut report = FigureReport::new(
        "Figure 4(b)",
        "Time to become popular (TBP) for a page of quality 0.4 vs degree of randomization",
        "degree of randomization (r)",
        "TBP (days)",
    );
    for rule in ["Selective", "Uniform"] {
        let analysis: Vec<(f64, f64)> = results
            .iter()
            .filter(|(r, ..)| r == rule)
            .map(|&(_, d, a, _)| (d, a))
            .collect();
        let simulation: Vec<(f64, f64)> = results
            .iter()
            .filter(|(r, ..)| r == rule)
            .map(|&(_, d, _, s)| (d, s))
            .collect();
        report.push_series(Series::new(format!("{rule} (analysis)"), analysis));
        report.push_series(Series::new(format!("{rule} (simulation)"), simulation));
    }
    report.push_note(format!(
        "simulation TBP is censored at {} days per trial ({} trials per point)",
        options.tbp_max_days(),
        options.tbp_trials()
    ));
    report.push_note(
        "paper expectation: TBP falls as r grows, and selective promotion achieves substantially \
         lower TBP than uniform promotion at the same r",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downsample_keeps_endpoints() {
        let curve: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let points = downsample(&curve);
        assert!(points.len() <= 70);
        assert_eq!(points.first().unwrap().0, 0.0);
        assert_eq!(points.last().unwrap().0, 499.0);
        assert!(downsample(&[]).is_empty());
    }

    #[test]
    fn figure3_is_bimodal_in_the_promoted_case() {
        let report = figure3(&ExperimentOptions::tiny(3));
        assert_eq!(report.series.len(), 2);
        let baseline = &report.series[0];
        let promoted = &report.series[1];
        // Without randomization, the mass at awareness 0 dominates.
        let base_zero = baseline.points.first().unwrap().1;
        assert!(base_zero > 0.5, "baseline f(0) = {base_zero}");
        // With selective promotion, much less mass is stuck at zero.
        let promo_zero = promoted.points.first().unwrap().1;
        assert!(
            promo_zero < base_zero,
            "promotion should reduce the zero-awareness mass: {promo_zero} vs {base_zero}"
        );
    }

    #[test]
    fn figure4a_orders_the_three_schemes() {
        let report = figure4a(&ExperimentOptions::tiny(4));
        assert_eq!(report.series.len(), 3);
        let at_end = |name: &str| report.series_named(name).unwrap().points.last().unwrap().1;
        let selective = at_end("Selective randomization");
        let none = at_end("No randomization");
        assert!(
            selective >= none,
            "selective promotion should reach at least the baseline popularity: {selective} vs {none}"
        );
        let md = report.to_markdown();
        assert!(md.contains("Figure 4(a)"));
    }
}
