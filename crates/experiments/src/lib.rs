//! # rrp-experiments — regenerating every figure of the paper
//!
//! One driver per figure of *"Shuffling a Stacked Deck"*. Each driver takes
//! [`ExperimentOptions`] (scale + seed) and returns a [`FigureReport`] —
//! named data series plus notes recording the paper's qualitative
//! expectation — which renders to markdown or CSV.
//!
//! | driver | paper figure |
//! |---|---|
//! | [`figure1`]  | Figure 1 — live-study funny-vote ratio |
//! | [`figure2`]  | Figure 2 — exploration/exploitation tradeoff |
//! | [`figure3`]  | Figure 3 — steady-state awareness distribution |
//! | [`figure4a`] | Figure 4(a) — popularity evolution |
//! | [`figure4b`] | Figure 4(b) — TBP vs degree of randomization |
//! | [`figure5`]  | Figure 5 — QPC vs degree of randomization |
//! | [`figure6`]  | Figure 6 — QPC vs (r, k) |
//! | [`figure7a`]–[`figure7d`] | Figure 7 — robustness across community types |
//! | [`figure8`]  | Figure 8 — mixed surfing and searching |
//! | [`ablation_policies`], [`ablation_solver_damping`] | additional ablations |
//!
//! The benchmark harness (`crates/bench`) calls these drivers — one bench
//! target per figure — and prints the reports, so `cargo bench` regenerates
//! the paper's evaluation end to end. Set `RRP_FULL_SWEEP=1` for the paper's
//! full community sizes and sweep ranges.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ablation;
pub mod fig_live;
pub mod fig_mixed;
pub mod fig_qpc;
pub mod fig_robustness;
pub mod fig_tradeoff;
pub mod options;
pub mod report;
pub mod runner;
pub mod runners;
pub mod sweep;

pub use ablation::{ablation_policies, ablation_solver_damping};
pub use fig_live::figure1;
pub use fig_mixed::figure8;
pub use fig_qpc::{figure5, figure6};
pub use fig_robustness::{figure7a, figure7b, figure7c, figure7d};
pub use fig_tradeoff::{figure2, figure3, figure4a, figure4b};
pub use options::{ExperimentOptions, Scale};
pub use report::{FigureReport, Series};
pub use runner::SweepExecutor;
// `sweep::parallel_map` is deliberately not re-exported: drivers must go
// through `SweepExecutor`, which owns per-cell stream derivation.
pub use sweep::{parallel_map_with_workers, worker_threads};

/// A figure driver: options in, reproduced figure out.
pub type FigureDriver = fn(&ExperimentOptions) -> FigureReport;

/// Every figure driver, paired with its identifier, in paper order. Useful
/// for "run everything" binaries and for the EXPERIMENTS.md generator.
pub fn all_figures() -> Vec<(&'static str, FigureDriver)> {
    vec![
        ("Figure 1", figure1 as FigureDriver),
        ("Figure 2", figure2),
        ("Figure 3", figure3),
        ("Figure 4(a)", figure4a),
        ("Figure 4(b)", figure4b),
        ("Figure 5", figure5),
        ("Figure 6", figure6),
        ("Figure 7(a)", figure7a),
        ("Figure 7(b)", figure7b),
        ("Figure 7(c)", figure7c),
        ("Figure 7(d)", figure7d),
        ("Figure 8", figure8),
        ("Ablation A1", ablation_policies),
        ("Ablation A2", ablation_solver_damping),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_figures_lists_every_paper_figure() {
        let figures = all_figures();
        assert_eq!(figures.len(), 14);
        let ids: Vec<&str> = figures.iter().map(|(id, _)| *id).collect();
        for expected in [
            "Figure 1",
            "Figure 2",
            "Figure 3",
            "Figure 4(a)",
            "Figure 4(b)",
            "Figure 5",
            "Figure 6",
            "Figure 7(a)",
            "Figure 7(b)",
            "Figure 7(c)",
            "Figure 7(d)",
            "Figure 8",
        ] {
            assert!(ids.contains(&expected), "missing {expected}");
        }
    }
}
