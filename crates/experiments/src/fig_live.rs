//! Figure 1 — the live "jokes site" study: funny-vote ratio without vs with
//! rank promotion.

use crate::options::{ExperimentOptions, Scale};
use crate::report::{FigureReport, Series};
use crate::runner::SweepExecutor;
use rrp_livestudy::{LiveStudy, StudyConfig};
use rrp_model::SeedSequence;

/// Reproduce Figure 1: the ratio of funny votes to total votes over the
/// final 15 days of the study, for the control group (strict ranking by
/// popularity) and the treatment group (never-viewed items promoted in
/// random order starting at rank 21).
///
/// The paper reports the treatment ratio ≈ 60% higher than the control.
pub fn figure1(options: &ExperimentOptions) -> FigureReport {
    let seeds = SeedSequence::new(options.seed).child_sequence(1);
    // The live study itself is small (1,000 items, 962 volunteers, 45 days),
    // so every scale runs the paper's actual configuration; only the number
    // of averaged repetitions differs.
    let repetitions = match options.scale {
        Scale::Tiny => 3,
        Scale::Quick => 6,
        Scale::Full => 12,
    };

    let executor = SweepExecutor::new("Figure 1");
    let outcomes = executor.run(
        (0..repetitions).collect(),
        |rep| format!("repetition={rep}"),
        |_, stream| {
            let config = StudyConfig::paper_default(seeds.child_seed(stream));
            let outcome = LiveStudy::new(config)
                .expect("study configuration is valid")
                .run();
            (outcome.control.ratio(), outcome.promoted.ratio())
        },
    );
    let mut control = 0.0;
    let mut promoted = 0.0;
    for (control_ratio, promoted_ratio) in &outcomes {
        control += control_ratio / repetitions as f64;
        promoted += promoted_ratio / repetitions as f64;
    }
    let improvement = if control > 0.0 {
        promoted / control - 1.0
    } else {
        0.0
    };

    let mut report = FigureReport::new(
        "Figure 1",
        "Improvement in overall quality due to rank promotion in the live study",
        "group (0 = without promotion, 1 = with promotion)",
        "ratio of funny votes",
    );
    report.push_series(Series::new(
        "funny-vote ratio",
        vec![(0.0, control), (1.0, promoted)],
    ));
    report.push_series(Series::new(
        "relative improvement",
        vec![(1.0, improvement)],
    ));
    report.push_note(format!(
        "measured over {repetitions} simulated studies; promotion improves the ratio by {:.1}%",
        improvement * 100.0
    ));
    report.push_note(
        "paper expectation: the with-promotion ratio is ≈ 60% larger than without promotion",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shows_an_improvement() {
        let report = figure1(&ExperimentOptions::tiny(7));
        let ratios = report.series_named("funny-vote ratio").unwrap();
        let without = ratios.y_at(0.0).unwrap();
        let with = ratios.y_at(1.0).unwrap();
        assert!(without > 0.0 && without < 1.0);
        assert!(with > 0.0 && with < 1.0);
        assert!(
            with > without,
            "promotion should improve the ratio: {with} vs {without}"
        );
        assert!(report.to_markdown().contains("Figure 1"));
    }
}
