//! Parallel parameter sweeps.
//!
//! Most figures evaluate many independent (community, policy, parameter)
//! combinations; each combination is an independent simulation or analytic
//! solve, so they parallelise trivially across cores. The helper here uses
//! scoped threads (via `crossbeam`) so the closure can borrow from the
//! caller without `'static` bounds.

use parking_lot::Mutex;

/// Apply `f` to every item, running up to `num_cpus` items concurrently,
/// and return the results in input order.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    if workers <= 1 {
        return items.iter().map(|item| f(item)).collect();
    }

    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    let next: Mutex<usize> = Mutex::new(0);

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let index = {
                    let mut guard = next.lock();
                    let i = *guard;
                    if i >= n {
                        break;
                    }
                    *guard += 1;
                    i
                };
                let result = f(&items[index]);
                results.lock()[index] = Some(result);
            });
        }
    })
    .expect("sweep worker panicked");

    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every index was processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items, |&x| x * x);
        assert_eq!(out.len(), 100);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..57).collect();
        let out = parallel_map(items, |&x| {
            counter.fetch_add(1, Ordering::SeqCst);
            x + 1
        });
        assert_eq!(counter.load(Ordering::SeqCst), 57);
        assert_eq!(out[56], 57);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn closure_can_borrow_caller_state() {
        let offset = 10_u64;
        let out = parallel_map(vec![1_u64, 2, 3], |&x| x + offset);
        assert_eq!(out, vec![11, 12, 13]);
    }

    #[test]
    fn single_item_uses_sequential_path() {
        let out = parallel_map(vec![41_u64], |&x| x + 1);
        assert_eq!(out, vec![42]);
    }
}
