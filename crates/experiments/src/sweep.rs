//! Parallel parameter sweeps.
//!
//! Most figures evaluate many independent (community, policy, parameter)
//! combinations; each combination is an independent simulation or analytic
//! solve, so they parallelise trivially across cores. The helper here uses
//! `std::thread::scope` so the closure can borrow from the caller without
//! `'static` bounds; no external thread-pool crate is needed.
//!
//! Determinism: `parallel_map` only schedules work — each cell's RNG seed is
//! derived from stable identifiers (see [`crate::runner`]), never from the
//! execution order — so the parallel and serial paths produce bit-identical
//! results. The `parallel` cargo feature (default on) enables the threaded
//! path; without it, or with `RRP_THREADS=1`, everything runs serially on
//! the calling thread.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads the threaded path would use: `RRP_THREADS` if
/// set, otherwise the available parallelism. Always 1 when the `parallel`
/// feature is off — builds without it are fully serial regardless of the
/// environment.
pub fn worker_threads() -> usize {
    if !cfg!(feature = "parallel") {
        return 1;
    }
    if let Ok(threads) = std::env::var("RRP_THREADS") {
        if let Ok(threads) = threads.parse::<usize>() {
            return threads.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
}

/// Apply `f` to every item, running up to [`worker_threads`] items
/// concurrently, and return the results in input order.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with_workers(items, worker_threads(), f)
}

/// [`parallel_map`] with an explicit worker count; `workers <= 1` runs
/// serially on the calling thread. Exposed so determinism tests can compare
/// the serial and threaded paths directly.
pub fn parallel_map_with_workers<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.min(n);
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }

    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= n {
                    break;
                }
                let result = f(&items[index]);
                results.lock().expect("sweep worker poisoned results")[index] = Some(result);
            });
        }
    });

    results
        .into_inner()
        .expect("sweep worker poisoned results")
        .into_iter()
        .map(|r| r.expect("every index was processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items, |&x| x * x);
        assert_eq!(out.len(), 100);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..57).collect();
        let out = parallel_map(items, |&x| {
            counter.fetch_add(1, Ordering::SeqCst);
            x + 1
        });
        assert_eq!(counter.load(Ordering::SeqCst), 57);
        assert_eq!(out[56], 57);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn closure_can_borrow_caller_state() {
        let offset = 10_u64;
        let out = parallel_map(vec![1_u64, 2, 3], |&x| x + offset);
        assert_eq!(out, vec![11, 12, 13]);
    }

    #[test]
    fn single_item_uses_sequential_path() {
        let out = parallel_map(vec![41_u64], |&x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn serial_and_threaded_paths_agree() {
        let items: Vec<u64> = (0..64).collect();
        let serial = parallel_map_with_workers(items.clone(), 1, |&x| x.wrapping_mul(x) ^ 7);
        let threaded = parallel_map_with_workers(items, 8, |&x| x.wrapping_mul(x) ^ 7);
        assert_eq!(serial, threaded);
    }

    #[test]
    fn worker_threads_is_positive() {
        assert!(worker_threads() >= 1);
    }
}
