//! Ablation experiments beyond the paper's figures.
//!
//! These exercise design choices called out in `DESIGN.md`:
//!
//! * [`ablation_policies`] — the full policy spectrum (fully random, quality
//!   oracle, nonrandomized, uniform, selective) on one community, putting
//!   the paper's two promotion rules in context between the degenerate
//!   extremes;
//! * [`ablation_solver_damping`] — sensitivity of the analytic fixed point
//!   to the solver's damping factor (the paper's iterative procedure does
//!   not specify one; the result should not depend on it).

use crate::options::ExperimentOptions;
use crate::report::{FigureReport, Series};
use crate::runner::SweepExecutor;
use crate::runners::solve_analytic;
use rrp_analytic::{AnalyticModel, QualityGroups, RankingModel, SolverOptions};
use rrp_model::{PowerLawQuality, SeedSequence};
use rrp_ranking::{PolicyKind, PromotionConfig, PromotionRule};
use rrp_sim::{SimConfig, Simulation};

/// Compare the full spectrum of ranking policies on the default community
/// (simulation): fully random, nonrandomized, uniform promotion, selective
/// promotion, and the quality oracle upper bound.
pub fn ablation_policies(options: &ExperimentOptions) -> FigureReport {
    let community = options.default_community();
    let seeds = SeedSequence::new(options.seed).child_sequence(90);

    let policies: Vec<(usize, &'static str)> = vec![
        (0, "Fully random"),
        (1, "No randomization"),
        (2, "Uniform (r=0.1, k=1)"),
        (3, "Selective (r=0.1, k=1)"),
        (4, "Quality oracle"),
    ];

    let executor = SweepExecutor::new("Ablation A1");
    let results = executor.run(
        policies,
        |&(_, name)| name.to_string(),
        |&(idx, name), stream| {
            let config = SimConfig::for_community(community, seeds.child_seed(stream));
            let mut sim = Simulation::new(config, build_policy(idx)).expect("valid config");
            let metrics = sim.run_windows(options.warmup_days(), options.measure_days());
            (name, metrics.normalized_qpc)
        },
    );

    let mut report = FigureReport::new(
        "Ablation A1",
        "Normalized QPC across the full ranking-policy spectrum",
        "policy index",
        "normalized QPC",
    );
    for (idx, (name, qpc)) in results.iter().enumerate() {
        report.push_series(Series::new(*name, vec![(idx as f64, *qpc)]));
    }
    report.push_note(
        "expected ordering: quality oracle ≥ selective ≥ uniform ≥ no randomization, with fully \
         random ranking far below the oracle (exploration without any exploitation)",
    );
    report
}

/// Policies are a few words of configuration, so each worker copies its own
/// instance from the ablation's policy index.
fn build_policy(index: usize) -> PolicyKind {
    match index {
        0 => PolicyKind::FullyRandom,
        1 => PolicyKind::Popularity,
        2 => PolicyKind::promotion(PromotionConfig::new(PromotionRule::Uniform, 1, 0.1).unwrap()),
        3 => PolicyKind::promotion(PromotionConfig::new(PromotionRule::Selective, 1, 0.1).unwrap()),
        _ => PolicyKind::QualityOracle,
    }
}

/// Sensitivity of the analytic fixed point to the solver damping factor.
pub fn ablation_solver_damping(options: &ExperimentOptions) -> FigureReport {
    let community = options.default_community();
    let dampings = [0.3, 0.5, 0.8, 1.0];
    let groups =
        QualityGroups::from_distribution(&PowerLawQuality::paper_default(), community.pages());

    let executor = SweepExecutor::new("Ablation A2");
    let results = executor.run(
        dampings.to_vec(),
        |&damping| format!("damping={damping}"),
        |&damping, _stream| {
            let solved = AnalyticModel::new(
                community,
                groups.clone(),
                RankingModel::Selective {
                    start_rank: 1,
                    degree: 0.1,
                },
            )
            .expect("valid model")
            .with_options(SolverOptions {
                damping,
                ..SolverOptions::default()
            })
            .solve();
            (damping, solved.normalized_qpc(), solved.converged)
        },
    );

    let baseline = solve_analytic(community, RankingModel::NonRandomized).normalized_qpc();

    let mut report = FigureReport::new(
        "Ablation A2",
        "Sensitivity of the analytic fixed point to solver damping",
        "damping factor",
        "normalized QPC (selective, r=0.1, k=1)",
    );
    report.push_series(Series::new(
        "selective (r=0.1, k=1)",
        results.iter().map(|&(d, q, _)| (d, q)).collect(),
    ));
    report.push_series(Series::new(
        "baseline (no randomization)",
        dampings.iter().map(|&d| (d, baseline)).collect(),
    ));
    let converged = results.iter().filter(|&&(_, _, c)| c).count();
    report.push_note(format!(
        "{converged}/{} damping settings reached the convergence tolerance",
        results.len()
    ));
    report.push_note("expected: the fixed-point QPC is insensitive to the damping factor");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn damping_ablation_is_stable() {
        let report = ablation_solver_damping(&ExperimentOptions::tiny(2));
        let series = report.series_named("selective (r=0.1, k=1)").unwrap();
        let values: Vec<f64> = series.points.iter().map(|&(_, q)| q).collect();
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(0.0, f64::max);
        assert!(min > 0.0);
        assert!(
            (max - min) / max < 0.15,
            "fixed point should not depend on damping: min {min}, max {max}"
        );
    }
}
