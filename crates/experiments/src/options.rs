//! Experiment options shared by every figure driver.

use rrp_model::CommunityConfig;
use serde::{Deserialize, Serialize};

/// How large the experiments run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Minimal scale for unit/integration tests: a few hundred pages and a
    /// few hundred simulated days. Fast even in debug builds, but noisy.
    Tiny,
    /// Default for `cargo bench`: a community scaled down 5× from the paper
    /// (same proportions, so the entrenchment regime is preserved) and
    /// moderate sweeps. Completes the full figure suite in minutes.
    Quick,
    /// The paper's own community sizes and sweep ranges (except where noted
    /// in the per-figure documentation). Expect long runtimes.
    Full,
}

/// Options controlling experiment scale and reproducibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentOptions {
    /// Experiment scale.
    pub scale: Scale,
    /// Root seed; every figure derives its own child seeds from it.
    pub seed: u64,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            scale: Scale::Quick,
            seed: 20_050_304, // the paper's submission date
        }
    }
}

impl ExperimentOptions {
    /// Read options from the environment: `RRP_FULL_SWEEP=1` selects
    /// [`Scale::Full`], `RRP_SEED=<u64>` overrides the seed.
    pub fn from_env() -> Self {
        let mut options = ExperimentOptions::default();
        if std::env::var("RRP_FULL_SWEEP")
            .map(|v| v == "1")
            .unwrap_or(false)
        {
            options.scale = Scale::Full;
        }
        if let Ok(seed) = std::env::var("RRP_SEED") {
            if let Ok(seed) = seed.parse() {
                options.seed = seed;
            }
        }
        options
    }

    /// Quick-scale options with an explicit seed.
    pub fn quick(seed: u64) -> Self {
        ExperimentOptions {
            scale: Scale::Quick,
            seed,
        }
    }

    /// Tiny-scale options with an explicit seed (for tests).
    pub fn tiny(seed: u64) -> Self {
        ExperimentOptions {
            scale: Scale::Tiny,
            seed,
        }
    }

    /// The "default Web community" (Section 6.1) at this scale: the paper's
    /// `n = 10,000` community in full mode, proportionally scaled-down
    /// versions otherwise (`u/n = 10%`, `m/u = 10%`, one visit per user per
    /// day, 1.5-year lifetimes in every case).
    pub fn default_community(&self) -> CommunityConfig {
        CommunityConfig::builder()
            .scaled_to_pages(self.default_pages())
            .expected_lifetime_years(1.5)
            .build()
            .expect("scaled paper community is always valid")
    }

    /// Number of pages in the default community at this scale.
    pub fn default_pages(&self) -> usize {
        match self.scale {
            Scale::Tiny => 400,
            Scale::Quick => 2_000,
            Scale::Full => 10_000,
        }
    }

    /// Number of simulated warm-up days before measurement.
    pub fn warmup_days(&self) -> u64 {
        match self.scale {
            Scale::Tiny => 250,
            Scale::Quick => 900,
            Scale::Full => 1_100,
        }
    }

    /// Number of measured days for QPC estimates.
    pub fn measure_days(&self) -> u64 {
        match self.scale {
            Scale::Tiny => 250,
            Scale::Quick => 900,
            Scale::Full => 1_100,
        }
    }

    /// Number of independent repetitions averaged for noisy measurements.
    pub fn repetitions(&self) -> usize {
        match self.scale {
            Scale::Tiny => 1,
            Scale::Quick => 2,
            Scale::Full => 3,
        }
    }

    /// Number of TBP probe trials per configuration.
    pub fn tbp_trials(&self) -> usize {
        match self.scale {
            Scale::Tiny => 1,
            Scale::Quick => 2,
            Scale::Full => 4,
        }
    }

    /// Per-trial TBP censoring horizon in days.
    pub fn tbp_max_days(&self) -> u64 {
        match self.scale {
            Scale::Tiny => 400,
            Scale::Quick => 2_500,
            Scale::Full => 4_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_quick_with_fixed_seed() {
        let o = ExperimentOptions::default();
        assert_eq!(o.scale, Scale::Quick);
        assert_eq!(o.seed, 20_050_304);
    }

    #[test]
    fn quick_community_preserves_paper_proportions() {
        let quick = ExperimentOptions::quick(1).default_community();
        assert_eq!(quick.pages(), 2_000);
        assert_eq!(quick.users(), 200);
        assert_eq!(quick.monitored_users(), 20);
        assert_eq!(quick.total_visits_per_day(), 200.0);
        assert!((quick.visits_per_page_per_day() - 0.1).abs() < 1e-12);
        assert!((quick.expected_lifetime_days() - 547.5).abs() < 1e-9);
    }

    #[test]
    fn full_community_matches_the_paper() {
        let full = ExperimentOptions {
            scale: Scale::Full,
            seed: 0,
        }
        .default_community();
        assert_eq!(full.pages(), 10_000);
        assert_eq!(full.users(), 1_000);
        assert_eq!(full.monitored_users(), 100);
        assert_eq!(full.total_visits_per_day(), 1_000.0);
    }

    #[test]
    fn tiny_scale_is_small_but_valid() {
        let tiny = ExperimentOptions::tiny(3);
        let c = tiny.default_community();
        assert_eq!(c.pages(), 400);
        assert!(c.validate().is_ok());
        assert!(tiny.warmup_days() < 500);
    }

    #[test]
    fn windows_and_repetitions_are_positive_at_every_scale() {
        for scale in [Scale::Tiny, Scale::Quick, Scale::Full] {
            let o = ExperimentOptions { scale, seed: 0 };
            assert!(o.warmup_days() > 0);
            assert!(o.measure_days() > 0);
            assert!(o.repetitions() > 0);
            assert!(o.tbp_trials() > 0);
            assert!(o.tbp_max_days() > 0);
        }
    }
}
