//! Shared plumbing for the figure drivers: building policies from the
//! analytic [`RankingModel`] description, running simulations, and running
//! the analytic solver — so every figure measures "analysis" and
//! "simulation" on exactly the same community and ranking description.

use crate::options::ExperimentOptions;
use rrp_analytic::{AnalyticModel, QualityGroups, RankingModel, SolvedModel};
use rrp_model::{CommunityConfig, PowerLawQuality, SeedSequence};
use rrp_ranking::{PolicyKind, PromotionConfig, PromotionRule};
use rrp_sim::{SimConfig, SimMetrics, Simulation, TbpResult};

/// Build the simulator ranking policy corresponding to an analytic ranking
/// description (statically dispatched — no boxing).
pub fn policy_for(model: RankingModel) -> PolicyKind {
    match model {
        RankingModel::NonRandomized => PolicyKind::Popularity,
        RankingModel::Selective { start_rank, degree } => PolicyKind::promotion(
            PromotionConfig::new(PromotionRule::Selective, start_rank, degree)
                .expect("figure drivers use valid parameters"),
        ),
        RankingModel::Uniform { start_rank, degree } => PolicyKind::promotion(
            PromotionConfig::new(PromotionRule::Uniform, start_rank, degree)
                .expect("figure drivers use valid parameters"),
        ),
    }
}

/// Build a simulation of `community` under `model`, with the paper's
/// power-law quality distribution.
pub fn build_simulation(
    community: CommunityConfig,
    model: RankingModel,
    surf_fraction: f64,
    seed: u64,
) -> Simulation {
    let config = SimConfig::for_community(community, seed).with_surf_fraction(surf_fraction);
    Simulation::new(config, policy_for(model)).expect("figure drivers use valid configurations")
}

/// Run one simulation and return its QPC metrics, averaging over
/// `options.repetitions()` independent seeds.
pub fn simulate_qpc(
    community: CommunityConfig,
    model: RankingModel,
    surf_fraction: f64,
    options: &ExperimentOptions,
    stream: u64,
) -> SimMetrics {
    let seeds = SeedSequence::new(options.seed).child_sequence(stream);
    let repetitions = options.repetitions();
    let mut accumulated: Option<SimMetrics> = None;
    for rep in 0..repetitions {
        let mut sim = build_simulation(
            community,
            model,
            surf_fraction,
            seeds.child_seed(rep as u64),
        );
        let metrics = sim.run_windows(options.warmup_days(), options.measure_days());
        accumulated = Some(match accumulated {
            None => metrics,
            Some(prev) => SimMetrics {
                days_measured: prev.days_measured + metrics.days_measured,
                absolute_qpc: prev.absolute_qpc + metrics.absolute_qpc,
                ideal_qpc: prev.ideal_qpc + metrics.ideal_qpc,
                normalized_qpc: prev.normalized_qpc + metrics.normalized_qpc,
                mean_zero_awareness_fraction: prev.mean_zero_awareness_fraction
                    + metrics.mean_zero_awareness_fraction,
            },
        });
    }
    let total = accumulated.expect("at least one repetition");
    let k = repetitions as f64;
    SimMetrics {
        days_measured: total.days_measured / repetitions as u64,
        absolute_qpc: total.absolute_qpc / k,
        ideal_qpc: total.ideal_qpc / k,
        normalized_qpc: total.normalized_qpc / k,
        mean_zero_awareness_fraction: total.mean_zero_awareness_fraction / k,
    }
}

/// Measure simulated TBP for the best page of `community` under `model`.
pub fn simulate_tbp(
    community: CommunityConfig,
    model: RankingModel,
    options: &ExperimentOptions,
    stream: u64,
) -> TbpResult {
    let seeds = SeedSequence::new(options.seed).child_sequence(stream);
    let mut sim = build_simulation(community, model, 0.0, seeds.child_seed(0));
    sim.run(options.warmup_days());
    sim.measure_tbp(options.tbp_trials(), options.tbp_max_days())
}

/// Solve the analytic model for `community` under `model`.
pub fn solve_analytic(community: CommunityConfig, model: RankingModel) -> SolvedModel {
    let groups =
        QualityGroups::from_distribution(&PowerLawQuality::paper_default(), community.pages());
    AnalyticModel::new(community, groups, model)
        .expect("figure drivers use valid configurations")
        .solve()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_mapping_uses_the_right_rule() {
        assert_eq!(
            policy_for(RankingModel::NonRandomized).name(),
            "no randomization"
        );
        let selective = policy_for(RankingModel::Selective {
            start_rank: 2,
            degree: 0.1,
        });
        assert!(selective.name().contains("selective"));
        let uniform = policy_for(RankingModel::Uniform {
            start_rank: 1,
            degree: 0.3,
        });
        assert!(uniform.name().contains("uniform"));
    }

    #[test]
    fn simulate_qpc_tiny_run_produces_sane_metrics() {
        let options = ExperimentOptions::tiny(11);
        let metrics = simulate_qpc(
            options.default_community(),
            RankingModel::NonRandomized,
            0.0,
            &options,
            0,
        );
        assert!(metrics.absolute_qpc > 0.0);
        assert!(metrics.normalized_qpc > 0.0 && metrics.normalized_qpc <= 1.05);
        assert_eq!(metrics.days_measured, options.measure_days());
    }

    #[test]
    fn solve_analytic_tiny_community() {
        let options = ExperimentOptions::tiny(1);
        let solved = solve_analytic(options.default_community(), RankingModel::NonRandomized);
        let qpc = solved.normalized_qpc();
        assert!(qpc > 0.0 && qpc <= 1.0 + 1e-9);
    }

    #[test]
    fn simulate_tbp_tiny_run_reports_trials() {
        let options = ExperimentOptions::tiny(5);
        let result = simulate_tbp(
            options.default_community(),
            RankingModel::Selective {
                start_rank: 1,
                degree: 0.5,
            },
            &options,
            3,
        );
        assert_eq!(result.trials, options.tbp_trials());
        assert!(result.mean_days > 0.0);
    }
}
