//! Property-based tests of the ranking policies.
//!
//! The central invariant: every policy emits a permutation of the input
//! slots — no page is ever dropped or duplicated — and the protected prefix
//! of the randomized policy always equals the deterministic prefix.

use proptest::prelude::*;
use rrp_model::{new_rng, PageId};
use rrp_ranking::{
    is_permutation, merge_promoted, popularity_order, FullyRandomRanking, PageStats, PolicyKind,
    PoolIndex, PoolView, PopularityRanking, PromotionConfig, PromotionRule, QualityOracleRanking,
    RandomizedRankPromotion, RankBuffers, RankingPolicy,
};

/// Strategy producing an arbitrary page population of size 1..=120.
fn arb_pages() -> impl Strategy<Value = Vec<PageStats>> {
    prop::collection::vec((0.0f64..=1.0, prop::bool::ANY, 0u64..1000), 1..120).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(slot, (quality, explored, age))| {
                let awareness = if explored { 0.5 } else { 0.0 };
                PageStats::new(
                    slot,
                    PageId::new(slot as u64),
                    quality * awareness,
                    awareness,
                )
                .with_age(age)
                .with_quality(quality)
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn every_policy_emits_a_permutation(
        pages in arb_pages(),
        seed in proptest::num::u64::ANY,
        rule in prop_oneof![Just(PromotionRule::Uniform), Just(PromotionRule::Selective)],
        degree in 0.0f64..=1.0,
        k in 1usize..30,
    ) {
        let n = pages.len();
        let mut rng = new_rng(seed);

        let det = PopularityRanking.rank(&pages, &mut rng);
        prop_assert!(is_permutation(&det, n));

        let oracle = QualityOracleRanking.rank(&pages, &mut rng);
        prop_assert!(is_permutation(&oracle, n));

        let random = FullyRandomRanking.rank(&pages, &mut rng);
        prop_assert!(is_permutation(&random, n));

        let promo = RandomizedRankPromotion::new(
            PromotionConfig::new(rule, k, degree).unwrap(),
        );
        let promoted = promo.rank(&pages, &mut rng);
        prop_assert!(is_permutation(&promoted, n));
    }

    #[test]
    fn deterministic_ranking_is_sorted_by_popularity(
        pages in arb_pages(),
        seed in proptest::num::u64::ANY,
    ) {
        let mut rng = new_rng(seed);
        let order = PopularityRanking.rank(&pages, &mut rng);
        let by_slot: std::collections::HashMap<usize, &PageStats> =
            pages.iter().map(|p| (p.slot, p)).collect();
        for w in order.windows(2) {
            prop_assert!(
                by_slot[&w[0]].popularity >= by_slot[&w[1]].popularity,
                "popularity must be nonincreasing down the result list"
            );
        }
    }

    #[test]
    fn selective_promotion_protects_top_k_minus_1(
        pages in arb_pages(),
        seed in proptest::num::u64::ANY,
        degree in 0.0f64..=1.0,
        k in 1usize..20,
    ) {
        let mut rng_det = new_rng(seed);
        let det = PopularityRanking.rank(&pages, &mut rng_det);

        let promo = RandomizedRankPromotion::new(
            PromotionConfig::new(PromotionRule::Selective, k, degree).unwrap(),
        );
        let mut rng = new_rng(seed.wrapping_add(1));
        let promoted = promo.rank(&pages, &mut rng);

        // The selective pool contains only zero-awareness (zero-popularity)
        // pages, so the deterministic prefix of explored pages is identical.
        let explored_count = pages.iter().filter(|p| !p.is_unexplored()).count();
        let protected = (k - 1).min(explored_count);
        prop_assert_eq!(&det[..protected], &promoted[..protected]);
    }

    #[test]
    fn merge_is_a_permutation_of_its_inputs(
        d_len in 0usize..200,
        p_len in 0usize..200,
        k in 1usize..40,
        degree in 0.0f64..=1.0,
        seed in proptest::num::u64::ANY,
    ) {
        let ld: Vec<usize> = (0..d_len).collect();
        let lp: Vec<usize> = (d_len..d_len + p_len).collect();
        let mut rng = new_rng(seed);
        let merged = merge_promoted(&ld, &lp, k, degree, &mut rng);
        prop_assert!(is_permutation(&merged, d_len + p_len));
    }

    #[test]
    fn merge_preserves_relative_order_of_each_list(
        d_len in 1usize..100,
        p_len in 1usize..100,
        degree in 0.0f64..=1.0,
        seed in proptest::num::u64::ANY,
    ) {
        let ld: Vec<usize> = (0..d_len).collect();
        let lp: Vec<usize> = (d_len..d_len + p_len).collect();
        let mut rng = new_rng(seed);
        let merged = merge_promoted(&ld, &lp, 1, degree, &mut rng);
        let pos = |x: usize| merged.iter().position(|&y| y == x).unwrap();
        for w in ld.windows(2) {
            prop_assert!(pos(w[0]) < pos(w[1]));
        }
        for w in lp.windows(2) {
            prop_assert!(pos(w[0]) < pos(w[1]));
        }
    }

    #[test]
    fn oracle_never_ranks_lower_quality_above_higher(
        pages in arb_pages(),
        seed in proptest::num::u64::ANY,
    ) {
        let mut rng = new_rng(seed);
        let order = QualityOracleRanking.rank(&pages, &mut rng);
        let by_slot: std::collections::HashMap<usize, &PageStats> =
            pages.iter().map(|p| (p.slot, p)).collect();
        for w in order.windows(2) {
            prop_assert!(by_slot[&w[0]].quality >= by_slot[&w[1]].quality);
        }
    }

    #[test]
    fn same_seed_same_ranking(
        pages in arb_pages(),
        seed in proptest::num::u64::ANY,
    ) {
        let policy = RandomizedRankPromotion::recommended(2);
        let mut a = new_rng(seed);
        let mut b = new_rng(seed);
        prop_assert_eq!(policy.rank(&pages, &mut a), policy.rank(&pages, &mut b));
    }

    /// For *any* valid promotion configuration — both rules, any starting
    /// rank, any degree — the policy emits a permutation of the input
    /// slots: no page is ever dropped or duplicated.
    #[test]
    fn arbitrary_config_always_emits_a_permutation(
        pages in arb_pages(),
        seed in proptest::num::u64::ANY,
        rule in prop_oneof![Just(PromotionRule::Uniform), Just(PromotionRule::Selective)],
        k in 1usize..200,
        degree in 0.0f64..=1.0,
    ) {
        let config = PromotionConfig::new(rule, k, degree).unwrap();
        let policy = RandomizedRankPromotion::new(config);
        let mut rng = new_rng(seed);
        let order = policy.rank(&pages, &mut rng);
        prop_assert!(is_permutation(&order, pages.len()));
    }

    /// For every policy and any valid promotion configuration, the
    /// allocation-free `rank_into` (through a reused scratch arena) produces
    /// byte-identical output to the legacy allocating `rank` from the same
    /// RNG state — the hot path is a pure refactor, not a behaviour change.
    #[test]
    fn rank_into_matches_legacy_rank_for_all_policies(
        pages in arb_pages(),
        seed in proptest::num::u64::ANY,
        rule in prop_oneof![Just(PromotionRule::Uniform), Just(PromotionRule::Selective)],
        k in 1usize..50,
        degree in 0.0f64..=1.0,
    ) {
        let config = PromotionConfig::new(rule, k, degree).unwrap();
        let policies: Vec<Box<dyn RankingPolicy>> = vec![
            Box::new(PopularityRanking),
            Box::new(QualityOracleRanking),
            Box::new(FullyRandomRanking),
            Box::new(RandomizedRankPromotion::new(config)),
            Box::new(PolicyKind::promotion(config)),
        ];
        // One arena reused across every policy and call: stale contents
        // from a previous call must never leak into the next result.
        let mut buffers = RankBuffers::new();
        let mut out = vec![99_usize; 3];
        for policy in &policies {
            let legacy = policy.rank(&pages, &mut new_rng(seed));
            policy.rank_into(&pages, &mut new_rng(seed), &mut buffers, &mut out);
            prop_assert_eq!(&out, &legacy, "policy {}", policy.name());
        }
    }

    /// The presorted promotion path (used by the simulator's incremental
    /// popularity index and the batch serving layer) is byte-identical to
    /// the sorting path for any configuration, given a correct popularity
    /// order of the input.
    #[test]
    fn rank_presorted_matches_rank(
        pages in arb_pages(),
        seed in proptest::num::u64::ANY,
        rule in prop_oneof![Just(PromotionRule::Uniform), Just(PromotionRule::Selective)],
        k in 1usize..50,
        degree in 0.0f64..=1.0,
    ) {
        let config = PromotionConfig::new(rule, k, degree).unwrap();
        let policy = RandomizedRankPromotion::new(config);
        let mut sorted: Vec<usize> = (0..pages.len()).collect();
        sorted.sort_unstable_by(|&a, &b| popularity_order(&pages[a], &pages[b]));

        let legacy = policy.rank(&pages, &mut new_rng(seed));
        let mut buffers = RankBuffers::new();
        let mut out = Vec::new();
        policy.rank_presorted_into(&pages, &sorted, &mut new_rng(seed), &mut buffers, &mut out);
        prop_assert_eq!(&out, &legacy);

        // And through the enum dispatch used by the simulator.
        let kind = PolicyKind::promotion(config);
        kind.rank_presorted_into(&pages, &sorted, &mut new_rng(seed), &mut buffers, &mut out);
        prop_assert_eq!(&out, &legacy);
    }

    /// The persistent pool index under arbitrary dirty sequences — visits
    /// flipping awareness on, retirements flipping it back off, inserts
    /// growing the population past its initial capacity, redundant dirty
    /// marks on unchanged slots — with repairs interleaved at arbitrary
    /// points: the incrementally repaired membership always equals a
    /// from-scratch rebuild of the current stats (the mirror of the
    /// `PopularityIndex` ≡ sort property in `rrp-sim`).
    #[test]
    fn pool_index_repair_equals_rebuild_under_arbitrary_dirty_sequences(
        initial in 1usize..40,
        events in prop::collection::vec((0usize..4, 0usize..80), 0..120),
        repair_every in 1usize..8,
    ) {
        let page = |slot: usize, explored: bool| {
            let awareness = if explored { 0.5 } else { 0.0 };
            PageStats::new(slot, PageId::new(slot as u64), awareness, awareness)
        };
        let mut stats: Vec<PageStats> =
            (0..initial).map(|slot| page(slot, slot % 2 == 0)).collect();
        let mut index = PoolIndex::build(&stats);
        let mut dirty: Vec<usize> = Vec::new();

        for (step, &(kind, raw_slot)) in events.iter().enumerate() {
            let slot = raw_slot % stats.len();
            match kind {
                // A first visit: the page leaves the pool.
                0 => {
                    stats[slot].awareness = 0.5;
                    dirty.push(slot);
                }
                // A retirement: a fresh zero-awareness page re-enters.
                1 => {
                    stats[slot].awareness = 0.0;
                    stats[slot].popularity = 0.0;
                    dirty.push(slot);
                }
                // An insert: the population grows (beyond the initial
                // capacity once enough events accumulate).
                2 => {
                    let new_slot = stats.len();
                    stats.push(page(new_slot, raw_slot % 3 == 0));
                    dirty.push(new_slot);
                }
                // A redundant dirty mark: the slot did not change.
                _ => dirty.push(slot),
            }
            if step % repair_every == 0 {
                index.repair(&stats, &dirty);
                dirty.clear();
                prop_assert!(index.is_consistent(&stats));
            }
        }
        index.repair(&stats, &dirty);

        let rebuilt = PoolIndex::build(&stats);
        prop_assert_eq!(index.members(), rebuilt.members());
        prop_assert!(index.is_consistent(&stats));
        prop_assert_eq!(index.len(), rebuilt.len());
    }

    /// The pooled ranking paths are byte-identical to the scanning paths
    /// for any configuration and any population: same pool order before
    /// the shuffle, same RNG draws, same output — full and top-k alike.
    #[test]
    fn pooled_paths_match_scanning_paths(
        pages in arb_pages(),
        seed in proptest::num::u64::ANY,
        rule in prop_oneof![Just(PromotionRule::Uniform), Just(PromotionRule::Selective)],
        start_rank in 1usize..50,
        degree in 0.0f64..=1.0,
        k in 0usize..140,
    ) {
        let config = PromotionConfig::new(rule, start_rank, degree).unwrap();
        let policy = RandomizedRankPromotion::new(config);
        let mut sorted: Vec<usize> = (0..pages.len()).collect();
        sorted.sort_unstable_by(|&a, &b| popularity_order(&pages[a], &pages[b]));
        let pool = PoolIndex::build(&pages);
        let view = PoolView::new(&pages, &sorted, &pool);

        let mut buffers = RankBuffers::new();
        let (mut scan, mut pooled) = (Vec::new(), Vec::new());
        policy.rank_presorted_into(&pages, &sorted, &mut new_rng(seed), &mut buffers, &mut scan);
        policy.rank_pooled_into(view, &mut new_rng(seed), &mut buffers, &mut pooled);
        prop_assert_eq!(&pooled, &scan);

        policy.rank_top_k_pooled_into(view, k, &mut new_rng(seed), &mut buffers, &mut pooled);
        prop_assert_eq!(&pooled, &scan[..k.min(scan.len())].to_vec());

        // And through the enum dispatch used by the simulator.
        let kind = PolicyKind::promotion(config);
        kind.rank_top_k_pooled_into(view, k, &mut new_rng(seed), &mut buffers, &mut pooled);
        prop_assert_eq!(&pooled, &scan[..k.min(scan.len())].to_vec());
    }

    /// Shard-candidate retrieval is invisible: partitioning an arbitrary
    /// population into an arbitrary number of shards, collecting each
    /// shard's candidates off shard-local indexes and running the
    /// deterministic k-way merge reproduces (a) the corpus-wide pool in
    /// its exact pre-shuffle order, (b) the corpus-wide non-pool order
    /// prefix, and (c) a top-k ranking byte-identical to the scanning
    /// path's prefix — for selective promotion and plain popularity
    /// ranking alike. A single mis-merged, stale, or re-ordered candidate
    /// would silently shift the RNG stream, so equality is exact.
    #[test]
    fn shard_candidate_merge_matches_the_corpus_wide_derivation(
        pages in arb_pages(),
        seed in proptest::num::u64::ANY,
        shards in 1usize..9,
        start_rank in 1usize..50,
        degree in 0.0f64..=1.0,
        k in 0usize..140,
        route_salt in 0usize..1000,
    ) {
        use rrp_ranking::{merge_shard_candidates_into, MergedCandidates, PopularityIndex, ShardCandidates};

        let config = PromotionConfig::new(PromotionRule::Selective, start_rank, degree).unwrap();
        let policy = RandomizedRankPromotion::new(config);
        let mut sorted: Vec<usize> = (0..pages.len()).collect();
        sorted.sort_unstable_by(|&a, &b| popularity_order(&pages[a], &pages[b]));
        let pool = PoolIndex::build(&pages);

        // Partition into shard-local corpora with dense local slots under
        // an arbitrary (but slot-order-preserving) routing.
        let mut locals: Vec<Vec<PageStats>> = vec![Vec::new(); shards];
        let mut globals: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for p in &pages {
            let shard = (p.slot * 31 + route_salt) % shards;
            let mut local = *p;
            local.slot = locals[shard].len();
            locals[shard].push(local);
            globals[shard].push(p.slot);
        }
        let limit = config.candidate_prefix_len(k);
        let candidates: Vec<ShardCandidates> = (0..shards)
            .map(|s| {
                let order = PopularityIndex::build(&locals[s]);
                let shard_pool = PoolIndex::build(&locals[s]);
                let mut c = ShardCandidates::new();
                c.collect(PoolView::new(&locals[s], order.order(), &shard_pool), limit, &globals[s]);
                c
            })
            .collect();
        let mut merged = MergedCandidates::new();
        merge_shard_candidates_into(&candidates, limit, &mut merged);

        // (a) + (b): the merged view equals the corpus-wide derivation.
        prop_assert_eq!(&merged.pool().to_vec(), &pool.members().to_vec());
        let merged_rest: Vec<usize> = merged.rest().iter().map(|p| p.slot).collect();
        let expected_rest: Vec<usize> = sorted
            .iter()
            .copied()
            .filter(|&s| !pool.contains(s))
            .take(limit)
            .collect();
        prop_assert_eq!(&merged_rest, &expected_rest);

        // (c): ranking from the merged view is the scanning prefix —
        // through the self-contained candidate form and through the
        // maintained-pool primitive the serving tier uses (pool merged at
        // repair time, rest retrieved per query).
        let mut buffers = RankBuffers::new();
        let (mut scan, mut from_merge) = (Vec::new(), Vec::new());
        policy.rank_presorted_into(&pages, &sorted, &mut new_rng(seed), &mut buffers, &mut scan);
        policy.rank_top_k_candidates_into(&merged, k, &mut new_rng(seed), &mut buffers, &mut from_merge);
        prop_assert_eq!(&from_merge, &scan[..k.min(scan.len())].to_vec());

        policy.rank_top_k_retrieved_into(
            pool.members(),
            &merged_rest,
            k,
            &mut new_rng(seed),
            &mut buffers,
            &mut from_merge,
        );
        prop_assert_eq!(&from_merge, &scan[..k.min(scan.len())].to_vec());

        // And through the enum dispatch used by policy-generic callers.
        let kind = PolicyKind::promotion(config);
        prop_assert!(kind.supports_candidate_retrieval());
        kind.rank_top_k_candidates_into(&merged, k, &mut new_rng(seed), &mut buffers, &mut from_merge);
        prop_assert_eq!(&from_merge, &scan[..k.min(scan.len())].to_vec());
    }

    /// For *any* valid promotion configuration, ranks better than `k` are
    /// never perturbed: the first `k − 1` positions of the randomized
    /// result equal the deterministic popularity ranking of the pages that
    /// stayed outside the promotion pool. (Pool membership itself depends
    /// on the rule — zero-awareness pages for Selective, an `r`-biased coin
    /// per page for Uniform — so the protected prefix is computed against
    /// the policy's own non-pool ordering, reproduced from the same seed.)
    #[test]
    fn arbitrary_config_never_perturbs_ranks_below_k(
        pages in arb_pages(),
        seed in proptest::num::u64::ANY,
        rule in prop_oneof![Just(PromotionRule::Uniform), Just(PromotionRule::Selective)],
        k in 1usize..50,
        degree in 0.0f64..=1.0,
    ) {
        let config = PromotionConfig::new(rule, k, degree).unwrap();
        let policy = RandomizedRankPromotion::new(config);
        let order = policy.rank(&pages, &mut new_rng(seed));

        // Reproduce the policy's own pool split from the same seed: the
        // Uniform rule consumes one coin flip per page, in input order,
        // before anything else; the Selective rule consumes none.
        let mut pool_rng = new_rng(seed);
        let in_pool: Vec<bool> = match rule {
            PromotionRule::Selective => pages.iter().map(|p| p.is_unexplored()).collect(),
            PromotionRule::Uniform => pages
                .iter()
                .map(|_| rand::Rng::gen::<f64>(&mut pool_rng) < degree)
                .collect(),
        };
        let mut non_pool: Vec<&PageStats> = pages
            .iter()
            .filter(|p| !in_pool[p.slot])
            .collect();
        non_pool.sort_by(|a, b| rrp_ranking::popularity_order(a, b));
        let protected = (k - 1).min(non_pool.len());
        let expected: Vec<usize> = non_pool[..protected].iter().map(|p| p.slot).collect();
        prop_assert_eq!(
            &order[..protected],
            expected.as_slice(),
            "ranks 1..k must hold the deterministic non-pool prefix (rule {:?}, k {}, r {})",
            rule,
            k,
            degree
        );
    }
}
