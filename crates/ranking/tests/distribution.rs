//! Distributional equivalence of engine v1 and engine v2.
//!
//! Engine v2 replaces the eager copy-and-shuffle of the promotion pool
//! with the lazy Fisher–Yates overlay — a different *stream* of RNG draws
//! (one swap per consumed position, interleaved with the merge coins)
//! but, by construction, the same *distribution*: a uniformly random pool
//! permutation independent of an i.i.d. Bernoulli(`degree`) coin
//! sequence. The paper's guarantees (Section 4's promotion probabilities
//! and the resulting quality-discovery dynamics) are statements about
//! that distribution, so v2 is only a faithful engine if no marginal an
//! experiment can observe moves.
//!
//! This suite pins that: over many seeds, the per-position probability
//! that a top-k slot holds a promoted (pool) page, and each individual
//! pool member's appearance frequency in the top k, must agree between
//! v1 and v2 within a tolerance a few standard errors wide. A lazy
//! shuffle that drew one swap too few (biasing late positions toward the
//! pool's tail) or re-used an overlay entry (double-promoting a member)
//! would pass every permutation test and fail here.
//!
//! The default case count keeps `cargo test` fast; CI additionally runs
//! this file in release with `PROPTEST_CASES=1024` for statistical depth.

use proptest::prelude::*;
use rrp_model::new_rng;
use rrp_ranking::{
    EngineVersion, PromotionConfig, PromotionRule, RandomizedRankPromotion, RankBuffers,
};

/// Trials per proptest case. Each trial is one paired (v1, v2) top-k
/// query from the same trial seed; with 512 Bernoulli samples per
/// marginal the standard error of a frequency difference is at most
/// `sqrt(2 · 0.25 / 512) ≈ 0.031`.
const TRIALS: u64 = 512;

/// Acceptance band for a frequency difference: five standard errors.
const TOLERANCE: f64 = 0.16;

/// One accumulated set of marginals: how often each output position held
/// a pool member, and how often each pool member appeared in the top k.
#[derive(Clone)]
struct Marginals {
    position_hits: Vec<u64>,
    member_hits: Vec<u64>,
}

impl Marginals {
    fn new(k: usize, pool: usize) -> Self {
        Marginals {
            position_hits: vec![0; k],
            member_hits: vec![0; pool],
        }
    }

    fn record(&mut self, out: &[usize], pool_len: usize) {
        for (position, &slot) in out.iter().enumerate() {
            if slot < pool_len {
                self.position_hits[position] += 1;
                self.member_hits[slot] += 1;
            }
        }
    }
}

proptest! {
    /// For an arbitrary selective configuration and pool/rest split, the
    /// promoted-slot marginals of v2's lazy top-k match v1's eager
    /// top-k within tolerance over many seeds.
    #[test]
    fn v2_promoted_slot_marginals_match_v1(
        base_seed in proptest::num::u64::ANY,
        start_rank in 1usize..6,
        degree in 0.05f64..=0.95,
        pool_len in 3usize..9,
        rest_len in 8usize..21,
        k in 4usize..13,
    ) {
        let config = PromotionConfig::new(PromotionRule::Selective, start_rank, degree).unwrap();
        let v1 = RandomizedRankPromotion::new(config);
        let v2 = v1.with_version(EngineVersion::V2);

        // Pool members occupy slots `0..pool_len`, the popularity-ordered
        // rest the slots after them — the retrieved-path shape both
        // versions serve, with disjoint slot ranges so membership of an
        // output slot is a plain comparison.
        let pool: Vec<usize> = (0..pool_len).collect();
        let rest: Vec<usize> = (pool_len..pool_len + rest_len).collect();

        let mut buffers = RankBuffers::new();
        let mut out = Vec::new();
        let mut m1 = Marginals::new(k, pool_len);
        let mut m2 = Marginals::new(k, pool_len);
        for trial in 0..TRIALS {
            let seed = base_seed.wrapping_add(trial.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            v1.rank_top_k_retrieved_into(&pool, &rest, k, &mut new_rng(seed), &mut buffers, &mut out);
            m1.record(&out, pool_len);
            v2.rank_top_k_retrieved_into(&pool, &rest, k, &mut new_rng(seed), &mut buffers, &mut out);
            m2.record(&out, pool_len);
            prop_assert!(buffers.take_pool_draws() <= k as u64, "v2 must stay O(k) draws");
        }

        let freq = |hits: u64| hits as f64 / TRIALS as f64;
        for (position, (&h1, &h2)) in m1.position_hits.iter().zip(&m2.position_hits).enumerate() {
            prop_assert!(
                (freq(h1) - freq(h2)).abs() <= TOLERANCE,
                "position {} pool-occupancy drifted: v1 {:.3} vs v2 {:.3}",
                position,
                freq(h1),
                freq(h2)
            );
        }
        for (member, (&h1, &h2)) in m1.member_hits.iter().zip(&m2.member_hits).enumerate() {
            prop_assert!(
                (freq(h1) - freq(h2)).abs() <= TOLERANCE,
                "pool member {} appearance drifted: v1 {:.3} vs v2 {:.3}",
                member,
                freq(h1),
                freq(h2)
            );
        }

        // The total promoted mass (summed over positions) is the
        // tightest aggregate — `k · TRIALS` samples — and must agree
        // within the same band.
        let total = |m: &Marginals| m.position_hits.iter().sum::<u64>() as f64
            / (TRIALS as f64 * k as f64);
        prop_assert!(
            (total(&m1) - total(&m2)).abs() <= TOLERANCE / 2.0,
            "aggregate promoted mass drifted: v1 {:.4} vs v2 {:.4}",
            total(&m1),
            total(&m2)
        );
    }
}
