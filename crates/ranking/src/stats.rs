//! The per-page statistics a ranking policy is allowed to see.
//!
//! A real search engine ranks pages using measured popularity (in-links,
//! PageRank, toolbar traffic) — never intrinsic quality, which is
//! unobservable. [`PageStats`] therefore carries popularity, awareness and
//! age; intrinsic quality is included *only* so that the hypothetical
//! quality-oracle baseline (the paper's normalisation for QPC = 1.0) can be
//! expressed, and honest policies must not read it.

use rrp_model::PageId;
use serde::{Deserialize, Serialize};

/// A snapshot of one page as seen by the ranking function at query time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PageStats {
    /// Dense slot index of the page inside the community (`0..n`).
    pub slot: usize,
    /// Identifier of the page currently occupying the slot.
    pub page: PageId,
    /// Measured popularity `P(p, t) ∈ [0, 1]` among monitored users.
    pub popularity: f64,
    /// Awareness `A(p, t) ∈ [0, 1]` among monitored users. The selective
    /// promotion rule uses `awareness == 0` as its membership test.
    pub awareness: f64,
    /// Age of the page in days (used only to break popularity ties, older
    /// pages winning, as in the paper's live study).
    pub age_days: u64,
    /// Intrinsic quality `Q(p)`. Only the quality-oracle baseline may use
    /// this field; popularity-based policies must ignore it.
    pub quality: f64,
}

impl PageStats {
    /// Convenience constructor for tests and simple callers.
    pub fn new(slot: usize, page: PageId, popularity: f64, awareness: f64) -> Self {
        PageStats {
            slot,
            page,
            popularity,
            awareness,
            age_days: 0,
            quality: 0.0,
        }
    }

    /// Whether the page has never been visited by any monitored user
    /// (`A(p, t) = 0`), i.e. it is a candidate for selective promotion.
    ///
    /// # Why an exact `== 0.0` comparison is correct here
    ///
    /// Awareness is never the result of accumulating floating-point
    /// increments: producers quantise it to exact multiples of `1/m`
    /// (`m` = monitored users). The simulator stores an *integer* count of
    /// aware users and divides once per snapshot (`aware_users as f64 / m`),
    /// and the serving engine maps its boolean unexplored flag to exactly
    /// `0.0` or `1.0`. A quotient `k/m` with `k ≥ 1` is a positive `f64`
    /// (no underflow for any practical `m`), so `awareness == 0.0` holds
    /// exactly when `k == 0` — a visited page can never drift back into the
    /// promotion pool, and an unvisited one is never excluded by rounding.
    /// Even a producer that *did* accumulate `1/m` steps could not strand a
    /// visited page: IEEE-754 addition of positive values is monotone and
    /// the first step already yields `1/m > 0` (see the
    /// `accumulated_awareness_never_strands_a_visited_page` regression
    /// test).
    #[inline]
    pub fn is_unexplored(&self) -> bool {
        self.awareness == 0.0
    }

    /// Builder-style setter for the page age.
    pub fn with_age(mut self, age_days: u64) -> Self {
        self.age_days = age_days;
        self
    }

    /// Builder-style setter for intrinsic quality (oracle baseline only).
    pub fn with_quality(mut self, quality: f64) -> Self {
        self.quality = quality;
        self
    }
}

/// Compare two pages for deterministic popularity ranking: higher popularity
/// first, then older pages, then lower slot index (a stable, total order).
pub fn popularity_order(a: &PageStats, b: &PageStats) -> std::cmp::Ordering {
    b.popularity
        .partial_cmp(&a.popularity)
        .expect("popularity is never NaN")
        .then_with(|| b.age_days.cmp(&a.age_days))
        .then_with(|| a.slot.cmp(&b.slot))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(slot: usize, pop: f64, age: u64) -> PageStats {
        PageStats::new(
            slot,
            PageId::new(slot as u64),
            pop,
            if pop > 0.0 { 0.5 } else { 0.0 },
        )
        .with_age(age)
    }

    #[test]
    fn unexplored_means_zero_awareness() {
        let p = PageStats::new(0, PageId::new(0), 0.0, 0.0);
        assert!(p.is_unexplored());
        let q = PageStats::new(1, PageId::new(1), 0.1, 0.2);
        assert!(!q.is_unexplored());
    }

    /// Regression test for the `is_unexplored` invariant: awareness values
    /// reachable from monitored-user visits — the exact quotient `k/m` the
    /// simulator computes, and the worst-case naive accumulation of `k`
    /// increments of `1/m` — are exactly `0.0` iff `k == 0`. A page with at
    /// least one visit must never be re-admitted to the promotion pool by
    /// floating-point artifacts.
    #[test]
    fn accumulated_awareness_never_strands_a_visited_page() {
        for m in [1usize, 2, 3, 7, 10, 33, 100, 1_000, 1_000_000] {
            let step = 1.0 / m as f64;
            let mut accumulated = 0.0f64;
            for k in 0..=m {
                let quotient = k as f64 / m as f64;
                let page = PageStats::new(0, PageId::new(0), 0.0, quotient);
                assert_eq!(
                    page.is_unexplored(),
                    k == 0,
                    "quotient awareness {quotient} at k={k}, m={m}"
                );
                let page = PageStats::new(0, PageId::new(0), 0.0, accumulated);
                assert_eq!(
                    page.is_unexplored(),
                    k == 0,
                    "accumulated awareness {accumulated} at k={k}, m={m}"
                );
                accumulated += step;
            }
        }
    }

    #[test]
    fn popularity_order_sorts_descending() {
        let mut pages = [page(0, 0.1, 0), page(1, 0.9, 0), page(2, 0.5, 0)];
        pages.sort_by(popularity_order);
        let slots: Vec<usize> = pages.iter().map(|p| p.slot).collect();
        assert_eq!(slots, vec![1, 2, 0]);
    }

    #[test]
    fn ties_break_by_age_then_slot() {
        let mut pages = [page(3, 0.5, 10), page(1, 0.5, 30), page(2, 0.5, 30)];
        pages.sort_by(popularity_order);
        let slots: Vec<usize> = pages.iter().map(|p| p.slot).collect();
        // Same popularity: older first (age 30 before age 10); equal age:
        // lower slot first.
        assert_eq!(slots, vec![1, 2, 3]);
    }

    #[test]
    fn builders_set_fields() {
        let p = PageStats::new(4, PageId::new(9), 0.2, 0.1)
            .with_age(17)
            .with_quality(0.4);
        assert_eq!(p.age_days, 17);
        assert_eq!(p.quality, 0.4);
        assert_eq!(p.slot, 4);
        assert_eq!(p.page, PageId::new(9));
    }
}
