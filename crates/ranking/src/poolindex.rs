//! A persistent promotion-pool membership index over the page slots.
//!
//! The selective promotion rule's pool `L_p` is the set of unexplored
//! slots (`awareness == 0`, see
//! [`PageStats::is_unexplored`](crate::PageStats::is_unexplored)), listed
//! in ascending slot order before the per-query shuffle. The presorted
//! ranking path used to *re-derive* that set on every query with an `O(n)`
//! scan over all pages plus an `O(n)` membership-mask reset — even though
//! membership flips only where a mutation touched awareness (a first
//! recorded visit, a retirement, an insert). [`PoolIndex`] applies the same
//! "repair, don't rebuild" discipline as
//! [`PopularityIndex`](crate::PopularityIndex): the membership list and its
//! per-slot mask persist across queries and are patched from the mutation
//! path's dirty list, so the pooled query path
//! ([`rank_top_k_pooled_into`](crate::RandomizedRankPromotion::rank_top_k_pooled_into))
//! touches no per-corpus state at all.
//!
//! Why repair is sound: pool membership is a pure per-slot predicate of the
//! current stats (`is_unexplored`), so a clean slot's membership cannot
//! change without the slot being mutated — and every awareness mutation
//! marks its slot dirty (that is the mutation path's contract, the same one
//! the popularity order relies on). Membership order is ascending slot
//! index, which never changes, so removing the dirty slots and merging back
//! the ones that test unexplored reproduces the from-scratch scan exactly.
//! The subtle part is that this *must* be exact: the pool is shuffled into
//! the merged prefix, so even a reordering of members (let alone a stale
//! member) changes which page lands at which rank — the RNG stream itself
//! is observable through the pool.

use crate::stats::PageStats;
use serde::{Deserialize, Serialize};

/// A borrowed view of the persistent per-corpus ranking state that the
/// pooled query paths rank against: the per-slot statistics snapshot, its
/// maintained popularity order, and the maintained pool membership. All
/// three live across queries in their owner (a serving tier's cache, the
/// simulator's day loop) and are only *read* per query.
#[derive(Clone, Copy, Debug)]
pub struct PoolView<'a> {
    /// The per-slot statistics snapshot (`pages[i].slot == i`).
    pub pages: &'a [PageStats],
    /// Slot indices in [`popularity_order`](crate::popularity_order)
    /// (best rank first).
    pub sorted: &'a [usize],
    /// The promotion-pool membership index, consistent with `pages`.
    pub pool: &'a PoolIndex,
}

impl<'a> PoolView<'a> {
    /// Bundle the three maintained structures into a query-time view.
    pub fn new(pages: &'a [PageStats], sorted: &'a [usize], pool: &'a PoolIndex) -> Self {
        PoolView {
            pages,
            sorted,
            pool,
        }
    }
}

/// Unexplored slots in ascending slot order, repaired incrementally.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PoolIndex {
    /// Pool members (unexplored slots), ascending. Invariant outside
    /// `repair`: equals the slots where `is_unexplored` holds for the most
    /// recent `stats` passed in.
    members: Vec<usize>,
    /// Per-slot membership mask (`mask[s]` ⇔ `s ∈ members`), maintained —
    /// never reset — so the deterministic-remainder filter reads it
    /// without an `O(n)` clear per query.
    mask: Vec<bool>,
    /// Scratch: per-slot "is dirty" mask during a repair.
    #[serde(skip)]
    removed: Vec<bool>,
    /// Scratch: dirty slots that test unexplored, sorted ascending.
    #[serde(skip)]
    incoming: Vec<usize>,
    /// Scratch: merge target swapped with `members` during a repair.
    #[serde(skip)]
    merged: Vec<usize>,
}

impl PoolIndex {
    /// Build the index with a from-scratch scan of `stats`.
    ///
    /// Requires dense slot indexing (`stats[i].slot == i`), like every
    /// consumer of the presorted ranking path.
    pub fn build(stats: &[PageStats]) -> Self {
        let mut index = PoolIndex::default();
        index.rebuild(stats);
        index
    }

    /// Re-derive membership from scratch, discarding the incremental state.
    pub fn rebuild(&mut self, stats: &[PageStats]) {
        debug_assert!(stats.iter().enumerate().all(|(i, p)| p.slot == i));
        self.members.clear();
        self.mask.clear();
        self.mask.resize(stats.len(), false);
        for p in stats.iter() {
            if p.is_unexplored() {
                self.mask[p.slot] = true;
                self.members.push(p.slot);
            }
        }
    }

    /// The pool members in ascending slot order — exactly the order the
    /// per-query scan would have produced before the shuffle.
    #[inline]
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Whether `slot` is currently in the pool. `O(1)` off the maintained
    /// mask.
    #[inline]
    pub fn contains(&self, slot: usize) -> bool {
        self.mask[slot]
    }

    /// Number of pool members.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the pool is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of indexed slots (the population size at the last repair).
    #[inline]
    pub fn indexed_slots(&self) -> usize {
        self.mask.len()
    }

    /// Restore membership after the slots in `dirty` changed their stats,
    /// testing against the *current* `stats`. Slots may appear multiple
    /// times and in any order; unlike
    /// [`PopularityIndex::repair`](crate::PopularityIndex::repair) the list
    /// is borrowed, not drained, so the same dirty list can feed both
    /// indexes before the popularity repair consumes it. The population may
    /// have grown since the last repair (`stats.len() > indexed_slots()`),
    /// in which case every new slot must appear in `dirty`. Allocation-free
    /// once the scratch buffers have grown to `n`.
    ///
    /// Cost: amortised `O(pool + d log d)` for `d` dirty slots — one pass
    /// over the current members, a sort-and-merge of the dirty survivors,
    /// and an `O(d)` reset of exactly the scratch entries touched (the
    /// scratch mask grows to `n` once and is never re-zeroed wholesale) —
    /// versus the `O(n)` scan + mask reset of a rebuild.
    ///
    /// Debug builds verify the repaired membership against a fresh
    /// [`is_unexplored`](crate::PageStats::is_unexplored) scan afterwards
    /// (and on the empty-dirty fast path), so any producer that mutates
    /// awareness without marking the slot dirty trips an assertion at the
    /// next repair instead of silently drifting the pool.
    pub fn repair(&mut self, stats: &[PageStats], dirty: &[usize]) {
        debug_assert!(
            stats.len() >= self.mask.len(),
            "the population never shrinks"
        );
        if dirty.is_empty() {
            debug_assert!(self.is_consistent(stats));
            return;
        }

        // Grow the membership mask for inserted slots (new entries start
        // outside the pool and join below if they test unexplored).
        let previously_indexed = self.mask.len();
        self.mask.resize(stats.len(), false);

        // Deduplicate via the scratch mask. Invariant: `removed` is
        // all-false between repairs (each repair resets exactly the
        // entries it set), so it only ever *grows* here — re-zeroing all
        // `n` entries per repair would silently turn the advertised
        // `O(pool + d)`-class bound into `O(n)`.
        debug_assert!(self.removed.iter().all(|&r| !r));
        if self.removed.len() < stats.len() {
            self.removed.resize(stats.len(), false);
        }
        self.incoming.clear();
        for &slot in dirty {
            if !self.removed[slot] {
                self.removed[slot] = true;
                self.incoming.push(slot);
            }
        }
        debug_assert!(
            (previously_indexed..stats.len()).all(|slot| self.removed[slot]),
            "every slot inserted since the last repair must be dirty"
        );

        // Re-test membership for every dirty slot and update the mask.
        self.incoming.retain(|&slot| {
            let member = stats[slot].is_unexplored();
            self.mask[slot] = member;
            member
        });

        // Pull dirty slots out of the member list, keeping the clean
        // remainder (already ascending), then merge the dirty survivors
        // back in slot order.
        self.members.retain(|&slot| !self.removed[slot]);
        self.incoming.sort_unstable();
        self.merged.clear();
        self.merged
            .reserve(self.members.len() + self.incoming.len());
        let mut next_incoming = 0;
        for &clean in self.members.iter() {
            while next_incoming < self.incoming.len() && self.incoming[next_incoming] < clean {
                self.merged.push(self.incoming[next_incoming]);
                next_incoming += 1;
            }
            self.merged.push(clean);
        }
        self.merged
            .extend_from_slice(&self.incoming[next_incoming..]);
        std::mem::swap(&mut self.members, &mut self.merged);

        // Restore the all-false scratch invariant: O(d), duplicates
        // included, instead of an O(n) clear at the next repair.
        for &slot in dirty {
            self.removed[slot] = false;
        }

        debug_assert!(self.is_consistent(stats));
    }

    /// Whether the maintained membership equals a fresh
    /// [`is_unexplored`](crate::PageStats::is_unexplored) scan of `stats`
    /// (used by tests and the post-repair debug assertion that guards
    /// against awareness-drift bugs in producers).
    pub fn is_consistent(&self, stats: &[PageStats]) -> bool {
        self.mask.len() == stats.len()
            && self.members.windows(2).all(|w| w[0] < w[1])
            && self.members.iter().all(|&s| s < stats.len())
            && stats
                .iter()
                .enumerate()
                .all(|(slot, p)| self.mask[slot] == p.is_unexplored())
            && self.members.len() == stats.iter().filter(|p| p.is_unexplored()).count()
            && self.members.iter().all(|&s| self.mask[s])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrp_model::PageId;

    /// Pages where `explored[i]` decides awareness (explored ⇒ 0.5).
    fn stats(explored: &[bool]) -> Vec<PageStats> {
        explored
            .iter()
            .enumerate()
            .map(|(slot, &e)| {
                let awareness = if e { 0.5 } else { 0.0 };
                PageStats::new(slot, PageId::new(slot as u64), awareness * 0.8, awareness)
            })
            .collect()
    }

    fn fresh_members(stats: &[PageStats]) -> Vec<usize> {
        stats
            .iter()
            .filter(|p| p.is_unexplored())
            .map(|p| p.slot)
            .collect()
    }

    #[test]
    fn build_matches_fresh_scan() {
        let ps = stats(&[true, false, true, false, false]);
        let index = PoolIndex::build(&ps);
        assert_eq!(index.members(), &[1, 3, 4]);
        assert!(index.is_consistent(&ps));
        assert_eq!(index.len(), 3);
        assert!(!index.is_empty());
        assert_eq!(index.indexed_slots(), 5);
        assert!(index.contains(1));
        assert!(!index.contains(0));
    }

    #[test]
    fn repair_removes_a_visited_slot() {
        let mut ps = stats(&[true, false, false, true]);
        let mut index = PoolIndex::build(&ps);
        ps[2].awareness = 0.25; // first visit: leaves the pool
        index.repair(&ps, &[2]);
        assert_eq!(index.members(), &[1]);
        assert!(index.is_consistent(&ps));
    }

    #[test]
    fn repair_readmits_a_retired_slot() {
        let mut ps = stats(&[true, true, true]);
        let mut index = PoolIndex::build(&ps);
        assert!(index.is_empty());
        ps[1].awareness = 0.0; // retirement: fresh zero-awareness page
        ps[1].popularity = 0.0;
        index.repair(&ps, &[1]);
        assert_eq!(index.members(), &[1]);
        assert!(index.is_consistent(&ps));
    }

    #[test]
    fn repair_handles_duplicates_and_unchanged_slots() {
        let mut ps = stats(&[false, true, false, true]);
        let mut index = PoolIndex::build(&ps);
        ps[0].awareness = 0.5; // first visit: leaves the pool
        ps[3].awareness = 0.0; // retirement: joins the pool
        index.repair(&ps, &[0, 0, 3, 0, 3, 1]); // slot 1 is dirty but unchanged
        assert_eq!(index.members(), &[2, 3]);
        assert_eq!(index.members(), fresh_members(&ps).as_slice());
        assert!(index.is_consistent(&ps));
    }

    #[test]
    fn repair_with_no_dirty_slots_is_a_no_op() {
        let ps = stats(&[false, true, false]);
        let mut index = PoolIndex::build(&ps);
        index.repair(&ps, &[]);
        assert_eq!(index.members(), &[0, 2]);
    }

    #[test]
    fn repair_places_newly_inserted_slots() {
        let mut ps = stats(&[false, true]);
        let mut index = PoolIndex::build(&ps);
        ps.extend(stats(&[true, false]).into_iter().map(|mut p| {
            p.slot += 2;
            p.page = PageId::new(p.slot as u64);
            p
        }));
        index.repair(&ps, &[2, 3]);
        assert_eq!(index.members(), &[0, 3]);
        assert!(index.is_consistent(&ps));
        assert_eq!(index.indexed_slots(), 4);
    }

    #[test]
    fn repair_grows_an_empty_index_from_all_dirty_slots() {
        let ps = stats(&[false, true, false, false]);
        let mut index = PoolIndex::default();
        index.repair(&ps, &[0, 1, 2, 3]);
        assert_eq!(index.members(), &[0, 2, 3]);
        assert!(index.is_consistent(&ps));
    }

    #[test]
    fn repair_interleaves_incoming_and_standing_members() {
        // Standing members 1, 5, 9; slots 0, 4, 6 flip into the pool — the
        // merge must interleave them in ascending slot order, because the
        // pre-shuffle pool order is observable in the RNG stream.
        let mut ps = stats(&[
            true, false, true, true, true, false, true, true, true, false,
        ]);
        let mut index = PoolIndex::build(&ps);
        assert_eq!(index.members(), &[1, 5, 9]);
        for slot in [0usize, 4, 6] {
            ps[slot].awareness = 0.0;
            ps[slot].popularity = 0.0;
        }
        index.repair(&ps, &[6, 0, 4]);
        assert_eq!(index.members(), &[0, 1, 4, 5, 6, 9]);
        assert!(index.is_consistent(&ps));
    }

    #[test]
    fn rebuild_resets_after_bulk_changes() {
        let mut ps = stats(&[false, true, false]);
        let mut index = PoolIndex::build(&ps);
        for p in ps.iter_mut() {
            p.awareness = if p.awareness == 0.0 { 0.5 } else { 0.0 };
        }
        index.rebuild(&ps);
        assert_eq!(index.members(), &[1]);
        assert!(index.is_consistent(&ps));
    }

    /// The drift-hazard tripwire: mutating awareness *without* marking the
    /// slot dirty leaves the index inconsistent, and the next repair's
    /// debug assertion catches it instead of serving a stale pool.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "is_consistent")]
    fn unmarked_awareness_drift_trips_the_repair_assertion() {
        let mut ps = stats(&[false, true]);
        let mut index = PoolIndex::build(&ps);
        ps[0].awareness = 0.5; // mutated, but never marked dirty
        index.repair(&ps, &[]);
    }
}
