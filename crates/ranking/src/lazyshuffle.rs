//! Engine v2: the O(k)-draw lazy pool shuffle.
//!
//! The v1 top-k paths copy the whole promotion pool and shuffle it before
//! the coin-flip merge reads its first element — `O(pool)` work per query
//! even when the merge consumes only a handful of promoted slots. The
//! lazy alternative implemented here evaluates a *forward* Fisher–Yates
//! shuffle one front position at a time: each time the merge consumes a
//! pool entry, exactly one swap index is drawn and the displaced value is
//! parked in a tiny scratch overlay. A top-`k` query therefore performs at
//! most `k` draws and touches at most `k` overlay entries — zero `O(pool)`
//! work.
//!
//! The lazy evaluation draws a *different RNG stream* than v1 (v1 draws
//! the complete backward Fisher–Yates before any merge coin; v2
//! interleaves one swap draw per consumed pool entry with the coins), so
//! the swap ships behind an explicit [`EngineVersion`]: v1 stays the
//! default with its goldens untouched, and v2 carries its own recorded
//! goldens plus a distributional-equivalence suite. This mirrors how OCC
//! systems version observable schedules — a new protocol version is
//! validated for equivalence, never silently swapped in.

use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// Which observable RNG stream the promotion engine draws.
///
/// * [`V1`](EngineVersion::V1) — the original stream: the whole pool is
///   copied and shuffled (backward Fisher–Yates) before the coin-flip
///   merge starts. Every recorded v1 golden and every serialized engine
///   without an explicit version means this.
/// * [`V2`](EngineVersion::V2) — the lazy stream: on the Selective top-k
///   paths the pool permutation is evaluated front-first via
///   [`LazyShuffle`], drawing one swap index per *consumed* pool entry,
///   interleaved with the merge coins. At most `k` draws per query; full
///   reranks and the Uniform rule are bit-identical to v1.
///
/// The two versions produce different (but distributionally equivalent)
/// top-k prefixes; callers opt into v2 explicitly and keep v1 goldens
/// valid forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum EngineVersion {
    /// The original eager-shuffle stream (the default).
    #[default]
    V1,
    /// The lazy O(k)-draw stream for Selective top-k serving.
    V2,
}

/// A forward Fisher–Yates permutation of `members`, evaluated lazily from
/// the front.
///
/// Eagerly, the permutation this produces is
///
/// ```text
/// for i in 0..n-1 { swap(a[i], a[gen_range(i..n)]) }
/// ```
///
/// [`next_front`](Self::next_front) emits `a[0], a[1], …` of that
/// permutation while drawing only the swap indices for the positions
/// actually consumed: consuming front position `i` draws exactly one
/// `gen_range(i..n)` (none when `i` is the last position) and records the
/// displaced value in a `(index, value)` overlay no larger than the number
/// of consumptions so far. Consuming the full permutation reproduces
/// [`forward_shuffle`] on the same RNG bit for bit — the invariant the
/// property suite pins.
#[derive(Debug)]
pub struct LazyShuffle<'a> {
    /// The pool in its pre-shuffle order (ascending slot for the serving
    /// tier). Never mutated; displaced values live in the overlay.
    members: &'a [usize],
    /// Sparse `(index, value)` patches over `members`, scanned linearly —
    /// it holds at most one entry per consumed position, so for a top-`k`
    /// query it never exceeds `k` entries.
    overlay: &'a mut Vec<(usize, usize)>,
    /// The next front position to emit.
    front: usize,
    /// Swap indices drawn so far (the serving tier's `pool_draws` probe).
    draws: u64,
}

impl<'a> LazyShuffle<'a> {
    /// Start a lazy shuffle over `members`, parking displaced values in
    /// `overlay` (cleared first; the caller owns it so its capacity is
    /// reused across queries).
    pub fn new(members: &'a [usize], overlay: &'a mut Vec<(usize, usize)>) -> Self {
        overlay.clear();
        LazyShuffle {
            members,
            overlay,
            front: 0,
            draws: 0,
        }
    }

    /// Total pool size (consumed and unconsumed).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the pool was empty to begin with.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// How many front positions have not been emitted yet — the merge's
    /// "pool not exhausted" predicate.
    pub fn remaining(&self) -> usize {
        self.members.len() - self.front
    }

    /// Swap indices drawn so far: at most one per emitted position, and
    /// none for the final position of the permutation.
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Emit the next front position of the permutation, or `None` once
    /// every member has been emitted. Draws exactly one swap index unless
    /// this is the last position (which is fully determined).
    pub fn next_front<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Option<usize> {
        let n = self.members.len();
        let i = self.front;
        if i >= n {
            return None;
        }
        self.front += 1;
        // Positions before `i` are never read again, so the overlay entry
        // for `i` (if any) can be removed as it is consumed.
        let value_i = self.take(i);
        if i + 1 == n {
            // The last position is whatever is left — the eager loop stops
            // at n-1 and draws nothing for it.
            return Some(value_i);
        }
        self.draws += 1;
        let j = rng.gen_range(i..n);
        if j == i {
            return Some(value_i);
        }
        Some(self.replace(j, value_i))
    }

    /// Current value at `index` through the overlay, removing the overlay
    /// entry (the position is about to be consumed).
    fn take(&mut self, index: usize) -> usize {
        match self.overlay.iter().position(|&(i, _)| i == index) {
            Some(at) => self.overlay.swap_remove(at).1,
            None => self.members[index],
        }
    }

    /// Write `value` at `index`, returning the value previously there
    /// (through the overlay).
    fn replace(&mut self, index: usize, value: usize) -> usize {
        match self.overlay.iter_mut().find(|(i, _)| *i == index) {
            Some(entry) => std::mem::replace(&mut entry.1, value),
            None => {
                self.overlay.push((index, value));
                self.members[index]
            }
        }
    }
}

/// The eager reference for [`LazyShuffle`]: a *forward* Fisher–Yates
/// shuffle of `values` in place (`n − 1` draws of `gen_range(i..n)`).
///
/// This is deliberately not the vendored `SliceRandom::shuffle` (which
/// walks backward): the forward walk is what can be evaluated lazily from
/// the front. Consuming a full [`LazyShuffle`] yields exactly this
/// permutation from the same RNG state — the equivalence the isolation
/// property test pins.
pub fn forward_shuffle<R: RngCore + ?Sized>(values: &mut [usize], rng: &mut R) {
    let n = values.len();
    for i in 0..n.saturating_sub(1) {
        let j = rng.gen_range(i..n);
        values.swap(i, j);
    }
}

/// The v2 twin of
/// [`merge_promoted_top_k_into`](crate::merge_promoted_top_k_into):
/// identical protected-prefix and coin semantics, but the promoted list is
/// a [`LazyShuffle`] consumed front-first instead of a pre-shuffled slice.
///
/// Each merge position draws its coin under exactly the same conditions
/// as v1 (both lists non-empty); when the coin picks the pool, the lazy
/// shuffle draws that entry's swap index *then and there*. Total RNG
/// consumption is therefore at most `k` coins plus at most
/// `min(k, pool − 1)` swap draws — `O(k)`, with zero `O(pool)` work.
#[allow(clippy::too_many_arguments)]
pub fn merge_promoted_top_k_lazy_into<R: RngCore + ?Sized>(
    deterministic: &[usize],
    promoted: &mut LazyShuffle<'_>,
    start_rank: usize,
    degree: f64,
    k: usize,
    rng: &mut R,
    result: &mut Vec<usize>,
) {
    debug_assert!(start_rank >= 1, "start rank is 1-based");
    debug_assert!((0.0..=1.0).contains(&degree), "degree must be in [0, 1]");

    result.clear();
    result.reserve(k.min(deterministic.len() + promoted.remaining()));

    let protected = (start_rank - 1).min(deterministic.len()).min(k);
    let mut d_iter = deterministic.iter().copied();

    // Step 1: protected prefix straight from L_d, order preserved.
    result.extend(d_iter.by_ref().take(protected));

    // Step 2: coin-flip merge, stopping once `k` ranks are emitted. The
    // pool side is materialised only when a coin (or d-exhaustion) selects
    // it.
    let mut d_next = d_iter.next();
    while result.len() < k {
        match (d_next, promoted.remaining() > 0) {
            (Some(d), true) => {
                if rng.gen::<f64>() < degree {
                    result.push(promoted.next_front(rng).expect("pool is non-empty"));
                } else {
                    result.push(d);
                    d_next = d_iter.next();
                }
            }
            (Some(d), false) => {
                result.push(d);
                d_next = d_iter.next();
            }
            (None, true) => {
                result.push(promoted.next_front(rng).expect("pool is non-empty"));
            }
            (None, false) => break,
        }
    }
    debug_assert!(result.len() <= k);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrp_model::new_rng;

    #[test]
    fn full_consumption_reproduces_the_eager_forward_shuffle() {
        for n in [0usize, 1, 2, 3, 7, 30, 100] {
            let members: Vec<usize> = (100..100 + n).collect();
            for seed in 0..50 {
                let mut eager = members.clone();
                forward_shuffle(&mut eager, &mut new_rng(seed));

                let mut overlay = Vec::new();
                let mut lazy = LazyShuffle::new(&members, &mut overlay);
                let mut rng = new_rng(seed);
                let mut emitted = Vec::new();
                while let Some(v) = lazy.next_front(&mut rng) {
                    emitted.push(v);
                }
                assert_eq!(emitted, eager, "n={n}, seed={seed}");
            }
        }
    }

    #[test]
    fn prefix_consumption_draws_once_per_position_except_the_last() {
        let members: Vec<usize> = (0..40).collect();
        for consumed in [0usize, 1, 5, 39, 40] {
            let mut overlay = Vec::new();
            let mut lazy = LazyShuffle::new(&members, &mut overlay);
            let mut rng = new_rng(9);
            for _ in 0..consumed {
                lazy.next_front(&mut rng).unwrap();
            }
            let expected = consumed.min(members.len() - 1) as u64;
            assert_eq!(lazy.draws(), expected, "consumed={consumed}");
            assert_eq!(lazy.remaining(), members.len() - consumed);
        }
    }

    #[test]
    fn overlay_never_exceeds_the_number_of_consumptions() {
        let members: Vec<usize> = (0..1000).collect();
        let mut overlay = Vec::new();
        let mut lazy = LazyShuffle::new(&members, &mut overlay);
        let mut rng = new_rng(3);
        for consumed in 1..=20 {
            lazy.next_front(&mut rng).unwrap();
            assert!(
                lazy.overlay.len() <= consumed,
                "overlay {} after {consumed} consumptions",
                lazy.overlay.len()
            );
        }
    }

    #[test]
    fn exhausted_shuffle_returns_none_and_stops_drawing() {
        let members = [7usize, 8];
        let mut overlay = Vec::new();
        let mut lazy = LazyShuffle::new(&members, &mut overlay);
        let mut rng = new_rng(0);
        assert!(lazy.next_front(&mut rng).is_some());
        assert!(lazy.next_front(&mut rng).is_some());
        let draws = lazy.draws();
        assert!(lazy.next_front(&mut rng).is_none());
        assert_eq!(lazy.draws(), draws, "None must not draw");
        assert_eq!(lazy.remaining(), 0);
        assert!(!lazy.is_empty());
        assert_eq!(lazy.len(), 2);
    }

    #[test]
    fn empty_pool_is_immediately_exhausted() {
        let mut overlay = vec![(3, 4)]; // stale scratch must be cleared
        let mut lazy = LazyShuffle::new(&[], &mut overlay);
        assert!(lazy.is_empty());
        assert_eq!(lazy.remaining(), 0);
        assert!(lazy.next_front(&mut new_rng(0)).is_none());
        assert_eq!(lazy.draws(), 0);
    }

    #[test]
    fn lazy_merge_emits_min_k_total_entries() {
        let deterministic = [1usize, 2, 3];
        let members = [10usize, 11];
        let mut overlay = Vec::new();
        let mut out = Vec::new();
        for k in [0usize, 1, 3, 5, 10] {
            let mut lazy = LazyShuffle::new(&members, &mut overlay);
            merge_promoted_top_k_lazy_into(
                &deterministic,
                &mut lazy,
                2,
                0.5,
                k,
                &mut new_rng(4),
                &mut out,
            );
            assert_eq!(out.len(), k.min(5), "k={k}");
        }
    }

    #[test]
    fn lazy_merge_protects_the_deterministic_prefix() {
        let deterministic: Vec<usize> = (0..10).collect();
        let members: Vec<usize> = (10..20).collect();
        let mut overlay = Vec::new();
        let mut out = Vec::new();
        for seed in 0..30 {
            let mut lazy = LazyShuffle::new(&members, &mut overlay);
            merge_promoted_top_k_lazy_into(
                &deterministic,
                &mut lazy,
                4,
                0.9,
                8,
                &mut new_rng(seed),
                &mut out,
            );
            assert_eq!(&out[..3], &[0, 1, 2], "top start_rank-1 is protected");
        }
    }

    #[test]
    fn lazy_merge_with_zero_degree_is_the_deterministic_list() {
        let deterministic: Vec<usize> = (0..6).collect();
        let members: Vec<usize> = (6..12).collect();
        let mut overlay = Vec::new();
        let mut out = Vec::new();
        let mut lazy = LazyShuffle::new(&members, &mut overlay);
        merge_promoted_top_k_lazy_into(
            &deterministic,
            &mut lazy,
            1,
            0.0,
            6,
            &mut new_rng(1),
            &mut out,
        );
        assert_eq!(out, deterministic);
        assert_eq!(lazy.draws(), 0, "no pool entry consumed, no swap drawn");
    }

    #[test]
    fn lazy_merge_draws_at_most_k_swaps() {
        let deterministic: Vec<usize> = (0..50).collect();
        let members: Vec<usize> = (50..10_050).collect(); // a big pool
        let mut overlay = Vec::new();
        let mut out = Vec::new();
        for seed in 0..20 {
            for k in [1usize, 5, 12] {
                let mut lazy = LazyShuffle::new(&members, &mut overlay);
                merge_promoted_top_k_lazy_into(
                    &deterministic,
                    &mut lazy,
                    2,
                    0.5,
                    k,
                    &mut new_rng(seed),
                    &mut out,
                );
                assert!(
                    lazy.draws() <= k as u64,
                    "seed={seed}, k={k}: {} draws",
                    lazy.draws()
                );
                assert!(overlay.len() <= k, "overlay stays within k entries");
            }
        }
    }

    #[test]
    fn engine_version_defaults_to_v1() {
        assert_eq!(EngineVersion::default(), EngineVersion::V1);
    }
}
