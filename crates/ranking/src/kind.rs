//! [`PolicyKind`] — a closed, copyable enum over every ranking policy in
//! this crate.
//!
//! The simulator's day loop used to dispatch ranking through a
//! `Box<dyn RankingPolicy>`; that is flexible but puts a vtable call (and a
//! heap allocation per simulation) on the hottest path in the workspace.
//! All policies the workspace actually runs are the four defined here, so a
//! plain enum gives static dispatch, `Copy` semantics (policies are a few
//! words of configuration), and exhaustive matching — while still
//! implementing [`RankingPolicy`] for callers that want the trait.

use crate::buffers::RankBuffers;
use crate::candidates::MergedCandidates;
use crate::deterministic::{FullyRandomRanking, PopularityRanking, QualityOracleRanking};
use crate::policy::RankingPolicy;
use crate::poolindex::PoolView;
use crate::promotion::{PromotionConfig, PromotionRule};
use crate::randomized::RandomizedRankPromotion;
use crate::stats::PageStats;
use rand::RngCore;

/// A closed enum over the crate's ranking policies (static dispatch).
///
/// Construct it directly, via `From` on any concrete policy, or with
/// [`PolicyKind::promotion`]. All methods forward to the corresponding
/// policy and consume identical RNG draws, so swapping a boxed policy for a
/// `PolicyKind` never changes simulation results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyKind {
    /// Strict descending-popularity ranking ([`PopularityRanking`]).
    Popularity,
    /// The hypothetical quality-ordered ideal ([`QualityOracleRanking`]).
    QualityOracle,
    /// A uniformly random permutation per query ([`FullyRandomRanking`]).
    FullyRandom,
    /// The paper's randomized rank promotion ([`RandomizedRankPromotion`]).
    Promotion(RandomizedRankPromotion),
}

impl PolicyKind {
    /// Randomized rank promotion with the given configuration.
    pub fn promotion(config: PromotionConfig) -> Self {
        PolicyKind::Promotion(RandomizedRankPromotion::new(config))
    }

    /// The paper's recommended recipe: selective promotion, `r = 0.1`,
    /// starting at `start_rank` (1 or 2).
    pub fn recommended(start_rank: usize) -> Self {
        PolicyKind::Promotion(RandomizedRankPromotion::recommended(start_rank))
    }

    /// Rank `pages` into `out` (see
    /// [`RankingPolicy::rank_into`]) with a `match` instead of a vtable.
    /// Generic over the RNG so concrete generators stay statically
    /// dispatched through the enum.
    pub fn rank_into<R: RngCore + ?Sized>(
        &self,
        pages: &[PageStats],
        rng: &mut R,
        buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    ) {
        match self {
            PolicyKind::Popularity => PopularityRanking.rank_order_into(pages, out),
            PolicyKind::QualityOracle => QualityOracleRanking.rank_order_into(pages, out),
            PolicyKind::FullyRandom => FullyRandomRanking.shuffle_into(pages, rng, out),
            PolicyKind::Promotion(policy) => policy.rank_into(pages, rng, buffers, out),
        }
    }

    /// Allocating convenience wrapper over [`rank_into`](Self::rank_into)
    /// (the [`RankingPolicy`] provided method).
    pub fn rank(&self, pages: &[PageStats], rng: &mut dyn RngCore) -> Vec<usize> {
        RankingPolicy::rank(self, pages, rng)
    }

    /// Rank when the caller already maintains the full popularity order of
    /// `pages` (see
    /// [`RandomizedRankPromotion::rank_presorted_into`] for the contract:
    /// `pages[i].slot == i` and `sorted` ordered by
    /// [`popularity_order`](crate::popularity_order)).
    ///
    /// Policies that do not rank by popularity ignore `sorted`: the quality
    /// oracle sorts by quality as usual, and fully-random ranking shuffles.
    /// Output and RNG consumption are byte-identical to
    /// [`rank_into`](Self::rank_into).
    pub fn rank_presorted_into<R: RngCore + ?Sized>(
        &self,
        pages: &[PageStats],
        sorted: &[usize],
        rng: &mut R,
        buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    ) {
        match self {
            PolicyKind::Popularity => {
                debug_assert!(pages.iter().enumerate().all(|(i, p)| p.slot == i));
                debug_assert_eq!(sorted.len(), pages.len());
                debug_assert!(sorted.windows(2).all(|w| crate::popularity_order(
                    &pages[w[0]],
                    &pages[w[1]]
                )
                .is_lt()));
                out.clear();
                out.extend_from_slice(sorted);
            }
            PolicyKind::QualityOracle => QualityOracleRanking.rank_order_into(pages, out),
            PolicyKind::FullyRandom => FullyRandomRanking.shuffle_into(pages, rng, out),
            PolicyKind::Promotion(policy) => {
                policy.rank_presorted_into(pages, sorted, rng, buffers, out)
            }
        }
    }

    /// The top-`k` prefix of
    /// [`rank_presorted_into`](Self::rank_presorted_into): emit only the
    /// first `min(k, n)` ranks. For every kind the output equals the
    /// length-`k` prefix of the full rerank bit for bit.
    ///
    /// Only popularity-ordered kinds get a genuine early exit (the
    /// promotion merge stops at rank `k`; plain popularity ranking copies
    /// `k` entries off the precomputed order). The quality oracle and the
    /// fully-random shuffle must still process all `n` pages — their prefix
    /// depends on the whole permutation — and are truncated afterwards.
    pub fn rank_top_k_presorted_into<R: RngCore + ?Sized>(
        &self,
        pages: &[PageStats],
        sorted: &[usize],
        k: usize,
        rng: &mut R,
        buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    ) {
        match self {
            PolicyKind::Popularity => {
                debug_assert!(pages.iter().enumerate().all(|(i, p)| p.slot == i));
                debug_assert_eq!(sorted.len(), pages.len());
                out.clear();
                out.extend_from_slice(&sorted[..k.min(sorted.len())]);
            }
            PolicyKind::QualityOracle => {
                QualityOracleRanking.rank_order_into(pages, out);
                out.truncate(k);
            }
            PolicyKind::FullyRandom => {
                FullyRandomRanking.shuffle_into(pages, rng, out);
                out.truncate(k);
            }
            PolicyKind::Promotion(policy) => {
                policy.rank_top_k_presorted_into(pages, sorted, k, rng, buffers, out)
            }
        }
    }

    /// [`rank_presorted_into`](Self::rank_presorted_into) against a
    /// persistent pool ([`PoolView`] bundles the stats, their popularity
    /// order and the maintained [`PoolIndex`](crate::PoolIndex)):
    /// promotion policies take their pool `L_p` off the index instead of
    /// re-scanning all `n` pages (the Uniform rule still draws its
    /// mandatory per-page coins). Policies that do not promote ignore the
    /// index. Output and RNG consumption are byte-identical to
    /// [`rank_presorted_into`](Self::rank_presorted_into).
    pub fn rank_pooled_into<R: RngCore + ?Sized>(
        &self,
        view: PoolView<'_>,
        rng: &mut R,
        buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    ) {
        match self {
            PolicyKind::Promotion(policy) => policy.rank_pooled_into(view, rng, buffers, out),
            _ => self.rank_presorted_into(view.pages, view.sorted, rng, buffers, out),
        }
    }

    /// The top-`k` prefix of [`rank_pooled_into`](Self::rank_pooled_into):
    /// for the promotion policy this is the `O(pool + k)` serving path —
    /// no full-corpus scan, no mask reset, coin-flip merge stopped at rank
    /// `k`. For every kind the output equals the length-`k` prefix of the
    /// full rerank bit for bit.
    pub fn rank_top_k_pooled_into<R: RngCore + ?Sized>(
        &self,
        view: PoolView<'_>,
        k: usize,
        rng: &mut R,
        buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    ) {
        match self {
            PolicyKind::Promotion(policy) => {
                policy.rank_top_k_pooled_into(view, k, rng, buffers, out)
            }
            _ => self.rank_top_k_presorted_into(view.pages, view.sorted, k, rng, buffers, out),
        }
    }

    /// The top-`k` prefix of the full rerank computed from **merged shard
    /// candidates** ([`MergedCandidates`], built with a limit of at least
    /// `k`) — the distributed serving path that touches no corpus-wide
    /// structure, forwarding to
    /// [`RandomizedRankPromotion::rank_top_k_candidates_into`]. Output is
    /// bit-identical to the length-`k` prefix of the full rerank.
    ///
    /// # Panics
    /// Panics for every kind whose prefix depends on the whole corpus —
    /// all but selective promotion: the quality oracle orders by quality,
    /// the fully-random shuffle permutes all `n` pages, plain popularity
    /// ranking already has an `O(k)` answer in the maintained order
    /// itself, and the Uniform promotion rule draws per-page coins. Gate
    /// on [`supports_candidate_retrieval`](Self::supports_candidate_retrieval).
    pub fn rank_top_k_candidates_into<R: RngCore + ?Sized>(
        &self,
        candidates: &MergedCandidates,
        k: usize,
        rng: &mut R,
        buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    ) {
        match self {
            PolicyKind::Promotion(policy) => {
                policy.rank_top_k_candidates_into(candidates, k, rng, buffers, out)
            }
            PolicyKind::Popularity | PolicyKind::QualityOracle | PolicyKind::FullyRandom => {
                panic!(
                    "{} does not rank from shard candidates; serve it from the corpus-wide state",
                    self.name()
                )
            }
        }
    }

    /// Whether [`rank_top_k_candidates_into`](Self::rank_top_k_candidates_into)
    /// can answer for this kind — exactly when the policy reads the pool
    /// index: selective promotion's top-`k` is a pure function of the
    /// pool and a non-pool popularity-order prefix, which is precisely
    /// what shard-local retrieval reassembles. Every other kind needs the
    /// corpus-wide state (or, for plain popularity ranking, already has a
    /// cheaper `O(k)` answer in the maintained order).
    pub fn supports_candidate_retrieval(&self) -> bool {
        self.reads_pool_index()
    }

    /// A **full rerank from merged shard state** — the distributed path
    /// that consumes the complete global popularity order reassembled by
    /// [`merge_shard_orders_into`](crate::merge_shard_orders_into) and no
    /// corpus-wide stats snapshot. Plain popularity ranking's answer *is*
    /// the merged order; promotion forwards to
    /// [`RandomizedRankPromotion::rank_merged_into`] (both rules — the
    /// Uniform rule's per-page coins are drawn over `0..order.len()` in
    /// slot order, so the complete merged order is corpus enough). Output
    /// is bit-identical to [`rank_pooled_into`](Self::rank_pooled_into)
    /// over the equivalent corpus-wide view.
    ///
    /// # Panics
    /// Panics for the quality oracle and the fully-random shuffle: their
    /// permutations read per-page state the popularity-ordered merge does
    /// not carry.
    pub fn rank_merged_into<R: RngCore + ?Sized>(
        &self,
        pool: &[usize],
        order: &[usize],
        in_pool: impl Fn(usize) -> bool,
        rng: &mut R,
        buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    ) {
        match self {
            PolicyKind::Popularity => {
                out.clear();
                out.extend_from_slice(order);
            }
            PolicyKind::QualityOracle | PolicyKind::FullyRandom => panic!(
                "{} does not rank from merged shard state; it reads per-page state \
                 the popularity-ordered merge does not carry",
                self.name()
            ),
            PolicyKind::Promotion(policy) => {
                policy.rank_merged_into(pool, order, in_pool, rng, buffers, out)
            }
        }
    }

    /// The top-`k` prefix of [`rank_merged_into`](Self::rank_merged_into)
    /// (same panics); for the supported kinds the output equals the
    /// length-`k` prefix of the full rerank bit for bit.
    #[allow(clippy::too_many_arguments)]
    pub fn rank_top_k_merged_into<R: RngCore + ?Sized>(
        &self,
        pool: &[usize],
        order: &[usize],
        in_pool: impl Fn(usize) -> bool,
        k: usize,
        rng: &mut R,
        buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    ) {
        match self {
            PolicyKind::Popularity => {
                out.clear();
                out.extend_from_slice(&order[..k.min(order.len())]);
            }
            PolicyKind::QualityOracle | PolicyKind::FullyRandom => panic!(
                "{} does not rank from merged shard state; it reads per-page state \
                 the popularity-ordered merge does not carry",
                self.name()
            ),
            PolicyKind::Promotion(policy) => {
                policy.rank_top_k_merged_into(pool, order, in_pool, k, rng, buffers, out)
            }
        }
    }

    /// Whether the pooled paths actually read the pool index: only the
    /// selective promotion rule does. Every other kind either ignores the
    /// pool entirely or (the Uniform rule) must re-draw its per-page
    /// coins, so callers that maintain a [`PoolIndex`](crate::PoolIndex)
    /// per step can skip its repair when this is `false` — the index is
    /// dead state for such a policy.
    pub fn reads_pool_index(&self) -> bool {
        matches!(
            self,
            PolicyKind::Promotion(policy) if policy.config().rule == PromotionRule::Selective
        )
    }

    /// The policy's report name (see [`RankingPolicy::name`]).
    pub fn name(&self) -> String {
        match self {
            PolicyKind::Popularity => PopularityRanking.name(),
            PolicyKind::QualityOracle => QualityOracleRanking.name(),
            PolicyKind::FullyRandom => FullyRandomRanking.name(),
            PolicyKind::Promotion(policy) => RankingPolicy::name(policy),
        }
    }
}

impl RankingPolicy for PolicyKind {
    fn rank_into(
        &self,
        pages: &[PageStats],
        rng: &mut dyn RngCore,
        buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    ) {
        PolicyKind::rank_into(self, pages, rng, buffers, out)
    }

    fn name(&self) -> String {
        PolicyKind::name(self)
    }
}

impl From<PopularityRanking> for PolicyKind {
    fn from(_: PopularityRanking) -> Self {
        PolicyKind::Popularity
    }
}

impl From<QualityOracleRanking> for PolicyKind {
    fn from(_: QualityOracleRanking) -> Self {
        PolicyKind::QualityOracle
    }
}

impl From<FullyRandomRanking> for PolicyKind {
    fn from(_: FullyRandomRanking) -> Self {
        PolicyKind::FullyRandom
    }
}

impl From<RandomizedRankPromotion> for PolicyKind {
    fn from(policy: RandomizedRankPromotion) -> Self {
        PolicyKind::Promotion(policy)
    }
}

impl From<PromotionConfig> for PolicyKind {
    fn from(config: PromotionConfig) -> Self {
        PolicyKind::promotion(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::is_permutation;
    use crate::promotion::PromotionRule;
    use crate::stats::popularity_order;
    use rrp_model::{new_rng, PageId};

    fn pages() -> Vec<PageStats> {
        (0..30)
            .map(|slot| {
                let (pop, aw) = if slot % 3 == 0 {
                    (0.0, 0.0)
                } else {
                    (1.0 - slot as f64 * 0.02, 0.5)
                };
                PageStats::new(slot, PageId::new(slot as u64), pop, aw)
                    .with_age((slot % 7) as u64)
                    .with_quality(1.0 - slot as f64 * 0.01)
            })
            .collect()
    }

    fn all_kinds() -> Vec<PolicyKind> {
        vec![
            PolicyKind::Popularity,
            PolicyKind::QualityOracle,
            PolicyKind::FullyRandom,
            PolicyKind::recommended(2),
            PolicyKind::promotion(PromotionConfig::new(PromotionRule::Uniform, 1, 0.3).unwrap()),
        ]
    }

    #[test]
    fn enum_dispatch_matches_concrete_policies() {
        let ps = pages();
        let concrete: Vec<Box<dyn RankingPolicy>> = vec![
            Box::new(PopularityRanking),
            Box::new(QualityOracleRanking),
            Box::new(FullyRandomRanking),
            Box::new(RandomizedRankPromotion::recommended(2)),
            Box::new(RandomizedRankPromotion::new(
                PromotionConfig::new(PromotionRule::Uniform, 1, 0.3).unwrap(),
            )),
        ];
        for (kind, boxed) in all_kinds().iter().zip(&concrete) {
            for seed in 0..10 {
                let mut rng_a = new_rng(seed);
                let mut rng_b = new_rng(seed);
                assert_eq!(
                    kind.rank(&ps, &mut rng_a),
                    boxed.rank(&ps, &mut rng_b),
                    "{}",
                    kind.name()
                );
            }
            assert_eq!(kind.name(), boxed.name());
        }
    }

    #[test]
    fn presorted_path_matches_plain_path_for_every_kind() {
        let ps = pages();
        let mut sorted: Vec<usize> = (0..ps.len()).collect();
        sorted.sort_unstable_by(|&a, &b| popularity_order(&ps[a], &ps[b]));
        let mut buffers = RankBuffers::new();
        let mut out = Vec::new();
        for kind in all_kinds() {
            for seed in 0..10 {
                let expected = kind.rank(&ps, &mut new_rng(seed));
                kind.rank_presorted_into(&ps, &sorted, &mut new_rng(seed), &mut buffers, &mut out);
                assert_eq!(out, expected, "{}", kind.name());
                assert!(is_permutation(&out, ps.len()));
            }
        }
    }

    #[test]
    fn top_k_matches_the_full_rerank_prefix_for_every_kind() {
        let ps = pages();
        let mut sorted: Vec<usize> = (0..ps.len()).collect();
        sorted.sort_unstable_by(|&a, &b| popularity_order(&ps[a], &ps[b]));
        let mut buffers = RankBuffers::new();
        let mut out = Vec::new();
        for kind in all_kinds() {
            for seed in 0..10 {
                let full = kind.rank(&ps, &mut new_rng(seed));
                for k in [0usize, 1, 2, 5, 10, 30, 64] {
                    kind.rank_top_k_presorted_into(
                        &ps,
                        &sorted,
                        k,
                        &mut new_rng(seed),
                        &mut buffers,
                        &mut out,
                    );
                    assert_eq!(
                        out,
                        full[..k.min(full.len())],
                        "{} with k={k}, seed={seed}",
                        kind.name()
                    );
                }
            }
        }
    }

    #[test]
    fn pooled_dispatch_matches_the_full_rerank_prefix_for_every_kind() {
        let ps = pages();
        let mut sorted: Vec<usize> = (0..ps.len()).collect();
        sorted.sort_unstable_by(|&a, &b| popularity_order(&ps[a], &ps[b]));
        let pool = crate::PoolIndex::build(&ps);
        let view = PoolView::new(&ps, &sorted, &pool);
        let mut buffers = RankBuffers::new();
        let mut out = Vec::new();
        for kind in all_kinds() {
            for seed in 0..10 {
                let full = kind.rank(&ps, &mut new_rng(seed));
                kind.rank_pooled_into(view, &mut new_rng(seed), &mut buffers, &mut out);
                assert_eq!(out, full, "{} pooled full", kind.name());
                for k in [0usize, 1, 2, 5, 10, 30, 64] {
                    kind.rank_top_k_pooled_into(
                        view,
                        k,
                        &mut new_rng(seed),
                        &mut buffers,
                        &mut out,
                    );
                    assert_eq!(
                        out,
                        full[..k.min(full.len())],
                        "{} pooled with k={k}, seed={seed}",
                        kind.name()
                    );
                }
            }
        }
    }

    #[test]
    fn candidate_dispatch_matches_the_full_rerank_prefix_where_supported() {
        use crate::candidates::{merge_shard_candidates_into, MergedCandidates, ShardCandidates};
        use crate::popindex::PopularityIndex;
        use crate::PoolIndex;

        let ps = pages();
        let mut buffers = RankBuffers::new();
        let mut out = Vec::new();
        let mut merged = MergedCandidates::new();
        for shards in [1usize, 2, 4] {
            let mut locals: Vec<Vec<PageStats>> = vec![Vec::new(); shards];
            let mut globals: Vec<Vec<usize>> = vec![Vec::new(); shards];
            for p in &ps {
                let shard = (p.slot * 11 + 2) % shards;
                let mut local = *p;
                local.slot = locals[shard].len();
                locals[shard].push(local);
                globals[shard].push(p.slot);
            }
            for kind in all_kinds()
                .into_iter()
                .filter(PolicyKind::supports_candidate_retrieval)
            {
                for k in [0usize, 1, 2, 5, 10, 30, 64] {
                    let candidates: Vec<ShardCandidates> = (0..shards)
                        .map(|s| {
                            let order = PopularityIndex::build(&locals[s]);
                            let pool = PoolIndex::build(&locals[s]);
                            let mut c = ShardCandidates::new();
                            c.collect(
                                PoolView::new(&locals[s], order.order(), &pool),
                                k,
                                &globals[s],
                            );
                            c
                        })
                        .collect();
                    merge_shard_candidates_into(&candidates, k, &mut merged);
                    for seed in 0..5 {
                        let full = kind.rank(&ps, &mut new_rng(seed));
                        kind.rank_top_k_candidates_into(
                            &merged,
                            k,
                            &mut new_rng(seed),
                            &mut buffers,
                            &mut out,
                        );
                        assert_eq!(
                            out,
                            full[..k.min(full.len())],
                            "{} with {shards} shards, k={k}, seed={seed}",
                            kind.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn candidate_retrieval_support_matches_what_each_kind_reads() {
        assert!(PolicyKind::recommended(2).supports_candidate_retrieval());
        assert!(!PolicyKind::Popularity.supports_candidate_retrieval());
        assert!(!PolicyKind::QualityOracle.supports_candidate_retrieval());
        assert!(!PolicyKind::FullyRandom.supports_candidate_retrieval());
        assert!(!PolicyKind::promotion(
            PromotionConfig::new(PromotionRule::Uniform, 1, 0.3).unwrap()
        )
        .supports_candidate_retrieval());
    }

    #[test]
    fn merged_dispatch_matches_the_full_rerank_where_supported() {
        let ps = pages();
        let mut sorted: Vec<usize> = (0..ps.len()).collect();
        sorted.sort_unstable_by(|&a, &b| popularity_order(&ps[a], &ps[b]));
        let pool = crate::PoolIndex::build(&ps);
        let mut buffers = RankBuffers::new();
        let mut out = Vec::new();
        let supported = [
            PolicyKind::Popularity,
            PolicyKind::recommended(2),
            PolicyKind::promotion(PromotionConfig::new(PromotionRule::Uniform, 1, 0.3).unwrap()),
        ];
        for kind in supported {
            for seed in 0..10 {
                let full = kind.rank(&ps, &mut new_rng(seed));
                kind.rank_merged_into(
                    pool.members(),
                    &sorted,
                    |s| pool.contains(s),
                    &mut new_rng(seed),
                    &mut buffers,
                    &mut out,
                );
                assert_eq!(out, full, "{} merged full, seed={seed}", kind.name());
                for k in [0usize, 1, 2, 5, 10, 30, 64] {
                    kind.rank_top_k_merged_into(
                        pool.members(),
                        &sorted,
                        |s| pool.contains(s),
                        k,
                        &mut new_rng(seed),
                        &mut buffers,
                        &mut out,
                    );
                    assert_eq!(
                        out,
                        full[..k.min(full.len())],
                        "{} merged with k={k}, seed={seed}",
                        kind.name()
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not rank from merged shard state")]
    fn merged_dispatch_rejects_per_page_state_kinds() {
        PolicyKind::QualityOracle.rank_merged_into(
            &[],
            &[],
            |_| false,
            &mut new_rng(0),
            &mut RankBuffers::new(),
            &mut Vec::new(),
        );
    }

    #[test]
    #[should_panic(expected = "does not rank from shard candidates")]
    fn candidate_dispatch_rejects_whole_corpus_kinds() {
        use crate::candidates::MergedCandidates;
        PolicyKind::FullyRandom.rank_top_k_candidates_into(
            &MergedCandidates::new(),
            3,
            &mut new_rng(0),
            &mut RankBuffers::new(),
            &mut Vec::new(),
        );
    }

    #[test]
    fn only_selective_promotion_reads_the_pool_index() {
        assert!(!PolicyKind::Popularity.reads_pool_index());
        assert!(!PolicyKind::QualityOracle.reads_pool_index());
        assert!(!PolicyKind::FullyRandom.reads_pool_index());
        assert!(PolicyKind::recommended(2).reads_pool_index());
        assert!(!PolicyKind::promotion(
            PromotionConfig::new(PromotionRule::Uniform, 1, 0.3).unwrap()
        )
        .reads_pool_index());
    }

    #[test]
    fn from_impls_map_to_the_right_variant() {
        assert_eq!(PolicyKind::from(PopularityRanking), PolicyKind::Popularity);
        assert_eq!(
            PolicyKind::from(QualityOracleRanking),
            PolicyKind::QualityOracle
        );
        assert_eq!(
            PolicyKind::from(FullyRandomRanking),
            PolicyKind::FullyRandom
        );
        let config = PromotionConfig::recommended(2);
        assert_eq!(
            PolicyKind::from(RandomizedRankPromotion::new(config)),
            PolicyKind::promotion(config)
        );
        assert_eq!(PolicyKind::from(config), PolicyKind::recommended(2));
    }

    #[test]
    fn kind_is_copy_and_small() {
        let kind = PolicyKind::recommended(1);
        let copy = kind;
        assert_eq!(kind, copy);
        assert!(std::mem::size_of::<PolicyKind>() <= 40);
    }
}
