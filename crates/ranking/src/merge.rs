//! The randomized merge of the deterministic list and the promotion pool
//! (the two-list procedure of Section 4).
//!
//! Given
//!
//! * `L_d` — the remaining pages ranked deterministically by descending
//!   popularity, and
//! * `L_p` — the promotion pool, already shuffled into a random order,
//!
//! the final result list `L` is built as follows:
//!
//! 1. the top `k − 1` elements of `L_d` are copied to the front of `L`
//!    (these ranks are protected);
//! 2. each remaining position `i = k, k+1, …, n` is filled by flipping a
//!    biased coin: with probability `r` the next element is taken from the
//!    top of `L_p`, otherwise from the top of `L_d`; once either list is
//!    exhausted the rest comes from the other.

use rand::Rng;
use rand::RngCore;

/// Merge `deterministic` (`L_d`) and `promoted` (`L_p`) into the final
/// result list, protecting the first `start_rank − 1` deterministic entries
/// and using promotion probability `degree` (`r`).
///
/// The two input lists must be disjoint; together they contain every page
/// exactly once, and so does the output.
///
/// # Panics
/// Panics (in debug builds) if `start_rank == 0` or `degree ∉ [0, 1]`; these
/// are validated upstream by `PromotionConfig::validate`.
pub fn merge_promoted(
    deterministic: &[usize],
    promoted: &[usize],
    start_rank: usize,
    degree: f64,
    rng: &mut dyn RngCore,
) -> Vec<usize> {
    let mut result = Vec::with_capacity(deterministic.len() + promoted.len());
    merge_promoted_into(
        deterministic,
        promoted,
        start_rank,
        degree,
        rng,
        &mut result,
    );
    result
}

/// [`merge_promoted`] writing into a caller-supplied vector (cleared first)
/// instead of allocating — the allocation-free primitive behind
/// [`RankingPolicy::rank_into`](crate::RankingPolicy::rank_into).
///
/// Consumes exactly the same RNG draws as [`merge_promoted`], so the two
/// produce byte-identical output from the same generator state. Generic
/// over the RNG so concrete generators inline on the hot path.
pub fn merge_promoted_into<R: RngCore + ?Sized>(
    deterministic: &[usize],
    promoted: &[usize],
    start_rank: usize,
    degree: f64,
    rng: &mut R,
    result: &mut Vec<usize>,
) {
    debug_assert!(start_rank >= 1, "start rank is 1-based");
    debug_assert!((0.0..=1.0).contains(&degree), "degree must be in [0, 1]");

    let total = deterministic.len() + promoted.len();
    result.clear();
    result.reserve(total);

    let protected = (start_rank - 1).min(deterministic.len());
    let mut d_iter = deterministic.iter().copied();
    let mut p_iter = promoted.iter().copied();

    // Step 1: protected prefix straight from L_d, order preserved.
    result.extend(d_iter.by_ref().take(protected));

    // Step 2: coin-flip merge for the remaining positions. Once either
    // list is exhausted no more coins are flipped, so the remaining tail
    // is appended in bulk — same output and RNG consumption as flipping
    // element by element, minus the per-element bookkeeping.
    let mut d_next = d_iter.next();
    let mut p_next = p_iter.next();
    loop {
        match (d_next, p_next) {
            (Some(d), Some(p)) => {
                if rng.gen::<f64>() < degree {
                    result.push(p);
                    p_next = p_iter.next();
                } else {
                    result.push(d);
                    d_next = d_iter.next();
                }
            }
            (Some(d), None) => {
                result.push(d);
                result.extend(d_iter);
                break;
            }
            (None, Some(p)) => {
                result.push(p);
                result.extend(p_iter);
                break;
            }
            (None, None) => break,
        }
    }
    debug_assert_eq!(result.len(), total);
}

/// The top-`k` prefix of [`merge_promoted`], stopping the coin-flip merge
/// as soon as `k` ranks have been emitted: the paper's rank-biased
/// attention model means real queries consume only the top of the ranking,
/// so serving tiers ask for the first page of results, not all `n`.
///
/// Writes exactly `min(k, total)` entries into `result` (cleared first),
/// where `total` is the combined length of the two *full* lists, and those
/// entries equal the length-`k` prefix of the full merge bit for bit: the
/// coin for each emitted position is drawn under exactly the same
/// conditions as in [`merge_promoted_into`], and positions past `k` draw
/// nothing.
///
/// `deterministic` may be truncated: because every emitted position
/// consumes exactly one element, at most `k` elements of `L_d` are ever
/// read, so passing only the first `min(k, full_length)` entries yields the
/// same output as passing the full list. (If the slice runs out before `k`
/// positions are emitted, it must be because the full list ran out too —
/// a shorter slice would violate the contract.) `promoted` must be the
/// complete pool: its length is observable in the prefix through the
/// "pool exhausted" branch, and the caller has to shuffle the whole pool
/// anyway to reproduce the full merge's randomization.
pub fn merge_promoted_top_k_into<R: RngCore + ?Sized>(
    deterministic: &[usize],
    promoted: &[usize],
    start_rank: usize,
    degree: f64,
    k: usize,
    rng: &mut R,
    result: &mut Vec<usize>,
) {
    debug_assert!(start_rank >= 1, "start rank is 1-based");
    debug_assert!((0.0..=1.0).contains(&degree), "degree must be in [0, 1]");

    result.clear();
    result.reserve(k.min(deterministic.len() + promoted.len()));

    let protected = (start_rank - 1).min(deterministic.len()).min(k);
    let mut d_iter = deterministic.iter().copied();
    let mut p_iter = promoted.iter().copied();

    // Step 1: protected prefix straight from L_d, order preserved.
    result.extend(d_iter.by_ref().take(protected));

    // Step 2: coin-flip merge, stopping once `k` ranks are emitted.
    let mut d_next = d_iter.next();
    let mut p_next = p_iter.next();
    while result.len() < k {
        match (d_next, p_next) {
            (Some(d), Some(p)) => {
                if rng.gen::<f64>() < degree {
                    result.push(p);
                    p_next = p_iter.next();
                } else {
                    result.push(d);
                    d_next = d_iter.next();
                }
            }
            (Some(d), None) => {
                result.push(d);
                d_next = d_iter.next();
            }
            (None, Some(p)) => {
                result.push(p);
                p_next = p_iter.next();
            }
            (None, None) => break,
        }
    }
    debug_assert!(result.len() <= k);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrp_model::new_rng;
    use std::collections::HashSet;

    #[test]
    fn output_contains_every_input_exactly_once() {
        let mut rng = new_rng(3);
        let ld: Vec<usize> = (0..50).collect();
        let lp: Vec<usize> = (50..80).collect();
        let merged = merge_promoted(&ld, &lp, 2, 0.3, &mut rng);
        assert_eq!(merged.len(), 80);
        let set: HashSet<usize> = merged.iter().copied().collect();
        assert_eq!(set.len(), 80);
    }

    #[test]
    fn zero_degree_reproduces_deterministic_order_then_pool() {
        let mut rng = new_rng(1);
        let ld = vec![9, 8, 7];
        let lp = vec![1, 2];
        let merged = merge_promoted(&ld, &lp, 1, 0.0, &mut rng);
        // With r = 0 the deterministic list is exhausted first, then the
        // pool is appended.
        assert_eq!(merged, vec![9, 8, 7, 1, 2]);
    }

    #[test]
    fn full_degree_puts_pool_first_after_protected_prefix() {
        let mut rng = new_rng(1);
        let ld = vec![9, 8, 7];
        let lp = vec![1, 2];
        let merged = merge_promoted(&ld, &lp, 2, 1.0, &mut rng);
        // Rank 1 is protected (9), then the whole pool, then the rest of L_d.
        assert_eq!(merged, vec![9, 1, 2, 8, 7]);
    }

    #[test]
    fn protected_prefix_is_never_displaced() {
        let ld: Vec<usize> = (0..20).collect();
        let lp: Vec<usize> = (20..40).collect();
        for seed in 0..50 {
            let mut rng = new_rng(seed);
            let merged = merge_promoted(&ld, &lp, 6, 0.9, &mut rng);
            assert_eq!(&merged[..5], &[0, 1, 2, 3, 4], "top k-1 must be stable");
        }
    }

    #[test]
    fn relative_order_within_each_list_is_preserved() {
        let ld = vec![10, 11, 12, 13, 14];
        let lp = vec![20, 21, 22];
        let mut rng = new_rng(9);
        let merged = merge_promoted(&ld, &lp, 1, 0.5, &mut rng);
        let d_positions: Vec<usize> = ld
            .iter()
            .map(|x| merged.iter().position(|y| y == x).unwrap())
            .collect();
        let p_positions: Vec<usize> = lp
            .iter()
            .map(|x| merged.iter().position(|y| y == x).unwrap())
            .collect();
        assert!(d_positions.windows(2).all(|w| w[0] < w[1]));
        assert!(p_positions.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn empty_pool_is_identity() {
        let ld = vec![3, 1, 4, 1 + 4, 9];
        let mut rng = new_rng(0);
        let merged = merge_promoted(&ld, &[], 1, 0.8, &mut rng);
        assert_eq!(merged, ld);
    }

    #[test]
    fn empty_deterministic_list_returns_pool() {
        let lp = vec![5, 6, 7];
        let mut rng = new_rng(0);
        let merged = merge_promoted(&[], &lp, 3, 0.2, &mut rng);
        assert_eq!(merged, lp);
    }

    #[test]
    fn both_empty_gives_empty() {
        let mut rng = new_rng(0);
        assert!(merge_promoted(&[], &[], 1, 0.5, &mut rng).is_empty());
    }

    #[test]
    fn protected_prefix_longer_than_list_is_harmless() {
        let ld = vec![1, 2];
        let lp = vec![3];
        let mut rng = new_rng(0);
        let merged = merge_promoted(&ld, &lp, 10, 0.5, &mut rng);
        assert_eq!(merged, vec![1, 2, 3]);
    }

    #[test]
    fn into_variant_matches_allocating_variant_and_reuses_storage() {
        let ld: Vec<usize> = (0..40).collect();
        let lp: Vec<usize> = (40..60).collect();
        let mut out = Vec::new();
        for seed in 0..20 {
            let mut rng_a = new_rng(seed);
            let mut rng_b = new_rng(seed);
            let expected = merge_promoted(&ld, &lp, 3, 0.4, &mut rng_a);
            merge_promoted_into(&ld, &lp, 3, 0.4, &mut rng_b, &mut out);
            assert_eq!(out, expected);
        }
        // The output vector keeps its capacity across calls.
        assert!(out.capacity() >= 60);
    }

    #[test]
    fn top_k_is_the_prefix_of_the_full_merge_for_every_k() {
        let ld: Vec<usize> = (0..30).collect();
        let lp: Vec<usize> = (30..42).collect();
        let mut out = Vec::new();
        for seed in 0..20 {
            let full = merge_promoted(&ld, &lp, 3, 0.4, &mut new_rng(seed));
            for k in [0usize, 1, 2, 3, 7, 30, 42, 100] {
                merge_promoted_top_k_into(&ld, &lp, 3, 0.4, k, &mut new_rng(seed), &mut out);
                assert_eq!(out, full[..k.min(full.len())], "seed {seed}, k {k}");
            }
        }
    }

    #[test]
    fn top_k_accepts_a_truncated_deterministic_list() {
        let ld: Vec<usize> = (0..100).collect();
        let lp: Vec<usize> = (100..120).collect();
        for seed in 0..20 {
            for k in [1usize, 5, 10, 50] {
                let mut full = Vec::new();
                merge_promoted_top_k_into(&ld, &lp, 2, 0.5, k, &mut new_rng(seed), &mut full);
                let mut truncated = Vec::new();
                merge_promoted_top_k_into(
                    &ld[..k.min(ld.len())],
                    &lp,
                    2,
                    0.5,
                    k,
                    &mut new_rng(seed),
                    &mut truncated,
                );
                assert_eq!(truncated, full, "seed {seed}, k {k}");
            }
        }
    }

    #[test]
    fn top_k_with_exhausted_lists_stops_early() {
        let mut rng = new_rng(4);
        let mut out = Vec::new();
        merge_promoted_top_k_into(&[1, 2], &[9], 1, 0.5, 10, &mut rng, &mut out);
        assert_eq!(out.len(), 3, "only three elements exist");
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 9]);
        merge_promoted_top_k_into(&[], &[], 1, 0.5, 4, &mut rng, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn promotion_fraction_roughly_matches_degree() {
        // With long lists and r = 0.2, about 20% of the first positions
        // after the protected prefix should come from the pool.
        let ld: Vec<usize> = (0..10_000).collect();
        let lp: Vec<usize> = (10_000..20_000).collect();
        let mut rng = new_rng(123);
        let merged = merge_promoted(&ld, &lp, 1, 0.2, &mut rng);
        let from_pool = merged[..1_000].iter().filter(|&&x| x >= 10_000).count();
        let fraction = from_pool as f64 / 1_000.0;
        assert!(
            (fraction - 0.2).abs() < 0.05,
            "observed promotion fraction {fraction}, expected ≈ 0.2"
        );
    }
}
