//! The randomized rank-promotion policy (Section 4 of the paper).
//!
//! [`RandomizedRankPromotion`] combines the pieces defined elsewhere in this
//! crate:
//!
//! 1. select the promotion pool `P_p` according to the configured
//!    [`PromotionRule`] (uniform with probability `r`, or all
//!    zero-awareness pages);
//! 2. shuffle the pool into a random order `L_p`;
//! 3. rank the remaining pages deterministically by descending popularity
//!    into `L_d`;
//! 4. merge the two lists with the coin-flip procedure of
//!    [`merge_promoted`](crate::merge::merge_promoted), protecting the top
//!    `k − 1` deterministic results.

use crate::buffers::RankBuffers;
use crate::lazyshuffle::{merge_promoted_top_k_lazy_into, EngineVersion, LazyShuffle};
use crate::merge::{merge_promoted_into, merge_promoted_top_k_into};
use crate::policy::RankingPolicy;
use crate::poolindex::PoolView;
use crate::promotion::{PromotionConfig, PromotionRule};
use crate::stats::{popularity_order, PageStats};
use rand::seq::SliceRandom;
use rand::{Rng, RngCore};

/// The paper's randomized rank-promotion ranking policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomizedRankPromotion {
    config: PromotionConfig,
    version: EngineVersion,
}

impl RandomizedRankPromotion {
    /// Build the policy from a validated configuration (engine v1, the
    /// golden-pinned default stream).
    pub fn new(config: PromotionConfig) -> Self {
        RandomizedRankPromotion {
            config,
            version: EngineVersion::V1,
        }
    }

    /// The paper's recommended recipe: selective promotion, `r = 0.1`,
    /// starting at rank `start_rank` (1 or 2).
    pub fn recommended(start_rank: usize) -> Self {
        RandomizedRankPromotion::new(PromotionConfig::recommended(start_rank))
    }

    /// Opt into an explicit [`EngineVersion`]. Under
    /// [`V2`](EngineVersion::V2) the Selective top-k paths evaluate the
    /// pool shuffle lazily (at most `k` swap draws per query, zero
    /// `O(pool)` work) and therefore draw a different — distributionally
    /// equivalent — RNG stream than v1. Full reranks and the Uniform rule
    /// are bit-identical across versions.
    pub fn with_version(mut self, version: EngineVersion) -> Self {
        self.version = version;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> PromotionConfig {
        self.config
    }

    /// The engine version in use.
    pub fn version(&self) -> EngineVersion {
        self.version
    }

    /// Whether this policy serves top-k through the v2 lazy shuffle: the
    /// lazy stream exists only where the pool is consumed front-first
    /// against a maintained membership set, i.e. the Selective rule (the
    /// Uniform rule's per-page coins already dominate and stay v1).
    fn lazy_top_k(&self) -> bool {
        self.version == EngineVersion::V2 && self.config.rule == PromotionRule::Selective
    }

    /// Split the input into (promotion pool, deterministic remainder),
    /// returning indices into `pages`. Test-only convenience over
    /// [`split_pool_into`](Self::split_pool_into).
    #[cfg(test)]
    fn split_pool(&self, pages: &[PageStats], rng: &mut dyn RngCore) -> (Vec<usize>, Vec<usize>) {
        let mut pool = Vec::new();
        let mut rest = Vec::new();
        self.split_pool_into(pages, rng, &mut pool, &mut rest);
        (pool, rest)
    }

    /// [`split_pool`](Self::split_pool) writing into caller-supplied vectors
    /// (cleared first). The Uniform rule draws one coin per page, in input
    /// order; the Selective rule draws nothing.
    fn split_pool_into<R: RngCore + ?Sized>(
        &self,
        pages: &[PageStats],
        rng: &mut R,
        pool: &mut Vec<usize>,
        rest: &mut Vec<usize>,
    ) {
        pool.clear();
        rest.clear();
        match self.config.rule {
            PromotionRule::Selective => {
                for (i, p) in pages.iter().enumerate() {
                    if p.is_unexplored() {
                        pool.push(i);
                    } else {
                        rest.push(i);
                    }
                }
            }
            PromotionRule::Uniform => {
                for (i, _) in pages.iter().enumerate() {
                    if rng.gen::<f64>() < self.config.degree {
                        pool.push(i);
                    } else {
                        rest.push(i);
                    }
                }
            }
        }
    }

    /// Rank when the caller already maintains the popularity order of all
    /// pages — the simulator's incremental index or a batch server's
    /// once-per-batch sort — eliminating the per-call `O(n log n)` sort.
    ///
    /// Requirements (checked by debug assertions):
    ///
    /// * `pages[i].slot == i` for every `i` (dense slot indexing);
    /// * `sorted` is a permutation of `0..n` ordered by
    ///   [`popularity_order`].
    ///
    /// Consumes exactly the same RNG draws as
    /// [`rank_into`](RankingPolicy::rank_into) (the pool split and coin-flip
    /// merge happen in the same order), so the output is byte-identical.
    ///
    /// Generic over the RNG so that concrete callers (the simulator day
    /// loop, the batch server) get a statically dispatched, inlinable
    /// generator on the hottest loop in the workspace; trait objects still
    /// work (`R = dyn RngCore`).
    pub fn rank_presorted_into<R: RngCore + ?Sized>(
        &self,
        pages: &[PageStats],
        sorted: &[usize],
        rng: &mut R,
        buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    ) {
        self.build_presorted_lists(pages, sorted, pages.len(), rng, buffers);
        merge_promoted_into(
            &buffers.rest,
            &buffers.pool,
            self.config.start_rank,
            self.config.degree,
            rng,
            out,
        );
    }

    /// The shared front half of the scanning presorted paths: build `L_p`
    /// (`buffers.pool`, shuffled) and `L_d` (`buffers.rest`, truncated to
    /// `rest_limit` entries). One copy serves both the full and top-k
    /// paths, and the `L_d` filter + pool shuffle tail is shared with the
    /// pooled builder through [`fill_rest_and_shuffle`] — the paths can
    /// never drift apart in their RNG draws, which the top-k ≡
    /// full-prefix and pooled ≡ scanning invariants depend on.
    ///
    /// Pool membership is recorded in input (slot) order — the same
    /// iteration, and for Uniform the same coin flips, as
    /// `split_pool_into`. Because `pages[i].slot == i`, pool entries are
    /// already slot indices. Both rules record membership in the dense
    /// per-slot mask with one sequential pass, so the `L_d` filter reads an
    /// L1-resident bitmap instead of gathering from the much larger stats
    /// array in popularity order; the filter reads straight off the
    /// precomputed index instead of sorting, and stops at `rest_limit`
    /// matches (only the first `k` non-pool slots can surface in `k`
    /// ranks). The pool is always built and shuffled in full: its size and
    /// shuffle order are observable within any output prefix.
    fn build_presorted_lists<R: RngCore + ?Sized>(
        &self,
        pages: &[PageStats],
        sorted: &[usize],
        rest_limit: usize,
        rng: &mut R,
        buffers: &mut RankBuffers,
    ) {
        debug_assert!(pages.iter().enumerate().all(|(i, p)| p.slot == i));
        debug_assert_eq!(sorted.len(), pages.len());
        debug_assert!(sorted
            .windows(2)
            .all(|w| popularity_order(&pages[w[0]], &pages[w[1]]).is_lt()));

        buffers.reset_mask(pages.len());
        let RankBuffers {
            pool, rest, mask, ..
        } = buffers;
        pool.clear();
        match self.config.rule {
            PromotionRule::Selective => {
                for p in pages.iter() {
                    if p.is_unexplored() {
                        mask[p.slot] = true;
                        pool.push(p.slot);
                    }
                }
            }
            PromotionRule::Uniform => {
                for p in pages.iter() {
                    if rng.gen::<f64>() < self.config.degree {
                        mask[p.slot] = true;
                        pool.push(p.slot);
                    }
                }
            }
        }
        fill_rest_and_shuffle(sorted, |s| mask[s], rest_limit, rng, pool, rest);
    }

    /// The pooled front half: build `L_p` and `L_d` from a *persistent*
    /// [`PoolIndex`](crate::PoolIndex) instead of scanning all `n` pages and resetting the
    /// membership mask per query.
    ///
    /// For the Selective rule the pool is copied straight off
    /// [`PoolIndex::members`](crate::PoolIndex::members) — ascending slot order, exactly the order the
    /// per-page scan would have pushed — and the deterministic remainder
    /// filters `sorted` through the index's maintained membership mask,
    /// stopping after `rest_limit` matches: `O(pool + rest_limit)` total,
    /// with no per-corpus pass and no mask reset. The Uniform rule *must*
    /// still draw one coin per page in slot order (the coins are part of
    /// the observable RNG stream), so it falls back to
    /// [`build_presorted_lists`](Self::build_presorted_lists) and ignores
    /// the index. Either way the RNG draws are identical to the scanning
    /// path, so outputs stay byte-identical.
    fn build_pooled_lists<R: RngCore + ?Sized>(
        &self,
        view: PoolView<'_>,
        rest_limit: usize,
        rng: &mut R,
        buffers: &mut RankBuffers,
    ) {
        let PoolView {
            pages,
            sorted,
            pool,
        } = view;
        if self.config.rule == PromotionRule::Uniform {
            self.build_presorted_lists(pages, sorted, rest_limit, rng, buffers);
            return;
        }
        debug_assert!(pages.iter().enumerate().all(|(i, p)| p.slot == i));
        debug_assert_eq!(sorted.len(), pages.len());
        debug_assert!(sorted
            .windows(2)
            .all(|w| popularity_order(&pages[w[0]], &pages[w[1]]).is_lt()));
        debug_assert!(
            pool.is_consistent(pages),
            "the pool index must match a fresh is_unexplored scan"
        );

        let RankBuffers {
            pool: pool_buf,
            rest,
            ..
        } = buffers;
        pool_buf.clear();
        pool_buf.extend_from_slice(pool.members());
        fill_rest_and_shuffle(
            sorted,
            |s| pool.contains(s),
            rest_limit,
            rng,
            pool_buf,
            rest,
        );
    }

    /// [`rank_presorted_into`](Self::rank_presorted_into) against a
    /// persistent pool: the [`PoolView`] bundles the stats snapshot, its
    /// popularity order, and a [`PoolIndex`](crate::PoolIndex) consistent
    /// with the stats (checked by a debug assertion). Output and RNG
    /// consumption are byte-identical to the scanning path; the Selective
    /// rule skips the per-query `O(n)` pool scan and mask reset entirely.
    pub fn rank_pooled_into<R: RngCore + ?Sized>(
        &self,
        view: PoolView<'_>,
        rng: &mut R,
        buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    ) {
        self.build_pooled_lists(view, view.pages.len(), rng, buffers);
        merge_promoted_into(
            &buffers.rest,
            &buffers.pool,
            self.config.start_rank,
            self.config.degree,
            rng,
            out,
        );
    }

    /// The top-`k` prefix of [`rank_pooled_into`](Self::rank_pooled_into):
    /// the truly `O(pool + k)` query path. The Selective rule copies the
    /// pool off the index, filters at most `pool + k` entries of `sorted`,
    /// shuffles the pool, and stops the coin-flip merge at rank `k` —
    /// nothing per-corpus remains. Output equals the length-`k` prefix of
    /// the full rerank bit for bit.
    ///
    /// Under [`EngineVersion::V2`] the Selective rule goes further and is
    /// `O(k)` outright: the pool is neither copied nor shuffled — a
    /// [`LazyShuffle`] over the index's members draws one swap index per
    /// pool entry the merge actually consumes. The v2 output is *not* the
    /// full-rerank prefix (the lazy stream is its own, separately
    /// golden-pinned), but its promoted-slot distribution is equivalent.
    pub fn rank_top_k_pooled_into<R: RngCore + ?Sized>(
        &self,
        view: PoolView<'_>,
        k: usize,
        rng: &mut R,
        buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    ) {
        if self.lazy_top_k() {
            let PoolView {
                pages,
                sorted,
                pool,
            } = view;
            debug_assert!(pages.iter().enumerate().all(|(i, p)| p.slot == i));
            debug_assert_eq!(sorted.len(), pages.len());
            debug_assert!(
                pool.is_consistent(pages),
                "the pool index must match a fresh is_unexplored scan"
            );
            self.rank_top_k_lazy(
                pool.members(),
                sorted,
                |s| pool.contains(s),
                k,
                rng,
                buffers,
                out,
            );
            return;
        }
        self.build_pooled_lists(view, k, rng, buffers);
        merge_promoted_top_k_into(
            &buffers.rest,
            &buffers.pool,
            self.config.start_rank,
            self.config.degree,
            k,
            rng,
            out,
        );
    }

    /// The shared v2 back half: fill `L_d` with the first `k` non-pool
    /// entries of `order` (no RNG draws — identical filter to v1) and run
    /// the lazy coin-flip merge over the unshuffled pool. Exactly one copy
    /// of this sequence serves the pooled, retrieved and merged-order v2
    /// routes, so they can never drift apart in their draws.
    #[allow(clippy::too_many_arguments)]
    fn rank_top_k_lazy<R: RngCore + ?Sized>(
        &self,
        pool: &[usize],
        order: &[usize],
        in_pool: impl Fn(usize) -> bool,
        k: usize,
        rng: &mut R,
        buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    ) {
        let draws = {
            let RankBuffers { rest, overlay, .. } = &mut *buffers;
            rest.clear();
            rest.extend(order.iter().copied().filter(|&s| !in_pool(s)).take(k));
            let mut lazy = LazyShuffle::new(pool, overlay);
            merge_promoted_top_k_lazy_into(
                rest,
                &mut lazy,
                self.config.start_rank,
                self.config.degree,
                k,
                rng,
                out,
            );
            lazy.draws()
        };
        buffers.count_pool_draws(draws);
    }

    /// The top-`k` prefix of the full rerank, computed from **merged shard
    /// candidates** instead of any corpus-wide structure — the serving
    /// tier's shard-retrieval path. `candidates` must come from
    /// [`merge_shard_candidates_into`](crate::merge_shard_candidates_into)
    /// with a limit of at least
    /// [`candidate_prefix_len(k)`](PromotionConfig::candidate_prefix_len):
    /// its pool is then byte-identical (content *and* pre-shuffle order)
    /// to the global [`PoolIndex`](crate::PoolIndex) members and its rest
    /// prefix to the first `k` non-pool entries of the global popularity
    /// order, so the shuffle and every merge coin consume exactly the RNG
    /// draws of [`rank_top_k_pooled_into`](Self::rank_top_k_pooled_into)
    /// — the output (global slots) is bit-identical to the length-`k`
    /// prefix of the full corpus-wide rerank.
    ///
    /// # Panics
    /// Panics for the Uniform rule: its per-page coins are part of the
    /// observable RNG stream and require a pass over the whole corpus, so
    /// no candidate set short of "everything" can reproduce them. Callers
    /// gate on [`PolicyKind::reads_pool_index`](crate::PolicyKind::reads_pool_index)
    /// (or equivalent) before retrieving candidates.
    pub fn rank_top_k_candidates_into<R: RngCore + ?Sized>(
        &self,
        candidates: &crate::MergedCandidates,
        k: usize,
        rng: &mut R,
        buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    ) {
        let RankBuffers { rest, .. } = buffers;
        rest.clear();
        rest.extend(candidates.rest().iter().take(k).map(|p| p.slot));
        let rest = std::mem::take(rest);
        self.rank_top_k_retrieved_into(candidates.pool(), &rest, k, rng, buffers, out);
        buffers.rest = rest;
    }

    /// The primitive under
    /// [`rank_top_k_candidates_into`](Self::rank_top_k_candidates_into):
    /// rank from an already-assembled global pool (pre-shuffle order,
    /// i.e. ascending slot) and non-pool order prefix (at least
    /// `min(k, available)` slots, best rank first). A serving tier whose
    /// pool half is *maintained* rather than re-merged per query — pool
    /// membership only moves on mutation — feeds it here directly and
    /// pays `O(pool)` only for the mandatory copy-and-shuffle. There is
    /// exactly one copy of this draw sequence, shared by the candidate
    /// path and the goldens pinning it, so the two can never diverge.
    ///
    /// Under [`EngineVersion::V2`] even the copy-and-shuffle disappears:
    /// the lazy shuffle draws one swap index per consumed pool entry, so
    /// the whole query is `O(k)` and consumes the same stream as the v2
    /// pooled path.
    ///
    /// # Panics
    /// Panics for the Uniform rule: its per-page coins are part of the
    /// observable RNG stream and require a pass over the whole corpus, so
    /// no candidate set short of "everything" can reproduce them. Callers
    /// gate on [`PolicyKind::reads_pool_index`](crate::PolicyKind::reads_pool_index)
    /// (or equivalent) before retrieving candidates.
    pub fn rank_top_k_retrieved_into<R: RngCore + ?Sized>(
        &self,
        pool: &[usize],
        rest: &[usize],
        k: usize,
        rng: &mut R,
        buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    ) {
        assert_eq!(
            self.config.rule,
            PromotionRule::Selective,
            "the Uniform rule draws per-page coins and cannot rank from shard candidates"
        );
        if self.version == EngineVersion::V2 {
            // `rest` is already retrieved and pool-free; the shared v2
            // back half only truncates it to `k`.
            self.rank_top_k_lazy(pool, rest, |_| false, k, rng, buffers, out);
            return;
        }
        let RankBuffers { pool: pool_buf, .. } = buffers;
        pool_buf.clear();
        pool_buf.extend_from_slice(pool);
        pool_buf.shuffle(rng);
        merge_promoted_top_k_into(
            &rest[..k.min(rest.len())],
            pool_buf,
            self.config.start_rank,
            self.config.degree,
            k,
            rng,
            out,
        );
    }

    /// The front half of the merged-order paths: build `L_p` and `L_d`
    /// from a reassembled **global popularity order** (`order`, complete —
    /// e.g. from
    /// [`merge_shard_orders_into`](crate::merge_shard_orders_into)) with
    /// no corpus-wide stats snapshot in sight.
    ///
    /// The Selective rule copies `pool` (the global pool in pre-shuffle,
    /// ascending-slot order) and filters `order` through `in_pool`,
    /// exactly as [`build_pooled_lists`](Self::build_pooled_lists) does
    /// against a corpus-wide [`PoolIndex`](crate::PoolIndex). The Uniform
    /// rule ignores `pool` and `in_pool` entirely (`in_pool` is never
    /// invoked): its mandatory per-page coins are drawn in slot order —
    /// one per slot `0..order.len()`, the same draws as the scanning
    /// path's pass over `pages` — into the membership mask, and `order` is
    /// filtered through that. Either way the RNG draws are identical to
    /// the corpus-wide paths, so outputs stay byte-identical.
    fn build_merged_lists<R: RngCore + ?Sized>(
        &self,
        pool: &[usize],
        order: &[usize],
        in_pool: impl Fn(usize) -> bool,
        rest_limit: usize,
        rng: &mut R,
        buffers: &mut RankBuffers,
    ) {
        match self.config.rule {
            PromotionRule::Selective => {
                debug_assert!(pool.windows(2).all(|w| w[0] < w[1]));
                let RankBuffers {
                    pool: pool_buf,
                    rest,
                    ..
                } = buffers;
                pool_buf.clear();
                pool_buf.extend_from_slice(pool);
                fill_rest_and_shuffle(order, in_pool, rest_limit, rng, pool_buf, rest);
            }
            PromotionRule::Uniform => {
                buffers.reset_mask(order.len());
                let RankBuffers {
                    pool: pool_buf,
                    rest,
                    mask,
                    ..
                } = buffers;
                pool_buf.clear();
                for (slot, promoted) in mask.iter_mut().enumerate().take(order.len()) {
                    if rng.gen::<f64>() < self.config.degree {
                        *promoted = true;
                        pool_buf.push(slot);
                    }
                }
                fill_rest_and_shuffle(order, |s| mask[s], rest_limit, rng, pool_buf, rest);
            }
        }
    }

    /// A **full rerank from merged shard state**: rank against the
    /// complete global popularity order reassembled by the deterministic
    /// shard merge, with no corpus-wide stats snapshot, order, or pool
    /// index anywhere. `order` must be the complete merged popularity
    /// order (global slots); `pool` the global pool in pre-shuffle
    /// (ascending-slot) order and `in_pool` its membership predicate —
    /// both read only by the Selective rule, whose pool a sharded cache
    /// tier maintains across queries. The Uniform rule draws its per-page
    /// coins over `0..order.len()` in slot order, exactly the scanning
    /// path's draws. Output (global slots) is bit-identical to
    /// [`rank_pooled_into`](Self::rank_pooled_into) over the equivalent
    /// corpus-wide view.
    pub fn rank_merged_into<R: RngCore + ?Sized>(
        &self,
        pool: &[usize],
        order: &[usize],
        in_pool: impl Fn(usize) -> bool,
        rng: &mut R,
        buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    ) {
        self.build_merged_lists(pool, order, in_pool, order.len(), rng, buffers);
        merge_promoted_into(
            &buffers.rest,
            &buffers.pool,
            self.config.start_rank,
            self.config.degree,
            rng,
            out,
        );
    }

    /// The top-`k` prefix of [`rank_merged_into`](Self::rank_merged_into):
    /// `L_d` is materialised only up to its first `k` entries and the
    /// coin-flip merge stops at rank `k`. Unlike the candidate-retrieval
    /// path this serves the Uniform rule too (the complete merged order is
    /// enough corpus for its per-page coins); output equals the length-`k`
    /// prefix of the full rerank bit for bit. Under [`EngineVersion::V2`]
    /// the Selective rule draws the lazy `O(k)` stream instead (its own
    /// golden set; the Uniform rule stays v1-identical).
    #[allow(clippy::too_many_arguments)]
    pub fn rank_top_k_merged_into<R: RngCore + ?Sized>(
        &self,
        pool: &[usize],
        order: &[usize],
        in_pool: impl Fn(usize) -> bool,
        k: usize,
        rng: &mut R,
        buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    ) {
        if self.lazy_top_k() {
            debug_assert!(pool.windows(2).all(|w| w[0] < w[1]));
            self.rank_top_k_lazy(pool, order, in_pool, k, rng, buffers, out);
            return;
        }
        self.build_merged_lists(pool, order, in_pool, k, rng, buffers);
        merge_promoted_top_k_into(
            &buffers.rest,
            &buffers.pool,
            self.config.start_rank,
            self.config.degree,
            k,
            rng,
            out,
        );
    }

    /// The top-`k` prefix of
    /// [`rank_presorted_into`](Self::rank_presorted_into), emitting only the
    /// first `k` ranks and stopping the coin-flip merge early.
    ///
    /// Same requirements as `rank_presorted_into` (dense slots, `sorted` in
    /// [`popularity_order`]); the output equals the length-`k` prefix of the
    /// full rerank bit for bit (`min(k, n)` entries). The pool split and the
    /// pool shuffle still run in full — their RNG draws shape the prefix —
    /// but `L_d` is materialised only up to its first `k` entries (at most
    /// `k` deterministic elements can surface in `k` ranks) and the merge
    /// stops at rank `k`, so the per-query cost past the split drops from
    /// `O(n)` to `O(pool + k)`.
    pub fn rank_top_k_presorted_into<R: RngCore + ?Sized>(
        &self,
        pages: &[PageStats],
        sorted: &[usize],
        k: usize,
        rng: &mut R,
        buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    ) {
        self.build_presorted_lists(pages, sorted, k, rng, buffers);
        merge_promoted_top_k_into(
            &buffers.rest,
            &buffers.pool,
            self.config.start_rank,
            self.config.degree,
            k,
            rng,
            out,
        );
    }

    /// Statically dispatched implementation of
    /// [`RankingPolicy::rank_into`]; the trait method forwards here
    /// (inherent methods win name resolution), so concrete callers inline
    /// their generator while `dyn RankingPolicy` users keep working.
    pub fn rank_into<R: RngCore + ?Sized>(
        &self,
        pages: &[PageStats],
        rng: &mut R,
        buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    ) {
        // `pool` and `rest` hold indices into `pages` here.
        let RankBuffers { pool, rest, .. } = buffers;
        self.split_pool_into(pages, rng, pool, rest);

        // L_p: the promotion pool in random order.
        pool.shuffle(rng);

        // L_d: remaining pages in descending popularity order
        // (`popularity_order` is total, so the unstable sort is
        // deterministic and allocation-free).
        rest.sort_unstable_by(|&a, &b| popularity_order(&pages[a], &pages[b]));

        // Map indices into `pages` to slot indices, in place.
        for index in pool.iter_mut() {
            *index = pages[*index].slot;
        }
        for index in rest.iter_mut() {
            *index = pages[*index].slot;
        }

        merge_promoted_into(
            rest,
            pool,
            self.config.start_rank,
            self.config.degree,
            rng,
            out,
        );
    }
}

/// The shared tail of both list builders: fill `rest` with the first
/// `rest_limit` entries of `sorted` outside the pool, then shuffle `pool`
/// in place. There is exactly one copy of this draw sequence — the
/// scanning and pooled front halves differ only in how they *source* pool
/// membership (freshly scanned mask vs. persistent index), so an edit to
/// the filter or the shuffle can never diverge their RNG streams.
fn fill_rest_and_shuffle<R: RngCore + ?Sized>(
    sorted: &[usize],
    in_pool: impl Fn(usize) -> bool,
    rest_limit: usize,
    rng: &mut R,
    pool: &mut [usize],
    rest: &mut Vec<usize>,
) {
    rest.clear();
    rest.extend(
        sorted
            .iter()
            .copied()
            .filter(|&s| !in_pool(s))
            .take(rest_limit),
    );
    pool.shuffle(rng);
}

impl RankingPolicy for RandomizedRankPromotion {
    fn rank_into(
        &self,
        pages: &[PageStats],
        rng: &mut dyn RngCore,
        buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    ) {
        RandomizedRankPromotion::rank_into(self, pages, rng, buffers, out)
    }

    fn name(&self) -> String {
        self.config.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::is_permutation;
    use crate::poolindex::PoolIndex;
    use rrp_model::{new_rng, PageId};

    /// 10 pages: slots 0..5 are established (popularity descending with
    /// slot), slots 5..10 have zero awareness.
    fn pages() -> Vec<PageStats> {
        (0..10)
            .map(|slot| {
                let (pop, aw) = if slot < 5 {
                    (0.5 - slot as f64 * 0.1, 0.8)
                } else {
                    (0.0, 0.0)
                };
                PageStats::new(slot, PageId::new(slot as u64), pop, aw).with_age(10)
            })
            .collect()
    }

    #[test]
    fn output_is_always_a_permutation() {
        let policy = RandomizedRankPromotion::recommended(2);
        for seed in 0..100 {
            let mut rng = new_rng(seed);
            let order = policy.rank(&pages(), &mut rng);
            assert!(is_permutation(&order, 10));
        }
    }

    #[test]
    fn selective_pool_is_exactly_zero_awareness_pages() {
        let policy = RandomizedRankPromotion::new(
            PromotionConfig::new(PromotionRule::Selective, 1, 0.5).unwrap(),
        );
        let ps = pages();
        let mut rng = new_rng(7);
        let (pool, rest) = policy.split_pool(&ps, &mut rng);
        let pool_slots: Vec<usize> = pool.iter().map(|&i| ps[i].slot).collect();
        assert_eq!(pool_slots, vec![5, 6, 7, 8, 9]);
        assert_eq!(rest.len(), 5);
    }

    #[test]
    fn uniform_pool_size_tracks_degree() {
        let policy = RandomizedRankPromotion::new(
            PromotionConfig::new(PromotionRule::Uniform, 1, 0.3).unwrap(),
        );
        let ps: Vec<PageStats> = (0..10_000)
            .map(|s| PageStats::new(s, PageId::new(s as u64), 0.1, 0.5))
            .collect();
        let mut rng = new_rng(11);
        let (pool, rest) = policy.split_pool(&ps, &mut rng);
        let fraction = pool.len() as f64 / ps.len() as f64;
        assert!((fraction - 0.3).abs() < 0.03, "pool fraction {fraction}");
        assert_eq!(pool.len() + rest.len(), ps.len());
    }

    #[test]
    fn k2_protects_the_top_result() {
        let policy = RandomizedRankPromotion::new(
            PromotionConfig::new(PromotionRule::Selective, 2, 0.9).unwrap(),
        );
        for seed in 0..50 {
            let mut rng = new_rng(seed);
            let order = policy.rank(&pages(), &mut rng);
            assert_eq!(
                order[0], 0,
                "slot 0 has the highest popularity and k=2 protects it"
            );
        }
    }

    #[test]
    fn k1_can_displace_the_top_result() {
        let policy = RandomizedRankPromotion::new(
            PromotionConfig::new(PromotionRule::Selective, 1, 0.9).unwrap(),
        );
        let mut displaced = false;
        for seed in 0..50 {
            let mut rng = new_rng(seed);
            let order = policy.rank(&pages(), &mut rng);
            if order[0] != 0 {
                displaced = true;
                break;
            }
        }
        assert!(
            displaced,
            "with k=1 and r=0.9 the top slot should sometimes be displaced"
        );
    }

    #[test]
    fn zero_degree_selective_still_appends_pool_at_bottom() {
        // With r = 0 no coin flip ever picks the pool, so unexplored pages
        // end up after all established pages — equivalent to deterministic
        // ranking with zero-popularity pages last.
        let policy = RandomizedRankPromotion::new(
            PromotionConfig::new(PromotionRule::Selective, 1, 0.0).unwrap(),
        );
        let mut rng = new_rng(5);
        let order = policy.rank(&pages(), &mut rng);
        assert_eq!(&order[..5], &[0, 1, 2, 3, 4]);
        let mut tail: Vec<usize> = order[5..].to_vec();
        tail.sort_unstable();
        assert_eq!(tail, vec![5, 6, 7, 8, 9]);
    }

    #[test]
    fn established_pages_keep_relative_order() {
        let policy = RandomizedRankPromotion::recommended(1);
        for seed in 0..20 {
            let mut rng = new_rng(seed);
            let order = policy.rank(&pages(), &mut rng);
            let positions: Vec<usize> = (0..5)
                .map(|slot| order.iter().position(|&s| s == slot).unwrap())
                .collect();
            assert!(
                positions.windows(2).all(|w| w[0] < w[1]),
                "established pages must stay in popularity order"
            );
        }
    }

    #[test]
    fn unexplored_pages_reach_top_ten_with_full_randomization() {
        // With r=1 and k=1 all zero-awareness pages are placed before the
        // established pages.
        let policy = RandomizedRankPromotion::new(
            PromotionConfig::new(PromotionRule::Selective, 1, 1.0).unwrap(),
        );
        let mut rng = new_rng(2);
        let order = policy.rank(&pages(), &mut rng);
        let mut head: Vec<usize> = order[..5].to_vec();
        head.sort_unstable();
        assert_eq!(head, vec![5, 6, 7, 8, 9]);
    }

    #[test]
    fn top_k_presorted_equals_the_full_rerank_prefix() {
        let ps = pages();
        let mut sorted: Vec<usize> = (0..ps.len()).collect();
        sorted.sort_unstable_by(|&a, &b| popularity_order(&ps[a], &ps[b]));
        let mut buffers = RankBuffers::new();
        let mut full = Vec::new();
        let mut topk = Vec::new();
        for rule in [PromotionRule::Selective, PromotionRule::Uniform] {
            for start_rank in [1usize, 2, 4] {
                let policy = RandomizedRankPromotion::new(
                    PromotionConfig::new(rule, start_rank, 0.3).unwrap(),
                );
                for seed in 0..20 {
                    policy.rank_presorted_into(
                        &ps,
                        &sorted,
                        &mut new_rng(seed),
                        &mut buffers,
                        &mut full,
                    );
                    let reference = full.clone();
                    for k in [0usize, 1, 3, 5, 10, 50] {
                        policy.rank_top_k_presorted_into(
                            &ps,
                            &sorted,
                            k,
                            &mut new_rng(seed),
                            &mut buffers,
                            &mut topk,
                        );
                        assert_eq!(
                            topk,
                            reference[..k.min(reference.len())],
                            "{rule:?}, k={k}, start_rank={start_rank}, seed={seed}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pooled_paths_match_the_scanning_paths_for_both_rules() {
        let ps = pages();
        let mut sorted: Vec<usize> = (0..ps.len()).collect();
        sorted.sort_unstable_by(|&a, &b| popularity_order(&ps[a], &ps[b]));
        let pool = PoolIndex::build(&ps);
        let view = PoolView::new(&ps, &sorted, &pool);
        let mut buffers = RankBuffers::new();
        let (mut scan, mut pooled) = (Vec::new(), Vec::new());
        for rule in [PromotionRule::Selective, PromotionRule::Uniform] {
            for start_rank in [1usize, 2, 4] {
                let policy = RandomizedRankPromotion::new(
                    PromotionConfig::new(rule, start_rank, 0.4).unwrap(),
                );
                for seed in 0..20 {
                    policy.rank_presorted_into(
                        &ps,
                        &sorted,
                        &mut new_rng(seed),
                        &mut buffers,
                        &mut scan,
                    );
                    policy.rank_pooled_into(view, &mut new_rng(seed), &mut buffers, &mut pooled);
                    assert_eq!(pooled, scan, "{rule:?}, k={start_rank}, seed={seed}");
                    for k in [0usize, 1, 3, 5, 10, 50] {
                        policy.rank_top_k_pooled_into(
                            view,
                            k,
                            &mut new_rng(seed),
                            &mut buffers,
                            &mut pooled,
                        );
                        assert_eq!(
                            pooled,
                            scan[..k.min(scan.len())],
                            "top-k {rule:?}, k={k}, seed={seed}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn candidate_path_matches_the_pooled_path_across_shard_counts() {
        use crate::candidates::{merge_shard_candidates_into, MergedCandidates, ShardCandidates};
        use crate::popindex::PopularityIndex;

        let ps = pages();
        let mut sorted: Vec<usize> = (0..ps.len()).collect();
        sorted.sort_unstable_by(|&a, &b| popularity_order(&ps[a], &ps[b]));
        let pool = PoolIndex::build(&ps);
        let view = PoolView::new(&ps, &sorted, &pool);
        let mut buffers = RankBuffers::new();
        let (mut pooled, mut from_candidates) = (Vec::new(), Vec::new());
        let mut merged = MergedCandidates::new();

        for shards in [1usize, 2, 3] {
            // Partition the corpus into shard-local corpora with dense
            // local slots, exactly as a sharded cache tier would hold it.
            let mut locals: Vec<Vec<PageStats>> = vec![Vec::new(); shards];
            let mut globals: Vec<Vec<usize>> = vec![Vec::new(); shards];
            for p in &ps {
                let shard = (p.slot * 5 + 1) % shards;
                let mut local = *p;
                local.slot = locals[shard].len();
                locals[shard].push(local);
                globals[shard].push(p.slot);
            }
            for start_rank in [1usize, 2, 4] {
                let policy = RandomizedRankPromotion::new(
                    PromotionConfig::new(PromotionRule::Selective, start_rank, 0.4).unwrap(),
                );
                for k in [0usize, 1, 3, 5, 10, 50] {
                    let limit = policy.config().candidate_prefix_len(k);
                    let candidates: Vec<ShardCandidates> = (0..shards)
                        .map(|s| {
                            let order = PopularityIndex::build(&locals[s]);
                            let shard_pool = PoolIndex::build(&locals[s]);
                            let mut c = ShardCandidates::new();
                            c.collect(
                                PoolView::new(&locals[s], order.order(), &shard_pool),
                                limit,
                                &globals[s],
                            );
                            c
                        })
                        .collect();
                    merge_shard_candidates_into(&candidates, limit, &mut merged);
                    for seed in 0..10 {
                        policy.rank_top_k_pooled_into(
                            view,
                            k,
                            &mut new_rng(seed),
                            &mut buffers,
                            &mut pooled,
                        );
                        policy.rank_top_k_candidates_into(
                            &merged,
                            k,
                            &mut new_rng(seed),
                            &mut buffers,
                            &mut from_candidates,
                        );
                        assert_eq!(
                            from_candidates, pooled,
                            "{shards} shards, start_rank {start_rank}, k {k}, seed {seed}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn merged_paths_match_the_scanning_paths_for_both_rules() {
        use crate::candidates::merge_shard_orders_into;

        let ps = pages();
        let mut sorted: Vec<usize> = (0..ps.len()).collect();
        sorted.sort_unstable_by(|&a, &b| popularity_order(&ps[a], &ps[b]));
        let pool = PoolIndex::build(&ps);
        let mut buffers = RankBuffers::new();
        let (mut scan, mut merged_out) = (Vec::new(), Vec::new());

        for shards in [1usize, 2, 3] {
            // Shard the corpus and reassemble the complete global order
            // through the k-way merge, as the serving tier does.
            let mut locals: Vec<Vec<PageStats>> = vec![Vec::new(); shards];
            let mut globals: Vec<Vec<usize>> = vec![Vec::new(); shards];
            for p in &ps {
                let shard = (p.slot * 5 + 1) % shards;
                let mut local = *p;
                local.slot = locals[shard].len();
                locals[shard].push(local);
                globals[shard].push(p.slot);
            }
            let shard_orders: Vec<Vec<usize>> = (0..shards)
                .map(|s| {
                    let mut order: Vec<usize> = (0..locals[s].len()).collect();
                    order.sort_unstable_by(|&a, &b| popularity_order(&locals[s][a], &locals[s][b]));
                    order
                })
                .collect();
            let (mut heads, mut order) = (Vec::new(), Vec::new());
            merge_shard_orders_into(
                shards,
                |s| shard_orders[s].len(),
                |s, i| {
                    let local = shard_orders[s][i];
                    let mut stat = locals[s][local];
                    stat.slot = globals[s][local];
                    stat
                },
                &mut heads,
                &mut order,
            );
            assert_eq!(order, sorted, "{shards} shards: merged order is global");

            for rule in [PromotionRule::Selective, PromotionRule::Uniform] {
                for start_rank in [1usize, 2, 4] {
                    let policy = RandomizedRankPromotion::new(
                        PromotionConfig::new(rule, start_rank, 0.4).unwrap(),
                    );
                    for seed in 0..10 {
                        policy.rank_presorted_into(
                            &ps,
                            &sorted,
                            &mut new_rng(seed),
                            &mut buffers,
                            &mut scan,
                        );
                        policy.rank_merged_into(
                            pool.members(),
                            &order,
                            |s| pool.contains(s),
                            &mut new_rng(seed),
                            &mut buffers,
                            &mut merged_out,
                        );
                        assert_eq!(
                            merged_out, scan,
                            "full merged {rule:?}, {shards} shards, start_rank {start_rank}, seed {seed}"
                        );
                        for k in [0usize, 1, 3, 5, 10, 50] {
                            policy.rank_top_k_merged_into(
                                pool.members(),
                                &order,
                                |s| pool.contains(s),
                                k,
                                &mut new_rng(seed),
                                &mut buffers,
                                &mut merged_out,
                            );
                            assert_eq!(
                                merged_out,
                                scan[..k.min(scan.len())],
                                "top-k merged {rule:?}, {shards} shards, k {k}, seed {seed}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "per-page coins")]
    fn candidate_path_rejects_the_uniform_rule() {
        use crate::candidates::MergedCandidates;
        let policy = RandomizedRankPromotion::new(
            PromotionConfig::new(PromotionRule::Uniform, 1, 0.3).unwrap(),
        );
        policy.rank_top_k_candidates_into(
            &MergedCandidates::new(),
            3,
            &mut new_rng(0),
            &mut RankBuffers::new(),
            &mut Vec::new(),
        );
    }

    #[test]
    fn pooled_selective_path_never_resets_the_mask() {
        let ps = pages();
        let mut sorted: Vec<usize> = (0..ps.len()).collect();
        sorted.sort_unstable_by(|&a, &b| popularity_order(&ps[a], &ps[b]));
        let pool = PoolIndex::build(&ps);
        let view = PoolView::new(&ps, &sorted, &pool);
        let mut buffers = RankBuffers::new();
        let mut out = Vec::new();

        let selective = RandomizedRankPromotion::recommended(2);
        selective.rank_top_k_pooled_into(view, 5, &mut new_rng(3), &mut buffers, &mut out);
        assert_eq!(buffers.take_mask_resets(), 0, "selective pooled: no reset");

        selective.rank_top_k_presorted_into(
            &ps,
            &sorted,
            5,
            &mut new_rng(3),
            &mut buffers,
            &mut out,
        );
        assert_eq!(buffers.take_mask_resets(), 1, "scanning path resets once");

        let uniform = RandomizedRankPromotion::new(
            PromotionConfig::new(PromotionRule::Uniform, 1, 0.3).unwrap(),
        );
        uniform.rank_top_k_pooled_into(view, 5, &mut new_rng(3), &mut buffers, &mut out);
        assert_eq!(
            buffers.take_mask_resets(),
            1,
            "the Uniform rule must keep drawing its per-page coins"
        );
    }

    #[test]
    fn v2_routes_agree_and_draw_at_most_k_swaps() {
        use crate::lazyshuffle::EngineVersion;

        let ps = pages();
        let mut sorted: Vec<usize> = (0..ps.len()).collect();
        sorted.sort_unstable_by(|&a, &b| popularity_order(&ps[a], &ps[b]));
        let pool = PoolIndex::build(&ps);
        let view = PoolView::new(&ps, &sorted, &pool);
        let mut buffers = RankBuffers::new();
        let (mut pooled, mut merged, mut retrieved) = (Vec::new(), Vec::new(), Vec::new());
        for start_rank in [1usize, 2, 4] {
            let policy = RandomizedRankPromotion::new(
                PromotionConfig::new(PromotionRule::Selective, start_rank, 0.4).unwrap(),
            )
            .with_version(EngineVersion::V2);
            assert_eq!(policy.version(), EngineVersion::V2);
            for k in [0usize, 1, 3, 5, 10, 50] {
                for seed in 0..20 {
                    policy.rank_top_k_pooled_into(
                        view,
                        k,
                        &mut new_rng(seed),
                        &mut buffers,
                        &mut pooled,
                    );
                    let draws = buffers.take_pool_draws();
                    assert!(draws <= k as u64, "k={k}, seed={seed}: {draws} draws");
                    policy.rank_top_k_merged_into(
                        pool.members(),
                        &sorted,
                        |s| pool.contains(s),
                        k,
                        &mut new_rng(seed),
                        &mut buffers,
                        &mut merged,
                    );
                    assert_eq!(merged, pooled, "merged≡pooled, k={k}, seed={seed}");
                    assert_eq!(buffers.take_pool_draws(), draws, "merged draw count");
                    let rest_slots: Vec<usize> = sorted
                        .iter()
                        .copied()
                        .filter(|&s| !pool.contains(s))
                        .take(k)
                        .collect();
                    policy.rank_top_k_retrieved_into(
                        pool.members(),
                        &rest_slots,
                        k,
                        &mut new_rng(seed),
                        &mut buffers,
                        &mut retrieved,
                    );
                    assert_eq!(retrieved, pooled, "retrieved≡pooled, k={k}, seed={seed}");
                    assert_eq!(buffers.take_pool_draws(), draws, "retrieved draw count");
                    // The prefix is made of distinct slots and protects
                    // the deterministic top start_rank − 1.
                    let mut dedup = pooled.clone();
                    dedup.sort_unstable();
                    dedup.dedup();
                    assert_eq!(dedup.len(), pooled.len(), "no slot emitted twice");
                    let protected = (start_rank - 1).min(k).min(rest_slots.len());
                    assert_eq!(
                        &pooled[..protected],
                        &rest_slots[..protected],
                        "protected prefix, k={k}, seed={seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn v2_leaves_the_uniform_rule_and_full_reranks_bit_identical() {
        use crate::lazyshuffle::EngineVersion;

        let ps = pages();
        let mut sorted: Vec<usize> = (0..ps.len()).collect();
        sorted.sort_unstable_by(|&a, &b| popularity_order(&ps[a], &ps[b]));
        let pool = PoolIndex::build(&ps);
        let view = PoolView::new(&ps, &sorted, &pool);
        let mut buffers = RankBuffers::new();
        let (mut v1_out, mut v2_out) = (Vec::new(), Vec::new());
        for rule in [PromotionRule::Selective, PromotionRule::Uniform] {
            let v1 = RandomizedRankPromotion::new(PromotionConfig::new(rule, 2, 0.4).unwrap());
            let v2 = v1.with_version(EngineVersion::V2);
            for seed in 0..20 {
                // Full reranks never take the lazy route under either rule.
                v1.rank_pooled_into(view, &mut new_rng(seed), &mut buffers, &mut v1_out);
                v2.rank_pooled_into(view, &mut new_rng(seed), &mut buffers, &mut v2_out);
                assert_eq!(v2_out, v1_out, "full {rule:?}, seed={seed}");
                if rule == PromotionRule::Uniform {
                    // Uniform top-k is v1-identical too: per-page coins
                    // dominate, so there is no lazy stream for it.
                    v1.rank_top_k_pooled_into(
                        view,
                        5,
                        &mut new_rng(seed),
                        &mut buffers,
                        &mut v1_out,
                    );
                    v2.rank_top_k_pooled_into(
                        view,
                        5,
                        &mut new_rng(seed),
                        &mut buffers,
                        &mut v2_out,
                    );
                    assert_eq!(v2_out, v1_out, "uniform top-k, seed={seed}");
                    assert_eq!(buffers.take_pool_draws(), 0, "no lazy draws for Uniform");
                }
            }
        }
    }

    #[test]
    fn name_reports_configuration() {
        let policy = RandomizedRankPromotion::recommended(2);
        let name = policy.name();
        assert!(name.contains("selective"));
        assert!(name.contains("k=2"));
        assert_eq!(policy.config().degree, 0.1);
    }

    #[test]
    fn empty_input_is_fine() {
        let policy = RandomizedRankPromotion::recommended(1);
        let mut rng = new_rng(0);
        assert!(policy.rank(&[], &mut rng).is_empty());
    }
}
