//! The [`RankingPolicy`] trait: from page statistics to a result ordering.

use crate::buffers::RankBuffers;
use crate::stats::PageStats;
use rand::RngCore;

/// A ranking policy orders the pages of a community (equivalently, the
/// result set of the single query the community model assumes) into a
/// result list.
///
/// The output is a permutation of the *slot indices* of the input: the page
/// at `output[0]` is shown at rank 1, `output[1]` at rank 2, and so on.
/// Policies that involve randomness draw it from the supplied RNG so that
/// simulations are reproducible.
///
/// [`rank_into`](Self::rank_into) is the allocation-free primitive every
/// policy implements; [`rank`](Self::rank) is a convenience wrapper that
/// allocates a fresh arena and output vector per call. Both produce
/// byte-identical orderings from the same RNG state.
pub trait RankingPolicy: Send + Sync {
    /// Produce the result ordering for one query / one simulation day,
    /// writing it into `out` (cleared first) and drawing any scratch space
    /// from `buffers`. Hot paths (the simulator day loop, batch serving)
    /// reuse the same arena and output vector across calls so that ranking
    /// never allocates after warm-up.
    fn rank_into(
        &self,
        pages: &[PageStats],
        rng: &mut dyn RngCore,
        buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    );

    /// Produce the result ordering for one query / one simulation day.
    ///
    /// Thin compatibility wrapper over [`rank_into`](Self::rank_into): it
    /// allocates a fresh arena and output vector each call. Prefer
    /// `rank_into` anywhere throughput matters.
    fn rank(&self, pages: &[PageStats], rng: &mut dyn RngCore) -> Vec<usize> {
        let mut buffers = RankBuffers::new();
        let mut out = Vec::with_capacity(pages.len());
        self.rank_into(pages, rng, &mut buffers, &mut out);
        out
    }

    /// A short human-readable name used in experiment reports
    /// (e.g. `"no randomization"`, `"selective (r=0.1, k=1)"`).
    fn name(&self) -> String;
}

/// Verify that `ordering` is a permutation of `0..n`. Used by debug
/// assertions in the simulator and by the property tests of every policy.
pub fn is_permutation(ordering: &[usize], n: usize) -> bool {
    is_permutation_with_scratch(ordering, n, &mut Vec::new())
}

/// [`is_permutation`] with a caller-supplied scratch mask, so repeated
/// validation (e.g. a debug assertion in a simulation day loop) does not
/// allocate once the scratch has grown to `n` entries.
pub fn is_permutation_with_scratch(ordering: &[usize], n: usize, seen: &mut Vec<bool>) -> bool {
    if ordering.len() != n {
        return false;
    }
    seen.clear();
    seen.resize(n, false);
    for &slot in ordering {
        if slot >= n || seen[slot] {
            return false;
        }
        seen[slot] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_check_accepts_valid() {
        assert!(is_permutation(&[2, 0, 1], 3));
        assert!(is_permutation(&[], 0));
        assert!(is_permutation(&[0], 1));
    }

    #[test]
    fn permutation_check_rejects_invalid() {
        assert!(!is_permutation(&[0, 0, 1], 3), "duplicate");
        assert!(!is_permutation(&[0, 1], 3), "too short");
        assert!(!is_permutation(&[0, 1, 3], 3), "out of range");
        assert!(!is_permutation(&[0, 1, 2, 2], 3), "too long");
    }

    #[test]
    fn scratch_variant_matches_allocating_variant() {
        let mut seen = Vec::new();
        for (ordering, n) in [
            (vec![2, 0, 1], 3),
            (vec![0, 0, 1], 3),
            (vec![0, 1], 3),
            (vec![0, 1, 3], 3),
            (vec![], 0),
        ] {
            assert_eq!(
                is_permutation_with_scratch(&ordering, n, &mut seen),
                is_permutation(&ordering, n),
                "ordering {ordering:?}"
            );
        }
    }
}
