//! The [`RankingPolicy`] trait: from page statistics to a result ordering.

use crate::stats::PageStats;
use rand::RngCore;

/// A ranking policy orders the pages of a community (equivalently, the
/// result set of the single query the community model assumes) into a
/// result list.
///
/// The output is a permutation of the *slot indices* of the input: the page
/// at `output[0]` is shown at rank 1, `output[1]` at rank 2, and so on.
/// Policies that involve randomness draw it from the supplied RNG so that
/// simulations are reproducible.
pub trait RankingPolicy: Send + Sync {
    /// Produce the result ordering for one query / one simulation day.
    fn rank(&self, pages: &[PageStats], rng: &mut dyn RngCore) -> Vec<usize>;

    /// A short human-readable name used in experiment reports
    /// (e.g. `"no randomization"`, `"selective (r=0.1, k=1)"`).
    fn name(&self) -> String;
}

/// Verify that `ordering` is a permutation of `0..n`. Used by debug
/// assertions in the simulator and by the property tests of every policy.
pub fn is_permutation(ordering: &[usize], n: usize) -> bool {
    if ordering.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &slot in ordering {
        if slot >= n || seen[slot] {
            return false;
        }
        seen[slot] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_check_accepts_valid() {
        assert!(is_permutation(&[2, 0, 1], 3));
        assert!(is_permutation(&[], 0));
        assert!(is_permutation(&[0], 1));
    }

    #[test]
    fn permutation_check_rejects_invalid() {
        assert!(!is_permutation(&[0, 0, 1], 3), "duplicate");
        assert!(!is_permutation(&[0, 1], 3), "too short");
        assert!(!is_permutation(&[0, 1, 3], 3), "out of range");
        assert!(!is_permutation(&[0, 1, 2, 2], 3), "too long");
    }
}
