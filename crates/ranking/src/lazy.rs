//! A share-safe, initialise-once merged order — the read-only counterpart
//! of the `&mut` lazy-merge arenas.
//!
//! The serving tier publishes immutable ranking versions that many reader
//! threads rank against concurrently. The complete merged popularity order
//! stays *lazy* on that path — top-k traffic must never pay the `O(n)`
//! k-way merge — but laziness under shared readers needs initialise-once
//! semantics instead of a `&mut` flag: [`SharedLazyOrder`] wraps the merged
//! order in a [`OnceLock`] so the first full-order consumer of a version
//! runs the merge exactly once (concurrent callers block and then read the
//! same slice), and every later read is a plain pointer load.
//!
//! Versions come and go with mutation epochs, so the type also carries a
//! *seed buffer*: the retiring version's order storage can be handed to the
//! next version ([`with_seed`](SharedLazyOrder::with_seed) /
//! [`into_buffer`](SharedLazyOrder::into_buffer)), which keeps the
//! steady-state merge allocation-free just like the old single-owner
//! `ensure_merged_order` arena.

use std::sync::{Mutex, OnceLock};

/// An initialise-once merged slot order shared across reader threads, with
/// a recyclable storage buffer.
#[derive(Debug, Default)]
pub struct SharedLazyOrder {
    /// The merged order, set exactly once by the first consumer.
    order: OnceLock<Vec<usize>>,
    /// Storage for the merge, recycled from a retired instance; taken by
    /// the initialising consumer.
    seed: Mutex<Vec<usize>>,
}

impl SharedLazyOrder {
    /// An unmerged order with empty storage.
    pub fn new() -> Self {
        SharedLazyOrder::default()
    }

    /// An unmerged order seeded with recycled storage (typically a retired
    /// instance's [`into_buffer`](Self::into_buffer)); the merge reuses its
    /// capacity.
    pub fn with_seed(buffer: Vec<usize>) -> Self {
        SharedLazyOrder {
            order: OnceLock::new(),
            seed: Mutex::new(buffer),
        }
    }

    /// The merged order if some consumer already forced it, without
    /// forcing it.
    pub fn get(&self) -> Option<&[usize]> {
        self.order.get().map(Vec::as_slice)
    }

    /// The merged order, forcing the merge on first call: `merge` receives
    /// the (cleared-by-convention) seed buffer and must leave the complete
    /// order in it. Returns the order and whether *this* call ran the
    /// merge — exactly one caller per instance observes `true`, which is
    /// what an `order_merges` probe counts.
    pub fn get_or_merge(&self, merge: impl FnOnce(&mut Vec<usize>)) -> (&[usize], bool) {
        let mut ran = false;
        let order = self.order.get_or_init(|| {
            ran = true;
            let mut buffer = std::mem::take(&mut *self.seed.lock().expect("seed buffer lock"));
            merge(&mut buffer);
            buffer
        });
        (order.as_slice(), ran)
    }

    /// Tear down into reusable storage: the merged order's buffer if the
    /// merge ran, otherwise the untouched seed — either way the capacity
    /// survives into the next instance.
    pub fn into_buffer(self) -> Vec<usize> {
        self.order
            .into_inner()
            .unwrap_or_else(|| self.seed.into_inner().expect("seed buffer lock"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_exactly_once_and_serves_every_reader() {
        let lazy = SharedLazyOrder::new();
        assert_eq!(lazy.get(), None);
        let (first, ran) = lazy.get_or_merge(|buf| buf.extend([2usize, 0, 1]));
        assert!(ran, "the first consumer runs the merge");
        assert_eq!(first, &[2, 0, 1]);
        let (second, ran) = lazy.get_or_merge(|_| panic!("must not re-merge"));
        assert!(!ran);
        assert_eq!(second, &[2, 0, 1]);
        assert_eq!(lazy.get(), Some(&[2usize, 0, 1][..]));
    }

    #[test]
    fn concurrent_consumers_observe_one_merge() {
        let lazy = SharedLazyOrder::new();
        let merges = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let (order, ran) = lazy.get_or_merge(|buf| {
                        merges.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        buf.extend(0..100usize);
                    });
                    assert_eq!(order.len(), 100);
                    ran
                });
            }
        });
        assert_eq!(merges.into_inner(), 1, "exactly one thread merges");
    }

    #[test]
    fn seed_storage_is_recycled_across_instances() {
        let mut seeded = SharedLazyOrder::with_seed(Vec::with_capacity(1024));
        for _ in 0..3 {
            let (order, ran) = seeded.get_or_merge(|buf| {
                buf.clear();
                buf.extend(0..10usize);
            });
            assert!(ran);
            assert_eq!(order.len(), 10);
            let buffer = seeded.into_buffer();
            assert!(
                buffer.capacity() >= 1024,
                "the original storage survives recycling"
            );
            seeded = SharedLazyOrder::with_seed(buffer);
        }
        // An unforced instance hands back the seed itself.
        let idle = SharedLazyOrder::with_seed(Vec::with_capacity(512));
        assert!(idle.into_buffer().capacity() >= 512);
    }
}
