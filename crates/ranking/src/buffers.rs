//! Reusable scratch buffers for the allocation-free ranking hot path.
//!
//! Every [`RankingPolicy::rank_into`](crate::RankingPolicy::rank_into) call
//! needs a handful of intermediate lists (the promotion pool, the
//! deterministic remainder, membership masks). Allocating them per call is
//! what made the legacy [`rank`](crate::RankingPolicy::rank) path cost ~5
//! heap round-trips per query; a [`RankBuffers`] owned by the caller and
//! handed to every call amortises them to zero once the buffers have grown
//! to the working-set size.
//!
//! The arena is deliberately *not* shared between threads: each worker in a
//! batch-serving or sweep context owns one (`RankBuffers` is cheap to
//! construct empty).

/// Scratch arena reused across ranking calls.
///
/// Obtain one with [`RankBuffers::new`] (or `Default`), keep it alive for as
/// many calls as you like, and pass it to
/// [`RankingPolicy::rank_into`](crate::RankingPolicy::rank_into). Contents
/// are meaningless between calls; only the capacity persists.
#[derive(Debug, Default)]
pub struct RankBuffers {
    /// Promotion-pool entries (indices into the input, later slot indices).
    pub(crate) pool: Vec<usize>,
    /// Deterministic-remainder entries (indices, later slot indices).
    pub(crate) rest: Vec<usize>,
    /// Per-slot pool-membership mask (used by the presorted Uniform path).
    pub(crate) mask: Vec<bool>,
    /// Per-slot seen mask for permutation validation.
    pub(crate) seen: Vec<bool>,
    /// Sparse `(index, value)` overlay for the v2 lazy pool shuffle
    /// ([`LazyShuffle`](crate::LazyShuffle)): at most `k` entries per
    /// top-`k` query, reused across queries for its capacity.
    pub(crate) overlay: Vec<(usize, usize)>,
    /// How many times the per-slot mask was reset (each reset is an `O(n)`
    /// clear paired with a full-corpus pool scan). The pooled query path
    /// never resets, so serving tiers read this counter to *pin* that their
    /// clean-batch path stayed scan-free — see
    /// [`take_mask_resets`](Self::take_mask_resets).
    mask_resets: u64,
    /// Lazy-shuffle swap indices drawn by v2 top-k paths (at most `k` per
    /// query). Serving tiers aggregate this to pin the O(k) contract — see
    /// [`take_pool_draws`](Self::take_pool_draws).
    pool_draws: u64,
}

impl RankBuffers {
    /// An empty arena; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        RankBuffers::default()
    }

    /// An arena pre-grown for inputs of `n` pages, so even the first call
    /// does not allocate.
    pub fn with_capacity(n: usize) -> Self {
        RankBuffers {
            pool: Vec::with_capacity(n),
            rest: Vec::with_capacity(n),
            mask: Vec::with_capacity(n),
            seen: Vec::with_capacity(n),
            overlay: Vec::new(),
            mask_resets: 0,
            pool_draws: 0,
        }
    }

    /// Drain the count of per-slot mask resets since the last call (each
    /// one marks an `O(n)` full-corpus pool derivation). The pooled
    /// selective path performs none; the presorted fallback and the
    /// Uniform rule's mandatory per-page coin scan perform one per query —
    /// serving probes aggregate this to pin their scan-free contract.
    pub fn take_mask_resets(&mut self) -> u64 {
        std::mem::take(&mut self.mask_resets)
    }

    /// Drain the count of lazy-shuffle swap draws since the last call.
    /// Only the v2 Selective top-k paths draw any; each query contributes
    /// at most `k`, so serving probes aggregate this to pin the O(k)
    /// per-query contract (`pool_draws ≤ k × queries`).
    pub fn take_pool_draws(&mut self) -> u64 {
        std::mem::take(&mut self.pool_draws)
    }

    /// Record `draws` lazy-shuffle swap draws (called by the v2 paths).
    pub(crate) fn count_pool_draws(&mut self, draws: u64) {
        self.pool_draws += draws;
    }

    /// Verify that `ordering` is a permutation of `0..n` using the arena's
    /// scratch mask instead of a fresh allocation — the validation
    /// counterpart of the allocation-free ranking path.
    pub fn check_permutation(&mut self, ordering: &[usize], n: usize) -> bool {
        crate::policy::is_permutation_with_scratch(ordering, n, &mut self.seen)
    }

    /// Reset the per-slot boolean mask to `n` entries of `false`.
    pub(crate) fn reset_mask(&mut self, n: usize) {
        self.mask_resets += 1;
        self.mask.clear();
        self.mask.resize(n, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_start_empty_and_grow() {
        let mut bufs = RankBuffers::new();
        assert!(bufs.pool.is_empty());
        bufs.reset_mask(5);
        assert_eq!(bufs.mask.len(), 5);
        assert!(bufs.mask.iter().all(|&b| !b));
        bufs.mask[3] = true;
        bufs.reset_mask(3);
        assert_eq!(bufs.mask, vec![false; 3]);
    }

    #[test]
    fn mask_reset_counter_counts_and_drains() {
        let mut bufs = RankBuffers::new();
        assert_eq!(bufs.take_mask_resets(), 0);
        bufs.reset_mask(4);
        bufs.reset_mask(4);
        assert_eq!(bufs.take_mask_resets(), 2);
        assert_eq!(bufs.take_mask_resets(), 0, "taking drains the counter");
    }

    #[test]
    fn with_capacity_preallocates() {
        let bufs = RankBuffers::with_capacity(64);
        assert!(bufs.pool.capacity() >= 64);
        assert!(bufs.rest.capacity() >= 64);
    }

    #[test]
    fn check_permutation_reuses_scratch() {
        let mut bufs = RankBuffers::new();
        assert!(bufs.check_permutation(&[2, 0, 1], 3));
        assert!(!bufs.check_permutation(&[0, 0, 1], 3));
        assert!(bufs.check_permutation(&[], 0));
        // Scratch survives between checks without reallocation growth.
        assert!(bufs.check_permutation(&[1, 0], 2));
    }
}
