//! Configuration of the randomized rank-promotion scheme (Section 4).
//!
//! Three knobs control the scheme:
//!
//! * the **promotion pool rule** — which pages are candidates for
//!   exploration ([`PromotionRule::Uniform`] includes every page with
//!   probability `r`; [`PromotionRule::Selective`] includes exactly the
//!   zero-awareness pages);
//! * the **starting point** `k ≥ 1` — every page whose natural
//!   (popularity-based) rank is better than `k` is protected from demotion;
//!   `k = 2` preserves the "feeling lucky" top result;
//! * the **degree of randomization** `r ∈ [0, 1]` — the probability that
//!   each remaining result position is filled from the promotion pool.
//!
//! The paper's recommended recipe (Section 6.4) is the selective rule with
//! `r = 0.1` and `k ∈ {1, 2}`; see [`PromotionConfig::recommended`].

use rrp_model::{ModelError, ModelResult};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Rule deciding which pages enter the promotion pool `P_p`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PromotionRule {
    /// Every page is included in the pool independently with probability
    /// equal to the degree of randomization `r`.
    Uniform,
    /// Exactly the pages whose awareness among monitored users is zero are
    /// included (the paper's recommended rule).
    Selective,
}

impl fmt::Display for PromotionRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PromotionRule::Uniform => write!(f, "uniform"),
            PromotionRule::Selective => write!(f, "selective"),
        }
    }
}

/// Full configuration of a randomized rank-promotion policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PromotionConfig {
    /// Which pages are candidates for promotion.
    pub rule: PromotionRule,
    /// Starting point `k ≥ 1`: the top `k − 1` deterministic results are
    /// never displaced.
    pub start_rank: usize,
    /// Degree of randomization `r ∈ [0, 1]`.
    pub degree: f64,
}

impl PromotionConfig {
    /// Construct and validate a configuration.
    pub fn new(rule: PromotionRule, start_rank: usize, degree: f64) -> ModelResult<Self> {
        let config = PromotionConfig {
            rule,
            start_rank,
            degree,
        };
        config.validate()?;
        Ok(config)
    }

    /// The paper's recommendation (Section 6.4): selective promotion,
    /// `r = 0.1`, starting at rank `k` (1 or 2).
    ///
    /// # Panics
    /// Panics if `start_rank` is 0 (ranks are 1-based).
    pub fn recommended(start_rank: usize) -> Self {
        PromotionConfig::new(PromotionRule::Selective, start_rank, 0.1)
            .expect("recommended parameters are valid")
    }

    /// Validate `k ≥ 1` and `r ∈ [0, 1]`.
    pub fn validate(&self) -> ModelResult<()> {
        if self.start_rank == 0 {
            return Err(ModelError::ZeroCount {
                what: "promotion starting rank (k is 1-based)",
            });
        }
        if !self.degree.is_finite() {
            return Err(ModelError::NotFinite {
                what: "degree of randomization",
            });
        }
        if !(0.0..=1.0).contains(&self.degree) {
            return Err(ModelError::OutOfUnitInterval {
                what: "degree of randomization",
                value: self.degree,
            });
        }
        Ok(())
    }

    /// Number of top deterministic results protected from displacement
    /// (`k − 1`).
    #[inline]
    pub fn protected_prefix(&self) -> usize {
        self.start_rank - 1
    }

    /// How many *non-pool* popularity-order entries a shard must
    /// contribute so a top-`k` candidate retrieval can reassemble every
    /// rank the merge may fill from the deterministic list `L_d`: the
    /// protected prefix consumes `min(protected_prefix, k)` entries and
    /// each later position consumes at most one element of either list,
    /// so `k` deterministic candidates always suffice — and with `r = 0`
    /// every one of the `k` ranks comes from `L_d`, so none can be
    /// spared. One formula, shared by the serving tier's retrieval and
    /// the conformance suites, so the two can never disagree about the
    /// candidate budget.
    #[inline]
    pub fn candidate_prefix_len(&self, k: usize) -> usize {
        let protected = self.protected_prefix().min(k);
        let coin_positions = k - protected;
        protected + coin_positions
    }

    /// A short label such as `"selective (r=0.10, k=2)"` used in reports.
    pub fn label(&self) -> String {
        format!(
            "{} (r={:.2}, k={})",
            self.rule, self.degree, self.start_rank
        )
    }
}

impl Default for PromotionConfig {
    /// The paper's recommended configuration with the top result protected
    /// (`k = 2`).
    fn default() -> Self {
        PromotionConfig::recommended(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommended_matches_section_6_4() {
        let c = PromotionConfig::recommended(1);
        assert_eq!(c.rule, PromotionRule::Selective);
        assert_eq!(c.degree, 0.1);
        assert_eq!(c.start_rank, 1);
        assert_eq!(c.protected_prefix(), 0);
        let c2 = PromotionConfig::recommended(2);
        assert_eq!(c2.protected_prefix(), 1);
    }

    #[test]
    fn default_protects_top_result() {
        let c = PromotionConfig::default();
        assert_eq!(c.start_rank, 2);
        assert_eq!(c.rule, PromotionRule::Selective);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(PromotionConfig::new(PromotionRule::Selective, 0, 0.1).is_err());
        assert!(PromotionConfig::new(PromotionRule::Selective, 1, -0.1).is_err());
        assert!(PromotionConfig::new(PromotionRule::Selective, 1, 1.1).is_err());
        assert!(PromotionConfig::new(PromotionRule::Selective, 1, f64::NAN).is_err());
        assert!(PromotionConfig::new(PromotionRule::Uniform, 1, 0.0).is_ok());
        assert!(PromotionConfig::new(PromotionRule::Uniform, 1, 1.0).is_ok());
    }

    #[test]
    fn candidate_prefix_budget_is_one_deterministic_entry_per_rank() {
        // Protected ranks and coin-flip ranks each consume at most one
        // element of `L_d`, so the budget is exactly `k` for every
        // configuration — spelled out here so a change to the merge that
        // invalidates the derivation has a test to argue with.
        for start_rank in [1usize, 2, 4, 9] {
            let c = PromotionConfig::new(PromotionRule::Selective, start_rank, 0.3).unwrap();
            for k in [0usize, 1, 3, 4, 10, 100] {
                assert_eq!(
                    c.candidate_prefix_len(k),
                    k,
                    "start_rank {start_rank}, k {k}"
                );
            }
        }
    }

    #[test]
    fn label_is_informative() {
        let c = PromotionConfig::new(PromotionRule::Uniform, 3, 0.25).unwrap();
        let label = c.label();
        assert!(label.contains("uniform"));
        assert!(label.contains("0.25"));
        assert!(label.contains("k=3"));
    }

    #[test]
    fn rule_display() {
        assert_eq!(PromotionRule::Uniform.to_string(), "uniform");
        assert_eq!(PromotionRule::Selective.to_string(), "selective");
    }

    #[test]
    fn serde_roundtrip() {
        let c = PromotionConfig::recommended(2);
        let json = serde_json::to_string(&c).unwrap();
        let back: PromotionConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    #[should_panic]
    fn recommended_with_zero_rank_panics() {
        PromotionConfig::recommended(0);
    }
}
