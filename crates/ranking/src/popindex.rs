//! An incrementally maintained popularity order over the page slots.
//!
//! Both steady-state consumers of the presorted ranking path — the
//! simulator's day loop and the batch serving tier — used to re-sort all
//! `n` pages by popularity on every step, `O(n log n)` work even though a
//! step changes the popularity key of only the handful of slots that
//! received a visit, changed their score, or were inserted.
//! [`PopularityIndex`] keeps the previous order and *repairs* it: dirty
//! slots are pulled out and reinserted at the position a binary search
//! against [`popularity_order`](crate::popularity_order) dictates.
//!
//! Why repair is sound: the comparator is a **total** order (popularity
//! descending, then age descending, then slot ascending), so there is
//! exactly one sorted permutation — any procedure that restores sortedness
//! reproduces the from-scratch sort bit for bit. And a clean slot's key can
//! only change in ways that preserve its relative order: popularity moves
//! only with a monitored visit, a score update, or a retirement (all mark
//! the slot dirty), and ages grow by exactly one day for *every* surviving
//! page, which leaves all pairwise age comparisons between clean slots
//! untouched. Newborn pages reset their age, so retirement marks them dirty
//! too.
//!
//! The population may also *grow* between repairs (a serving corpus takes
//! inserts): brand-new slots are simply passed in as dirty and take part in
//! the same binary-search reinsertion.

use crate::stats::{popularity_order, PageStats};
use serde::{Deserialize, Serialize};

/// Slots sorted by [`popularity_order`], repaired incrementally.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PopularityIndex {
    /// Slot indices, best-ranked first. Invariant outside `repair`: sorted
    /// by `popularity_order` over the most recent `stats` passed in.
    order: Vec<usize>,
    /// Scratch: merge target swapped with `order` during a repair.
    #[serde(skip)]
    merged: Vec<usize>,
    /// Scratch: per-slot "is dirty" mask during a repair.
    #[serde(skip)]
    removed: Vec<bool>,
    /// Scratch: insertion position of each dirty slot during a repair.
    #[serde(skip)]
    positions: Vec<usize>,
}

impl PopularityIndex {
    /// Build the index with a from-scratch sort of `stats`.
    ///
    /// Requires dense slot indexing (`stats[i].slot == i`), like every
    /// consumer of the presorted ranking path.
    pub fn build(stats: &[PageStats]) -> Self {
        let mut index = PopularityIndex::default();
        index.rebuild(stats);
        index
    }

    /// Re-sort from scratch, discarding the incremental state.
    pub fn rebuild(&mut self, stats: &[PageStats]) {
        debug_assert!(stats.iter().enumerate().all(|(i, p)| p.slot == i));
        self.order.clear();
        self.order.extend(0..stats.len());
        self.order
            .sort_unstable_by(|&a, &b| popularity_order(&stats[a], &stats[b]));
        self.removed.clear();
        self.removed.resize(stats.len(), false);
    }

    /// The slots in popularity order (best rank first).
    #[inline]
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Number of indexed slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the index is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Restore sortedness after the slots in `dirty` changed their keys,
    /// comparing against the *current* `stats`. `dirty` is drained; slots
    /// may appear in it multiple times and in any order. The population may
    /// have grown since the last repair (`stats.len() > self.len()`), in
    /// which case every new slot must appear in `dirty`. Allocation-free
    /// once the scratch buffers have grown to `n`.
    ///
    /// Cost: `O(n + d log n)` for `d` dirty slots — two linear passes plus
    /// one binary search per dirty slot — versus `O(n log n)` comparisons
    /// for a from-scratch sort.
    pub fn repair(&mut self, stats: &[PageStats], dirty: &mut Vec<usize>) {
        debug_assert!(
            stats.len() >= self.order.len(),
            "the population never shrinks"
        );
        if dirty.is_empty() {
            debug_assert!(self.is_consistent(stats));
            return;
        }

        // Deduplicate via the mask (a slot visited twice is one repair).
        self.removed.clear();
        self.removed.resize(stats.len(), false);
        dirty.retain(|&slot| {
            let fresh = !self.removed[slot];
            self.removed[slot] = true;
            fresh
        });
        debug_assert!(
            (self.order.len()..stats.len()).all(|slot| self.removed[slot]),
            "every slot inserted since the last repair must be dirty"
        );

        // Pull dirty slots out, keeping the clean remainder in order.
        // (Newly inserted slots are not in `order` yet; for them this pass
        // is a no-op and the reinsertion below places them for the first
        // time.)
        self.order.retain(|&slot| !self.removed[slot]);

        // Reinsert: sort the dirty slots by the shared total order, find
        // each one's position in the clean list by binary search, and
        // splice everything together in a single linear pass.
        dirty.sort_unstable_by(|&a, &b| popularity_order(&stats[a], &stats[b]));
        self.positions.clear();
        for &slot in dirty.iter() {
            // Clean slots never compare equal to a dirty one (slot indices
            // differ), so this partition point is the unique position.
            self.positions.push(
                self.order.partition_point(|&clean| {
                    popularity_order(&stats[clean], &stats[slot]).is_lt()
                }),
            );
        }

        self.merged.clear();
        self.merged.reserve(stats.len());
        let mut next_dirty = 0;
        for (clean_index, &clean) in self.order.iter().enumerate() {
            while next_dirty < dirty.len() && self.positions[next_dirty] == clean_index {
                self.merged.push(dirty[next_dirty]);
                next_dirty += 1;
            }
            self.merged.push(clean);
        }
        self.merged.extend_from_slice(&dirty[next_dirty..]);
        std::mem::swap(&mut self.order, &mut self.merged);

        dirty.clear();
        debug_assert!(self.is_consistent(stats));
    }

    /// Whether the maintained order equals the from-scratch sort of
    /// `stats` (used by tests and debug assertions).
    pub fn is_consistent(&self, stats: &[PageStats]) -> bool {
        self.order.len() == stats.len()
            && self
                .order
                .windows(2)
                .all(|w| popularity_order(&stats[w[0]], &stats[w[1]]).is_lt())
            && crate::is_permutation(&self.order, stats.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrp_model::PageId;

    fn stats(keys: &[(f64, u64)]) -> Vec<PageStats> {
        keys.iter()
            .enumerate()
            .map(|(slot, &(pop, age))| {
                PageStats::new(slot, PageId::new(slot as u64), pop, pop.min(1.0)).with_age(age)
            })
            .collect()
    }

    #[test]
    fn build_matches_from_scratch_sort() {
        let ps = stats(&[(0.1, 3), (0.9, 1), (0.5, 2), (0.5, 9), (0.0, 0)]);
        let index = PopularityIndex::build(&ps);
        assert_eq!(index.order(), &[1, 3, 2, 0, 4]);
        assert!(index.is_consistent(&ps));
        assert_eq!(index.len(), 5);
        assert!(!index.is_empty());
    }

    #[test]
    fn repair_moves_a_promoted_slot_to_its_new_place() {
        let mut ps = stats(&[(0.9, 0), (0.7, 0), (0.5, 0), (0.3, 0), (0.1, 0)]);
        let mut index = PopularityIndex::build(&ps);
        ps[4].popularity = 0.8; // slot 4 jumps to second place
        let mut dirty = vec![4];
        index.repair(&ps, &mut dirty);
        assert_eq!(index.order(), &[0, 4, 1, 2, 3]);
        assert!(dirty.is_empty(), "repair drains the dirty list");
    }

    #[test]
    fn repair_handles_duplicates_and_multiple_slots() {
        let mut ps = stats(&[(0.9, 5), (0.7, 5), (0.5, 5), (0.3, 5), (0.1, 5)]);
        let mut index = PopularityIndex::build(&ps);
        ps[0].popularity = 0.0; // the leader collapses (a retirement)
        ps[0].age_days = 0;
        ps[3].popularity = 0.95; // a challenger overtakes everyone
        let mut dirty = vec![3, 0, 3, 0, 0];
        index.repair(&ps, &mut dirty);
        assert!(index.is_consistent(&ps));
        assert_eq!(index.order(), &[3, 1, 2, 4, 0]);
    }

    #[test]
    fn repair_with_no_dirty_slots_is_a_no_op() {
        let ps = stats(&[(0.2, 1), (0.8, 1)]);
        let mut index = PopularityIndex::build(&ps);
        let before = index.order().to_vec();
        index.repair(&ps, &mut Vec::new());
        assert_eq!(index.order(), before.as_slice());
    }

    #[test]
    fn uniform_aging_keeps_a_clean_index_consistent() {
        // All pages age by one day: no slot is dirty, and the stored order
        // must still match the comparator over the aged stats.
        let mut ps = stats(&[(0.5, 10), (0.5, 4), (0.2, 7), (0.9, 0)]);
        let mut index = PopularityIndex::build(&ps);
        for p in ps.iter_mut() {
            p.age_days += 1;
        }
        assert!(index.is_consistent(&ps));
        index.repair(&ps, &mut Vec::new());
        assert!(index.is_consistent(&ps));
    }

    #[test]
    fn rebuild_resets_after_bulk_changes() {
        let mut ps = stats(&[(0.1, 0), (0.2, 0), (0.3, 0)]);
        let mut index = PopularityIndex::build(&ps);
        ps.iter_mut()
            .for_each(|p| p.popularity = 1.0 - p.popularity);
        index.rebuild(&ps);
        assert!(index.is_consistent(&ps));
        assert_eq!(index.order(), &[0, 1, 2]);
    }

    #[test]
    fn repair_places_newly_inserted_slots() {
        // The population grows from 3 to 6 slots; the new slots arrive as
        // dirty and land exactly where a from-scratch sort would put them.
        let mut ps = stats(&[(0.6, 2), (0.2, 2), (0.4, 2)]);
        let mut index = PopularityIndex::build(&ps);
        ps.extend(
            stats(&[(0.5, 0), (0.0, 0), (0.9, 0)])
                .into_iter()
                .map(|mut p| {
                    p.slot += 3;
                    p.page = PageId::new(p.slot as u64);
                    p
                }),
        );
        let mut dirty = vec![3, 4, 5];
        index.repair(&ps, &mut dirty);
        assert!(index.is_consistent(&ps));
        assert_eq!(index.order(), &[5, 0, 3, 2, 1, 4]);
    }

    #[test]
    fn repair_grows_an_empty_index_from_all_dirty_slots() {
        // A serving corpus built entirely through inserts: the first repair
        // sees every slot dirty against an empty order.
        let ps = stats(&[(0.3, 1), (0.7, 1), (0.1, 1), (0.7, 4)]);
        let mut index = PopularityIndex::default();
        let mut dirty = vec![0, 1, 2, 3];
        index.repair(&ps, &mut dirty);
        assert!(index.is_consistent(&ps));
        assert_eq!(index.order(), &[3, 1, 0, 2]);
    }

    #[test]
    fn repair_mixes_inserts_and_key_changes() {
        let mut ps = stats(&[(0.9, 3), (0.5, 3), (0.1, 3)]);
        let mut index = PopularityIndex::build(&ps);
        ps[1].popularity = 0.95; // existing slot overtakes the leader
        let mut extra = stats(&[(0.8, 0)]);
        extra[0].slot = 3;
        extra[0].page = PageId::new(3);
        ps.extend(extra);
        let mut dirty = vec![1, 3, 1];
        index.repair(&ps, &mut dirty);
        assert!(index.is_consistent(&ps));
        assert_eq!(index.order(), &[1, 0, 3, 2]);
    }
}
