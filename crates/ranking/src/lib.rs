//! # rrp-ranking — ranking policies and the randomized rank-promotion merge
//!
//! Implements Section 4 of *"Shuffling a Stacked Deck"*: the baseline
//! popularity ranking used by conventional search engines, the hypothetical
//! quality-oracle upper bound, a fully random baseline, and the paper's
//! contribution — [`RandomizedRankPromotion`], which promotes a configurable
//! pool of pages to randomly chosen rank positions.
//!
//! ```
//! use rrp_ranking::{PageStats, PromotionConfig, RandomizedRankPromotion, RankingPolicy};
//! use rrp_model::{new_rng, PageId};
//!
//! // Three established pages and one brand-new page nobody has seen yet.
//! let pages = vec![
//!     PageStats::new(0, PageId::new(0), 0.30, 0.9),
//!     PageStats::new(1, PageId::new(1), 0.20, 0.7),
//!     PageStats::new(2, PageId::new(2), 0.10, 0.5),
//!     PageStats::new(3, PageId::new(3), 0.00, 0.0), // zero awareness
//! ];
//!
//! // The paper's recommendation: selective promotion, r = 0.1, k = 2.
//! let policy = RandomizedRankPromotion::new(PromotionConfig::recommended(2));
//! let mut rng = new_rng(42);
//! let result = policy.rank(&pages, &mut rng);
//!
//! // The top result is protected, and every page appears exactly once.
//! assert_eq!(result[0], 0);
//! assert_eq!(result.len(), 4);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod buffers;
pub mod candidates;
pub mod deterministic;
pub mod kind;
pub mod lazy;
pub mod lazyshuffle;
pub mod merge;
pub mod policy;
pub mod poolindex;
pub mod popindex;
pub mod promotion;
pub mod randomized;
pub mod stats;

pub use buffers::RankBuffers;
pub use candidates::{
    merge_ascending_slots_into, merge_shard_candidates_into, merge_shard_orders_into,
    MergedCandidates, ShardCandidates,
};
pub use deterministic::{FullyRandomRanking, PopularityRanking, QualityOracleRanking};
pub use kind::PolicyKind;
pub use lazy::SharedLazyOrder;
pub use lazyshuffle::{
    forward_shuffle, merge_promoted_top_k_lazy_into, EngineVersion, LazyShuffle,
};
pub use merge::{merge_promoted, merge_promoted_into, merge_promoted_top_k_into};
pub use policy::{is_permutation, is_permutation_with_scratch, RankingPolicy};
pub use poolindex::{PoolIndex, PoolView};
pub use popindex::PopularityIndex;
pub use promotion::{PromotionConfig, PromotionRule};
pub use randomized::RandomizedRankPromotion;
pub use stats::{popularity_order, PageStats};
