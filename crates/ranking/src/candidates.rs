//! Shard-local top-k candidate retrieval and the deterministic global
//! merge.
//!
//! A sharded serving tier that answers a top-`k` query against one
//! corpus-wide cache touches `O(n)` state per deployment even though the
//! selective promotion rule only ever reads the promotion pool plus a
//! rank-ordered prefix of the popularity order. This module brings
//! retrieval down to the shards: each shard produces a [`ShardCandidates`]
//! set — its pool members plus its first `c` *non-pool* entries in
//! popularity order (`c` from
//! [`PromotionConfig::candidate_prefix_len`](crate::PromotionConfig::candidate_prefix_len))
//! — and [`merge_shard_candidates_into`] reassembles the global structures
//! the pooled ranking path consumes:
//!
//! * the **global pool** in ascending global-slot order — exactly the
//!   scan's pre-shuffle order, so the per-query shuffle consumes the
//!   identical RNG stream as a corpus-wide
//!   [`PoolIndex`](crate::PoolIndex); and
//! * the first `c` **non-pool entries of the global popularity order** —
//!   exactly the deterministic remainder `L_d` the top-`k` merge may
//!   consume.
//!
//! The two halves have different lifetimes, and the split is what keeps
//! the per-query path cheap: the *rest* prefix depends on `k` and must be
//! retrieved per query (it is `O(k)` per shard), while the *pool* half is
//! query-independent — membership moves only when a mutation flips a
//! slot — so a serving tier merges it once per repair and reuses it
//! across every query in between (see
//! [`ShardCandidates::collect_rest`]). Only the rest entries carry
//! [`PageStats`] copies (the merge needs their sort keys); pool
//! candidates are bare global slots, so the pool half of a merge is a
//! cursor walk over `usize` streams.
//!
//! Why the k-way rest merge is *exact* (equal to a derivation from the
//! global order) even though every shard stream is truncated: each
//! shard's rest prefix is a true prefix of that shard's non-pool order,
//! and shard orders agree with the global order restricted to the shard
//! (the comparator is total and its slot tie-break is relabeled to global
//! slots, which ascend with shard-local slots). A stream can only run dry
//! in two ways: either the shard had fewer than `c` non-pool entries —
//! then *all* of them have been merged and nothing of that shard is
//! missing — or it contributed all `c` of its entries, at which point at
//! least `c` entries have been emitted in total and the merge has already
//! stopped. Either way no unseen element could have preceded an emitted
//! one.

use crate::poolindex::PoolView;
use crate::stats::{popularity_order, PageStats};

/// One shard's candidate set: everything the top-`k` promotion merge
/// could possibly read from this shard.
#[derive(Debug, Clone, Default)]
pub struct ShardCandidates {
    /// The shard's promotion-pool members as global slots, ascending.
    pool: Vec<usize>,
    /// The shard's first `limit` non-pool entries in popularity order,
    /// with `slot` rewritten to the global slot.
    rest: Vec<PageStats>,
}

impl ShardCandidates {
    /// An empty candidate set; buffers grow on first use and are reused.
    pub fn new() -> Self {
        ShardCandidates::default()
    }

    /// The shard's pool members, ascending by global slot.
    #[inline]
    pub fn pool(&self) -> &[usize] {
        &self.pool
    }

    /// The shard's non-pool popularity-order prefix.
    #[inline]
    pub fn rest(&self) -> &[PageStats] {
        &self.rest
    }

    /// Fill this set from a shard's maintained [`PoolView`]: copy the pool
    /// members (ascending local slot) and filter the shard's popularity
    /// order through the pool mask, stopping after `limit` non-pool
    /// matches — `O(pool + limit)`, no per-corpus work. Each entry is
    /// relabeled through `global_slots` (local slot → global slot), which
    /// must be strictly increasing so that shard-local order agrees with
    /// the global order's slot tie-break.
    pub fn collect(&mut self, view: PoolView<'_>, limit: usize, global_slots: &[usize]) {
        self.collect_rest(view, limit, global_slots);
        self.pool
            .extend(view.pool.members().iter().map(|&local| global_slots[local]));
    }

    /// [`collect`](Self::collect) without the pool half — the steady-state
    /// serving path: pool membership changes only on mutation, so its
    /// owner merges the pools once per repair
    /// ([`ShardedCorpusCache`](../../rrp_core/struct.ShardedCorpusCache.html)
    /// keeps the result) and per query only the `O(limit)` rest prefix is
    /// retrieved. Leaves `pool` empty.
    pub fn collect_rest(&mut self, view: PoolView<'_>, limit: usize, global_slots: &[usize]) {
        self.pool.clear();
        debug_assert_eq!(global_slots.len(), view.pages.len());
        debug_assert!(global_slots.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(
            view.pool.is_consistent(view.pages),
            "candidate retrieval requires a maintained pool index"
        );
        self.rest.clear();
        self.rest.extend(
            view.sorted
                .iter()
                .filter(|&&local| !view.pool.contains(local))
                .take(limit)
                .map(|&local| {
                    let mut stat = view.pages[local];
                    stat.slot = global_slots[local];
                    stat
                }),
        );
    }
}

/// The merged global candidate view a top-`k` query ranks against: the
/// global pool in pre-shuffle order plus the global non-pool popularity
/// prefix. Produced by [`merge_shard_candidates_into`].
#[derive(Debug, Clone, Default)]
pub struct MergedCandidates {
    /// Global pool members, ascending by global slot.
    pool: Vec<usize>,
    /// First `limit` non-pool entries of the global popularity order.
    rest: Vec<PageStats>,
    /// Scratch: per-shard stream cursors during a merge (kept here so the
    /// per-query merge is allocation-free after warm-up).
    heads: Vec<usize>,
}

impl MergedCandidates {
    /// An empty merged view; buffers grow on first use and are reused.
    pub fn new() -> Self {
        MergedCandidates::default()
    }

    /// The global pool, ascending by slot — identical in content and
    /// order to a corpus-wide
    /// [`PoolIndex::members`](crate::PoolIndex::members).
    #[inline]
    pub fn pool(&self) -> &[usize] {
        &self.pool
    }

    /// The first `limit` non-pool entries of the global popularity order —
    /// the deterministic remainder `L_d`, already truncated to what a
    /// top-`limit` merge can consume.
    #[inline]
    pub fn rest(&self) -> &[PageStats] {
        &self.rest
    }
}

/// K-way merge of disjoint ascending global-slot streams into `out`
/// (cleared first) — the pool half of the candidate merge, factored out
/// so the repair-time maintained pool merge (a
/// `ShardedCorpusCache`'s) runs the *same* procedure as the per-query
/// candidate form and the two can never diverge. `stream_len(s)` and
/// `slot_at(s, i)` describe stream `s`; `heads` is caller scratch
/// (cursor per stream, reused across calls).
pub fn merge_ascending_slots_into(
    streams: usize,
    stream_len: impl Fn(usize) -> usize,
    slot_at: impl Fn(usize, usize) -> usize,
    heads: &mut Vec<usize>,
    out: &mut Vec<usize>,
) {
    out.clear();
    heads.clear();
    heads.resize(streams, 0);
    loop {
        let mut best: Option<(usize, usize)> = None;
        for (stream, &head) in heads.iter().enumerate() {
            if head < stream_len(stream) {
                let slot = slot_at(stream, head);
                if best.is_none_or(|(_, b)| slot < b) {
                    best = Some((stream, slot));
                }
            }
        }
        let Some((stream, slot)) = best else { break };
        out.push(slot);
        heads[stream] += 1;
    }
    debug_assert!(out.windows(2).all(|w| w[0] < w[1]));
}

/// The shared core of every stat-keyed shard merge: k-way merge streams of
/// [`PageStats`] — each already sorted by [`popularity_order`] — emitting
/// entries in global popularity order until `limit` entries have been
/// emitted or every stream has run dry. `stream_len(s)` and `stat_at(s, i)`
/// describe stream `s` (entries must carry *global* slots, and streams must
/// be disjoint in them); `heads` is caller scratch, reused across calls.
///
/// Shard counts are deployment-sized (a handful to a few dozen), so a
/// linear scan over the stream heads beats a binary heap's bookkeeping.
fn merge_stat_streams(
    streams: usize,
    stream_len: impl Fn(usize) -> usize,
    stat_at: impl Fn(usize, usize) -> PageStats,
    limit: usize,
    heads: &mut Vec<usize>,
    mut emit: impl FnMut(PageStats),
) {
    heads.clear();
    heads.resize(streams, 0);
    let mut emitted = 0usize;
    while emitted < limit {
        let mut best: Option<(usize, PageStats)> = None;
        for (stream, &head) in heads.iter().enumerate() {
            if head < stream_len(stream) {
                let stat = stat_at(stream, head);
                if best
                    .as_ref()
                    .is_none_or(|(_, b)| popularity_order(&stat, b).is_lt())
                {
                    best = Some((stream, stat));
                }
            }
        }
        let Some((stream, stat)) = best else { break };
        emit(stat);
        heads[stream] += 1;
        emitted += 1;
    }
}

/// K-way merge of *complete* per-shard popularity orders into the global
/// popularity order, written into `out` (cleared first) as global slots.
///
/// This is [`merge_shard_candidates_into`]'s rest merge with the prefix
/// cap dropped: every stream is a shard's full order (relabeled to global
/// slots via `stat_at`), so the merge reassembles the *entire* global
/// popularity order — the structure a full rerank and the Uniform rule's
/// per-page coin scan consume. Exactness needs no truncation argument
/// here: the streams are complete, the comparator is total, and its
/// global-slot tie-break makes the merge order unique.
pub fn merge_shard_orders_into(
    streams: usize,
    stream_len: impl Fn(usize) -> usize,
    stat_at: impl Fn(usize, usize) -> PageStats,
    heads: &mut Vec<usize>,
    out: &mut Vec<usize>,
) {
    out.clear();
    merge_stat_streams(streams, stream_len, stat_at, usize::MAX, heads, |stat| {
        out.push(stat.slot)
    });
}

/// Deterministically k-way merge per-shard candidate sets into the global
/// candidate view, writing into `merged` (cleared first; storage reused):
///
/// * `merged.pool` — all shard pools merged by ascending slot: exactly
///   the global pool in the scan's pre-shuffle order (empty when the
///   candidates were collected rest-only);
/// * `merged.rest` — shard rest prefixes merged by
///   [`popularity_order`], stopping after `limit` entries: exactly the
///   first `limit` non-pool entries of the global popularity order
///   (see the module docs for why truncated shard streams cannot lose an
///   element).
///
/// Shard candidate sets must be disjoint in global slots (they come from a
/// partition of the corpus) and each collected with a `limit` of at least
/// this call's `limit`.
pub fn merge_shard_candidates_into(
    shards: &[ShardCandidates],
    limit: usize,
    merged: &mut MergedCandidates,
) {
    let MergedCandidates { pool, rest, heads } = merged;
    rest.clear();

    merge_ascending_slots_into(
        shards.len(),
        |s| shards[s].pool.len(),
        |s, i| shards[s].pool[i],
        heads,
        pool,
    );

    merge_stat_streams(
        shards.len(),
        |s| shards[s].rest.len(),
        |s, i| shards[s].rest[i],
        limit,
        heads,
        |stat| rest.push(stat),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poolindex::PoolIndex;
    use crate::popindex::PopularityIndex;
    use rrp_model::PageId;

    /// A corpus where every third slot is unexplored and popularity ties
    /// (including across the pool/non-pool boundary) exercise the age and
    /// slot tie-breaks.
    fn corpus(n: usize) -> Vec<PageStats> {
        (0..n)
            .map(|slot| {
                let unexplored = slot % 3 == 0;
                let (pop, aw) = if unexplored {
                    (((slot % 5) as f64) * 0.1, 0.0)
                } else {
                    (1.0 - ((slot % 7) as f64) * 0.1, 0.6)
                };
                PageStats::new(slot, PageId::new(slot as u64), pop, aw).with_age((slot % 4) as u64)
            })
            .collect()
    }

    /// Partition `stats` into `shards` shard-local corpora (dense local
    /// slots) by a deterministic routing, returning per-shard stats and
    /// the local→global slot maps.
    fn partition(stats: &[PageStats], shards: usize) -> Vec<(Vec<PageStats>, Vec<usize>)> {
        let mut out: Vec<(Vec<PageStats>, Vec<usize>)> = vec![Default::default(); shards];
        for stat in stats {
            let shard = (stat.slot * 7 + 3) % shards;
            let (locals, globals) = &mut out[shard];
            let mut local = *stat;
            local.slot = locals.len();
            locals.push(local);
            globals.push(stat.slot);
        }
        out
    }

    fn collect_all(stats: &[PageStats], shards: usize, limit: usize) -> Vec<ShardCandidates> {
        partition(stats, shards)
            .iter()
            .map(|(locals, globals)| {
                let order = PopularityIndex::build(locals);
                let pool = PoolIndex::build(locals);
                let mut candidates = ShardCandidates::new();
                candidates.collect(PoolView::new(locals, order.order(), &pool), limit, globals);
                candidates
            })
            .collect()
    }

    #[test]
    fn merged_pool_equals_the_global_pool_index() {
        let stats = corpus(40);
        let global_pool = PoolIndex::build(&stats);
        for shards in [1usize, 2, 3, 8] {
            let candidates = collect_all(&stats, shards, 5);
            let mut merged = MergedCandidates::new();
            merge_shard_candidates_into(&candidates, 5, &mut merged);
            assert_eq!(merged.pool(), global_pool.members(), "{shards} shards");
        }
    }

    #[test]
    fn merged_rest_equals_the_global_non_pool_prefix() {
        let stats = corpus(40);
        let order = PopularityIndex::build(&stats);
        let pool = PoolIndex::build(&stats);
        for limit in [0usize, 1, 4, 11, 100] {
            let expected: Vec<usize> = order
                .order()
                .iter()
                .copied()
                .filter(|&s| !pool.contains(s))
                .take(limit)
                .collect();
            for shards in [1usize, 2, 3, 8] {
                let candidates = collect_all(&stats, shards, limit);
                let mut merged = MergedCandidates::new();
                merge_shard_candidates_into(&candidates, limit, &mut merged);
                let slots: Vec<usize> = merged.rest().iter().map(|p| p.slot).collect();
                assert_eq!(slots, expected, "{shards} shards, limit {limit}");
            }
        }
    }

    #[test]
    fn merged_complete_orders_equal_the_global_popularity_order() {
        let stats = corpus(40);
        let expected = PopularityIndex::build(&stats).order().to_vec();
        let (mut heads, mut out) = (Vec::new(), Vec::new());
        for shards in [1usize, 2, 3, 8] {
            let parts = partition(&stats, shards);
            let orders: Vec<Vec<usize>> = parts
                .iter()
                .map(|(locals, _)| PopularityIndex::build(locals).order().to_vec())
                .collect();
            merge_shard_orders_into(
                shards,
                |s| orders[s].len(),
                |s, i| {
                    let local = orders[s][i];
                    let (locals, globals) = &parts[s];
                    let mut stat = locals[local];
                    stat.slot = globals[local];
                    stat
                },
                &mut heads,
                &mut out,
            );
            assert_eq!(out, expected, "{shards} shards");
        }
        merge_shard_orders_into(0, |_| 0, |_, _| unreachable!(), &mut heads, &mut out);
        assert!(out.is_empty(), "no streams merge to an empty order");
    }

    #[test]
    fn rest_only_collection_matches_the_full_collection_rest() {
        let stats = corpus(36);
        for shards in [1usize, 3] {
            let full = collect_all(&stats, shards, 6);
            let rest_only: Vec<ShardCandidates> = partition(&stats, shards)
                .iter()
                .map(|(locals, globals)| {
                    let order = PopularityIndex::build(locals);
                    let pool = PoolIndex::build(locals);
                    let mut candidates = ShardCandidates::new();
                    candidates.collect_rest(
                        PoolView::new(locals, order.order(), &pool),
                        6,
                        globals,
                    );
                    candidates
                })
                .collect();
            for (a, b) in full.iter().zip(&rest_only) {
                assert_eq!(a.rest(), b.rest(), "{shards} shards");
                assert!(b.pool().is_empty(), "rest-only collection skips the pool");
            }
        }
    }

    #[test]
    fn high_popularity_pool_members_never_crowd_out_the_rest_prefix() {
        // Pool members can outrank every established page (an unexplored
        // document may carry any popularity score), yet the rest prefix
        // must still deliver `limit` established entries: the collect
        // filter skips pool members instead of truncating around them.
        let mut stats = corpus(30);
        for stat in stats.iter_mut() {
            if stat.is_unexplored() {
                stat.popularity = 9.0;
            }
        }
        let order = PopularityIndex::build(&stats);
        let pool = PoolIndex::build(&stats);
        let expected: Vec<usize> = order
            .order()
            .iter()
            .copied()
            .filter(|&s| !pool.contains(s))
            .take(6)
            .collect();
        assert_eq!(expected.len(), 6);
        for shards in [2usize, 5] {
            let candidates = collect_all(&stats, shards, 6);
            let mut merged = MergedCandidates::new();
            merge_shard_candidates_into(&candidates, 6, &mut merged);
            let slots: Vec<usize> = merged.rest().iter().map(|p| p.slot).collect();
            assert_eq!(slots, expected, "{shards} shards");
        }
    }

    #[test]
    fn empty_shards_and_empty_sets_merge_to_empty() {
        let mut merged = MergedCandidates::new();
        merge_shard_candidates_into(&[], 5, &mut merged);
        assert!(merged.pool().is_empty());
        assert!(merged.rest().is_empty());
        let empties = vec![ShardCandidates::new(); 3];
        merge_shard_candidates_into(&empties, 5, &mut merged);
        assert!(merged.pool().is_empty());
        assert!(merged.rest().is_empty());
    }
}
