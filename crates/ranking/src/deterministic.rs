//! Baseline ranking policies that involve no rank promotion.
//!
//! * [`PopularityRanking`] — the standard search-engine behaviour the paper
//!   calls "nonrandomized ranking": strictly descending popularity.
//! * [`QualityOracleRanking`] — the hypothetical ideal that ranks by
//!   intrinsic quality; it defines the QPC = 1.0 normalisation used in
//!   Figures 5–7.
//! * [`FullyRandomRanking`] — the opposite extreme: a uniformly random
//!   permutation each query, corresponding to `F(x) = v/n` in Section 5.

use crate::buffers::RankBuffers;
use crate::policy::RankingPolicy;
use crate::stats::{popularity_order, PageStats};
use rand::seq::SliceRandom;
use rand::RngCore;

/// Strict deterministic ranking by descending popularity (ties broken by
/// age, then slot index).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PopularityRanking;

impl PopularityRanking {
    /// The deterministic ordering, written into `out` (cleared first) —
    /// no RNG involved, shared by the trait impl and the enum dispatch.
    pub fn rank_order_into(&self, pages: &[PageStats], out: &mut Vec<usize>) {
        out.clear();
        out.extend(0..pages.len());
        // `popularity_order` is a total order (slot index breaks all ties),
        // so the allocation-free unstable sort yields the same permutation
        // as a stable sort would.
        out.sort_unstable_by(|&a, &b| popularity_order(&pages[a], &pages[b]));
        for index in out.iter_mut() {
            *index = pages[*index].slot;
        }
    }
}

impl RankingPolicy for PopularityRanking {
    fn rank_into(
        &self,
        pages: &[PageStats],
        _rng: &mut dyn RngCore,
        _buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    ) {
        self.rank_order_into(pages, out);
    }

    fn name(&self) -> String {
        "no randomization".to_owned()
    }
}

/// Hypothetical ideal ranking by descending intrinsic quality.
///
/// No real engine can implement this (quality is unobservable); it exists to
/// compute the theoretical upper bound on quality-per-click against which
/// all other policies are normalised.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QualityOracleRanking;

impl QualityOracleRanking {
    /// The quality ordering, written into `out` (cleared first) — no RNG
    /// involved, shared by the trait impl and the enum dispatch.
    pub fn rank_order_into(&self, pages: &[PageStats], out: &mut Vec<usize>) {
        out.clear();
        out.extend(0..pages.len());
        out.sort_unstable_by(|&a, &b| {
            pages[b]
                .quality
                .partial_cmp(&pages[a].quality)
                .expect("quality is never NaN")
                .then_with(|| pages[a].slot.cmp(&pages[b].slot))
        });
        for index in out.iter_mut() {
            *index = pages[*index].slot;
        }
    }
}

impl RankingPolicy for QualityOracleRanking {
    fn rank_into(
        &self,
        pages: &[PageStats],
        _rng: &mut dyn RngCore,
        _buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    ) {
        self.rank_order_into(pages, out);
    }

    fn name(&self) -> String {
        "quality oracle".to_owned()
    }
}

/// Uniformly random ranking: every permutation is equally likely, each
/// query. Corresponds to the completely random case `F(x) = v · 1/n`
/// discussed below Equation 2 of the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FullyRandomRanking;

impl FullyRandomRanking {
    /// The uniform shuffle, written into `out` (cleared first) — the one
    /// definition of this policy's draw order, shared by the trait impl
    /// and the enum dispatch. Generic over the RNG so concrete generators
    /// inline.
    pub fn shuffle_into<R: RngCore + ?Sized>(
        &self,
        pages: &[PageStats],
        rng: &mut R,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        out.extend(pages.iter().map(|p| p.slot));
        out.shuffle(rng);
    }
}

impl RankingPolicy for FullyRandomRanking {
    fn rank_into(
        &self,
        pages: &[PageStats],
        rng: &mut dyn RngCore,
        _buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    ) {
        self.shuffle_into(pages, rng, out);
    }

    fn name(&self) -> String {
        "fully random".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::is_permutation;
    use rrp_model::{new_rng, PageId};

    fn pages() -> Vec<PageStats> {
        vec![
            PageStats::new(0, PageId::new(0), 0.05, 0.5).with_quality(0.40),
            PageStats::new(1, PageId::new(1), 0.30, 0.9).with_quality(0.30),
            PageStats::new(2, PageId::new(2), 0.00, 0.0).with_quality(0.39),
            PageStats::new(3, PageId::new(3), 0.10, 0.4).with_quality(0.01),
        ]
    }

    #[test]
    fn popularity_ranking_is_descending_popularity() {
        let mut rng = new_rng(0);
        let order = PopularityRanking.rank(&pages(), &mut rng);
        assert_eq!(order, vec![1, 3, 0, 2]);
        assert!(is_permutation(&order, 4));
        assert_eq!(PopularityRanking.name(), "no randomization");
    }

    #[test]
    fn quality_oracle_ignores_popularity() {
        let mut rng = new_rng(0);
        let order = QualityOracleRanking.rank(&pages(), &mut rng);
        assert_eq!(order, vec![0, 2, 1, 3]);
        assert!(QualityOracleRanking.name().contains("oracle"));
    }

    #[test]
    fn fully_random_is_a_permutation_and_varies() {
        let mut rng = new_rng(1);
        let policy = FullyRandomRanking;
        let a = policy.rank(&pages(), &mut rng);
        assert!(is_permutation(&a, 4));
        // Over many draws every slot must appear at rank 1 at least once.
        let mut seen_first = [false; 4];
        for _ in 0..200 {
            let o = policy.rank(&pages(), &mut rng);
            seen_first[o[0]] = true;
        }
        assert!(
            seen_first.iter().all(|&s| s),
            "random ranking should explore all first slots"
        );
    }

    #[test]
    fn deterministic_policies_ignore_rng_state() {
        let mut rng_a = new_rng(1);
        let mut rng_b = new_rng(999);
        assert_eq!(
            PopularityRanking.rank(&pages(), &mut rng_a),
            PopularityRanking.rank(&pages(), &mut rng_b)
        );
    }

    #[test]
    fn empty_input_yields_empty_ranking() {
        let mut rng = new_rng(0);
        assert!(PopularityRanking.rank(&[], &mut rng).is_empty());
        assert!(FullyRandomRanking.rank(&[], &mut rng).is_empty());
        assert!(QualityOracleRanking.rank(&[], &mut rng).is_empty());
    }

    #[test]
    fn ranking_returns_slot_indices_not_positions() {
        // Slots need not be 0..n in order of the input slice.
        let mut ps = pages();
        ps.reverse();
        let mut rng = new_rng(0);
        let order = PopularityRanking.rank(&ps, &mut rng);
        assert_eq!(order, vec![1, 3, 0, 2]);
    }
}
