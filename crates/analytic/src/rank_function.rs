//! The popularity → expected-rank → expected-visits machinery
//! (`F1`, `F1'` and the assembly of `F = F2 ∘ F1` from Section 5.3).
//!
//! [`RankComputer`] holds one iteration's steady-state awareness
//! distributions (per quality group) and answers two questions:
//!
//! * what is the expected rank of a page of popularity `x` under
//!   nonrandomized ranking (`F1`, Equation 5)?
//! * what is the expected *visit rate* of a page of popularity `x` under a
//!   given [`RankingModel`] — nonrandomized, selective promotion or uniform
//!   promotion?
//!
//! For positive popularity the paper's approximation `F(x) = F2(F1'(x))`
//! (visits at the expected rank) is used. For zero-popularity pages the
//! expected-rank shortcut would be badly wrong — a promoted page sometimes
//! lands at rank 1 and `F2` is highly convex — so `F(0)` is computed as the
//! *average visit rate over the positions the zero-awareness pages occupy*,
//! which is the quantity the awareness balance equations actually need.
//! (The paper notes "the case of x = 0 must be handled separately".)

use crate::quality_groups::QualityGroup;
use rrp_attention::RankBias;
use serde::{Deserialize, Serialize};

/// Which ranking scheme the analytic model describes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RankingModel {
    /// Strict descending-popularity ranking (the baseline).
    NonRandomized,
    /// Selective randomized promotion: pool = zero-awareness pages.
    Selective {
        /// Starting rank `k ≥ 1` (top `k − 1` results protected).
        start_rank: usize,
        /// Degree of randomization `r ∈ [0, 1]`.
        degree: f64,
    },
    /// Uniform randomized promotion: every page pooled with probability `r`.
    Uniform {
        /// Starting rank `k ≥ 1` (top `k − 1` results protected).
        start_rank: usize,
        /// Degree of randomization `r ∈ [0, 1]`.
        degree: f64,
    },
}

impl RankingModel {
    /// Human-readable label used in reports.
    pub fn label(&self) -> String {
        match self {
            RankingModel::NonRandomized => "no randomization".to_owned(),
            RankingModel::Selective { start_rank, degree } => {
                format!("selective (r={degree:.2}, k={start_rank})")
            }
            RankingModel::Uniform { start_rank, degree } => {
                format!("uniform (r={degree:.2}, k={start_rank})")
            }
        }
    }

    /// Validate parameters (`k ≥ 1`, `r ∈ [0, 1]`).
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            RankingModel::NonRandomized => Ok(()),
            RankingModel::Selective { start_rank, degree }
            | RankingModel::Uniform { start_rank, degree } => {
                if start_rank == 0 {
                    return Err("start rank must be ≥ 1 (ranks are 1-based)".to_owned());
                }
                if !(0.0..=1.0).contains(&degree) || !degree.is_finite() {
                    return Err(format!(
                        "degree of randomization {degree} must be in [0, 1]"
                    ));
                }
                Ok(())
            }
        }
    }
}

/// Per-iteration rank/visit computer.
#[derive(Debug)]
pub struct RankComputer<'a> {
    groups: &'a [QualityGroup],
    /// Suffix sums of the awareness distribution per group:
    /// `suffix[g][i] = Σ_{j ≥ i} f_g(a_j)`.
    suffix: Vec<Vec<f64>>,
    /// Number of monitored users `m`.
    m: usize,
    /// Number of pages `n`.
    n: usize,
    /// Expected number of zero-awareness pages `z`.
    z: f64,
    /// Rank-bias law normalised to the monitored visit budget `v`.
    bias: &'a RankBias,
    /// Cumulative visits by rank: `cum[j] = Σ_{i=1..j} F2(i)`, `cum[0] = 0`.
    cumulative_visits: Vec<f64>,
}

impl<'a> RankComputer<'a> {
    /// Build a computer from one iteration's awareness distributions.
    ///
    /// `awareness[g]` must have `m + 1` entries and sum to 1.
    pub fn new(
        groups: &'a [QualityGroup],
        awareness: &[Vec<f64>],
        monitored_users: usize,
        bias: &'a RankBias,
    ) -> Self {
        assert_eq!(groups.len(), awareness.len(), "one distribution per group");
        let m = monitored_users;
        let n: usize = groups.iter().map(|g| g.count).sum();
        assert_eq!(
            bias.positions(),
            n,
            "rank-bias law must cover exactly the n pages"
        );

        let mut suffix = Vec::with_capacity(groups.len());
        let mut z = 0.0;
        for (group, dist) in groups.iter().zip(awareness) {
            assert_eq!(
                dist.len(),
                m + 1,
                "awareness distribution must have m+1 levels"
            );
            let mut s = vec![0.0; m + 2];
            for i in (0..=m).rev() {
                s[i] = s[i + 1] + dist[i];
            }
            z += group.count as f64 * dist[0];
            suffix.push(s);
        }

        let mut cumulative_visits = Vec::with_capacity(n + 1);
        cumulative_visits.push(0.0);
        for rank in 1..=n {
            cumulative_visits.push(cumulative_visits[rank - 1] + bias.visits_at_rank(rank));
        }

        RankComputer {
            groups,
            suffix,
            m,
            n,
            z,
            bias,
            cumulative_visits,
        }
    }

    /// Expected number of zero-awareness pages `z`.
    pub fn zero_awareness_pages(&self) -> f64 {
        self.z
    }

    /// Number of pages `n`.
    pub fn pages(&self) -> usize {
        self.n
    }

    /// Expected number of pages whose popularity strictly exceeds `x`.
    pub fn count_above(&self, x: f64) -> f64 {
        let mut count = 0.0;
        for (group, suffix) in self.groups.iter().zip(&self.suffix) {
            if group.quality <= 0.0 || group.quality <= x {
                // Even full awareness cannot push popularity above x
                // (popularity = a·q ≤ q ≤ x).
                continue;
            }
            // a_i·q > x  ⇔  i > m·x/q  ⇔  i ≥ floor(m·x/q) + 1.
            let threshold = (self.m as f64 * x / group.quality).floor() as usize + 1;
            if threshold <= self.m {
                count += group.count as f64 * suffix[threshold];
            }
        }
        count
    }

    /// Expected rank of a page of popularity `x > 0` under nonrandomized
    /// ranking (`F1`, Equation 5).
    pub fn expected_rank_nonrandomized(&self, x: f64) -> f64 {
        1.0 + self.count_above(x)
    }

    /// Expected rank of a zero-popularity page under nonrandomized ranking:
    /// below every positive-popularity page, in the middle of the
    /// zero-popularity block (ties broken arbitrarily).
    pub fn expected_rank_of_zero_popularity(&self) -> f64 {
        let positive = self.n as f64 - self.z;
        positive + (self.z + 1.0) / 2.0
    }

    /// Sum of `F2(i)` for integer ranks `i` in `[from, to]` (1-based,
    /// inclusive), clamped to `[1, n]`. Fractional bounds are rounded
    /// outward/inward to whole ranks.
    fn visits_in_rank_range(&self, from: f64, to: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let lo = from.ceil().max(1.0) as usize;
        let hi = (to.floor() as usize).min(self.n);
        if lo > hi {
            return 0.0;
        }
        self.cumulative_visits[hi] - self.cumulative_visits[lo - 1]
    }

    /// Expected visit rate of a page of popularity `x > 0` under `model`.
    pub fn expected_visits_positive(&self, x: f64, model: &RankingModel) -> f64 {
        let f1 = self.expected_rank_nonrandomized(x);
        match *model {
            RankingModel::NonRandomized => self.bias.visits_at_fractional_rank(f1),
            RankingModel::Selective { start_rank, degree } => {
                let k = start_rank as f64;
                let rank = if f1 < k {
                    f1
                } else {
                    // F1'(x) = F1(x) + min(r (F1(x) − k + 1)/(1 − r), z)
                    let displacement = if degree >= 1.0 {
                        self.z
                    } else {
                        (degree * (f1 - k + 1.0) / (1.0 - degree)).min(self.z)
                    };
                    f1 + displacement
                };
                self.bias.visits_at_fractional_rank(rank.min(self.n as f64))
            }
            RankingModel::Uniform { start_rank, degree } => {
                let k = start_rank as f64;
                // Not pooled (probability 1 − r): rank among non-pooled
                // pages, stretched by the pooled pages interleaved after
                // the protected prefix.
                let not_pooled_visits = if degree >= 1.0 {
                    0.0
                } else {
                    let rank_np = 1.0 + (1.0 - degree) * (f1 - 1.0);
                    let stretched = if rank_np < k {
                        rank_np
                    } else {
                        (k - 1.0) + (rank_np - (k - 1.0)) / (1.0 - degree)
                    };
                    self.bias
                        .visits_at_fractional_rank(stretched.min(self.n as f64))
                };
                // Pooled (probability r): the page lands at a roughly
                // uniformly distributed position ≥ k, so its expected visit
                // rate is the average of F2 over those positions.
                let pooled_visits = self.mean_visits_from_rank(start_rank);
                (1.0 - degree) * not_pooled_visits + degree * pooled_visits
            }
        }
    }

    /// Average `F2` over positions `start_rank ..= n`.
    fn mean_visits_from_rank(&self, start_rank: usize) -> f64 {
        let k = start_rank.max(1);
        if k > self.n {
            return 0.0;
        }
        let total = self.visits_in_rank_range(k as f64, self.n as f64);
        total / (self.n - k + 1) as f64
    }

    /// Expected visit rate of a zero-popularity (zero-awareness) page under
    /// `model`.
    ///
    /// This is computed as total visits reaching such pages divided by their
    /// expected count `z`, which is the exact quantity the awareness balance
    /// equations need (and avoids the convexity error of evaluating `F2` at
    /// an expected rank).
    pub fn expected_visits_zero(&self, model: &RankingModel) -> f64 {
        if self.z <= 0.0 || self.n == 0 {
            return 0.0;
        }
        match *model {
            RankingModel::NonRandomized => {
                // Zero-popularity pages occupy the bottom z ranks.
                let from = self.n as f64 - self.z + 1.0;
                self.visits_in_rank_range(from, self.n as f64) / self.z
            }
            RankingModel::Selective { start_rank, degree } => {
                if degree <= 0.0 {
                    let from = self.n as f64 - self.z + 1.0;
                    return self.visits_in_rank_range(from, self.n as f64) / self.z;
                }
                let pool_visits = self.promoted_pool_visits(start_rank, degree, self.z);
                pool_visits / self.z
            }
            RankingModel::Uniform { start_rank, degree } => {
                // With probability r the page is pooled and receives the
                // average over positions ≥ k; otherwise it sits at the
                // bottom of the deterministic list (stretched by pooling).
                let pooled = self.mean_visits_from_rank(start_rank);
                let not_pooled = if degree >= 1.0 {
                    0.0
                } else {
                    let f1 = self.expected_rank_of_zero_popularity();
                    let k = start_rank as f64;
                    let rank_np = 1.0 + (1.0 - degree) * (f1 - 1.0);
                    let stretched = if rank_np < k {
                        rank_np
                    } else {
                        (k - 1.0) + (rank_np - (k - 1.0)) / (1.0 - degree)
                    };
                    self.bias
                        .visits_at_fractional_rank(stretched.min(self.n as f64))
                };
                degree * pooled + (1.0 - degree) * not_pooled
            }
        }
    }

    /// Total expected visits per day reaching the promotion pool when the
    /// pool holds `pool_size` pages, under selective promotion with
    /// parameters (`start_rank`, `degree`).
    ///
    /// Positions before `start_rank` never hold pool pages. From
    /// `start_rank` onward each position holds a pool page with probability
    /// `degree` until one of the two lists is exhausted; the remaining
    /// positions are filled entirely from the list that is left.
    fn promoted_pool_visits(&self, start_rank: usize, degree: f64, pool_size: f64) -> f64 {
        let k = start_rank.max(1) as f64;
        let n = self.n as f64;
        let established = (n - pool_size).max(0.0);
        if degree >= 1.0 {
            // All of the pool is placed immediately after the protected
            // prefix.
            let prefix_end = (k - 1.0).min(established);
            return self.visits_in_rank_range(prefix_end + 1.0, prefix_end + pool_size);
        }
        // Interleaving region: pool density `degree` per position, starting
        // at rank k. The pool is exhausted after pool_size/degree positions;
        // the established list after (k-1) + established_remaining/(1-degree)
        // positions (established pages also fill ranks 1..k-1).
        let established_after_prefix = (established - (k - 1.0)).max(0.0);
        let pool_end = (k - 1.0) + pool_size / degree;
        let established_end = (k - 1.0) + established_after_prefix / (1.0 - degree);
        if pool_end <= established_end {
            // Pool exhausted first: density `degree` over [k, pool_end].
            degree * self.visits_in_rank_range(k, pool_end.min(n))
        } else {
            // Established list exhausted first: density `degree` up to
            // established_end, then every remaining position is pool.
            degree * self.visits_in_rank_range(k, established_end.min(n))
                + self.visits_in_rank_range(established_end + 1.0, n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::awareness::awareness_distribution;
    use crate::quality_groups::QualityGroups;
    use rrp_model::PowerLawQuality;

    const LAMBDA: f64 = 1.0 / 547.5;

    /// A small synthetic steady state: 2 groups, m = 10 monitored users.
    fn small_computer<'a>(
        groups: &'a [QualityGroup],
        awareness: &[Vec<f64>],
        bias: &'a RankBias,
    ) -> RankComputer<'a> {
        RankComputer::new(groups, awareness, 10, bias)
    }

    fn two_groups() -> Vec<QualityGroup> {
        vec![
            QualityGroup {
                quality: 0.4,
                count: 2,
            },
            QualityGroup {
                quality: 0.1,
                count: 8,
            },
        ]
    }

    /// Awareness distribution with all mass at one level `i` for each group.
    fn point_mass(m: usize, i: usize) -> Vec<f64> {
        let mut v = vec![0.0; m + 1];
        v[i] = 1.0;
        v
    }

    #[test]
    fn count_above_with_point_masses() {
        let groups = two_groups();
        // High-quality pages fully aware (popularity 0.4); low-quality pages
        // half aware (popularity 0.05).
        let awareness = vec![point_mass(10, 10), point_mass(10, 5)];
        let bias = RankBias::altavista(10, 100.0);
        let rc = small_computer(&groups, &awareness, &bias);
        assert_eq!(rc.pages(), 10);
        assert!((rc.count_above(0.2) - 2.0).abs() < 1e-9);
        assert!((rc.count_above(0.04) - 10.0).abs() < 1e-9);
        assert!((rc.count_above(0.05) - 2.0).abs() < 1e-9, "strictly above");
        assert!((rc.count_above(0.5) - 0.0).abs() < 1e-9);
        assert!((rc.expected_rank_nonrandomized(0.2) - 3.0).abs() < 1e-9);
        assert_eq!(rc.zero_awareness_pages(), 0.0);
    }

    #[test]
    fn zero_popularity_rank_is_in_the_middle_of_the_zero_block() {
        let groups = two_groups();
        // Everyone at zero awareness.
        let awareness = vec![point_mass(10, 0), point_mass(10, 0)];
        let bias = RankBias::altavista(10, 100.0);
        let rc = small_computer(&groups, &awareness, &bias);
        assert!((rc.zero_awareness_pages() - 10.0).abs() < 1e-9);
        assert!((rc.expected_rank_of_zero_popularity() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn nonrandomized_visits_decrease_with_lower_popularity() {
        let dist = PowerLawQuality::paper_default();
        let groups = QualityGroups::from_distribution(&dist, 1_000);
        let m = 50;
        let awareness: Vec<Vec<f64>> = groups
            .groups()
            .iter()
            .map(|g| awareness_distribution(|x| 0.01 + 0.5 * x, g.quality, m, LAMBDA))
            .collect();
        let bias = RankBias::altavista(1_000, 100.0);
        let rc = RankComputer::new(groups.groups(), &awareness, m, &bias);
        let hi = rc.expected_visits_positive(0.4, &RankingModel::NonRandomized);
        let mid = rc.expected_visits_positive(0.05, &RankingModel::NonRandomized);
        let lo = rc.expected_visits_positive(0.001, &RankingModel::NonRandomized);
        assert!(hi > mid, "hi {hi} mid {mid}");
        assert!(mid > lo, "mid {mid} lo {lo}");
    }

    #[test]
    fn selective_promotion_raises_zero_popularity_visits() {
        let dist = PowerLawQuality::paper_default();
        let groups = QualityGroups::from_distribution(&dist, 10_000);
        let m = 100;
        // Entrenchment-like steady state: low base visit rate.
        let awareness: Vec<Vec<f64>> = groups
            .groups()
            .iter()
            .map(|g| awareness_distribution(|x| 0.0002 + 0.2 * x, g.quality, m, LAMBDA))
            .collect();
        let bias = RankBias::altavista(10_000, 100.0);
        let rc = RankComputer::new(groups.groups(), &awareness, m, &bias);

        let baseline = rc.expected_visits_zero(&RankingModel::NonRandomized);
        let selective = rc.expected_visits_zero(&RankingModel::Selective {
            start_rank: 1,
            degree: 0.2,
        });
        let uniform = rc.expected_visits_zero(&RankingModel::Uniform {
            start_rank: 1,
            degree: 0.2,
        });
        assert!(
            selective > 10.0 * baseline,
            "selective F(0) {selective} should dwarf baseline {baseline}"
        );
        assert!(
            selective > uniform,
            "selective F(0) {selective} should beat uniform {uniform}"
        );
        assert!(uniform > baseline);
    }

    #[test]
    fn selective_promotion_costs_established_pages_some_visits() {
        let dist = PowerLawQuality::paper_default();
        let groups = QualityGroups::from_distribution(&dist, 1_000);
        let m = 100;
        let awareness: Vec<Vec<f64>> = groups
            .groups()
            .iter()
            .map(|g| awareness_distribution(|x| 0.001 + 0.3 * x, g.quality, m, LAMBDA))
            .collect();
        let bias = RankBias::altavista(1_000, 100.0);
        let rc = RankComputer::new(groups.groups(), &awareness, m, &bias);
        let model = RankingModel::Selective {
            start_rank: 1,
            degree: 0.2,
        };
        for &x in &[0.4, 0.2, 0.05, 0.01] {
            let with = rc.expected_visits_positive(x, &model);
            let without = rc.expected_visits_positive(x, &RankingModel::NonRandomized);
            assert!(
                with <= without + 1e-12,
                "promotion must not increase an established page's visits (x={x})"
            );
        }
    }

    #[test]
    fn protected_prefix_is_unaffected_by_selective_promotion() {
        let groups = two_groups();
        // High-quality pages fully aware -> rank 1 and 2; low-quality at 0.
        let awareness = vec![point_mass(10, 10), point_mass(10, 0)];
        let bias = RankBias::altavista(10, 100.0);
        let rc = small_computer(&groups, &awareness, &bias);
        let model = RankingModel::Selective {
            start_rank: 4,
            degree: 0.9,
        };
        // A page of popularity 0.39 has expected rank 1 + 2 = 3 < k = 4
        // (both quality-0.4 pages are fully aware, popularity 0.4 > 0.39),
        // so it is protected and keeps its nonrandomized visit rate.
        let x = 0.39;
        let with = rc.expected_visits_positive(x, &model);
        let without = rc.expected_visits_positive(x, &RankingModel::NonRandomized);
        assert!((with - without).abs() < 1e-12);
    }

    #[test]
    fn uniform_model_interpolates_between_extremes() {
        let dist = PowerLawQuality::paper_default();
        let groups = QualityGroups::from_distribution(&dist, 1_000);
        let m = 100;
        let awareness: Vec<Vec<f64>> = groups
            .groups()
            .iter()
            .map(|g| awareness_distribution(|x| 0.001 + 0.3 * x, g.quality, m, LAMBDA))
            .collect();
        let bias = RankBias::altavista(1_000, 100.0);
        let rc = RankComputer::new(groups.groups(), &awareness, m, &bias);
        // r = 0 reduces to nonrandomized for established pages.
        let x = 0.2;
        let r0 = rc.expected_visits_positive(
            x,
            &RankingModel::Uniform {
                start_rank: 1,
                degree: 0.0,
            },
        );
        let baseline = rc.expected_visits_positive(x, &RankingModel::NonRandomized);
        assert!((r0 - baseline).abs() / baseline < 1e-9);
        // r = 1 gives everyone the average tail visit rate.
        let r1 = rc.expected_visits_positive(
            x,
            &RankingModel::Uniform {
                start_rank: 1,
                degree: 1.0,
            },
        );
        assert!((r1 - 100.0 / 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn pool_visit_mass_roughly_r_times_budget_when_pool_is_large() {
        // With a sizeable pool, k = 1, and enough established pages that the
        // deterministic list does not run out, the pool captures ≈ r·v
        // visits.
        let dist = PowerLawQuality::paper_default();
        let groups = QualityGroups::from_distribution(&dist, 10_000);
        let m = 100;
        let awareness: Vec<Vec<f64>> = groups
            .groups()
            .iter()
            .map(|g| awareness_distribution(|_| 0.01, g.quality, m, LAMBDA))
            .collect();
        let bias = RankBias::altavista(10_000, 100.0);
        let rc = RankComputer::new(groups.groups(), &awareness, m, &bias);
        let z = rc.zero_awareness_pages();
        assert!(z > 1_000.0 && z < 3_000.0, "z = {z}");
        let r = 0.2;
        let f0 = rc.expected_visits_zero(&RankingModel::Selective {
            start_rank: 1,
            degree: r,
        });
        let total_pool_visits = f0 * z;
        assert!(
            (total_pool_visits - r * 100.0).abs() < 0.15 * r * 100.0,
            "pool visits {total_pool_visits} should be ≈ {}",
            r * 100.0
        );
    }

    #[test]
    fn ranking_model_labels_and_validation() {
        assert_eq!(RankingModel::NonRandomized.label(), "no randomization");
        let s = RankingModel::Selective {
            start_rank: 2,
            degree: 0.1,
        };
        assert!(s.label().contains("selective"));
        assert!(s.validate().is_ok());
        assert!(RankingModel::Selective {
            start_rank: 0,
            degree: 0.1
        }
        .validate()
        .is_err());
        assert!(RankingModel::Uniform {
            start_rank: 1,
            degree: 1.5
        }
        .validate()
        .is_err());
        assert!(RankingModel::NonRandomized.validate().is_ok());
    }

    #[test]
    fn degree_zero_selective_equals_nonrandomized_for_zero_popularity() {
        let groups = two_groups();
        let awareness = vec![point_mass(10, 0), point_mass(10, 0)];
        let bias = RankBias::altavista(10, 100.0);
        let rc = small_computer(&groups, &awareness, &bias);
        let a = rc.expected_visits_zero(&RankingModel::NonRandomized);
        let b = rc.expected_visits_zero(&RankingModel::Selective {
            start_rank: 1,
            degree: 0.0,
        });
        assert!((a - b).abs() < 1e-12);
    }
}
