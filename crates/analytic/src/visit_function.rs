//! The popularity → visit-rate function `F(x)` and its log-log quadratic
//! representation.
//!
//! Section 5.3 of the paper finds that, across all the scenarios it tested,
//! the fixed point `F(x)` of the ranking/attention feedback loop "can be fit
//! quite accurately to a quadratic curve in log-log space":
//!
//! ```text
//! log F(x) = α · (log x)² + β · log x + γ          (x > 0)
//! ```
//!
//! Popularity 0 needs special handling (the logarithm is undefined and the
//! paper handles the `x = 0` case of the rank function separately), so
//! [`VisitFunction`] stores the value `F(0)` explicitly alongside the
//! curve.

use serde::{Deserialize, Serialize};

/// Coefficients of `log F = α (log x)² + β log x + γ`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogQuadratic {
    /// Coefficient of `(log x)²`.
    pub alpha: f64,
    /// Coefficient of `log x`.
    pub beta: f64,
    /// Constant term.
    pub gamma: f64,
}

impl LogQuadratic {
    /// Evaluate the curve at popularity `x > 0`.
    pub fn eval(&self, x: f64) -> f64 {
        debug_assert!(x > 0.0, "log-quadratic curve is only defined for x > 0");
        let lx = x.ln();
        (self.alpha * lx * lx + self.beta * lx + self.gamma).exp()
    }
}

/// The popularity → expected-monitored-visits function `F(x)` of Equation 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VisitFunction {
    /// Value at zero popularity, `F(0)`.
    zero_value: f64,
    /// Log-log quadratic curve used for `x ≥ x_floor`.
    curve: LogQuadratic,
    /// Popularities below this threshold (but positive) evaluate the curve
    /// at the threshold instead, preventing wild extrapolation of the
    /// quadratic far outside the fitted range.
    x_floor: f64,
}

impl VisitFunction {
    /// Build a visit function from its parts.
    pub fn new(zero_value: f64, curve: LogQuadratic, x_floor: f64) -> Self {
        assert!(zero_value >= 0.0, "F(0) must be non-negative");
        assert!(x_floor > 0.0, "x_floor must be positive");
        VisitFunction {
            zero_value,
            curve,
            x_floor,
        }
    }

    /// A constant function `F(x) = value` for every popularity. Used as the
    /// seed of the fixed-point iteration and in unit tests.
    pub fn constant(value: f64) -> Self {
        assert!(value > 0.0, "constant visit rate must be positive");
        VisitFunction {
            zero_value: value,
            // α = 0, β = 0, γ = ln(value) ⇒ F(x) = value for all x.
            curve: LogQuadratic {
                alpha: 0.0,
                beta: 0.0,
                gamma: value.ln(),
            },
            x_floor: 1e-12,
        }
    }

    /// The linear function `F(x) = scale · x` with `F(0) = floor_value`
    /// (the paper's suggested starting guess `F(x) = x`, made safe at 0).
    pub fn linear(scale: f64, floor_value: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        VisitFunction {
            zero_value: floor_value.max(0.0),
            // log F = log x + log(scale)  ⇒ α = 0, β = 1, γ = ln(scale).
            curve: LogQuadratic {
                alpha: 0.0,
                beta: 1.0,
                gamma: scale.ln(),
            },
            x_floor: 1e-12,
        }
    }

    /// Evaluate `F(x)` for a popularity `x ∈ [0, 1]`.
    pub fn eval(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return self.zero_value;
        }
        self.curve.eval(x.max(self.x_floor))
    }

    /// The stored value of `F(0)`.
    pub fn zero_value(&self) -> f64 {
        self.zero_value
    }

    /// The fitted log-log quadratic curve.
    pub fn curve(&self) -> LogQuadratic {
        self.curve
    }

    /// The extrapolation floor.
    pub fn x_floor(&self) -> f64 {
        self.x_floor
    }

    /// Maximum relative difference between `self` and `other` over the
    /// sample popularities `xs` (used as the fixed-point convergence test).
    pub fn max_relative_difference(&self, other: &VisitFunction, xs: &[f64]) -> f64 {
        let mut worst = relative_difference(self.zero_value, other.zero_value);
        for &x in xs {
            let d = relative_difference(self.eval(x), other.eval(x));
            if d > worst {
                worst = d;
            }
        }
        worst
    }
}

/// Symmetric relative difference `|a − b| / max(|a|, |b|, tiny)`.
pub fn relative_difference(a: f64, b: f64) -> f64 {
    let denom = a.abs().max(b.abs()).max(1e-300);
    (a - b).abs() / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_function_is_flat() {
        let f = VisitFunction::constant(2.5);
        assert_eq!(f.eval(0.0), 2.5);
        assert!((f.eval(1e-6) - 2.5).abs() < 1e-9);
        assert!((f.eval(0.5) - 2.5).abs() < 1e-9);
        assert!((f.eval(1.0) - 2.5).abs() < 1e-9);
        assert_eq!(f.zero_value(), 2.5);
    }

    #[test]
    fn linear_function_scales() {
        let f = VisitFunction::linear(10.0, 0.01);
        assert!((f.eval(0.5) - 5.0).abs() < 1e-9);
        assert!((f.eval(1.0) - 10.0).abs() < 1e-9);
        assert_eq!(f.eval(0.0), 0.01);
    }

    #[test]
    fn log_quadratic_matches_hand_computation() {
        let curve = LogQuadratic {
            alpha: 0.1,
            beta: 1.2,
            gamma: -0.5,
        };
        let x: f64 = 0.3;
        let lx = x.ln();
        let expected = (0.1 * lx * lx + 1.2 * lx - 0.5).exp();
        assert!((curve.eval(x) - expected).abs() < 1e-12);
        let f = VisitFunction::new(0.001, curve, 1e-9);
        assert!((f.eval(x) - expected).abs() < 1e-12);
        assert_eq!(f.curve(), curve);
        assert_eq!(f.x_floor(), 1e-9);
    }

    #[test]
    fn floor_prevents_extrapolation_blowup() {
        // A curve with positive alpha explodes as x -> 0; the floor caps it.
        let curve = LogQuadratic {
            alpha: 0.5,
            beta: 0.0,
            gamma: 0.0,
        };
        let f = VisitFunction::new(0.1, curve, 1e-3);
        assert_eq!(f.eval(1e-9), f.eval(1e-3));
        assert!(f.eval(1e-9).is_finite());
        // Without the floor the curve would be astronomically larger at 1e-9.
        assert!(f.eval(1e-9) < curve.eval(1e-9));
    }

    #[test]
    fn zero_and_negative_popularity_use_zero_value() {
        let f = VisitFunction::linear(1.0, 0.07);
        assert_eq!(f.eval(0.0), 0.07);
        assert_eq!(f.eval(-0.5), 0.07);
    }

    #[test]
    fn relative_difference_properties() {
        assert_eq!(relative_difference(1.0, 1.0), 0.0);
        assert!((relative_difference(1.0, 2.0) - 0.5).abs() < 1e-12);
        assert_eq!(relative_difference(0.0, 0.0), 0.0);
        assert!((relative_difference(0.0, 3.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_relative_difference_over_samples() {
        let a = VisitFunction::constant(1.0);
        let b = VisitFunction::linear(1.0, 1.0);
        // At x = 1 both are 1; at x = 0.5 they differ by 50%.
        let d = a.max_relative_difference(&b, &[1.0, 0.5]);
        assert!((d - 0.5).abs() < 1e-9);
        let zero = a.max_relative_difference(&a, &[0.1, 0.9]);
        assert_eq!(zero, 0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn constant_must_be_positive() {
        VisitFunction::constant(0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_zero_value_rejected() {
        VisitFunction::new(
            -1.0,
            LogQuadratic {
                alpha: 0.0,
                beta: 0.0,
                gamma: 0.0,
            },
            1e-6,
        );
    }
}
