//! Fitting the numeric `F(x)` samples to a log-log quadratic curve.
//!
//! Each iteration of the fixed-point procedure (Section 5.3) produces `F`
//! in numerical form: a set of `(popularity, expected visits)` samples.
//! The paper converts this numeric function back to symbolic form by
//! "fitting a curve … a quadratic curve in log-log space led to good
//! convergence for all parameter settings we tested", adjusting the fit "to
//! fit the extreme points … especially carefully". [`fit_visit_function`]
//! reproduces exactly that: a weighted least-squares quadratic in
//! `(log x, log F)` with extra weight on the smallest and largest
//! popularity samples.

use crate::linalg::weighted_polyfit;
use crate::visit_function::{LogQuadratic, VisitFunction};

/// How much extra weight the extreme (smallest and largest popularity)
/// samples receive in the least-squares fit, mirroring the paper's
/// "fit the extreme points especially carefully".
const EXTREME_POINT_WEIGHT: f64 = 25.0;

/// Fit a [`VisitFunction`] to numeric samples.
///
/// * `samples` — pairs `(x, F(x))` with `x > 0`; non-positive entries are
///   ignored.
/// * `zero_value` — the separately computed `F(0)`.
///
/// Returns `None` when fewer than three usable samples remain (the
/// quadratic would be underdetermined).
pub fn fit_visit_function(samples: &[(f64, f64)], zero_value: f64) -> Option<VisitFunction> {
    let mut xs = Vec::with_capacity(samples.len());
    let mut ys = Vec::with_capacity(samples.len());
    for &(x, y) in samples {
        if x > 0.0 && y > 0.0 && x.is_finite() && y.is_finite() {
            xs.push(x.ln());
            ys.push(y.ln());
        }
    }
    if xs.len() < 3 {
        return None;
    }

    // Weight the extreme log-x points heavily.
    let (min_lx, max_lx) = xs
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
            (lo.min(x), hi.max(x))
        });
    let span = (max_lx - min_lx).max(1e-9);
    let weights: Vec<f64> = xs
        .iter()
        .map(|&lx| {
            let near_edge = ((lx - min_lx) / span).min((max_lx - lx) / span);
            if near_edge < 0.02 {
                EXTREME_POINT_WEIGHT
            } else {
                1.0
            }
        })
        .collect();

    let coeffs = weighted_polyfit(&xs, &ys, &weights, 2)?;
    let curve = LogQuadratic {
        gamma: coeffs[0],
        beta: coeffs[1],
        alpha: coeffs[2],
    };
    let x_floor = min_lx.exp();
    Some(VisitFunction::new(zero_value.max(0.0), curve, x_floor))
}

/// Goodness-of-fit diagnostic: the maximum relative error of the fitted
/// curve over the positive samples it was fitted to.
pub fn max_fit_error(fit: &VisitFunction, samples: &[(f64, f64)]) -> f64 {
    samples
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| {
            let predicted = fit.eval(x);
            (predicted - y).abs() / y.abs().max(1e-300)
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth_samples(alpha: f64, beta: f64, gamma: f64) -> Vec<(f64, f64)> {
        (1..=60)
            .map(|i| {
                let x = i as f64 / 60.0 * 0.4; // popularities up to 0.4
                let lx = x.ln();
                let y = (alpha * lx * lx + beta * lx + gamma).exp();
                (x, y)
            })
            .collect()
    }

    #[test]
    fn recovers_exact_log_quadratic() {
        let samples = synth_samples(0.05, 1.3, -2.0);
        let fit = fit_visit_function(&samples, 0.001).unwrap();
        let c = fit.curve();
        assert!((c.alpha - 0.05).abs() < 1e-6, "alpha {}", c.alpha);
        assert!((c.beta - 1.3).abs() < 1e-6, "beta {}", c.beta);
        assert!((c.gamma + 2.0).abs() < 1e-6, "gamma {}", c.gamma);
        assert!(max_fit_error(&fit, &samples) < 1e-6);
        assert_eq!(fit.zero_value(), 0.001);
    }

    #[test]
    fn recovers_pure_power_law() {
        // F(x) = 7 x^{0.8}: alpha = 0, beta = 0.8, gamma = ln 7.
        let samples: Vec<(f64, f64)> = (1..=40)
            .map(|i| {
                let x = i as f64 / 100.0;
                (x, 7.0 * x.powf(0.8))
            })
            .collect();
        let fit = fit_visit_function(&samples, 0.0).unwrap();
        assert!(fit.curve().alpha.abs() < 1e-6);
        assert!((fit.curve().beta - 0.8).abs() < 1e-6);
        assert!((fit.curve().gamma - 7.0_f64.ln()).abs() < 1e-6);
    }

    #[test]
    fn ignores_non_positive_samples() {
        let mut samples = synth_samples(0.0, 1.0, 0.0);
        samples.push((0.0, 5.0));
        samples.push((-1.0, 5.0));
        samples.push((0.5, 0.0));
        samples.push((0.5, f64::NAN));
        let fit = fit_visit_function(&samples, 0.01).unwrap();
        assert!((fit.curve().beta - 1.0).abs() < 1e-6);
    }

    #[test]
    fn too_few_samples_returns_none() {
        assert!(fit_visit_function(&[(0.1, 1.0), (0.2, 2.0)], 0.0).is_none());
        assert!(fit_visit_function(&[], 0.0).is_none());
        // All samples filtered out.
        assert!(fit_visit_function(&[(0.0, 1.0), (-0.1, 1.0), (0.3, -1.0)], 0.0).is_none());
    }

    #[test]
    fn noisy_fit_stays_close() {
        // Add deterministic "noise" and confirm the fit error stays modest.
        let samples: Vec<(f64, f64)> = synth_samples(0.02, 1.1, -1.0)
            .into_iter()
            .enumerate()
            .map(|(i, (x, y))| {
                let wiggle = 1.0 + 0.02 * ((i % 5) as f64 - 2.0) / 2.0;
                (x, y * wiggle)
            })
            .collect();
        let fit = fit_visit_function(&samples, 0.0).unwrap();
        assert!(max_fit_error(&fit, &samples) < 0.05);
    }

    #[test]
    fn extreme_points_are_fit_tightly() {
        let samples = synth_samples(0.08, 1.4, -1.5);
        let fit = fit_visit_function(&samples, 0.0).unwrap();
        let (x_min, y_min) = samples[0];
        let (x_max, y_max) = *samples.last().unwrap();
        assert!((fit.eval(x_min) - y_min).abs() / y_min < 1e-4);
        assert!((fit.eval(x_max) - y_max).abs() / y_max < 1e-4);
    }
}
