//! The fixed-point solver for `F(x)` (Section 5.3).
//!
//! The expressions for the awareness distribution (Theorem 1) and for the
//! expected rank (`F1`, `F1'`) are mutually recursive: the awareness
//! distribution needs `F`, and `F = F2 ∘ F1'` needs the awareness
//! distribution. The paper resolves the circularity by an iterative
//! procedure: start from a simple guess for `F`, compute the awareness
//! distributions, re-derive `F` numerically, fit it back to a quadratic in
//! log-log space, and repeat until convergence. [`AnalyticModel::solve`]
//! implements exactly that loop.

use crate::awareness::awareness_distribution;
use crate::curvefit::fit_visit_function;
use crate::quality_groups::QualityGroups;
use crate::rank_function::{RankComputer, RankingModel};
use crate::visit_function::VisitFunction;
use rrp_attention::RankBias;
use rrp_model::CommunityConfig;
use serde::{Deserialize, Serialize};

/// Options controlling the fixed-point iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolverOptions {
    /// Maximum number of fixed-point iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on the maximum relative change of `F` over the
    /// sample grid between successive iterations.
    pub tolerance: f64,
    /// Number of popularity sample points used to re-fit `F` each
    /// iteration.
    pub sample_points: usize,
    /// Damping factor in `(0, 1]`: the new `F` samples are blended with the
    /// previous iterate as `F_old^(1−d) · F_new^d` before fitting. `1.0`
    /// disables damping; smaller values stabilise communities whose
    /// feedback loop oscillates.
    pub damping: f64,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            max_iterations: 120,
            tolerance: 2e-3,
            sample_points: 160,
            damping: 0.5,
        }
    }
}

/// The analytic model of one community under one ranking scheme.
#[derive(Debug, Clone)]
pub struct AnalyticModel {
    community: CommunityConfig,
    groups: QualityGroups,
    ranking: RankingModel,
    options: SolverOptions,
}

/// The converged steady state produced by [`AnalyticModel::solve`].
#[derive(Debug, Clone)]
pub struct SolvedModel {
    /// Community the model was solved for.
    pub community: CommunityConfig,
    /// Quality groups (pages bucketed by quality).
    pub groups: QualityGroups,
    /// Ranking scheme.
    pub ranking: RankingModel,
    /// The converged popularity → monitored-visit-rate function `F`.
    pub visit_function: VisitFunction,
    /// Steady-state awareness distribution per quality group
    /// (each of length `m + 1`).
    pub awareness: Vec<Vec<f64>>,
    /// Expected number of zero-awareness pages `z`.
    pub zero_awareness_pages: f64,
    /// Number of fixed-point iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was met before the iteration cap.
    pub converged: bool,
}

impl AnalyticModel {
    /// Build a model for `community` with page qualities grouped in
    /// `groups`, ranked according to `ranking`.
    pub fn new(
        community: CommunityConfig,
        groups: QualityGroups,
        ranking: RankingModel,
    ) -> Result<Self, String> {
        community.validate().map_err(|e| e.to_string())?;
        ranking.validate()?;
        if groups.total_pages() != community.pages() {
            return Err(format!(
                "quality groups cover {} pages but the community has {}",
                groups.total_pages(),
                community.pages()
            ));
        }
        Ok(AnalyticModel {
            community,
            groups,
            ranking,
            options: SolverOptions::default(),
        })
    }

    /// Override the solver options.
    pub fn with_options(mut self, options: SolverOptions) -> Self {
        self.options = options;
        self
    }

    /// The ranking model being analysed.
    pub fn ranking(&self) -> RankingModel {
        self.ranking
    }

    /// Run the fixed-point iteration and return the steady state.
    pub fn solve(&self) -> SolvedModel {
        let m = self.community.monitored_users();
        let n = self.community.pages();
        let v = self.community.monitored_visits_per_day();
        let lambda = self.community.retirement_rate();
        let bias = RankBias::altavista(n, v);

        // Popularity sample grid: log-spaced between the smallest positive
        // popularity (one monitored user aware of the lowest-quality page)
        // and the largest possible popularity (max quality, fully aware).
        let q_max = self.groups.max_quality().max(1e-6);
        let q_min = self
            .groups
            .groups()
            .iter()
            .map(|g| g.quality)
            .fold(q_max, f64::min)
            .max(1e-9);
        let x_min = (q_min / m as f64).max(1e-12);
        let x_max = q_max;
        let samples = sample_grid(x_min, x_max, self.options.sample_points);

        // Seed: uniform attention (every page gets v/n visits per day).
        let mut visit_function = VisitFunction::constant((v / n as f64).max(1e-12));
        let mut converged = false;
        let mut iterations = 0;

        for iter in 0..self.options.max_iterations {
            iterations = iter + 1;

            // 1. Steady-state awareness distribution per quality group under
            //    the current F.
            let awareness_iter: Vec<Vec<f64>> = self
                .groups
                .groups()
                .iter()
                .map(|g| awareness_distribution(|x| visit_function.eval(x), g.quality, m, lambda))
                .collect();

            // 2. Rank/visit computer for this iteration.
            let computer = RankComputer::new(self.groups.groups(), &awareness_iter, m, &bias);

            // 3. Re-derive F numerically at the sample popularities,
            //    blending with the previous iterate (geometric damping).
            let d = self.options.damping.clamp(1e-3, 1.0);
            let new_samples: Vec<(f64, f64)> = samples
                .iter()
                .map(|&x| {
                    let raw = computer
                        .expected_visits_positive(x, &self.ranking)
                        .max(1e-15);
                    let old = visit_function.eval(x).max(1e-15);
                    (x, old.powf(1.0 - d) * raw.powf(d))
                })
                .collect();
            let raw_zero = computer.expected_visits_zero(&self.ranking).max(0.0);
            let old_zero = visit_function.zero_value().max(1e-15);
            let new_zero = if raw_zero <= 0.0 {
                old_zero * (1.0 - d)
            } else {
                old_zero.powf(1.0 - d) * raw_zero.powf(d)
            };

            // 4. Fit the symbolic (log-log quadratic) form.
            let fitted = fit_visit_function(&new_samples, new_zero)
                .unwrap_or_else(|| VisitFunction::constant((v / n as f64).max(1e-12)));

            // 5. Convergence test.
            let delta = fitted.max_relative_difference(&visit_function, &samples);
            visit_function = fitted;
            if delta < self.options.tolerance {
                converged = true;
                break;
            }
        }

        // Recompute the awareness distributions one final time so they are
        // consistent with the returned visit function.
        let awareness: Vec<Vec<f64>> = self
            .groups
            .groups()
            .iter()
            .map(|g| awareness_distribution(|x| visit_function.eval(x), g.quality, m, lambda))
            .collect();
        let computer = RankComputer::new(self.groups.groups(), &awareness, m, &bias);
        let zero_awareness_pages = computer.zero_awareness_pages();

        SolvedModel {
            community: self.community,
            groups: self.groups.clone(),
            ranking: self.ranking,
            visit_function,
            awareness,
            zero_awareness_pages,
            iterations,
            converged,
        }
    }
}

/// Log-spaced sample grid over `[x_min, x_max]` with `points` entries,
/// always including both endpoints.
fn sample_grid(x_min: f64, x_max: f64, points: usize) -> Vec<f64> {
    let points = points.max(4);
    let (lo, hi) = (x_min.min(x_max), x_max.max(x_min));
    let log_lo = lo.ln();
    let log_hi = hi.ln();
    (0..points)
        .map(|i| {
            let t = i as f64 / (points - 1) as f64;
            (log_lo + t * (log_hi - log_lo)).exp()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrp_model::PowerLawQuality;

    /// A small community that solves quickly in debug builds.
    fn small_community() -> (CommunityConfig, QualityGroups) {
        let community = CommunityConfig::builder()
            .pages(1_000)
            .users(100)
            .monitored_users(50)
            .total_visits_per_day(100.0)
            .expected_lifetime_days(547.5)
            .build()
            .unwrap();
        let dist = PowerLawQuality::paper_default();
        let groups = QualityGroups::from_distribution(&dist, 1_000);
        (community, groups)
    }

    #[test]
    fn sample_grid_is_log_spaced_and_includes_endpoints() {
        let g = sample_grid(1e-4, 0.4, 10);
        assert_eq!(g.len(), 10);
        assert!((g[0] - 1e-4).abs() / 1e-4 < 1e-9);
        assert!((g[9] - 0.4).abs() / 0.4 < 1e-9);
        for w in g.windows(2) {
            assert!(w[1] > w[0]);
        }
        // Log-spacing: constant ratio between consecutive points.
        let r1 = g[1] / g[0];
        let r2 = g[5] / g[4];
        assert!((r1 - r2).abs() < 1e-9);
    }

    #[test]
    fn model_rejects_mismatched_groups() {
        let (community, _) = small_community();
        let dist = PowerLawQuality::paper_default();
        let wrong = QualityGroups::from_distribution(&dist, 500);
        assert!(AnalyticModel::new(community, wrong, RankingModel::NonRandomized).is_err());
    }

    #[test]
    fn model_rejects_invalid_ranking() {
        let (community, groups) = small_community();
        assert!(AnalyticModel::new(
            community,
            groups,
            RankingModel::Selective {
                start_rank: 0,
                degree: 0.1
            }
        )
        .is_err());
    }

    #[test]
    fn nonrandomized_model_converges() {
        let (community, groups) = small_community();
        let model = AnalyticModel::new(community, groups, RankingModel::NonRandomized).unwrap();
        let solved = model.solve();
        assert!(
            solved.converged,
            "should converge in {} iterations",
            solved.iterations
        );
        assert!(solved.zero_awareness_pages > 0.0);
        assert!(solved.zero_awareness_pages <= 1_000.0);
        // Awareness distributions are normalised.
        for dist in &solved.awareness {
            let sum: f64 = dist.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Visit rates are within the physical budget.
        assert!(solved.visit_function.eval(0.4) <= community.monitored_visits_per_day() * 1.5);
        assert!(solved.visit_function.eval(0.0) >= 0.0);
    }

    #[test]
    fn selective_promotion_increases_zero_popularity_visits_at_fixed_point() {
        let (community, groups) = small_community();
        let base = AnalyticModel::new(community, groups.clone(), RankingModel::NonRandomized)
            .unwrap()
            .solve();
        let promoted = AnalyticModel::new(
            community,
            groups,
            RankingModel::Selective {
                start_rank: 1,
                degree: 0.2,
            },
        )
        .unwrap()
        .solve();
        assert!(
            promoted.visit_function.eval(0.0) > base.visit_function.eval(0.0),
            "promotion must raise F(0): {} vs {}",
            promoted.visit_function.eval(0.0),
            base.visit_function.eval(0.0)
        );
        // And the number of never-seen pages must drop.
        assert!(
            promoted.zero_awareness_pages < base.zero_awareness_pages,
            "promotion should reduce zero-awareness pages: {} vs {}",
            promoted.zero_awareness_pages,
            base.zero_awareness_pages
        );
    }

    #[test]
    fn visit_function_is_monotone_in_popularity_at_fixed_point() {
        let (community, groups) = small_community();
        let solved = AnalyticModel::new(community, groups, RankingModel::NonRandomized)
            .unwrap()
            .solve();
        let mut prev = solved.visit_function.eval(1e-4);
        for i in 1..=40 {
            let x = 1e-4 + (0.4 - 1e-4) * i as f64 / 40.0;
            let f = solved.visit_function.eval(x);
            assert!(
                f >= prev * 0.98,
                "F should be (weakly) increasing in popularity: F({x}) = {f} < {prev}"
            );
            prev = f;
        }
    }

    #[test]
    fn options_are_respected() {
        let (community, groups) = small_community();
        let model = AnalyticModel::new(community, groups, RankingModel::NonRandomized)
            .unwrap()
            .with_options(SolverOptions {
                max_iterations: 1,
                tolerance: 0.0,
                ..SolverOptions::default()
            });
        let solved = model.solve();
        assert_eq!(solved.iterations, 1);
        assert!(!solved.converged);
    }

    #[test]
    fn ranking_accessor() {
        let (community, groups) = small_community();
        let model = AnalyticModel::new(
            community,
            groups,
            RankingModel::Uniform {
                start_rank: 2,
                degree: 0.1,
            },
        )
        .unwrap();
        assert_eq!(
            model.ranking(),
            RankingModel::Uniform {
                start_rank: 2,
                degree: 0.1
            }
        );
    }
}
