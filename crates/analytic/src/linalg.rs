//! Tiny dense linear-algebra helpers for the curve-fitting step.
//!
//! The analytic fixed-point solver fits a quadratic in log-log space, which
//! reduces to solving a 3×3 (weighted) normal-equation system. A small
//! Gaussian-elimination solver with partial pivoting is all that is needed —
//! pulling in a full linear-algebra crate would be overkill.

/// Solve the square linear system `A · x = b` in place using Gaussian
/// elimination with partial pivoting.
///
/// `a` is a row-major `n × n` matrix. Returns `None` if the matrix is
/// (numerically) singular.
pub fn solve_linear_system(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    assert_eq!(a.len(), n, "matrix row count must match rhs length");
    for row in &a {
        assert_eq!(row.len(), n, "matrix must be square");
    }

    for col in 0..n {
        // Partial pivoting: find the row with the largest entry in `col`.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite matrix entries")
            })
            .expect("non-empty range");
        if a[pivot_row][col].abs() < 1e-14 {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);

        // Eliminate below.
        for row in (col + 1)..n {
            let factor = a[row][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            let (upper, lower) = a.split_at_mut(row);
            let pivot_row = &upper[col][col..];
            for (target, &source) in lower[0][col..].iter_mut().zip(pivot_row) {
                *target -= factor * source;
            }
            b[row] -= factor * b[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for col in (row + 1)..n {
            sum -= a[row][col] * x[col];
        }
        x[row] = sum / a[row][row];
    }
    Some(x)
}

/// Weighted least-squares fit of a polynomial of degree `degree` to the
/// points `(x, y)` with weights `w`: minimises `Σ w_i (y_i − p(x_i))²`.
///
/// Returns the coefficients `[c_0, c_1, …, c_degree]` of
/// `p(x) = c_0 + c_1 x + … + c_degree x^degree`, or `None` if the normal
/// equations are singular (e.g. not enough distinct points).
pub fn weighted_polyfit(
    xs: &[f64],
    ys: &[f64],
    weights: &[f64],
    degree: usize,
) -> Option<Vec<f64>> {
    assert_eq!(xs.len(), ys.len(), "x and y lengths must match");
    assert_eq!(xs.len(), weights.len(), "weights length must match");
    let terms = degree + 1;
    if xs.len() < terms {
        return None;
    }

    // Normal equations: (Xᵀ W X) c = Xᵀ W y with X the Vandermonde matrix.
    let mut ata = vec![vec![0.0; terms]; terms];
    let mut atb = vec![0.0; terms];
    for ((&x, &y), &w) in xs.iter().zip(ys).zip(weights) {
        // powers[j] = x^j
        let mut powers = vec![1.0; terms];
        for j in 1..terms {
            powers[j] = powers[j - 1] * x;
        }
        for i in 0..terms {
            atb[i] += w * powers[i] * y;
            for j in 0..terms {
                ata[i][j] += w * powers[i] * powers[j];
            }
        }
    }
    solve_linear_system(ata, atb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity_system() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let b = vec![3.0, -2.0];
        assert_eq!(solve_linear_system(a, b), Some(vec![3.0, -2.0]));
    }

    #[test]
    fn solves_general_3x3() {
        // x = 1, y = -2, z = 3
        let a = vec![
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ];
        let b = vec![2.0 - 2.0 - 3.0, -3.0 + 2.0 + 6.0, -2.0 - 2.0 + 6.0];
        let x = solve_linear_system(a, b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] + 2.0).abs() < 1e-10);
        assert!((x[2] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn detects_singular_matrix() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let b = vec![1.0, 2.0];
        assert_eq!(solve_linear_system(a, b), None);
    }

    #[test]
    fn requires_pivoting() {
        // Leading zero forces a row swap.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let b = vec![5.0, 7.0];
        let x = solve_linear_system(a, b).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn polyfit_recovers_exact_quadratic() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.3 - 2.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 1.5 - 2.0 * x + 0.25 * x * x).collect();
        let w = vec![1.0; xs.len()];
        let c = weighted_polyfit(&xs, &ys, &w, 2).unwrap();
        assert!((c[0] - 1.5).abs() < 1e-9);
        assert!((c[1] + 2.0).abs() < 1e-9);
        assert!((c[2] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn polyfit_recovers_line_with_noiseless_data() {
        let xs = vec![0.0, 1.0, 2.0, 3.0];
        let ys = vec![1.0, 3.0, 5.0, 7.0];
        let w = vec![1.0; 4];
        let c = weighted_polyfit(&xs, &ys, &w, 1).unwrap();
        assert!((c[0] - 1.0).abs() < 1e-9);
        assert!((c[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn weights_pull_the_fit_toward_heavy_points() {
        // Two clusters of points on different lines; the heavily weighted
        // cluster dominates the fit.
        let xs = vec![0.0, 1.0, 2.0, 10.0, 11.0, 12.0];
        let ys = vec![0.0, 1.0, 2.0, 0.0, 0.0, 0.0];
        let light = vec![1.0, 1.0, 1.0, 1e6, 1e6, 1e6];
        let c = weighted_polyfit(&xs, &ys, &light, 1).unwrap();
        // Slope must be close to the heavy cluster's slope (≈ 0), i.e. far
        // from the light cluster's slope of 1.
        assert!(c[1].abs() < 0.2, "slope {}", c[1]);
    }

    #[test]
    fn polyfit_with_too_few_points_fails() {
        assert!(weighted_polyfit(&[1.0], &[2.0], &[1.0], 2).is_none());
        // Degenerate: all x identical -> singular normal equations.
        assert!(
            weighted_polyfit(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0], &[1.0, 1.0, 1.0], 2).is_none()
        );
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_lengths_panic() {
        weighted_polyfit(&[1.0, 2.0], &[1.0], &[1.0, 1.0], 1);
    }
}
