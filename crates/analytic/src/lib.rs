//! # rrp-analytic — the analytical model of page-popularity evolution
//!
//! Implements Section 5 of *"Shuffling a Stacked Deck"*:
//!
//! * the steady-state awareness distribution of Theorem 1
//!   ([`awareness_distribution`]);
//! * the popularity → expected-rank function `F1` (Equation 5), its
//!   promoted variant `F1'`, and the rank → visits law `F2`
//!   ([`RankComputer`]);
//! * the fixed-point iteration that resolves the circular dependence of the
//!   two, fitting `F(x)` to a quadratic in log-log space each round
//!   ([`AnalyticModel::solve`]);
//! * the evaluation metrics computed from the solved model: TBP and QPC
//!   (methods on [`SolvedModel`]), the awareness histograms of Figure 3 and
//!   the popularity-evolution curves of Figures 2 and 4(a).
//!
//! ```
//! use rrp_analytic::{AnalyticModel, QualityGroups, RankingModel};
//! use rrp_model::{CommunityConfig, PowerLawQuality};
//!
//! let community = CommunityConfig::builder()
//!     .pages(500)
//!     .users(50)
//!     .monitored_users(25)
//!     .total_visits_per_day(50.0)
//!     .build()
//!     .unwrap();
//! let groups = QualityGroups::from_distribution(&PowerLawQuality::paper_default(), 500);
//!
//! let baseline = AnalyticModel::new(community, groups.clone(), RankingModel::NonRandomized)
//!     .unwrap()
//!     .solve();
//! let promoted = AnalyticModel::new(
//!     community,
//!     groups,
//!     RankingModel::Selective { start_rank: 1, degree: 0.1 },
//! )
//! .unwrap()
//! .solve();
//!
//! // Randomized rank promotion improves amortised result quality.
//! assert!(promoted.normalized_qpc() >= baseline.normalized_qpc());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod awareness;
pub mod curvefit;
pub mod linalg;
pub mod metrics;
pub mod quality_groups;
pub mod rank_function;
pub mod solver;
pub mod visit_function;

pub use awareness::{
    awareness_chain_trajectory, awareness_distribution, awareness_trajectory,
    expected_hitting_time, time_to_awareness,
};
pub use curvefit::{fit_visit_function, max_fit_error};
pub use metrics::TBP_THRESHOLD;
pub use quality_groups::{QualityGroup, QualityGroups};
pub use rank_function::{RankComputer, RankingModel};
pub use solver::{AnalyticModel, SolvedModel, SolverOptions};
pub use visit_function::{LogQuadratic, VisitFunction};
