//! Grouping pages by quality for the analytic model.
//!
//! The analytic formulas of Section 5 sum over every page in the community.
//! Pages of equal quality are interchangeable, so the implementation groups
//! the `n` pages into at most `max_groups` buckets of (quality, page count)
//! and carries the count as a weight. With the deterministic quantile
//! assignment of `rrp-model`, the highest-quality page keeps its own
//! singleton group — the paper's TBP/popularity-evolution figures all track
//! the quality-0.4 page, so its group must not be smeared together with
//! lower-quality pages.

use rrp_model::{assign_qualities, Quality, QualityDistribution};
use serde::{Deserialize, Serialize};

/// A set of quality groups: `(quality, number of pages at that quality)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityGroups {
    groups: Vec<QualityGroup>,
    total_pages: usize,
}

/// One group of pages sharing (approximately) the same quality.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityGroup {
    /// Representative quality of the group.
    pub quality: f64,
    /// Number of pages in the group.
    pub count: usize,
}

impl QualityGroups {
    /// Build groups from an explicit per-page quality list, coalescing into
    /// at most `max_groups` buckets. The `preserve_top` highest-quality
    /// pages keep singleton groups so their individual behaviour (TBP,
    /// popularity evolution) stays exact.
    pub fn from_qualities(qualities: &[Quality], max_groups: usize, preserve_top: usize) -> Self {
        assert!(max_groups >= 1, "need at least one group");
        let mut sorted: Vec<f64> = qualities.iter().map(|q| q.value()).collect();
        sorted.sort_by(|a, b| b.partial_cmp(a).expect("quality is never NaN"));
        let total_pages = sorted.len();

        let mut groups: Vec<QualityGroup> = Vec::new();
        let preserve = preserve_top.min(sorted.len());
        for &q in sorted.iter().take(preserve) {
            groups.push(QualityGroup {
                quality: q,
                count: 1,
            });
        }

        let rest = &sorted[preserve..];
        if !rest.is_empty() {
            let buckets = max_groups.saturating_sub(groups.len()).max(1);
            let per_bucket = rest.len().div_ceil(buckets);
            let mut start = 0;
            while start < rest.len() {
                let end = (start + per_bucket).min(rest.len());
                let slice = &rest[start..end];
                // Representative quality: the mean of the bucket.
                let mean = slice.iter().sum::<f64>() / slice.len() as f64;
                groups.push(QualityGroup {
                    quality: mean,
                    count: slice.len(),
                });
                start = end;
            }
        }

        QualityGroups {
            groups,
            total_pages,
        }
    }

    /// Build groups for a community of `n` pages whose qualities follow
    /// `dist` (deterministic quantile assignment), with default bucketing.
    pub fn from_distribution<D: QualityDistribution>(dist: &D, n: usize) -> Self {
        let qualities = assign_qualities(dist, n);
        // 96 buckets + 4 preserved top pages keeps per-iteration cost low
        // while resolving the head of the quality distribution.
        QualityGroups::from_qualities(&qualities, 100, 4)
    }

    /// The groups, highest quality first.
    pub fn groups(&self) -> &[QualityGroup] {
        &self.groups
    }

    /// Total number of pages across all groups.
    pub fn total_pages(&self) -> usize {
        self.total_pages
    }

    /// The highest quality present (0 if there are no pages).
    pub fn max_quality(&self) -> f64 {
        self.groups.first().map_or(0.0, |g| g.quality)
    }

    /// Mean quality over pages.
    pub fn mean_quality(&self) -> f64 {
        if self.total_pages == 0 {
            return 0.0;
        }
        self.groups
            .iter()
            .map(|g| g.quality * g.count as f64)
            .sum::<f64>()
            / self.total_pages as f64
    }

    /// The per-page quality list implied by the groups (group-representative
    /// qualities repeated by count), highest first. Used to compute the
    /// ideal (quality-ordered) QPC bound.
    pub fn expanded_qualities(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.total_pages);
        for g in &self.groups {
            out.extend(std::iter::repeat_n(g.quality, g.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrp_model::PowerLawQuality;

    #[test]
    fn groups_cover_all_pages() {
        let dist = PowerLawQuality::paper_default();
        let groups = QualityGroups::from_distribution(&dist, 10_000);
        let total: usize = groups.groups().iter().map(|g| g.count).sum();
        assert_eq!(total, 10_000);
        assert_eq!(groups.total_pages(), 10_000);
        assert!(groups.groups().len() <= 104);
    }

    #[test]
    fn top_page_keeps_its_own_group() {
        let dist = PowerLawQuality::paper_default();
        let groups = QualityGroups::from_distribution(&dist, 10_000);
        let first = groups.groups()[0];
        assert_eq!(first.count, 1);
        assert!((first.quality - 0.4).abs() < 1e-6);
        assert!((groups.max_quality() - 0.4).abs() < 1e-6);
    }

    #[test]
    fn groups_are_sorted_descending_by_quality() {
        let dist = PowerLawQuality::paper_default();
        let groups = QualityGroups::from_distribution(&dist, 5_000);
        for w in groups.groups().windows(2) {
            assert!(w[0].quality >= w[1].quality - 1e-12);
        }
    }

    #[test]
    fn mean_quality_matches_direct_average() {
        let qs: Vec<Quality> = [0.4, 0.2, 0.2, 0.1]
            .iter()
            .map(|&q| Quality::new(q).unwrap())
            .collect();
        let groups = QualityGroups::from_qualities(&qs, 10, 1);
        assert!((groups.mean_quality() - 0.225).abs() < 1e-12);
    }

    #[test]
    fn bucketing_respects_max_groups() {
        let dist = PowerLawQuality::paper_default();
        let qualities = assign_qualities(&dist, 1_000);
        let groups = QualityGroups::from_qualities(&qualities, 8, 2);
        assert!(groups.groups().len() <= 10, "got {}", groups.groups().len());
        let total: usize = groups.groups().iter().map(|g| g.count).sum();
        assert_eq!(total, 1_000);
    }

    #[test]
    fn expanded_qualities_roundtrip_count_and_order() {
        let qs: Vec<Quality> = [0.4, 0.3, 0.3, 0.1, 0.1, 0.1]
            .iter()
            .map(|&q| Quality::new(q).unwrap())
            .collect();
        let groups = QualityGroups::from_qualities(&qs, 3, 1);
        let expanded = groups.expanded_qualities();
        assert_eq!(expanded.len(), 6);
        for w in expanded.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!((expanded[0] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_quality_list_is_handled() {
        let groups = QualityGroups::from_qualities(&[], 10, 2);
        assert_eq!(groups.total_pages(), 0);
        assert_eq!(groups.max_quality(), 0.0);
        assert_eq!(groups.mean_quality(), 0.0);
        assert!(groups.expanded_qualities().is_empty());
    }

    #[test]
    fn preserve_top_larger_than_population() {
        let qs: Vec<Quality> = [0.4, 0.2]
            .iter()
            .map(|&q| Quality::new(q).unwrap())
            .collect();
        let groups = QualityGroups::from_qualities(&qs, 5, 10);
        assert_eq!(groups.groups().len(), 2);
        assert!(groups.groups().iter().all(|g| g.count == 1));
    }
}
