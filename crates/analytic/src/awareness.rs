//! Steady-state awareness distribution (Theorem 1) and expected awareness
//! trajectories.
//!
//! Theorem 1 of the paper gives, for pages of quality `q`, the steady-state
//! fraction of pages whose awareness is `a_i = i/m`:
//!
//! ```text
//! f(a_i | q) = λ / ((λ + F(0)) (1 − a_i)) · Π_{j=1..i} F(a_{j−1} q) / (λ + F(a_j q))
//! ```
//!
//! The formula follows from the per-step balance equations (Appendix B);
//! the boundary level `a_m = 1` is absorbing (no further awareness growth),
//! so its mass follows from the flux balance
//! `f(a_m) · λ = f(a_{m−1}) · F(q · a_{m−1}) · (1 − a_{m−1})` rather than
//! from the closed form (which has a removable singularity there). The
//! implementation evaluates the recurrence of Equation 9 directly and
//! normalises, which is numerically equivalent and avoids under/overflow in
//! the long products.

/// Steady-state awareness distribution for pages of quality `quality`.
///
/// * `visit_fn` — the popularity → monitored-visit-rate function `F`;
/// * `quality` — the page quality `q`;
/// * `monitored_users` — `m`; the returned vector has `m + 1` entries, the
///   probability of awareness `i/m` for `i = 0..=m`;
/// * `retirement_rate` — the Poisson page-retirement rate `λ` per day.
///
/// The result is normalised to sum to 1.
pub fn awareness_distribution<F>(
    visit_fn: F,
    quality: f64,
    monitored_users: usize,
    retirement_rate: f64,
) -> Vec<f64>
where
    F: Fn(f64) -> f64,
{
    assert!(monitored_users >= 1, "need at least one monitored user");
    assert!(retirement_rate > 0.0, "retirement rate must be positive");
    assert!((0.0..=1.0).contains(&quality), "quality must be in [0, 1]");

    let m = monitored_users;
    let lambda = retirement_rate;
    let mut f = vec![0.0_f64; m + 1];
    f[0] = 1.0;

    for i in 1..=m {
        let a_prev = (i - 1) as f64 / m as f64;
        let a_cur = i as f64 / m as f64;
        let inflow = visit_fn(quality * a_prev).max(0.0) * (1.0 - a_prev);
        let ratio = if i < m {
            let outflow = (lambda + visit_fn(quality * a_cur).max(0.0)) * (1.0 - a_cur);
            inflow / outflow
        } else {
            // Absorbing top level: only retirement removes mass.
            inflow / lambda
        };
        f[i] = f[i - 1] * ratio;
        if !f[i].is_finite() {
            // Extremely peaked distribution: everything is at full
            // awareness. Renormalise on the spot.
            f.iter_mut().take(i).for_each(|x| *x = 0.0);
            f[i] = 1.0;
        }
    }

    let total: f64 = f.iter().sum();
    if total > 0.0 {
        f.iter_mut().for_each(|x| *x /= total);
    }
    f
}

/// Direct evaluation of the closed-form Equation 3 for `i < m`
/// (unnormalised, relative to `f(a_0)`). Exposed for cross-checking the
/// recurrence in tests.
pub fn theorem1_unnormalized<F>(
    visit_fn: F,
    quality: f64,
    monitored_users: usize,
    retirement_rate: f64,
    i: usize,
) -> f64
where
    F: Fn(f64) -> f64,
{
    let m = monitored_users;
    assert!(i < m, "closed form is valid for i < m");
    let lambda = retirement_rate;
    let a_i = i as f64 / m as f64;
    let mut value = lambda / ((lambda + visit_fn(0.0)) * (1.0 - a_i));
    for j in 1..=i {
        let a_jm1 = (j - 1) as f64 / m as f64;
        let a_j = j as f64 / m as f64;
        value *= visit_fn(quality * a_jm1) / (lambda + visit_fn(quality * a_j));
    }
    value
}

/// Expected-awareness trajectory of a single page of quality `quality`
/// created at day 0 with zero awareness:
///
/// ```text
/// da/dt = F(q · a) · (1 − a) / m
/// ```
///
/// integrated with an explicit Euler scheme at `steps_per_day` sub-steps.
/// Returns the awareness at the end of each day, `day 0 ..= days`
/// (`days + 1` entries). The popularity trajectory is simply
/// `q · awareness`.
pub fn awareness_trajectory<F>(
    visit_fn: F,
    quality: f64,
    monitored_users: usize,
    days: usize,
    steps_per_day: usize,
) -> Vec<f64>
where
    F: Fn(f64) -> f64,
{
    assert!(monitored_users >= 1, "need at least one monitored user");
    assert!(
        steps_per_day >= 1,
        "need at least one integration step per day"
    );
    let m = monitored_users as f64;
    let dt = 1.0 / steps_per_day as f64;
    let mut a: f64 = 0.0;
    let mut out = Vec::with_capacity(days + 1);
    out.push(0.0);
    for _ in 0..days {
        for _ in 0..steps_per_day {
            let rate = visit_fn(quality * a).max(0.0) * (1.0 - a) / m;
            a = (a + rate * dt).min(1.0);
        }
        out.push(a);
    }
    out
}

/// Expected awareness trajectory computed on the *discrete* awareness
/// ladder `a_i = i/m` (master equation of the birth chain), rather than the
/// continuous mean-field ODE of [`awareness_trajectory`].
///
/// The distinction matters for new pages under entrenchment: in the discrete
/// chain a page sits at awareness exactly 0 until its first monitored visit
/// (an exponential wait with rate `F(0)`), whereas the continuous ODE lets
/// awareness creep up immediately and then ride the much larger visit rates
/// of positive popularity. The master equation is what the paper's Figure
/// 4(a) curves describe.
///
/// Returns the expected awareness at the end of each day, `day 0 ..= days`.
/// Page death is not modelled (the figure tracks a page over its lifetime).
pub fn awareness_chain_trajectory<F>(
    visit_fn: F,
    quality: f64,
    monitored_users: usize,
    days: usize,
) -> Vec<f64>
where
    F: Fn(f64) -> f64,
{
    assert!(monitored_users >= 1, "need at least one monitored user");
    let m = monitored_users;
    // Transition rate out of level i (per day): one more monitored user
    // discovers the page.
    let rates: Vec<f64> = (0..m)
        .map(|i| {
            let a_i = i as f64 / m as f64;
            (visit_fn(quality * a_i).max(0.0) * (1.0 - a_i)).max(0.0)
        })
        .collect();
    let max_rate = rates.iter().cloned().fold(0.0, f64::max);
    let substeps = (max_rate.ceil() as usize + 1).clamp(1, 1024);
    let dt = 1.0 / substeps as f64;

    let mut p = vec![0.0; m + 1];
    p[0] = 1.0;
    let mut out = Vec::with_capacity(days + 1);
    let expected = |p: &[f64]| -> f64 {
        p.iter()
            .enumerate()
            .map(|(i, &q)| q * i as f64 / m as f64)
            .sum()
    };
    out.push(expected(&p));
    for _ in 0..days {
        for _ in 0..substeps {
            // Forward Euler on the master equation, processed top-down so a
            // unit of probability moves at most one level per substep.
            for i in (0..m).rev() {
                let flow = (rates[i] * p[i] * dt).min(p[i]);
                p[i] -= flow;
                p[i + 1] += flow;
            }
        }
        out.push(expected(&p));
    }
    out
}

/// Expected time (days) for a page of quality `quality` starting at zero
/// awareness to first reach awareness ≥ `threshold`, computed as the sum of
/// expected dwell times on the discrete awareness ladder:
///
/// ```text
/// E[TBP] = Σ_{i : a_i < threshold} 1 / (F(q a_i) · (1 − a_i))
/// ```
///
/// Returns `f64::INFINITY` if some intermediate level has zero visit rate.
pub fn expected_hitting_time<F>(
    visit_fn: F,
    quality: f64,
    monitored_users: usize,
    threshold: f64,
) -> f64
where
    F: Fn(f64) -> f64,
{
    assert!(monitored_users >= 1, "need at least one monitored user");
    let m = monitored_users;
    let target = (threshold * m as f64).ceil() as usize;
    let mut total = 0.0;
    for i in 0..target.min(m) {
        let a_i = i as f64 / m as f64;
        let rate = visit_fn(quality * a_i).max(0.0) * (1.0 - a_i);
        if rate <= 0.0 {
            return f64::INFINITY;
        }
        total += 1.0 / rate;
    }
    total
}

/// Time (in days, possibly fractional via linear interpolation) for the
/// expected awareness to reach `threshold`, or `None` if it does not within
/// `max_days`.
pub fn time_to_awareness<F>(
    visit_fn: F,
    quality: f64,
    monitored_users: usize,
    threshold: f64,
    max_days: usize,
) -> Option<f64>
where
    F: Fn(f64) -> f64,
{
    let trajectory = awareness_trajectory(visit_fn, quality, monitored_users, max_days, 4);
    for (day, window) in trajectory.windows(2).enumerate() {
        let (before, after) = (window[0], window[1]);
        if after >= threshold {
            if after == before {
                return Some(day as f64 + 1.0);
            }
            let fraction = ((threshold - before) / (after - before)).clamp(0.0, 1.0);
            return Some(day as f64 + fraction);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const LAMBDA: f64 = 1.0 / 547.5;

    #[test]
    fn distribution_sums_to_one() {
        let f = awareness_distribution(|_| 0.01, 0.4, 100, LAMBDA);
        assert_eq!(f.len(), 101);
        let sum: f64 = f.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(f.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn tiny_visit_rate_traps_pages_at_zero_awareness() {
        // If pages essentially never get visited, almost all mass sits at
        // awareness 0 (the entrenchment regime of Figure 3, left).
        let f = awareness_distribution(|_| 1e-6, 0.4, 100, LAMBDA);
        assert!(f[0] > 0.99, "f(0) = {}", f[0]);
    }

    #[test]
    fn large_visit_rate_pushes_pages_to_full_awareness() {
        // If pages are visited heavily, almost all mass sits at awareness 1
        // (the randomized-promotion regime of Figure 3, right).
        let f = awareness_distribution(|x| 2.0 + 10.0 * x, 0.4, 100, LAMBDA);
        assert!(f[100] > 0.75, "f(1) = {}", f[100]);
        assert!(f[0] < 0.01);
    }

    #[test]
    fn middle_awareness_levels_hold_little_mass() {
        // The paper observes the rise to high awareness is nearly a step
        // function: mass concentrates at the two ends.
        let f = awareness_distribution(|x| 0.002 + 10.0 * x, 0.4, 100, LAMBDA);
        let middle: f64 = f[20..80].iter().sum();
        let ends = f[0] + f[100];
        assert!(
            middle < ends,
            "middle mass {middle} should be below end mass {ends}"
        );
    }

    #[test]
    fn recurrence_matches_closed_form_for_small_i() {
        let visit = |x: f64| 0.02 + 0.3 * x;
        let m = 50;
        let f = awareness_distribution(visit, 0.3, m, LAMBDA);
        // The closed form is un-normalised; compare ratios f(a_i)/f(a_0).
        for i in 1..10 {
            let closed_i = theorem1_unnormalized(visit, 0.3, m, LAMBDA, i);
            let closed_0 = theorem1_unnormalized(visit, 0.3, m, LAMBDA, 0);
            let expected_ratio = closed_i / closed_0;
            let actual_ratio = f[i] / f[0];
            assert!(
                (expected_ratio - actual_ratio).abs() / expected_ratio < 1e-9,
                "i={i}: closed {expected_ratio} vs recurrence {actual_ratio}"
            );
        }
    }

    #[test]
    fn higher_quality_pages_reach_higher_awareness() {
        let visit = |x: f64| 0.001 + 2.0 * x;
        let low = awareness_distribution(visit, 0.05, 100, LAMBDA);
        let high = awareness_distribution(visit, 0.4, 100, LAMBDA);
        let mean = |f: &[f64]| -> f64 {
            f.iter()
                .enumerate()
                .map(|(i, &p)| p * i as f64 / 100.0)
                .sum()
        };
        assert!(
            mean(&high) > mean(&low),
            "high quality mean {} should exceed low quality mean {}",
            mean(&high),
            mean(&low)
        );
    }

    #[test]
    fn zero_quality_page_never_gains_awareness_weighted_popularity() {
        // quality 0 means F is evaluated at popularity 0 everywhere; the
        // distribution still sums to 1 and is well defined.
        let f = awareness_distribution(|_| 0.01, 0.0, 20, LAMBDA);
        let sum: f64 = f.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn trajectory_is_monotone_and_bounded() {
        let t = awareness_trajectory(|x| 0.1 + x, 0.4, 100, 2_000, 2);
        assert_eq!(t.len(), 2_001);
        assert_eq!(t[0], 0.0);
        for w in t.windows(2) {
            assert!(w[1] >= w[0]);
            assert!(w[1] <= 1.0);
        }
    }

    #[test]
    fn faster_visit_rate_means_faster_awareness() {
        let slow = awareness_trajectory(|_| 0.05, 0.4, 100, 1_000, 2);
        let fast = awareness_trajectory(|_| 1.0, 0.4, 100, 1_000, 2);
        assert!(fast[500] > slow[500]);
    }

    #[test]
    fn time_to_awareness_interpolates() {
        // Constant visit rate v: da/dt = v (1-a)/m  ⇒ a(t) = 1 − exp(−v t / m).
        // Threshold 0.99 ⇒ t = m ln(100) / v.
        let v = 2.0;
        let m = 100;
        let expected = m as f64 * 100.0_f64.ln() / v;
        let t = time_to_awareness(|_| v, 0.4, m, 0.99, 2_000).unwrap();
        assert!(
            (t - expected).abs() / expected < 0.02,
            "t = {t}, expected ≈ {expected}"
        );
    }

    #[test]
    fn time_to_awareness_none_when_never_reached() {
        let t = time_to_awareness(|_| 1e-9, 0.4, 100, 0.99, 500);
        assert!(t.is_none());
    }

    #[test]
    fn chain_trajectory_matches_ode_for_constant_rate() {
        // With a popularity-independent visit rate the mean-field ODE and
        // the master equation have identical expectations.
        let ode = awareness_trajectory(|_| 0.5, 0.4, 50, 400, 4);
        let chain = awareness_chain_trajectory(|_| 0.5, 0.4, 50, 400);
        for (day, (a, b)) in ode.iter().zip(&chain).enumerate() {
            assert!((a - b).abs() < 0.02, "day {day}: ode {a} vs chain {b}");
        }
    }

    #[test]
    fn chain_trajectory_is_monotone_and_bounded() {
        let t = awareness_chain_trajectory(|x| 0.01 + 5.0 * x, 0.4, 100, 500);
        assert_eq!(t.len(), 501);
        assert_eq!(t[0], 0.0);
        for w in t.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
            assert!(w[1] <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn chain_waits_for_the_first_visit_unlike_the_ode() {
        // Entrenchment-style visit function: essentially no visits at zero
        // popularity, plenty once the page has any popularity. The chain
        // stays near zero awareness; the ODE races ahead.
        let visit = |x: f64| if x <= 0.0 { 1e-4 } else { 1.0 + 10.0 * x };
        let chain = awareness_chain_trajectory(visit, 0.4, 100, 200);
        let ode = awareness_trajectory(visit, 0.4, 100, 200, 4);
        assert!(
            chain[200] < 0.1,
            "chain should still be waiting: {}",
            chain[200]
        );
        assert!(ode[200] > 0.5, "ode races ahead: {}", ode[200]);
    }

    #[test]
    fn hitting_time_constant_rate_closed_form() {
        // Constant rate v: E[T] = Σ_{i<target} 1/(v (1 - i/m)) = (m/v) Σ 1/(m-i) = (m/v) H(m - target + 1 .. m).
        let v = 2.0;
        let m = 100usize;
        let threshold = 0.99;
        let target = (threshold * m as f64).ceil() as usize;
        let expected: f64 = (0..target)
            .map(|i| 1.0 / (v * (1.0 - i as f64 / m as f64)))
            .sum();
        let t = expected_hitting_time(|_| v, 0.4, m, threshold);
        assert!((t - expected).abs() < 1e-9);
    }

    #[test]
    fn hitting_time_reflects_zero_popularity_bottleneck() {
        let entrenched =
            expected_hitting_time(|x| if x <= 0.0 { 1e-4 } else { 1.0 }, 0.4, 100, 0.99);
        let promoted = expected_hitting_time(|x| if x <= 0.0 { 0.5 } else { 1.0 }, 0.4, 100, 0.99);
        assert!(entrenched > 10_000.0);
        assert!(promoted < 600.0);
        assert!(entrenched > promoted);
    }

    #[test]
    fn hitting_time_infinite_when_rate_is_zero() {
        let t = expected_hitting_time(|_| 0.0, 0.4, 10, 0.5);
        assert!(t.is_infinite());
    }

    #[test]
    #[should_panic(expected = "at least one monitored user")]
    fn zero_monitored_users_panics() {
        awareness_distribution(|_| 0.1, 0.4, 0, LAMBDA);
    }

    #[test]
    #[should_panic(expected = "retirement rate")]
    fn zero_retirement_rate_panics() {
        awareness_distribution(|_| 0.1, 0.4, 10, 0.0);
    }
}
