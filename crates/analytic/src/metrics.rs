//! The paper's two evaluation metrics, computed from a solved analytic
//! model: **TBP** (time to become popular, Section 3.2) and **QPC**
//! (quality-per-click, Section 3.3), plus the popularity-evolution and
//! visit-rate curves of Figures 2 and 4(a).

use crate::awareness::{awareness_chain_trajectory, awareness_distribution, expected_hitting_time};
use crate::solver::SolvedModel;
use rrp_attention::RankBias;

/// The popularity threshold (as a fraction of quality) that defines "has
/// become popular": the paper measures TBP as the time to exceed 99% of the
/// page's quality level.
pub const TBP_THRESHOLD: f64 = 0.99;

impl SolvedModel {
    /// Absolute quality-per-click: the average quality of the pages behind
    /// the clicks users make, amortised over time (Section 3.3).
    ///
    /// `QPC = Σ_p Σ_i f(a_i|Q_p) · F(a_i Q_p) · Q_p / Σ_p Σ_i f(a_i|Q_p) · F(a_i Q_p)`
    pub fn absolute_qpc(&self) -> f64 {
        let mut numerator = 0.0;
        let mut denominator = 0.0;
        let m = self.community.monitored_users();
        for (group, dist) in self.groups.groups().iter().zip(&self.awareness) {
            let weight = group.count as f64;
            for (i, &p) in dist.iter().enumerate() {
                if p <= 0.0 {
                    continue;
                }
                let awareness = i as f64 / m as f64;
                let visits = self.visit_function.eval(awareness * group.quality);
                numerator += weight * p * visits * group.quality;
                denominator += weight * p * visits;
            }
        }
        if denominator <= 0.0 {
            0.0
        } else {
            numerator / denominator
        }
    }

    /// The theoretical upper bound on QPC: rank pages in descending order of
    /// intrinsic quality and weight each rank by the attention it receives.
    pub fn ideal_qpc(&self) -> f64 {
        let n = self.community.pages();
        let v = self.community.monitored_visits_per_day();
        if n == 0 || v <= 0.0 {
            return 0.0;
        }
        let bias = RankBias::altavista(n, v);
        let qualities = self.groups.expanded_qualities();
        let mut numerator = 0.0;
        for (idx, q) in qualities.iter().enumerate() {
            numerator += bias.visits_at_rank(idx + 1) * q;
        }
        numerator / v
    }

    /// QPC normalised so that 1.0 corresponds to the quality-ordered ideal
    /// (the normalisation used in Figures 5–7).
    pub fn normalized_qpc(&self) -> f64 {
        let ideal = self.ideal_qpc();
        if ideal <= 0.0 {
            return 0.0;
        }
        self.absolute_qpc() / ideal
    }

    /// Steady-state awareness distribution for a page of the given quality
    /// under the solved visit function (Figure 3 plots this for the
    /// highest-quality pages). Returns `m + 1` probabilities.
    pub fn awareness_distribution_for(&self, quality: f64) -> Vec<f64> {
        awareness_distribution(
            |x| self.visit_function.eval(x),
            quality,
            self.community.monitored_users(),
            self.community.retirement_rate(),
        )
    }

    /// Expected popularity trajectory of a page of the given quality created
    /// with zero awareness at day 0 (Figure 4(a)). Entry `t` is the
    /// popularity at the end of day `t`.
    ///
    /// Computed on the discrete awareness ladder (master equation), so the
    /// wait for the very first monitored visit — the entrenchment
    /// bottleneck — is represented faithfully.
    pub fn popularity_evolution(&self, quality: f64, days: usize) -> Vec<f64> {
        awareness_chain_trajectory(
            |x| self.visit_function.eval(x),
            quality,
            self.community.monitored_users(),
            days,
        )
        .into_iter()
        .map(|a| a * quality)
        .collect()
    }

    /// Expected monitored-visit-rate trajectory of a page of the given
    /// quality created at day 0 (the curves sketched in Figure 2).
    pub fn visit_rate_evolution(&self, quality: f64, days: usize) -> Vec<f64> {
        self.popularity_evolution(quality, days)
            .into_iter()
            .map(|p| self.visit_function.eval(p))
            .collect()
    }

    /// Expected time to become popular (TBP): expected number of days until
    /// a page of the given quality, created with zero awareness, first
    /// reaches popularity above [`TBP_THRESHOLD`] × quality. Computed as the
    /// expected first-passage time on the discrete awareness ladder.
    pub fn expected_tbp(&self, quality: f64) -> f64 {
        expected_hitting_time(
            |x| self.visit_function.eval(x),
            quality,
            self.community.monitored_users(),
            TBP_THRESHOLD,
        )
    }

    /// Time to become popular, capped: `None` if the expected TBP exceeds
    /// `max_days` (e.g. the page is effectively never discovered under
    /// entrenchment).
    pub fn time_to_become_popular(&self, quality: f64, max_days: usize) -> Option<f64> {
        let tbp = self.expected_tbp(quality);
        if tbp.is_finite() && tbp <= max_days as f64 {
            Some(tbp)
        } else {
            None
        }
    }

    /// TBP for the highest-quality page in the community (the page the
    /// paper's Figure 4 tracks).
    pub fn tbp_of_best_page(&self, max_days: usize) -> Option<f64> {
        self.time_to_become_popular(self.groups.max_quality(), max_days)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality_groups::QualityGroups;
    use crate::rank_function::RankingModel;
    use crate::solver::AnalyticModel;
    use rrp_model::{CommunityConfig, PowerLawQuality};

    fn solve(model: RankingModel) -> SolvedModel {
        let community = CommunityConfig::builder()
            .pages(1_000)
            .users(100)
            .monitored_users(50)
            .total_visits_per_day(100.0)
            .expected_lifetime_days(547.5)
            .build()
            .unwrap();
        let dist = PowerLawQuality::paper_default();
        let groups = QualityGroups::from_distribution(&dist, 1_000);
        AnalyticModel::new(community, groups, model)
            .unwrap()
            .solve()
    }

    #[test]
    fn qpc_values_are_probabilistically_sane() {
        let solved = solve(RankingModel::NonRandomized);
        let absolute = solved.absolute_qpc();
        let ideal = solved.ideal_qpc();
        let normalized = solved.normalized_qpc();
        assert!(absolute > 0.0 && absolute <= 0.4 + 1e-9);
        assert!(ideal > 0.0 && ideal <= 0.4 + 1e-9);
        assert!(
            absolute <= ideal + 1e-9,
            "absolute {absolute} vs ideal {ideal}"
        );
        assert!(normalized > 0.0 && normalized <= 1.0 + 1e-9);
    }

    #[test]
    fn ideal_qpc_is_dominated_by_the_best_page() {
        let solved = solve(RankingModel::NonRandomized);
        // Rank 1 holds ~38% of the attention and quality 0.4; the ideal QPC
        // must therefore be at least 0.38 · 0.4.
        assert!(solved.ideal_qpc() > 0.38 * 0.4 * 0.9);
    }

    #[test]
    fn selective_promotion_improves_normalized_qpc() {
        let base = solve(RankingModel::NonRandomized);
        let promoted = solve(RankingModel::Selective {
            start_rank: 1,
            degree: 0.1,
        });
        assert!(
            promoted.normalized_qpc() > base.normalized_qpc(),
            "selective promotion should improve QPC: {} vs {}",
            promoted.normalized_qpc(),
            base.normalized_qpc()
        );
    }

    /// Solve a community with the paper-default proportions (visit-starved,
    /// entrenchment-prone), just smaller so the test is fast.
    fn solve_entrenched(model: RankingModel) -> SolvedModel {
        let community = CommunityConfig::builder()
            .pages(2_000)
            .users(200)
            .monitored_users(20)
            .total_visits_per_day(200.0)
            .expected_lifetime_days(547.5)
            .build()
            .unwrap();
        let dist = PowerLawQuality::paper_default();
        let groups = QualityGroups::from_distribution(&dist, 2_000);
        AnalyticModel::new(community, groups, model)
            .unwrap()
            .solve()
    }

    #[test]
    fn selective_promotion_reduces_tbp_of_the_best_page() {
        let base = solve_entrenched(RankingModel::NonRandomized);
        let promoted = solve_entrenched(RankingModel::Selective {
            start_rank: 1,
            degree: 0.2,
        });
        let max_days = 40_000;
        let tbp_base = base.tbp_of_best_page(max_days).unwrap_or(max_days as f64);
        let tbp_promoted = promoted
            .tbp_of_best_page(max_days)
            .unwrap_or(max_days as f64);
        assert!(
            tbp_promoted < tbp_base,
            "promotion should reduce TBP: {tbp_promoted} vs {tbp_base}"
        );
    }

    #[test]
    fn popularity_evolution_is_monotone_and_capped_by_quality() {
        let solved = solve(RankingModel::Selective {
            start_rank: 1,
            degree: 0.2,
        });
        let q = 0.4;
        let curve = solved.popularity_evolution(q, 1_000);
        assert_eq!(curve.len(), 1_001);
        assert_eq!(curve[0], 0.0);
        for w in curve.windows(2) {
            assert!(w[1] >= w[0] - 1e-9);
            assert!(w[1] <= q + 1e-9);
        }
    }

    #[test]
    fn visit_rate_evolution_tracks_popularity() {
        let solved = solve(RankingModel::Selective {
            start_rank: 1,
            degree: 0.2,
        });
        let rates = solved.visit_rate_evolution(0.4, 500);
        assert_eq!(rates.len(), 501);
        // Visit rate should grow as the page becomes popular.
        assert!(rates[500] >= rates[0]);
    }

    #[test]
    fn awareness_distribution_for_matches_stored_group() {
        let solved = solve(RankingModel::NonRandomized);
        // The first group is the singleton best page of quality ≈ 0.4.
        let q = solved.groups.max_quality();
        let recomputed = solved.awareness_distribution_for(q);
        let stored = &solved.awareness[0];
        assert_eq!(recomputed.len(), stored.len());
        for (a, b) in recomputed.iter().zip(stored) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn tbp_none_when_pages_never_become_popular() {
        // Under entrenchment with a short horizon, the best page of a small
        // community does not reach 99% awareness in 10 days.
        let solved = solve(RankingModel::NonRandomized);
        assert!(solved.time_to_become_popular(0.4, 10).is_none());
    }

    #[test]
    fn expected_tbp_is_dominated_by_the_wait_for_the_first_visit() {
        let solved = solve_entrenched(RankingModel::NonRandomized);
        let tbp = solved.expected_tbp(0.4);
        let first_visit_wait = 1.0 / solved.visit_function.eval(0.0);
        assert!(tbp >= first_visit_wait);
        assert!(
            first_visit_wait / tbp > 0.3,
            "under entrenchment the first visit dominates TBP: wait {first_visit_wait}, tbp {tbp}"
        );
    }
}
