//! The two-group study simulation (Appendix A / Figure 1).
//!
//! Two user groups browse the same rotating item pool. The **control**
//! group sees items strictly in descending order of the group's own
//! "funny"-vote counts (ties broken by age, older first). The **treatment**
//! group sees the same popularity ranking except that every item no member
//! of the group has viewed yet is inserted, in a fresh random order per
//! user, starting at rank position `k` (21 in the paper) — i.e. selective
//! promotion with `r = 1`.
//!
//! Users view items with the `rank^(-3/2)` attention bias that the paper
//! verified its volunteers follow, rate a viewed item with a fixed
//! probability, and rate it "funny" with probability equal to the item's
//! funniness. The study metric is the ratio of funny votes to total votes
//! over the final 15 days.

use crate::config::StudyConfig;
use crate::items::{GroupItemStats, ItemPool};
use rand::seq::SliceRandom;
use rand::Rng;
use rrp_attention::RankBias;
use rrp_model::{new_rng, Rng64};
use serde::{Deserialize, Serialize};

/// The two experimental arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Group {
    /// Strict ranking by the group's funny-vote counts.
    Control,
    /// Same ranking, plus promotion of never-viewed items at rank `k`.
    Promoted,
}

impl Group {
    /// Index into per-group arrays.
    pub fn index(self) -> usize {
        match self {
            Group::Control => 0,
            Group::Promoted => 1,
        }
    }

    /// Both groups.
    pub fn both() -> [Group; 2] {
        [Group::Control, Group::Promoted]
    }
}

/// Vote tallies for one group over the measurement window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct VoteTally {
    /// "Funny" votes.
    pub funny: u64,
    /// All votes (funny + neutral + not funny).
    pub total: u64,
}

impl VoteTally {
    /// Funny-vote ratio (0 when no votes were cast).
    pub fn ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.funny as f64 / self.total as f64
        }
    }
}

/// Outcome of the study: the per-group funny-vote ratios over the
/// measurement window (the two bars of Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StudyOutcome {
    /// Measurement-window tally for the control group.
    pub control: VoteTally,
    /// Measurement-window tally for the promoted group.
    pub promoted: VoteTally,
    /// Number of participants assigned to each group `[control, promoted]`.
    pub participants: [usize; 2],
}

impl StudyOutcome {
    /// Relative improvement of the promoted group's funny-vote ratio over
    /// the control group's (the paper reports ≈ +60%).
    pub fn relative_improvement(&self) -> f64 {
        let control = self.control.ratio();
        if control <= 0.0 {
            return 0.0;
        }
        self.promoted.ratio() / control - 1.0
    }
}

/// The live-study simulator.
pub struct LiveStudy {
    config: StudyConfig,
    pool: ItemPool,
    /// Per-group, per-item statistics, indexed `[group][item]`.
    stats: [Vec<GroupItemStats>; 2],
    /// Measurement-window tallies per group.
    tallies: [VoteTally; 2],
    /// Participants assigned per group.
    participants: [usize; 2],
    /// Cumulative view-probability table over rank positions.
    rank_cdf: Vec<f64>,
    rng: Rng64,
}

impl LiveStudy {
    /// Set up the study.
    pub fn new(config: StudyConfig) -> Result<Self, rrp_model::ModelError> {
        config.validate()?;
        let mut rng = new_rng(config.seed);
        let pool = ItemPool::new(config.items, config.item_lifetime_days, &mut rng);
        let bias = RankBias::altavista(config.items, 1.0);
        let probabilities = bias.probabilities_by_rank();
        let mut acc = 0.0;
        let mut rank_cdf: Vec<f64> = probabilities
            .iter()
            .map(|p| {
                acc += p;
                acc
            })
            .collect();
        if let Some(last) = rank_cdf.last_mut() {
            *last = 1.0;
        }
        Ok(LiveStudy {
            stats: [
                vec![GroupItemStats::default(); config.items],
                vec![GroupItemStats::default(); config.items],
            ],
            tallies: [VoteTally::default(); 2],
            participants: [0; 2],
            pool,
            rank_cdf,
            config,
            rng,
        })
    }

    /// Run the full study and return the outcome.
    pub fn run(mut self) -> StudyOutcome {
        let total_days = self.config.duration_days;
        let measure_from = total_days - self.config.measure_last_days;
        for day in 0..total_days {
            self.run_day(day, day >= measure_from);
        }
        StudyOutcome {
            control: self.tallies[Group::Control.index()],
            promoted: self.tallies[Group::Promoted.index()],
            participants: self.participants,
        }
    }

    /// Simulate one day: rotate expired content, then process the day's new
    /// participants.
    fn run_day(&mut self, day: u64, measuring: bool) {
        // Content rotation resets both groups' statistics for the replaced
        // slots (the replacement is a brand-new item with no votes).
        for idx in self.pool.rotate(day) {
            self.stats[0][idx].reset();
            self.stats[1][idx].reset();
        }

        let users_today = self.users_arriving_on(day);
        for _ in 0..users_today {
            let group = if self.rng.gen::<bool>() {
                Group::Promoted
            } else {
                Group::Control
            };
            self.participants[group.index()] += 1;
            self.simulate_user_session(group, day, measuring);
        }
    }

    /// Number of participants arriving on `day` (participants spread evenly
    /// over the study, remainder on the earliest days).
    fn users_arriving_on(&self, day: u64) -> usize {
        let total = self.config.participants as u64;
        let days = self.config.duration_days;
        let base = total / days;
        let remainder = total % days;
        (base + u64::from(day < remainder)) as usize
    }

    /// One participant's session: build the group's ranking, view items with
    /// the rank-bias law, vote.
    fn simulate_user_session(&mut self, group: Group, _day: u64, measuring: bool) {
        let ranking = self.ranking_for(group);
        let n = ranking.len();
        let mut viewed_positions = Vec::with_capacity(self.config.views_per_user);
        for _ in 0..self.config.views_per_user {
            let u: f64 = self.rng.gen();
            let pos = match self
                .rank_cdf
                .binary_search_by(|c| c.partial_cmp(&u).expect("finite"))
            {
                Ok(i) => i,
                Err(i) => i.min(n - 1),
            };
            if !viewed_positions.contains(&pos) {
                viewed_positions.push(pos);
            }
        }
        for pos in viewed_positions {
            let item_idx = ranking[pos];
            let funniness = self.pool.items()[item_idx].funniness;
            let stats = &mut self.stats[group.index()][item_idx];
            stats.viewed = true;
            if self.rng.gen::<f64>() < self.config.vote_probability {
                stats.total_votes += 1;
                let funny = self.rng.gen::<f64>() < funniness;
                if funny {
                    stats.funny_votes += 1;
                }
                if measuring {
                    let tally = &mut self.tallies[group.index()];
                    tally.total += 1;
                    if funny {
                        tally.funny += 1;
                    }
                }
            }
        }
    }

    /// Build the result list shown to a member of `group`.
    fn ranking_for(&mut self, group: Group) -> Vec<usize> {
        let stats = &self.stats[group.index()];
        let items = self.pool.items();
        // Popularity order over all items: funny votes desc, then older
        // first, then index (ties in the real study were broken by age).
        let mut by_popularity: Vec<usize> = (0..items.len()).collect();
        by_popularity.sort_by(|&a, &b| {
            stats[b]
                .funny_votes
                .cmp(&stats[a].funny_votes)
                .then_with(|| items[a].born_day.cmp(&items[b].born_day))
                .then_with(|| a.cmp(&b))
        });

        match group {
            Group::Control => by_popularity,
            Group::Promoted => {
                let k = self.config.promotion_insert_rank;
                let (viewed, mut unviewed): (Vec<usize>, Vec<usize>) =
                    by_popularity.into_iter().partition(|&i| stats[i].viewed);
                unviewed.shuffle(&mut self.rng);
                // Top k−1 viewed items keep their positions, then the whole
                // promotion pool in random order, then the remaining viewed
                // items (selective promotion with r = 1, k = insert rank).
                let prefix = (k - 1).min(viewed.len());
                let mut result = Vec::with_capacity(items.len());
                result.extend_from_slice(&viewed[..prefix]);
                result.extend_from_slice(&unviewed);
                result.extend_from_slice(&viewed[prefix..]);
                result
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(seed: u64) -> StudyConfig {
        // Smaller pool than the paper so unit tests stay fast; everything
        // else follows the paper's configuration.
        StudyConfig {
            items: 300,
            participants: 400,
            ..StudyConfig::paper_default(seed)
        }
    }

    #[test]
    fn group_indexing() {
        assert_eq!(Group::Control.index(), 0);
        assert_eq!(Group::Promoted.index(), 1);
        assert_eq!(Group::both().len(), 2);
    }

    #[test]
    fn vote_tally_ratio() {
        let t = VoteTally {
            funny: 3,
            total: 12,
        };
        assert!((t.ratio() - 0.25).abs() < 1e-12);
        assert_eq!(VoteTally::default().ratio(), 0.0);
    }

    #[test]
    fn study_runs_and_collects_votes_in_both_groups() {
        let outcome = LiveStudy::new(quick_config(1)).unwrap().run();
        assert!(
            outcome.control.total > 100,
            "control collected {} votes",
            outcome.control.total
        );
        assert!(outcome.promoted.total > 100);
        assert!(outcome.control.ratio() > 0.0 && outcome.control.ratio() < 1.0);
        assert!(outcome.promoted.ratio() > 0.0 && outcome.promoted.ratio() < 1.0);
        // Participants split roughly evenly.
        let total: usize = outcome.participants.iter().sum();
        assert_eq!(total, 400);
        assert!(outcome.participants[0] > 140 && outcome.participants[1] > 140);
    }

    #[test]
    fn promotion_group_improves_the_funny_ratio() {
        // Single studies are noisy (the per-study improvement spread is
        // roughly ±12%), so average the paper's own configuration over
        // several seeds and require the mean effect to be positive. The
        // mean improvement this model produces (≈ +4%) is well short of
        // the paper's reported +60% — tracked as a fidelity gap in the
        // ROADMAP — but its sign is stable.
        let mut control_ratio = 0.0;
        let mut promoted_ratio = 0.0;
        let seeds = 8;
        for seed in 0..seeds {
            let outcome = LiveStudy::new(StudyConfig::paper_default(seed))
                .unwrap()
                .run();
            control_ratio += outcome.control.ratio() / seeds as f64;
            promoted_ratio += outcome.promoted.ratio() / seeds as f64;
        }
        assert!(
            promoted_ratio > control_ratio * 1.01,
            "promotion should improve the funny-vote ratio: {promoted_ratio:.4} vs {control_ratio:.4}"
        );
    }

    #[test]
    fn outcome_relative_improvement() {
        let outcome = StudyOutcome {
            control: VoteTally {
                funny: 10,
                total: 100,
            },
            promoted: VoteTally {
                funny: 16,
                total: 100,
            },
            participants: [1, 1],
        };
        assert!((outcome.relative_improvement() - 0.6).abs() < 1e-12);
        let degenerate = StudyOutcome {
            control: VoteTally::default(),
            promoted: VoteTally { funny: 1, total: 2 },
            participants: [0, 1],
        };
        assert_eq!(degenerate.relative_improvement(), 0.0);
    }

    #[test]
    fn same_seed_is_reproducible() {
        let a = LiveStudy::new(quick_config(9)).unwrap().run();
        let b = LiveStudy::new(quick_config(9)).unwrap().run();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut c = quick_config(0);
        c.items = 0;
        assert!(LiveStudy::new(c).is_err());
    }

    #[test]
    fn promoted_ranking_protects_top_items_and_promotes_unviewed() {
        let mut study = LiveStudy::new(quick_config(3)).unwrap();
        // Mark items 0..50 as viewed with votes so they occupy the top.
        for i in 0..50usize {
            let s = &mut study.stats[Group::Promoted.index()][i];
            s.viewed = true;
            s.funny_votes = (50 - i) as u32;
            s.total_votes = 60;
        }
        let ranking = study.ranking_for(Group::Promoted);
        // The first 20 positions are the 20 most-voted viewed items.
        for (pos, &item) in ranking.iter().take(20).enumerate() {
            assert_eq!(item, pos, "position {pos} should hold item {pos}");
        }
        // Positions 21.. start the unviewed pool: none of the items ranked
        // 21..=250 should be one of the remaining viewed items (30 viewed
        // items remain and 250 unviewed items were promoted above them).
        let promoted_block: Vec<usize> = ranking[20..270].to_vec();
        assert!(promoted_block.iter().all(|&i| i >= 50));
        // Every item appears exactly once.
        let mut all = ranking.clone();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 300);
    }
}
