//! Configuration of the live-study reproduction (Appendix A).

use rrp_model::{ModelError, ModelResult};
use serde::{Deserialize, Serialize};

/// Parameters of the jokes/quotations user study.
///
/// Defaults reproduce Appendix A: 1,000 accessible items per group with
/// 30-day lifetimes, a 45-day study with the last 15 days measured, 962
/// participants split randomly into two groups, and rank promotion (for the
/// treatment group only) that inserts never-viewed items in random order
/// starting at rank position 21.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Number of accessible items at any time (1,000 in the paper).
    pub items: usize,
    /// Item lifetime in days (30 in the paper; initial items get uniform
    /// lifetimes in `[1, lifetime]` to start in steady state).
    pub item_lifetime_days: u64,
    /// Total study duration in days (45).
    pub duration_days: u64,
    /// Measurement window: the final `measure_last_days` days (15).
    pub measure_last_days: u64,
    /// Number of volunteer participants over the whole study (962).
    pub participants: usize,
    /// Number of item pages each participant views during their session.
    pub views_per_user: usize,
    /// Probability that a participant rates an item they viewed.
    pub vote_probability: f64,
    /// Rank position at which never-viewed items are inserted for the
    /// treatment group (21 in the paper — i.e. selective promotion with
    /// `k = 21`, `r = 1`).
    pub promotion_insert_rank: usize,
    /// RNG seed.
    pub seed: u64,
}

impl StudyConfig {
    /// The configuration of the paper's study.
    pub fn paper_default(seed: u64) -> Self {
        StudyConfig {
            items: 1_000,
            item_lifetime_days: 30,
            duration_days: 45,
            measure_last_days: 15,
            participants: 962,
            // The paper does not report per-session depth; jokes-site
            // sessions browse deep. Depth also sets the treatment group's
            // exploration budget (ranks ≥ 21 receive ~7% of rank-biased
            // attention), and shallower sessions starve promoted items of
            // the repeat views they need to climb the vote ranking.
            views_per_user: 60,
            vote_probability: 0.5,
            promotion_insert_rank: 21,
            seed,
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> ModelResult<()> {
        if self.items == 0 {
            return Err(ModelError::ZeroCount { what: "items" });
        }
        if self.item_lifetime_days == 0 {
            return Err(ModelError::ZeroCount {
                what: "item lifetime",
            });
        }
        if self.duration_days == 0 {
            return Err(ModelError::ZeroCount {
                what: "study duration",
            });
        }
        if self.measure_last_days > self.duration_days {
            return Err(ModelError::InvalidCommunity {
                reason: format!(
                    "measurement window ({} days) exceeds study duration ({} days)",
                    self.measure_last_days, self.duration_days
                ),
            });
        }
        if self.participants == 0 {
            return Err(ModelError::ZeroCount {
                what: "participants",
            });
        }
        if self.views_per_user == 0 {
            return Err(ModelError::ZeroCount {
                what: "views per user",
            });
        }
        if !(0.0..=1.0).contains(&self.vote_probability) || !self.vote_probability.is_finite() {
            return Err(ModelError::OutOfUnitInterval {
                what: "vote probability",
                value: self.vote_probability,
            });
        }
        if self.promotion_insert_rank == 0 {
            return Err(ModelError::ZeroCount {
                what: "promotion insert rank (1-based)",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_appendix_a() {
        let c = StudyConfig::paper_default(1);
        assert_eq!(c.items, 1_000);
        assert_eq!(c.item_lifetime_days, 30);
        assert_eq!(c.duration_days, 45);
        assert_eq!(c.measure_last_days, 15);
        assert_eq!(c.participants, 962);
        assert_eq!(c.promotion_insert_rank, 21);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_each_field() {
        let base = StudyConfig::paper_default(0);
        let mut c = base;
        c.items = 0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.item_lifetime_days = 0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.duration_days = 0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.measure_last_days = 100;
        assert!(c.validate().is_err());
        let mut c = base;
        c.participants = 0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.views_per_user = 0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.vote_probability = 1.5;
        assert!(c.validate().is_err());
        let mut c = base;
        c.promotion_insert_rank = 0;
        assert!(c.validate().is_err());
    }
}
