//! # rrp-livestudy — reproduction of the live "jokes site" user study
//!
//! Appendix A of *"Shuffling a Stacked Deck"* describes a 45-day study with
//! 962 volunteers browsing a site of jokes and quotations, split into a
//! control group (strict ranking by funny-vote popularity) and a treatment
//! group (never-viewed items promoted in random order starting at rank 21).
//! The paper's Figure 1 reports that the treatment group's funny-vote ratio
//! was ≈ 60% higher.
//!
//! Real volunteers are obviously unavailable to a reproduction, so this
//! crate substitutes a stochastic user-behaviour model that preserves the
//! mechanisms the paper identifies as responsible for the effect:
//!
//! * item funniness follows the same heavy-tailed distribution as the
//!   paper's page quality (power law, max 0.4);
//! * volunteers view items with the `rank^(-3/2)` attention bias that the
//!   paper measured for its own participants;
//! * a viewed item is rated with fixed probability, and rated "funny" with
//!   probability equal to its funniness;
//! * content rotates exactly as in the study (30-day lifetimes, replacement
//!   by an item of equal funniness, initial lifetimes uniform in `[1, 30]`).
//!
//! ```
//! use rrp_livestudy::{LiveStudy, StudyConfig};
//!
//! let mut config = StudyConfig::paper_default(42);
//! config.items = 200;          // smaller pool so the doc test is fast
//! config.participants = 300;
//! let outcome = LiveStudy::new(config).unwrap().run();
//! assert!(outcome.control.total > 0);
//! assert!(outcome.promoted.total > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod items;
pub mod study;

pub use config::StudyConfig;
pub use items::{GroupItemStats, Item, ItemPool};
pub use study::{Group, LiveStudy, StudyOutcome, VoteTally};
