//! The joke/quotation item pool and per-group item statistics.
//!
//! The study keeps the same item pool for both user groups (Appendix A:
//! "At all times we used the same joke/quotation items for both user
//! groups"), but tracks views and votes separately per group, because each
//! group's ranking is driven only by its own members' votes.

use rand::Rng;
use rrp_model::{assign_qualities, Rng64, UniformQuality};
use serde::{Deserialize, Serialize};

/// One joke/quotation item. Funniness plays the role of intrinsic quality.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Item {
    /// Funniness in `[0, 1]` — the probability a visitor who rates the item
    /// rates it "funny".
    pub funniness: f64,
    /// Day the item (or its current replacement) went live.
    pub born_day: u64,
    /// Day the item expires and is replaced.
    pub expires_day: u64,
}

/// Per-group statistics for one item.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct GroupItemStats {
    /// Number of "funny" votes from this group (the popularity measure).
    pub funny_votes: u32,
    /// Total votes from this group.
    pub total_votes: u32,
    /// Whether any member of this group has viewed the item.
    pub viewed: bool,
}

impl GroupItemStats {
    /// Reset when the underlying item is replaced.
    pub fn reset(&mut self) {
        *self = GroupItemStats::default();
    }
}

/// The shared item pool.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ItemPool {
    items: Vec<Item>,
    lifetime_days: u64,
    replacements: u64,
}

impl ItemPool {
    /// Funniness of the dullest item in the pool.
    pub const MIN_FUNNINESS: f64 = 0.05;
    /// Funniness of the funniest item in the pool.
    pub const MAX_FUNNINESS: f64 = 0.45;

    /// Create a pool of `count` items with funniness spread uniformly over
    /// `[MIN_FUNNINESS, MAX_FUNNINESS]`. Initial lifetimes are drawn
    /// uniformly from `[1, lifetime_days]` so the pool starts in rotation
    /// steady state, exactly as in Appendix A.
    ///
    /// Unlike web-page quality — the heavy-tailed power law used everywhere
    /// else in this workspace, under which only a handful of items per
    /// thousand are any good — curated jokes/quotations span a broad
    /// funniness range with a substantial base rate (the paper's study
    /// measured overall funny-vote ratios high enough that ≈ 3,600 votes
    /// resolved a +60% effect). Drawing funniness from the page-quality
    /// power law instead starves the 45-day study of funny votes (≈ 6 per
    /// group) and makes exploration worthless (nothing good to discover),
    /// which inverts the study's outcome. The uniform spread restores the
    /// regime the live study actually ran in.
    pub fn new(count: usize, lifetime_days: u64, rng: &mut Rng64) -> Self {
        let funniness_distribution = UniformQuality::new(Self::MIN_FUNNINESS, Self::MAX_FUNNINESS)
            .expect("funniness bounds are a valid unit sub-interval");
        let qualities = assign_qualities(&funniness_distribution, count);
        let items = qualities
            .iter()
            .map(|q| Item {
                funniness: q.value(),
                born_day: 0,
                expires_day: rng.gen_range(1..=lifetime_days),
            })
            .collect();
        ItemPool {
            items,
            lifetime_days,
            replacements: 0,
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The items.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Number of item replacements performed so far.
    pub fn replacements(&self) -> u64 {
        self.replacements
    }

    /// Replace every item that expires on or before `day` with a fresh item
    /// of the same funniness and a full lifetime (Appendix A: "when a
    /// particular item expired we replaced it with another item of the same
    /// quality"). Returns the indices of replaced items so callers can reset
    /// the per-group statistics.
    pub fn rotate(&mut self, day: u64) -> Vec<usize> {
        let mut replaced = Vec::new();
        for (idx, item) in self.items.iter_mut().enumerate() {
            if item.expires_day <= day {
                item.born_day = day;
                item.expires_day = day + self.lifetime_days;
                replaced.push(idx);
                self.replacements += 1;
            }
        }
        replaced
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrp_model::new_rng;

    #[test]
    fn pool_matches_quality_distribution() {
        let mut rng = new_rng(1);
        let pool = ItemPool::new(1_000, 30, &mut rng);
        assert_eq!(pool.len(), 1_000);
        assert!(!pool.is_empty());
        let max = pool
            .items()
            .iter()
            .map(|i| i.funniness)
            .fold(0.0f64, f64::max);
        let min = pool
            .items()
            .iter()
            .map(|i| i.funniness)
            .fold(1.0f64, f64::min);
        // Deterministic assignment samples quantile midpoints, so the
        // extremes sit half a grid step inside the bounds.
        assert!(
            (max - ItemPool::MAX_FUNNINESS).abs() < 1e-3,
            "funniest item sits at the cap, got {max}"
        );
        assert!(
            (min - ItemPool::MIN_FUNNINESS).abs() < 1e-3,
            "dullest item sits at the floor, got {min}"
        );
        // Uniform spread: the median item is near the middle of the range.
        let mut sorted: Vec<f64> = pool.items().iter().map(|i| i.funniness).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        let middle = 0.5 * (ItemPool::MIN_FUNNINESS + ItemPool::MAX_FUNNINESS);
        assert!(
            (median - middle).abs() < 0.01,
            "median funniness {median} should sit near {middle}"
        );
    }

    #[test]
    fn initial_lifetimes_are_spread_out() {
        let mut rng = new_rng(2);
        let pool = ItemPool::new(1_000, 30, &mut rng);
        let mut expiries: Vec<u64> = pool.items().iter().map(|i| i.expires_day).collect();
        expiries.sort_unstable();
        assert!(*expiries.first().unwrap() >= 1);
        assert!(*expiries.last().unwrap() <= 30);
        // Roughly uniform: at least 20 distinct expiry days.
        expiries.dedup();
        assert!(expiries.len() >= 20);
    }

    #[test]
    fn rotation_replaces_expired_items_and_keeps_funniness() {
        let mut rng = new_rng(3);
        let mut pool = ItemPool::new(100, 30, &mut rng);
        let funniness_before: Vec<f64> = pool.items().iter().map(|i| i.funniness).collect();
        let replaced = pool.rotate(15);
        assert!(!replaced.is_empty());
        assert!(replaced.len() < 100, "only expired items are replaced");
        for &idx in &replaced {
            let item = &pool.items()[idx];
            assert_eq!(item.born_day, 15);
            assert_eq!(item.expires_day, 45);
            assert_eq!(item.funniness, funniness_before[idx]);
        }
        assert_eq!(pool.replacements(), replaced.len() as u64);
    }

    #[test]
    fn rotation_is_idempotent_within_a_day() {
        let mut rng = new_rng(4);
        let mut pool = ItemPool::new(100, 30, &mut rng);
        let first = pool.rotate(10);
        let second = pool.rotate(10);
        assert!(!first.is_empty());
        assert!(
            second.is_empty(),
            "already-rotated items have future expiry"
        );
    }

    #[test]
    fn group_stats_reset() {
        let mut stats = GroupItemStats {
            funny_votes: 5,
            total_votes: 9,
            viewed: true,
        };
        stats.reset();
        assert_eq!(stats, GroupItemStats::default());
    }
}
