//! The evolving page population of a simulated community.
//!
//! Each of the `n` page *slots* holds one live page. When a page retires
//! (Poisson process, Section 5.1), the slot is immediately refilled with a
//! brand-new page of the same quality, zero awareness and a fresh
//! [`PageId`] — exactly the stationarity device the paper uses to keep the
//! quality distribution constant over time.

use rand::Rng;
use rrp_model::{
    CommunityConfig, Day, LifetimeModel, PageId, PageIdGenerator, Quality, QualityDistribution,
};
use serde::{Deserialize, Serialize};

/// One page slot: the live page currently occupying it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PageSlot {
    /// Identifier of the live page.
    pub page: PageId,
    /// Intrinsic quality (inherited by every successor in this slot).
    pub quality: f64,
    /// Number of monitored users currently aware of the page (`0..=m`).
    pub aware_users: usize,
    /// Day the page was created.
    pub born: Day,
}

impl PageSlot {
    /// Awareness `A(p, t)` as a fraction of the `m` monitored users.
    #[inline]
    pub fn awareness(&self, monitored_users: usize) -> f64 {
        self.aware_users as f64 / monitored_users as f64
    }

    /// Popularity `P(p, t) = A(p, t) · Q(p)`.
    #[inline]
    pub fn popularity(&self, monitored_users: usize) -> f64 {
        self.awareness(monitored_users) * self.quality
    }

    /// Age in days at time `now`.
    #[inline]
    pub fn age_days(&self, now: Day) -> u64 {
        now.since(self.born)
    }

    /// Whether no monitored user has ever visited the page.
    #[inline]
    pub fn is_unexplored(&self) -> bool {
        self.aware_users == 0
    }
}

/// The full page population of a community.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PagePopulation {
    slots: Vec<PageSlot>,
    monitored_users: usize,
    lifetime: LifetimeModel,
    ids: PageIdGenerator,
    /// Count of pages retired since the start of the simulation.
    retired: u64,
}

impl PagePopulation {
    /// Create a population for `config`, assigning slot qualities by the
    /// deterministic quantile rule of the given distribution (so the
    /// community always contains exactly one page of the maximum quality).
    pub fn new<D: QualityDistribution>(config: &CommunityConfig, distribution: &D) -> Self {
        let qualities = rrp_model::assign_qualities(distribution, config.pages());
        Self::with_qualities(config, &qualities)
    }

    /// Create a population with explicit per-slot qualities.
    pub fn with_qualities(config: &CommunityConfig, qualities: &[Quality]) -> Self {
        assert_eq!(qualities.len(), config.pages(), "one quality per page slot");
        let lifetime = LifetimeModel::new(config.expected_lifetime_days())
            .expect("community config is validated");
        let mut ids = PageIdGenerator::new();
        let slots = qualities
            .iter()
            .map(|q| PageSlot {
                page: ids.next_id(),
                quality: q.value(),
                aware_users: 0,
                born: Day::ZERO,
            })
            .collect();
        PagePopulation {
            slots,
            monitored_users: config.monitored_users(),
            lifetime,
            ids,
            retired: 0,
        }
    }

    /// Number of page slots `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the population is empty (never true for a valid community).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The slots.
    #[inline]
    pub fn slots(&self) -> &[PageSlot] {
        &self.slots
    }

    /// Mutable access to one slot.
    #[inline]
    pub fn slot_mut(&mut self, index: usize) -> &mut PageSlot {
        &mut self.slots[index]
    }

    /// One slot.
    #[inline]
    pub fn slot(&self, index: usize) -> &PageSlot {
        &self.slots[index]
    }

    /// Number of monitored users `m`.
    #[inline]
    pub fn monitored_users(&self) -> usize {
        self.monitored_users
    }

    /// Lifetime model in use.
    #[inline]
    pub fn lifetime(&self) -> &LifetimeModel {
        &self.lifetime
    }

    /// Total pages retired so far.
    #[inline]
    pub fn retired_count(&self) -> u64 {
        self.retired
    }

    /// The slot index holding the highest-quality page.
    pub fn best_slot(&self) -> usize {
        self.slots
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                a.quality
                    .partial_cmp(&b.quality)
                    .expect("quality is never NaN")
            })
            .map(|(i, _)| i)
            .expect("population is non-empty")
    }

    /// Record one monitored-user visit to the page in `slot`: with
    /// probability `1 − A(p, t)` the visitor had not seen the page before
    /// and the awareness count increases.
    ///
    /// Returns `true` iff the awareness count actually changed — i.e. the
    /// slot's popularity key moved and any incremental popularity index
    /// over the population must treat the slot as dirty.
    pub fn record_monitored_visit<R: Rng + ?Sized>(&mut self, slot: usize, rng: &mut R) -> bool {
        let m = self.monitored_users;
        let s = &mut self.slots[slot];
        if s.aware_users >= m {
            return false;
        }
        let unaware_fraction = 1.0 - s.aware_users as f64 / m as f64;
        if rng.gen::<f64>() < unaware_fraction {
            s.aware_users += 1;
            return true;
        }
        false
    }

    /// Replace the page in `slot` with a fresh page of the same quality and
    /// zero awareness, born on `today`.
    pub fn replace_page(&mut self, slot: usize, today: Day) -> PageId {
        let id = self.ids.next_id();
        let s = &mut self.slots[slot];
        s.page = id;
        s.aware_users = 0;
        s.born = today;
        self.retired += 1;
        id
    }

    /// Apply one day of Poisson retirement: the number of retirements is
    /// drawn from the binomial `Bin(n, 1 − e^{−λ})` (approximated by a
    /// Poisson/normal draw for large `n`), and that many distinct slots are
    /// replaced. Slots listed in `protected` are exempt (used while probing
    /// TBP so the probe page is not retired mid-measurement).
    pub fn retire_daily<R: Rng + ?Sized>(
        &mut self,
        today: Day,
        protected: &[usize],
        rng: &mut R,
    ) -> usize {
        let mut replaced = Vec::new();
        self.retire_daily_recording(today, protected, rng, &mut replaced);
        replaced.len()
    }

    /// [`retire_daily`](Self::retire_daily), appending the index of every
    /// replaced slot to `replaced` (not cleared) so callers maintaining an
    /// incremental popularity index can mark exactly those slots dirty.
    /// Consumes the same RNG draws as `retire_daily`.
    pub fn retire_daily_recording<R: Rng + ?Sized>(
        &mut self,
        today: Day,
        protected: &[usize],
        rng: &mut R,
        replaced: &mut Vec<usize>,
    ) -> usize {
        let n = self.slots.len();
        let p = self.lifetime.daily_retirement_probability();
        let mean = n as f64 * p;
        let count = sample_count(mean, n, rng);
        let mut retired = 0;
        let mut guard = 0;
        while retired < count && guard < count * 20 + 100 {
            guard += 1;
            let slot = rng.gen_range(0..n);
            if protected.contains(&slot) {
                continue;
            }
            self.replace_page(slot, today);
            replaced.push(slot);
            retired += 1;
        }
        retired
    }

    /// Summary statistics used by metrics: (number of zero-awareness pages,
    /// mean awareness).
    pub fn awareness_summary(&self) -> (usize, f64) {
        let m = self.monitored_users as f64;
        let zero = self.slots.iter().filter(|s| s.aware_users == 0).count();
        let mean = self
            .slots
            .iter()
            .map(|s| s.aware_users as f64 / m)
            .sum::<f64>()
            / self.slots.len().max(1) as f64;
        (zero, mean)
    }
}

/// Draw the number of daily retirements: exact Bernoulli sum for small
/// populations, Poisson (Knuth) for moderate means, normal approximation for
/// large means.
fn sample_count<R: Rng + ?Sized>(mean: f64, max: usize, rng: &mut R) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let draw = if mean < 30.0 {
        // Knuth's Poisson sampler.
        let limit = (-mean).exp();
        let mut k = 0usize;
        let mut product: f64 = 1.0;
        loop {
            product *= rng.gen::<f64>();
            if product <= limit {
                break;
            }
            k += 1;
            if k > max {
                break;
            }
        }
        k
    } else {
        // Normal approximation with continuity correction.
        let std = mean.sqrt();
        let normal = sample_standard_normal(rng);
        (mean + std * normal + 0.5).floor().max(0.0) as usize
    };
    draw.min(max)
}

/// Box–Muller standard normal sample.
fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrp_model::{new_rng, CommunityConfig, PowerLawQuality};

    fn small_config() -> CommunityConfig {
        CommunityConfig::builder()
            .pages(100)
            .users(50)
            .monitored_users(10)
            .total_visits_per_day(50.0)
            .expected_lifetime_days(30.0)
            .build()
            .unwrap()
    }

    #[test]
    fn new_population_has_zero_awareness_and_unique_ids() {
        let config = small_config();
        let pop = PagePopulation::new(&config, &PowerLawQuality::paper_default());
        assert_eq!(pop.len(), 100);
        assert!(!pop.is_empty());
        assert!(pop.slots().iter().all(|s| s.aware_users == 0));
        assert!(pop.slots().iter().all(|s| s.is_unexplored()));
        let mut ids: Vec<u64> = pop.slots().iter().map(|s| s.page.raw()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 100);
        assert_eq!(pop.monitored_users(), 10);
        assert_eq!(pop.retired_count(), 0);
    }

    #[test]
    fn best_slot_holds_the_max_quality_page() {
        let config = small_config();
        let pop = PagePopulation::new(&config, &PowerLawQuality::paper_default());
        let best = pop.best_slot();
        let q = pop.slot(best).quality;
        assert!((q - 0.4).abs() < 1e-6);
        assert!(pop.slots().iter().all(|s| s.quality <= q + 1e-12));
    }

    #[test]
    fn popularity_is_awareness_times_quality() {
        let config = small_config();
        let mut pop = PagePopulation::new(&config, &PowerLawQuality::paper_default());
        let slot = pop.best_slot();
        pop.slot_mut(slot).aware_users = 5;
        let s = pop.slot(slot);
        assert!((s.awareness(10) - 0.5).abs() < 1e-12);
        assert!((s.popularity(10) - 0.5 * s.quality).abs() < 1e-12);
        assert!(!s.is_unexplored());
        assert_eq!(s.age_days(Day::new(7)), 7);
    }

    #[test]
    fn monitored_visits_eventually_saturate_awareness() {
        let config = small_config();
        let mut pop = PagePopulation::new(&config, &PowerLawQuality::paper_default());
        let mut rng = new_rng(1);
        for _ in 0..1_000 {
            pop.record_monitored_visit(3, &mut rng);
        }
        assert_eq!(pop.slot(3).aware_users, 10, "awareness is capped at m");
    }

    #[test]
    fn visit_by_already_aware_user_does_not_increase_awareness() {
        let config = small_config();
        let mut pop = PagePopulation::new(&config, &PowerLawQuality::paper_default());
        pop.slot_mut(0).aware_users = 10;
        let mut rng = new_rng(2);
        pop.record_monitored_visit(0, &mut rng);
        assert_eq!(pop.slot(0).aware_users, 10);
    }

    #[test]
    fn replace_page_resets_state_but_keeps_quality() {
        let config = small_config();
        let mut pop = PagePopulation::new(&config, &PowerLawQuality::paper_default());
        pop.slot_mut(5).aware_users = 7;
        let old_id = pop.slot(5).page;
        let old_quality = pop.slot(5).quality;
        let new_id = pop.replace_page(5, Day::new(20));
        assert_ne!(new_id, old_id);
        let s = pop.slot(5);
        assert_eq!(s.page, new_id);
        assert_eq!(s.aware_users, 0);
        assert_eq!(s.born, Day::new(20));
        assert_eq!(s.quality, old_quality);
        assert_eq!(pop.retired_count(), 1);
    }

    #[test]
    fn daily_retirement_rate_matches_lifetime() {
        let config = small_config(); // 30-day lifetime, 100 pages
        let mut pop = PagePopulation::new(&config, &PowerLawQuality::paper_default());
        let mut rng = new_rng(3);
        let days = 3_000;
        let mut total = 0;
        for d in 0..days {
            total += pop.retire_daily(Day::new(d), &[], &mut rng);
        }
        let expected = days as f64 * 100.0 * (1.0 - (-1.0f64 / 30.0).exp());
        let observed = total as f64;
        assert!(
            (observed - expected).abs() / expected < 0.1,
            "observed {observed} vs expected {expected}"
        );
    }

    #[test]
    fn protected_slots_are_never_retired() {
        let config = CommunityConfig::builder()
            .pages(10)
            .users(10)
            .monitored_users(5)
            .total_visits_per_day(10.0)
            .expected_lifetime_days(2.0)
            .build()
            .unwrap();
        let mut pop = PagePopulation::new(&config, &PowerLawQuality::paper_default());
        let protected = vec![pop.best_slot()];
        let original_id = pop.slot(protected[0]).page;
        let mut rng = new_rng(4);
        for d in 0..200 {
            pop.retire_daily(Day::new(d), &protected, &mut rng);
        }
        assert_eq!(pop.slot(protected[0]).page, original_id);
        assert!(pop.retired_count() > 0, "other slots do retire");
    }

    #[test]
    fn monitored_visit_reports_awareness_changes() {
        let config = small_config();
        let mut pop = PagePopulation::new(&config, &PowerLawQuality::paper_default());
        let mut rng = new_rng(9);
        // First visit to a fresh page always raises awareness.
        assert!(pop.record_monitored_visit(2, &mut rng));
        // A saturated page can never change again.
        pop.slot_mut(2).aware_users = 10;
        assert!(!pop.record_monitored_visit(2, &mut rng));
        // Over many visits, the reported changes equal the awareness count.
        let mut changes = 0;
        for _ in 0..1_000 {
            if pop.record_monitored_visit(7, &mut rng) {
                changes += 1;
            }
        }
        assert_eq!(changes, pop.slot(7).aware_users);
    }

    #[test]
    fn recording_retirement_reports_exactly_the_replaced_slots() {
        let config = small_config();
        let mut rng_a = new_rng(12);
        let mut rng_b = new_rng(12);
        let mut pop_a = PagePopulation::new(&config, &PowerLawQuality::paper_default());
        let mut pop_b = PagePopulation::new(&config, &PowerLawQuality::paper_default());
        let mut replaced = Vec::new();
        for d in 0..200 {
            let count_a = pop_a.retire_daily(Day::new(d), &[], &mut rng_a);
            replaced.clear();
            let count_b = pop_b.retire_daily_recording(Day::new(d), &[], &mut rng_b, &mut replaced);
            assert_eq!(count_a, count_b, "identical RNG stream on day {d}");
            assert_eq!(replaced.len(), count_b);
            for &slot in &replaced {
                assert_eq!(pop_b.slot(slot).born, Day::new(d));
            }
        }
        assert_eq!(pop_a.retired_count(), pop_b.retired_count());
    }

    #[test]
    fn awareness_summary_counts_zero_awareness_pages() {
        let config = small_config();
        let mut pop = PagePopulation::new(&config, &PowerLawQuality::paper_default());
        pop.slot_mut(0).aware_users = 10;
        pop.slot_mut(1).aware_users = 5;
        let (zero, mean) = pop.awareness_summary();
        assert_eq!(zero, 98);
        assert!((mean - (1.0 + 0.5) / 100.0).abs() < 1e-12);
    }

    #[test]
    fn sample_count_matches_mean_for_small_and_large_rates() {
        let mut rng = new_rng(5);
        for &(mean, max) in &[(0.5_f64, 1_000_usize), (5.0, 1_000), (200.0, 10_000)] {
            let trials = 3_000;
            let total: usize = (0..trials).map(|_| sample_count(mean, max, &mut rng)).sum();
            let observed = total as f64 / trials as f64;
            assert!(
                (observed - mean).abs() / mean < 0.1,
                "mean {mean}: observed {observed}"
            );
        }
        assert_eq!(sample_count(0.0, 10, &mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "one quality per page slot")]
    fn quality_count_must_match_pages() {
        let config = small_config();
        PagePopulation::with_qualities(&config, &[Quality::new(0.3).unwrap()]);
    }
}
