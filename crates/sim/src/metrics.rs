//! Measurement results collected by the simulator.

use serde::{Deserialize, Serialize};

/// Running accumulator for quality-per-click.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct QpcAccumulator {
    /// Σ visits × quality over the measurement window.
    pub weighted_quality: f64,
    /// Σ visits over the measurement window.
    pub visits: f64,
    /// Number of days accumulated.
    pub days: u64,
    /// Σ (zero-awareness page count / n) over the measurement window.
    pub zero_awareness_fraction_sum: f64,
}

impl QpcAccumulator {
    /// Record one day's totals.
    pub fn record_day(&mut self, weighted_quality: f64, visits: f64, zero_awareness_fraction: f64) {
        self.weighted_quality += weighted_quality;
        self.visits += visits;
        self.zero_awareness_fraction_sum += zero_awareness_fraction;
        self.days += 1;
    }

    /// The absolute quality-per-click accumulated so far (0 if nothing was
    /// measured).
    pub fn absolute_qpc(&self) -> f64 {
        if self.visits <= 0.0 {
            0.0
        } else {
            self.weighted_quality / self.visits
        }
    }

    /// Mean fraction of pages with zero awareness over the window.
    pub fn mean_zero_awareness_fraction(&self) -> f64 {
        if self.days == 0 {
            0.0
        } else {
            self.zero_awareness_fraction_sum / self.days as f64
        }
    }
}

/// Final metrics of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimMetrics {
    /// Days included in the measurement window.
    pub days_measured: u64,
    /// Absolute quality-per-click (average quality of visited pages).
    pub absolute_qpc: f64,
    /// QPC of the hypothetical quality-ordered ranking (pure-search model).
    pub ideal_qpc: f64,
    /// `absolute_qpc / ideal_qpc` — the normalisation used in Figures 5–7.
    pub normalized_qpc: f64,
    /// Mean fraction of pages that no monitored user has ever seen.
    pub mean_zero_awareness_fraction: f64,
}

/// Result of a TBP (time-to-become-popular) measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TbpResult {
    /// Mean days to become popular over all trials (censored trials counted
    /// at the censoring horizon, making this a lower bound when `completed
    /// < trials`).
    pub mean_days: f64,
    /// Number of trials in which the page reached the popularity threshold.
    pub completed: usize,
    /// Total number of trials.
    pub trials: usize,
    /// The per-trial censoring horizon in days.
    pub max_days: u64,
}

impl TbpResult {
    /// Whether every trial reached the threshold before the horizon.
    pub fn fully_observed(&self) -> bool {
        self.completed == self.trials
    }
}

/// A per-day trace of one page's state, used to reproduce the
/// popularity-evolution and visit-rate figures (Figures 2 and 4(a)).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PopularityTrace {
    /// Popularity at the end of each day (day 0 = creation day).
    pub popularity: Vec<f64>,
    /// Expected monitored visits per day at the rank the page held that day.
    pub daily_visits: Vec<f64>,
}

impl PopularityTrace {
    /// Days until popularity first exceeded `threshold`, if it did.
    pub fn first_day_above(&self, threshold: f64) -> Option<usize> {
        self.popularity.iter().position(|&p| p >= threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_computes_the_ratio() {
        let mut acc = QpcAccumulator::default();
        assert_eq!(acc.absolute_qpc(), 0.0);
        acc.record_day(4.0, 10.0, 0.5);
        acc.record_day(2.0, 10.0, 0.3);
        assert!((acc.absolute_qpc() - 0.3).abs() < 1e-12);
        assert_eq!(acc.days, 2);
        assert!((acc.mean_zero_awareness_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_accumulator_is_zero() {
        let acc = QpcAccumulator::default();
        assert_eq!(acc.absolute_qpc(), 0.0);
        assert_eq!(acc.mean_zero_awareness_fraction(), 0.0);
    }

    #[test]
    fn tbp_result_observation_flag() {
        let full = TbpResult {
            mean_days: 12.0,
            completed: 5,
            trials: 5,
            max_days: 100,
        };
        assert!(full.fully_observed());
        let censored = TbpResult {
            completed: 3,
            ..full
        };
        assert!(!censored.fully_observed());
    }

    #[test]
    fn trace_first_day_above() {
        let trace = PopularityTrace {
            popularity: vec![0.0, 0.0, 0.1, 0.3, 0.39],
            daily_visits: vec![0.0; 5],
        };
        assert_eq!(trace.first_day_above(0.3), Some(3));
        assert_eq!(trace.first_day_above(0.5), None);
        assert_eq!(trace.first_day_above(0.0), Some(0));
    }
}
