//! The day-by-day Web-community simulator.
//!
//! Mirrors the simulator described in Section 6.2 of the paper: it
//! "maintains an evolving ranked list of pages (the ranking method used is
//! configurable), and distributes user visits to pages according to
//! Equation 4 … keeps track of awareness and popularity values of individual
//! pages as they evolve over time, and creates and retires pages as dictated
//! by our model."
//!
//! Each simulated day:
//!
//! 1. the configured [`RankingPolicy`] produces the day's result list from
//!    the pages' current popularity/awareness;
//! 2. the day's *user* visits are spread over the list according to the
//!    `rank^(-3/2)` attention law (plus the random-surfing component of
//!    Section 8 when `surf_fraction > 0`), and the quality of every visited
//!    page is accumulated into the QPC metric;
//! 3. the day's *monitored-user* visits are sampled individually and update
//!    page awareness (a visit from a previously unaware monitored user
//!    raises the page's awareness by `1/m`);
//! 4. pages retire according to the Poisson lifetime model and are replaced
//!    by fresh zero-awareness pages of equal quality.

use crate::community::PagePopulation;
use crate::config::SimConfig;
use crate::metrics::{QpcAccumulator, SimMetrics};
use rand::Rng;
use rrp_attention::RankBias;
use rrp_model::{new_rng, Day, ModelResult, Quality, Rng64, SimClock};
use rrp_ranking::{PageStats, PolicyKind, PoolIndex, PoolView, PopularityIndex, RankBuffers};

/// The simulator.
pub struct Simulation {
    config: SimConfig,
    population: PagePopulation,
    /// The ranking policy, statically dispatched — no vtable call in the
    /// day loop.
    policy: PolicyKind,
    rng: Rng64,
    clock: SimClock,
    /// Rank-bias law for the full user population (budget `v_u`).
    total_bias: RankBias,
    /// Rank-bias law for monitored users (budget `v`).
    monitored_bias: RankBias,
    /// Cumulative view-probability table over rank positions, used to sample
    /// individual monitored search visits.
    rank_cdf: Vec<f64>,
    qpc: QpcAccumulator,
    ideal_qpc: f64,
    measuring: bool,
    /// Slots exempt from retirement (active TBP probes).
    protected_slots: Vec<usize>,
    /// Today's per-slot snapshot, patched in place each ranking (ages are
    /// stored as a constant seniority surrogate — see `slot_stats`).
    stats: Vec<PageStats>,
    /// Popularity order of all slots, repaired incrementally: only slots
    /// whose popularity key changed (a monitored visit that raised
    /// awareness, or a retirement) are re-placed each day.
    pop_index: PopularityIndex,
    /// Promotion-pool membership (unexplored slots), repaired from the
    /// same dirty slots: a monitored visit flips membership off exactly
    /// when it dirties the slot, and a retirement flips it back on — so
    /// the selective policy's per-day `O(n)` pool scan + mask reset is
    /// replaced by reading this persistent index.
    pool_index: PoolIndex,
    /// Slots whose popularity key changed since the last index repair.
    dirty_slots: Vec<usize>,
    /// Scratch arena for the allocation-free ranking path.
    buffers: RankBuffers,
    /// Today's result list (slot indices, rank 1 first), reused daily.
    ranking: Vec<usize>,
    /// Popularity CDF for random-surfing visits, reused daily.
    popularity_cdf: Vec<f64>,
}

impl Simulation {
    /// Create a simulation with explicit per-slot qualities.
    ///
    /// `policy` accepts any concrete ranking policy from `rrp_ranking` (or
    /// a [`PolicyKind`] directly) — e.g.
    /// `Simulation::new(config, PopularityRanking)`.
    pub fn with_qualities(
        config: SimConfig,
        qualities: &[Quality],
        policy: impl Into<PolicyKind>,
    ) -> ModelResult<Self> {
        config.validate()?;
        let population = PagePopulation::with_qualities(&config.community, qualities);
        let n = config.community.pages();
        let total_bias = RankBias::altavista(n, config.community.total_visits_per_day());
        let monitored_bias = RankBias::altavista(n, config.community.monitored_visits_per_day());
        let rank_cdf = cumulative(&monitored_bias.probabilities_by_rank());
        let ideal_qpc = ideal_qpc(&total_bias, qualities);
        let mut sim = Simulation {
            rng: new_rng(config.seed),
            config,
            population,
            policy: policy.into(),
            clock: SimClock::new(),
            total_bias,
            monitored_bias,
            rank_cdf,
            qpc: QpcAccumulator::default(),
            ideal_qpc,
            measuring: false,
            protected_slots: Vec::new(),
            stats: Vec::with_capacity(n),
            pop_index: PopularityIndex::default(),
            pool_index: PoolIndex::default(),
            dirty_slots: Vec::new(),
            buffers: RankBuffers::with_capacity(n),
            ranking: Vec::with_capacity(n),
            popularity_cdf: Vec::new(),
        };
        sim.refresh_stats();
        sim.pop_index.rebuild(&sim.stats);
        if sim.policy.reads_pool_index() {
            sim.pool_index.rebuild(&sim.stats);
        }
        Ok(sim)
    }

    /// Create a simulation whose page qualities follow the paper's default
    /// power-law distribution (deterministic quantile assignment).
    pub fn new(config: SimConfig, policy: impl Into<PolicyKind>) -> ModelResult<Self> {
        let qualities = rrp_model::assign_qualities(
            &rrp_model::PowerLawQuality::paper_default(),
            config.community.pages(),
        );
        Simulation::with_qualities(config, &qualities, policy)
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The current simulated day.
    pub fn today(&self) -> Day {
        self.clock.now()
    }

    /// The page population (read access, for inspection in tests and
    /// experiment drivers).
    pub fn population(&self) -> &PagePopulation {
        &self.population
    }

    /// The name of the ranking policy in use.
    pub fn policy_name(&self) -> String {
        self.policy.name()
    }

    /// QPC of the hypothetical quality-ordered ranking for this community
    /// (pure-search attention model).
    pub fn ideal_qpc(&self) -> f64 {
        self.ideal_qpc
    }

    /// Begin accumulating QPC. Call after the warm-up period.
    pub fn start_measurement(&mut self) {
        self.measuring = true;
        self.qpc = QpcAccumulator::default();
    }

    /// Stop accumulating QPC (measurement can be restarted later).
    pub fn stop_measurement(&mut self) {
        self.measuring = false;
    }

    /// Run the simulation for `days` days.
    pub fn run(&mut self, days: u64) {
        for _ in 0..days {
            self.run_day();
        }
    }

    /// Run the recommended warm-up (no measurement), then measure for the
    /// recommended window, returning the metrics. This is the one-call path
    /// used by most experiments.
    pub fn run_standard(&mut self) -> SimMetrics {
        self.run(self.config.recommended_warmup_days());
        self.start_measurement();
        self.run(self.config.recommended_measure_days());
        self.metrics()
    }

    /// Warm up for `warmup` days, measure for `measure` days, return
    /// metrics.
    pub fn run_windows(&mut self, warmup: u64, measure: u64) -> SimMetrics {
        self.run(warmup);
        self.start_measurement();
        self.run(measure);
        self.metrics()
    }

    /// The metrics accumulated since the last [`Simulation::start_measurement`].
    pub fn metrics(&self) -> SimMetrics {
        let absolute = self.qpc.absolute_qpc();
        SimMetrics {
            days_measured: self.qpc.days,
            absolute_qpc: absolute,
            ideal_qpc: self.ideal_qpc,
            normalized_qpc: if self.ideal_qpc > 0.0 {
                absolute / self.ideal_qpc
            } else {
                0.0
            },
            mean_zero_awareness_fraction: self.qpc.mean_zero_awareness_fraction(),
        }
    }

    /// One slot's current [`PageStats`] snapshot entry.
    ///
    /// `age_days` holds an *order-equivalent seniority surrogate*,
    /// `u64::MAX − birthday`, not the literal age: ranking only ever
    /// consumes age through the older-first tie-break of
    /// [`popularity_order`](rrp_ranking::popularity_order), and since every
    /// surviving page ages uniformly, "born earlier" and "older today"
    /// order pages identically — the surrogate yields bit-identical
    /// rankings while never needing a daily `O(n)` re-aging pass over the
    /// snapshot. (Code that needs literal ages reads the population
    /// directly; this snapshot is private to the day loop.)
    fn slot_stats(&self, slot: usize) -> PageStats {
        let m = self.population.monitored_users();
        let s = self.population.slot(slot);
        PageStats {
            slot,
            page: s.page,
            popularity: s.popularity(m),
            awareness: s.awareness(m),
            age_days: u64::MAX - s.born.since(Day::ZERO),
            quality: s.quality,
        }
    }

    /// Bring the per-slot [`PageStats`] snapshot current, incrementally:
    /// only slots in `dirty_slots` — the only ones whose popularity,
    /// awareness, page id or birthday can have changed — are recomputed
    /// from the population. Clean entries are already exact (the seniority
    /// surrogate in `age_days` never moves; see
    /// [`slot_stats`](Self::slot_stats)), so the common case touches a few
    /// dozen slots instead of all `n`.
    fn refresh_stats(&mut self) {
        if self.stats.len() != self.population.len() {
            self.stats.clear();
            for slot in 0..self.population.len() {
                let snapshot = self.slot_stats(slot);
                self.stats.push(snapshot);
            }
            return;
        }
        for i in 0..self.dirty_slots.len() {
            let slot = self.dirty_slots[i];
            let snapshot = self.slot_stats(slot);
            self.stats[slot] = snapshot;
        }
        debug_assert!((0..self.population.len()).all(|s| self.stats[s] == self.slot_stats(s)));
    }

    /// Refresh the snapshot, repair the popularity and pool indexes, and
    /// rank today's result list into `self.ranking`. Consumes exactly the
    /// RNG draws the policy's `rank` would, so runs are bit-identical to
    /// the historical per-day full-sort path.
    fn rank_today(&mut self) {
        self.refresh_stats();
        // Pool first: it borrows the dirty list that the popularity
        // repair then drains. Both flip exactly at the dirtied slots —
        // a monitored visit or a retirement changes awareness and
        // popularity together. Policies that never read the pool
        // (everything but selective promotion) skip its maintenance.
        if self.policy.reads_pool_index() {
            self.pool_index.repair(&self.stats, &self.dirty_slots);
        }
        self.pop_index.repair(&self.stats, &mut self.dirty_slots);
        self.policy.rank_pooled_into(
            PoolView::new(&self.stats, self.pop_index.order(), &self.pool_index),
            &mut self.rng,
            &mut self.buffers,
            &mut self.ranking,
        );
        // Validation is debug-only (compiled out in release) and draws on
        // the reusable scratch mask, so no day step ever allocates for
        // sanity checking.
        debug_assert!(self
            .buffers
            .check_permutation(&self.ranking, self.population.len()));
    }

    /// Simulate one day.
    pub fn run_day(&mut self) {
        let today = self.clock.now();
        let n = self.population.len();

        // 1. Rank today's result list (incremental-index fast path).
        self.rank_today();

        // Popularity mass, needed by the random-surfing component.
        let surf = self.config.surf_fraction;
        let teleport = self.config.teleportation;
        let popularity_sum: f64 = if surf > 0.0 {
            self.stats.iter().map(|s| s.popularity).sum()
        } else {
            0.0
        };

        // 2. Accumulate QPC over the full user population's visits.
        if self.measuring {
            let mut weighted = 0.0;
            let mut visits_total = 0.0;
            // Search-driven visits follow the rank-bias law.
            let search_share = 1.0 - surf;
            if search_share > 0.0 {
                for (idx, &slot) in self.ranking.iter().enumerate() {
                    let visits = search_share * self.total_bias.visits_at_rank(idx + 1);
                    let quality = self.population.slot(slot).quality;
                    weighted += visits * quality;
                    visits_total += visits;
                }
            }
            // Random-surfing visits follow PageRank-style traffic:
            // (1 − c) proportional to popularity + c uniform.
            if surf > 0.0 {
                let vu = self.config.community.total_visits_per_day();
                for (slot, s) in self.population.slots().iter().enumerate() {
                    let link_share = if popularity_sum > 0.0 {
                        self.stats[slot].popularity / popularity_sum
                    } else {
                        1.0 / n as f64
                    };
                    let visits = surf * vu * ((1.0 - teleport) * link_share + teleport / n as f64);
                    weighted += visits * s.quality;
                    visits_total += visits;
                }
            }
            let (zero, _) = self.population.awareness_summary();
            self.qpc
                .record_day(weighted, visits_total, zero as f64 / n as f64);
        }

        // 3. Monitored-user visits update awareness.
        let monitored_visits = self
            .config
            .community
            .monitored_visits_per_day()
            .round()
            .max(0.0) as u64;
        // Popularity CDF for surf visits, rebuilt in place only when needed.
        let have_cdf = surf > 0.0 && popularity_sum > 0.0;
        if have_cdf {
            let mut acc = 0.0;
            self.popularity_cdf.clear();
            self.popularity_cdf.extend(self.stats.iter().map(|s| {
                acc += s.popularity / popularity_sum;
                acc
            }));
        }
        for _ in 0..monitored_visits {
            let slot = if self.rng.gen::<f64>() < surf {
                // Random surfing: teleport or follow popularity. (The
                // teleport coin is always drawn first so the RNG stream is
                // independent of whether the CDF exists.)
                let teleported = self.rng.gen::<f64>() < teleport;
                if have_cdf && !teleported {
                    let u: f64 = self.rng.gen();
                    ranking_independent_search(&self.popularity_cdf, u)
                } else {
                    self.rng.gen_range(0..n)
                }
            } else {
                // Search: sample a rank position, then look up the page.
                let u: f64 = self.rng.gen();
                let rank_idx = ranking_independent_search(&self.rank_cdf, u);
                self.ranking[rank_idx.min(n - 1)]
            };
            if self.population.record_monitored_visit(slot, &mut self.rng) {
                self.dirty_slots.push(slot);
            }
        }

        // 4. Retire and replace pages (replacements reset popularity & age,
        // so they are dirty for the popularity index).
        let protected = std::mem::take(&mut self.protected_slots);
        self.population.retire_daily_recording(
            today,
            &protected,
            &mut self.rng,
            &mut self.dirty_slots,
        );
        self.protected_slots = protected;

        self.clock.tick();
    }

    /// Protect a slot from retirement (used by TBP probes).
    pub(crate) fn protect_slot(&mut self, slot: usize) {
        if !self.protected_slots.contains(&slot) {
            self.protected_slots.push(slot);
        }
    }

    /// Remove retirement protection from a slot.
    pub(crate) fn unprotect_slot(&mut self, slot: usize) {
        self.protected_slots.retain(|&s| s != slot);
    }

    /// Replace the page in `slot` with a fresh zero-awareness page (probe
    /// management), keeping the incremental popularity index in sync.
    pub(crate) fn reset_slot_for_probe(&mut self, slot: usize) {
        let today = self.clock.now();
        self.population.replace_page(slot, today);
        self.dirty_slots.push(slot);
    }

    /// The monitored-user rank-bias law (used by probes to report expected
    /// per-rank visit rates).
    pub(crate) fn monitored_bias(&self) -> &RankBias {
        &self.monitored_bias
    }

    /// Compute the current rank of `slot` under the policy in use, by
    /// re-ranking today's snapshot. Used by probes/traces.
    pub(crate) fn current_rank_of(&mut self, slot: usize) -> usize {
        self.rank_today();
        self.ranking
            .iter()
            .position(|&s| s == slot)
            .expect("slot is always ranked")
            + 1
    }
}

/// QPC of the quality-ordered ideal ranking: rank pages by descending
/// quality and weight by the attention each rank receives.
fn ideal_qpc(bias: &RankBias, qualities: &[Quality]) -> f64 {
    let mut sorted: Vec<f64> = qualities.iter().map(|q| q.value()).collect();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("quality is never NaN"));
    let total = bias.total_visits();
    if total <= 0.0 {
        return 0.0;
    }
    sorted
        .iter()
        .enumerate()
        .map(|(idx, q)| bias.visits_at_rank(idx + 1) * q)
        .sum::<f64>()
        / total
}

/// Binary search over a cumulative distribution table: returns the first
/// index whose cumulative value is ≥ `u`.
fn ranking_independent_search(cdf: &[f64], u: f64) -> usize {
    match cdf.binary_search_by(|c| c.partial_cmp(&u).expect("finite")) {
        Ok(i) => i,
        Err(i) => i.min(cdf.len().saturating_sub(1)),
    }
}

/// Build a cumulative table from probabilities, pinning the final entry to 1.
fn cumulative(probabilities: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    let mut out: Vec<f64> = probabilities
        .iter()
        .map(|p| {
            acc += p;
            acc
        })
        .collect();
    if let Some(last) = out.last_mut() {
        *last = 1.0;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrp_model::CommunityConfig;
    use rrp_ranking::{PopularityRanking, PromotionConfig, QualityOracleRanking};

    fn tiny_config(seed: u64) -> SimConfig {
        SimConfig::for_community(
            CommunityConfig::builder()
                .pages(200)
                .users(100)
                .monitored_users(20)
                .total_visits_per_day(100.0)
                .expected_lifetime_days(120.0)
                .build()
                .unwrap(),
            seed,
        )
    }

    #[test]
    fn simulation_construction_and_accessors() {
        let sim = Simulation::new(tiny_config(1), PopularityRanking).unwrap();
        assert_eq!(sim.population().len(), 200);
        assert_eq!(sim.today(), Day::ZERO);
        assert_eq!(sim.policy_name(), "no randomization");
        assert!(sim.ideal_qpc() > 0.0 && sim.ideal_qpc() <= 0.4);
        assert_eq!(sim.config().seed, 1);
    }

    #[test]
    fn clock_advances_and_pages_retire() {
        let mut sim = Simulation::new(tiny_config(2), PopularityRanking).unwrap();
        sim.run(100);
        assert_eq!(sim.today(), Day::new(100));
        assert!(
            sim.population().retired_count() > 50,
            "with a 120-day lifetime and 200 pages, ≈ 166 retirements expected in 100 days, got {}",
            sim.population().retired_count()
        );
    }

    #[test]
    fn awareness_grows_over_time() {
        let mut sim = Simulation::new(tiny_config(3), PopularityRanking).unwrap();
        let (zero_before, mean_before) = sim.population().awareness_summary();
        assert_eq!(zero_before, 200);
        assert_eq!(mean_before, 0.0);
        sim.run(200);
        let (zero_after, mean_after) = sim.population().awareness_summary();
        assert!(zero_after < 200, "some pages must get discovered");
        assert!(mean_after > 0.0);
    }

    #[test]
    fn metrics_require_measurement_window() {
        let mut sim = Simulation::new(tiny_config(4), PopularityRanking).unwrap();
        sim.run(50);
        let metrics = sim.metrics();
        assert_eq!(metrics.days_measured, 0);
        assert_eq!(metrics.absolute_qpc, 0.0);
        sim.start_measurement();
        sim.run(50);
        let metrics = sim.metrics();
        assert_eq!(metrics.days_measured, 50);
        assert!(metrics.absolute_qpc > 0.0);
        assert!(metrics.normalized_qpc > 0.0 && metrics.normalized_qpc <= 1.0 + 1e-9);
        assert!(metrics.mean_zero_awareness_fraction >= 0.0);
        sim.stop_measurement();
        sim.run(10);
        assert_eq!(
            sim.metrics().days_measured,
            50,
            "no accumulation after stop"
        );
    }

    #[test]
    fn quality_oracle_achieves_nearly_ideal_qpc() {
        let mut sim = Simulation::new(tiny_config(5), QualityOracleRanking).unwrap();
        let metrics = sim.run_windows(100, 200);
        assert!(
            metrics.normalized_qpc > 0.95,
            "oracle ranking should be ≈ ideal, got {}",
            metrics.normalized_qpc
        );
    }

    #[test]
    fn same_seed_reproduces_the_run_exactly() {
        let run = |seed| {
            let mut sim = Simulation::new(tiny_config(seed), PopularityRanking).unwrap();
            sim.run_windows(100, 100)
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn selective_promotion_discovers_more_pages_than_baseline() {
        let run = |policy: PolicyKind| {
            let mut sim = Simulation::new(tiny_config(11), policy).unwrap();
            sim.run_windows(300, 300)
        };
        let base = run(PolicyKind::Popularity);
        let promoted = run(PolicyKind::promotion(PromotionConfig::recommended(1)));
        assert!(
            promoted.mean_zero_awareness_fraction < base.mean_zero_awareness_fraction,
            "promotion must reduce never-seen pages: {} vs {}",
            promoted.mean_zero_awareness_fraction,
            base.mean_zero_awareness_fraction
        );
    }

    #[test]
    fn mixed_surfing_distributes_some_visits_by_popularity() {
        let config = tiny_config(12).with_surf_fraction(0.5);
        let mut sim = Simulation::new(config, PopularityRanking).unwrap();
        let metrics = sim.run_windows(100, 100);
        assert!(metrics.absolute_qpc > 0.0);
        // Pure surfing variant also runs.
        let config = tiny_config(13).with_surf_fraction(1.0);
        let mut sim = Simulation::new(config, PopularityRanking).unwrap();
        let metrics = sim.run_windows(100, 100);
        assert!(metrics.absolute_qpc > 0.0);
    }

    #[test]
    fn run_standard_uses_recommended_windows() {
        let config = SimConfig::for_community(
            CommunityConfig::builder()
                .pages(50)
                .users(20)
                .monitored_users(5)
                .total_visits_per_day(20.0)
                .expected_lifetime_days(10.0)
                .build()
                .unwrap(),
            9,
        );
        let mut sim = Simulation::new(config, PopularityRanking).unwrap();
        let metrics = sim.run_standard();
        assert_eq!(metrics.days_measured, 20);
        assert_eq!(sim.today(), Day::new(40));
    }

    #[test]
    fn ideal_qpc_helper_matches_hand_computation() {
        let bias = RankBias::altavista(3, 10.0);
        let qualities = vec![
            Quality::new(0.1).unwrap(),
            Quality::new(0.4).unwrap(),
            Quality::new(0.2).unwrap(),
        ];
        let ideal = ideal_qpc(&bias, &qualities);
        let expected = (bias.visits_at_rank(1) * 0.4
            + bias.visits_at_rank(2) * 0.2
            + bias.visits_at_rank(3) * 0.1)
            / 10.0;
        assert!((ideal - expected).abs() < 1e-12);
    }

    #[test]
    fn cumulative_table_and_search() {
        let cdf = cumulative(&[0.2, 0.3, 0.5]);
        assert!((cdf[0] - 0.2).abs() < 1e-12);
        assert!((cdf[1] - 0.5).abs() < 1e-12);
        assert_eq!(cdf[2], 1.0);
        assert_eq!(ranking_independent_search(&cdf, 0.1), 0);
        assert_eq!(ranking_independent_search(&cdf, 0.4), 1);
        assert_eq!(ranking_independent_search(&cdf, 0.99), 2);
        assert_eq!(ranking_independent_search(&cdf, 1.0), 2);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let config = tiny_config(1).with_surf_fraction(2.0);
        assert!(Simulation::new(config, PopularityRanking).is_err());
    }
}
