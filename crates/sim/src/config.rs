//! Simulation configuration.

use rrp_model::{CommunityConfig, ModelError, ModelResult};
use serde::{Deserialize, Serialize};

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// The community being simulated (`n`, `u`, `m`, `v_u`, `l`).
    pub community: CommunityConfig,
    /// Fraction of browsing done by random surfing rather than searching
    /// (the `x` of Section 8). `0.0` is the pure-search model used in
    /// Sections 6–7.
    pub surf_fraction: f64,
    /// Teleportation probability of the random surfer (`c`, typically 0.15).
    pub teleportation: f64,
    /// RNG seed; the same seed reproduces the run exactly.
    pub seed: u64,
}

impl SimConfig {
    /// A configuration for the paper's default community (Section 6.1) with
    /// pure search-driven browsing.
    pub fn paper_default(seed: u64) -> Self {
        SimConfig {
            community: CommunityConfig::paper_default(),
            surf_fraction: 0.0,
            teleportation: 0.15,
            seed,
        }
    }

    /// Build a configuration for an arbitrary community with pure
    /// search-driven browsing.
    pub fn for_community(community: CommunityConfig, seed: u64) -> Self {
        SimConfig {
            community,
            surf_fraction: 0.0,
            teleportation: 0.15,
            seed,
        }
    }

    /// Set the mixed-browsing surf fraction `x` (Section 8).
    pub fn with_surf_fraction(mut self, x: f64) -> Self {
        self.surf_fraction = x;
        self
    }

    /// Validate the configuration.
    pub fn validate(&self) -> ModelResult<()> {
        self.community.validate()?;
        if !self.surf_fraction.is_finite() || !(0.0..=1.0).contains(&self.surf_fraction) {
            return Err(ModelError::OutOfUnitInterval {
                what: "surf fraction",
                value: self.surf_fraction,
            });
        }
        if !self.teleportation.is_finite() || !(0.0..=1.0).contains(&self.teleportation) {
            return Err(ModelError::OutOfUnitInterval {
                what: "teleportation probability",
                value: self.teleportation,
            });
        }
        Ok(())
    }

    /// Recommended warm-up length before measuring: two expected page
    /// lifetimes, which lets the page population and the awareness
    /// distribution turn over into their steady state.
    pub fn recommended_warmup_days(&self) -> u64 {
        (2.0 * self.community.expected_lifetime_days()).ceil() as u64
    }

    /// Recommended measurement window: two expected page lifetimes.
    pub fn recommended_measure_days(&self) -> u64 {
        (2.0 * self.community.expected_lifetime_days()).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrp_model::CommunityConfig;

    #[test]
    fn paper_default_is_valid_pure_search() {
        let c = SimConfig::paper_default(42);
        assert!(c.validate().is_ok());
        assert_eq!(c.surf_fraction, 0.0);
        assert_eq!(c.teleportation, 0.15);
        assert_eq!(c.seed, 42);
        assert_eq!(c.community.pages(), 10_000);
    }

    #[test]
    fn surf_fraction_must_be_a_probability() {
        let c = SimConfig::paper_default(0).with_surf_fraction(1.5);
        assert!(c.validate().is_err());
        let c = SimConfig::paper_default(0).with_surf_fraction(-0.1);
        assert!(c.validate().is_err());
        let c = SimConfig::paper_default(0).with_surf_fraction(0.3);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn teleportation_must_be_a_probability() {
        let mut c = SimConfig::paper_default(0);
        c.teleportation = 2.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn invalid_community_is_rejected() {
        let mut c = SimConfig::paper_default(0);
        c.community = CommunityConfig::builder()
            .pages(100)
            .users(10)
            .monitored_users(5)
            .build()
            .unwrap();
        assert!(c.validate().is_ok());
    }

    #[test]
    fn recommended_windows_scale_with_lifetime() {
        let c = SimConfig::paper_default(0);
        assert_eq!(c.recommended_warmup_days(), 1095);
        assert_eq!(c.recommended_measure_days(), 1095);
        let short = SimConfig::for_community(
            CommunityConfig::builder()
                .expected_lifetime_days(100.0)
                .build()
                .unwrap(),
            0,
        );
        assert_eq!(short.recommended_warmup_days(), 200);
    }
}
