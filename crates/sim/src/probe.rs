//! Probing individual pages: TBP measurement and popularity traces.
//!
//! The paper's Figure 4 tracks a page of quality 0.4 from its creation
//! until it "becomes popular" (popularity ≥ 99% of quality). The probe
//! machinery resets the community's best-quality slot to a fresh
//! zero-awareness page, protects it from retirement, and watches it evolve
//! under whatever ranking policy the simulation is running.

use crate::engine::Simulation;
use crate::metrics::{PopularityTrace, TbpResult};

/// Fraction of its quality a page must reach in popularity to count as
/// "popular" (the paper uses 99%).
pub const TBP_POPULARITY_THRESHOLD: f64 = 0.99;

impl Simulation {
    /// Reset the best-quality slot to a fresh zero-awareness page and track
    /// its popularity and expected visit rate for `days` days (the page is
    /// protected from retirement while tracked). Returns the per-day trace.
    pub fn trace_fresh_best_page(&mut self, days: u64) -> PopularityTrace {
        let slot = self.population().best_slot();
        self.reset_slot_for_probe(slot);
        self.protect_slot(slot);

        let m = self.population().monitored_users();
        let mut trace = PopularityTrace::default();
        trace
            .popularity
            .push(self.population().slot(slot).popularity(m));
        let rank = self.current_rank_of(slot);
        trace
            .daily_visits
            .push(self.monitored_bias().visits_at_rank(rank));

        for _ in 0..days {
            self.run_day();
            trace
                .popularity
                .push(self.population().slot(slot).popularity(m));
            let rank = self.current_rank_of(slot);
            trace
                .daily_visits
                .push(self.monitored_bias().visits_at_rank(rank));
        }
        self.unprotect_slot(slot);
        trace
    }

    /// Measure time-to-become-popular for the community's best page.
    ///
    /// Each trial resets the best-quality slot to a fresh page and runs the
    /// simulation until the page's popularity exceeds
    /// [`TBP_POPULARITY_THRESHOLD`] × quality, or `max_days` elapse (the
    /// trial is then censored at `max_days`). The community keeps evolving
    /// between and during trials, so each trial sees an independent steady
    /// state.
    pub fn measure_tbp(&mut self, trials: usize, max_days: u64) -> TbpResult {
        let mut total_days = 0.0;
        let mut completed = 0;
        for _ in 0..trials {
            let slot = self.population().best_slot();
            self.reset_slot_for_probe(slot);
            self.protect_slot(slot);
            let m = self.population().monitored_users();
            let quality = self.population().slot(slot).quality;
            let threshold = TBP_POPULARITY_THRESHOLD * quality;

            let mut elapsed = 0u64;
            let mut reached = false;
            while elapsed < max_days {
                self.run_day();
                elapsed += 1;
                if self.population().slot(slot).popularity(m) >= threshold {
                    reached = true;
                    break;
                }
            }
            self.unprotect_slot(slot);
            total_days += elapsed as f64;
            if reached {
                completed += 1;
            }
        }
        TbpResult {
            mean_days: if trials == 0 {
                0.0
            } else {
                total_days / trials as f64
            },
            completed,
            trials,
            max_days,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use rrp_model::CommunityConfig;
    use rrp_ranking::{PolicyKind, PopularityRanking, PromotionConfig, PromotionRule};

    fn config(seed: u64) -> SimConfig {
        SimConfig::for_community(
            CommunityConfig::builder()
                .pages(300)
                .users(150)
                .monitored_users(15)
                .total_visits_per_day(150.0)
                .expected_lifetime_days(200.0)
                .build()
                .unwrap(),
            seed,
        )
    }

    #[test]
    fn trace_starts_at_zero_and_never_exceeds_quality() {
        let mut sim = Simulation::new(config(1), PopularityRanking).unwrap();
        sim.run(100);
        let trace = sim.trace_fresh_best_page(200);
        assert_eq!(trace.popularity.len(), 201);
        assert_eq!(trace.daily_visits.len(), 201);
        assert_eq!(trace.popularity[0], 0.0);
        assert!(trace.popularity.iter().all(|&p| p <= 0.4 + 1e-9));
        // Popularity is monotone: awareness only grows while protected.
        for w in trace.popularity.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
    }

    #[test]
    fn promoted_page_becomes_popular_faster() {
        let run = |policy: PolicyKind, seed| {
            let mut sim = Simulation::new(config(seed), policy).unwrap();
            sim.run(300); // reach a rough steady state
            sim.measure_tbp(3, 3_000)
        };
        let base = run(PopularityRanking.into(), 21);
        let promoted = run(
            PolicyKind::promotion(PromotionConfig::new(PromotionRule::Selective, 1, 0.2).unwrap()),
            21,
        );
        assert!(
            promoted.mean_days < base.mean_days,
            "promotion should reduce TBP: {} vs {}",
            promoted.mean_days,
            base.mean_days
        );
        assert_eq!(promoted.trials, 3);
        assert!(
            promoted.completed >= 1,
            "promoted probe should be discovered"
        );
    }

    #[test]
    fn tbp_result_censoring_is_reported() {
        let mut sim = Simulation::new(config(5), PopularityRanking).unwrap();
        // With a horizon of 1 day the probe cannot possibly reach 99%.
        let result = sim.measure_tbp(2, 1);
        assert_eq!(result.trials, 2);
        assert_eq!(result.completed, 0);
        assert!(!result.fully_observed());
        assert_eq!(result.mean_days, 1.0);
        assert_eq!(result.max_days, 1);
    }

    #[test]
    fn zero_trials_is_harmless() {
        let mut sim = Simulation::new(config(6), PopularityRanking).unwrap();
        let result = sim.measure_tbp(0, 10);
        assert_eq!(result.mean_days, 0.0);
        assert_eq!(result.trials, 0);
    }
}
