//! # rrp-sim — discrete-time Web-community simulator
//!
//! The simulator the paper uses to validate its analytical model
//! (Section 6.2) and to produce every robustness result in Sections 7–8:
//! it maintains an evolving ranked list of pages, distributes user visits
//! according to the `rank^(-3/2)` attention law (Equation 4), tracks
//! awareness and popularity of individual pages, and creates/retires pages
//! under the Poisson lifetime model.
//!
//! * [`SimConfig`] — community, mixed-browsing fraction, seed;
//! * [`Simulation`] — the engine (one
//!   [`PolicyKind`](rrp_ranking::PolicyKind) per run, statically
//!   dispatched);
//! * [`SimMetrics`] — absolute/normalised quality-per-click;
//! * [`TbpResult`] / [`PopularityTrace`] — per-page probes (Figures 2, 4);
//! * [`PagePopulation`] — the evolving page slots;
//! * [`PopularityIndex`] / [`PoolIndex`] — re-exported from `rrp_ranking`:
//!   the incrementally repaired popularity order and promotion-pool
//!   membership that keep the day loop free of per-day sorting, pool
//!   scanning and allocation (the serving tier maintains the same indexes
//!   across batches).
//!
//! ```
//! use rrp_sim::{SimConfig, Simulation};
//! use rrp_ranking::{PopularityRanking, RandomizedRankPromotion};
//! use rrp_model::CommunityConfig;
//!
//! let community = CommunityConfig::builder()
//!     .pages(100).users(50).monitored_users(10)
//!     .total_visits_per_day(50.0).expected_lifetime_days(60.0)
//!     .build().unwrap();
//!
//! // Baseline: strict popularity ranking.
//! let mut baseline = Simulation::new(
//!     SimConfig::for_community(community, 7),
//!     PopularityRanking,
//! ).unwrap();
//! let metrics = baseline.run_windows(120, 120);
//! assert!(metrics.normalized_qpc > 0.0);
//!
//! // The paper's recommended recipe.
//! let mut promoted = Simulation::new(
//!     SimConfig::for_community(community, 7),
//!     RandomizedRankPromotion::recommended(1),
//! ).unwrap();
//! let promoted_metrics = promoted.run_windows(120, 120);
//! assert!(promoted_metrics.days_measured == 120);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod community;
pub mod config;
pub mod engine;
pub mod metrics;
pub mod probe;

pub use community::{PagePopulation, PageSlot};
pub use config::SimConfig;
pub use engine::Simulation;
pub use metrics::{PopularityTrace, QpcAccumulator, SimMetrics, TbpResult};
pub use probe::TBP_POPULARITY_THRESHOLD;
pub use rrp_ranking::{PoolIndex, PopularityIndex};
