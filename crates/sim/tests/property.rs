//! Property-based tests for the simulator's configuration and metric types,
//! and for the incremental popularity index that keeps the day loop free of
//! per-day sorting.

use proptest::prelude::*;
use rrp_model::{CommunityConfig, PageId};
use rrp_ranking::{popularity_order, PageStats};
use rrp_sim::{PopularityIndex, PopularityTrace, QpcAccumulator, SimConfig};

/// One mutation of the page population, as the simulator would apply it.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// A monitored visit raised the page's awareness (and popularity).
    Visit { slot: usize, gain: f64 },
    /// The page retired and was replaced by a fresh zero-awareness page.
    Retire { slot: usize },
    /// A day passed: every page ages by one day (no slot is dirtied).
    NextDay,
}

fn arb_events(n: usize) -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec((0usize..3, 0usize..n, 0.0f64..0.2), 0..120).prop_map(|raw| {
        raw.into_iter()
            .map(|(kind, slot, gain)| match kind {
                0 => Event::Visit { slot, gain },
                1 => Event::Retire { slot },
                _ => Event::NextDay,
            })
            .collect()
    })
}

proptest! {
    /// After an arbitrary sequence of visits, retirements and day ticks —
    /// with index repairs interleaved at arbitrary points — the incremental
    /// popularity index equals a from-scratch sort of the current stats.
    #[test]
    fn incremental_index_equals_from_scratch_sort(
        events in arb_events(30),
        repair_every in 1usize..8,
    ) {
        let n = 30usize;
        let mut stats: Vec<PageStats> = (0..n)
            .map(|slot| PageStats::new(slot, PageId::new(slot as u64), 0.0, 0.0))
            .collect();
        let mut index = PopularityIndex::build(&stats);
        let mut dirty: Vec<usize> = Vec::new();

        for (step, event) in events.iter().enumerate() {
            match *event {
                Event::Visit { slot, gain } => {
                    stats[slot].popularity = (stats[slot].popularity + gain).min(1.0);
                    stats[slot].awareness = (stats[slot].awareness + gain).min(1.0);
                    dirty.push(slot);
                }
                Event::Retire { slot } => {
                    stats[slot].popularity = 0.0;
                    stats[slot].awareness = 0.0;
                    stats[slot].age_days = 0;
                    dirty.push(slot);
                }
                Event::NextDay => {
                    for p in stats.iter_mut() {
                        p.age_days += 1;
                    }
                }
            }
            if step % repair_every == 0 {
                index.repair(&stats, &mut dirty);
                prop_assert!(dirty.is_empty());
            }
        }
        index.repair(&stats, &mut dirty);

        let mut expected: Vec<usize> = (0..n).collect();
        expected.sort_by(|&a, &b| popularity_order(&stats[a], &stats[b]));
        prop_assert_eq!(index.order(), expected.as_slice());
        prop_assert!(index.is_consistent(&stats));
    }

    /// Config validation accepts exactly the unit interval for the surf
    /// fraction and the teleportation probability.
    #[test]
    fn sim_config_validation_matches_ranges(x in -1.0f64..2.0, c in -1.0f64..2.0) {
        let mut config = SimConfig::paper_default(0).with_surf_fraction(x);
        config.teleportation = c;
        let should_be_valid = (0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&c);
        prop_assert_eq!(config.validate().is_ok(), should_be_valid);
    }

    /// The QPC accumulator always reports a ratio bounded by the largest
    /// per-day average quality it has seen, and never goes negative.
    #[test]
    fn qpc_accumulator_is_a_weighted_average(
        days in proptest::collection::vec((0.0f64..100.0, 0.01f64..1.0, 0.0f64..1.0), 1..50)
    ) {
        let mut acc = QpcAccumulator::default();
        let mut max_daily_quality: f64 = 0.0;
        for &(visits, quality, zero_fraction) in &days {
            acc.record_day(visits * quality, visits, zero_fraction);
            max_daily_quality = max_daily_quality.max(quality);
        }
        let qpc = acc.absolute_qpc();
        prop_assert!(qpc >= 0.0);
        prop_assert!(qpc <= max_daily_quality + 1e-9);
        prop_assert_eq!(acc.days, days.len() as u64);
        let zero = acc.mean_zero_awareness_fraction();
        prop_assert!((0.0..=1.0).contains(&zero));
    }

    /// `first_day_above` returns the first index whose popularity meets the
    /// threshold, and `None` exactly when no day does.
    #[test]
    fn trace_first_day_above_is_consistent(
        popularity in proptest::collection::vec(0.0f64..0.4, 0..200),
        threshold in 0.0f64..0.4,
    ) {
        let trace = PopularityTrace {
            daily_visits: vec![0.0; popularity.len()],
            popularity: popularity.clone(),
        };
        match trace.first_day_above(threshold) {
            Some(day) => {
                prop_assert!(popularity[day] >= threshold);
                for &p in &popularity[..day] {
                    prop_assert!(p < threshold);
                }
            }
            None => {
                prop_assert!(popularity.iter().all(|&p| p < threshold));
            }
        }
    }

    /// Recommended warm-up and measurement windows scale linearly with the
    /// expected page lifetime.
    #[test]
    fn recommended_windows_scale_with_lifetime(lifetime_days in 1.0f64..5_000.0) {
        let config = SimConfig::for_community(
            CommunityConfig::builder()
                .expected_lifetime_days(lifetime_days)
                .build()
                .unwrap(),
            0,
        );
        prop_assert_eq!(config.recommended_warmup_days(), (2.0 * lifetime_days).ceil() as u64);
        prop_assert_eq!(config.recommended_measure_days(), (2.0 * lifetime_days).ceil() as u64);
    }
}
