//! # rrp-bench — benchmark harness
//!
//! Two kinds of targets:
//!
//! * **Figure benches** (`fig*_*.rs`, `ablation_*.rs`) — each regenerates
//!   one figure of the paper via `rrp-experiments` and prints the resulting
//!   table, so `cargo bench` reproduces the paper's evaluation end to end.
//!   They run at Quick scale by default; set `RRP_FULL_SWEEP=1` for the
//!   paper's own community sizes.
//! * **Criterion micro-benchmarks** (`micro.rs`) — throughput of the
//!   building blocks (re-ranking, a simulated day, the analytic solver).

use rrp_experiments::{all_figures, ExperimentOptions, FigureReport};
use std::time::Instant;

/// Run the figure driver registered under `id`, print its report (markdown)
/// together with the wall-clock time, and return it.
///
/// # Panics
/// Panics if `id` does not match any registered figure.
pub fn run_figure(id: &str) -> FigureReport {
    let options = ExperimentOptions::from_env();
    let (_, driver) = all_figures()
        .into_iter()
        .find(|(figure_id, _)| *figure_id == id)
        .unwrap_or_else(|| panic!("unknown figure id {id:?}"));
    let start = Instant::now();
    let report = driver(&options);
    let elapsed = start.elapsed();
    println!("{}", report.to_markdown());
    println!(
        "_regenerated in {:.1} s at {:?} scale (seed {})_\n",
        elapsed.as_secs_f64(),
        options.scale,
        options.seed
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "unknown figure id")]
    fn unknown_figure_panics() {
        run_figure("Figure 99");
    }
}
