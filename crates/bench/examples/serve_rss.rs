//! Resident-set probe for the serving tier: build an 8-shard service over
//! `n = 100_000` documents, warm every serving path (one full batch, one
//! top-k batch), and print `VmRSS` deltas from `/proc/self/status`.
//!
//! Run with `cargo run --release -p rrp-bench --example serve_rss`. The
//! numbers feed the ROADMAP perf ledger; they are deltas over the process
//! baseline so the binary's own footprint is subtracted out.

use rrp_core::{Document, QueryContext, RankPromotionEngine};
use rrp_ranking::{PromotionConfig, PromotionRule};
use rrp_serve::ShardedPromotionService;

const N: usize = 100_000;

fn vm_rss_kib() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find(|l| l.starts_with("VmRSS:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .expect("VmRSS line")
}

fn corpus() -> Vec<Document> {
    (0..N as u64)
        .map(|i| {
            if i % 16 == 0 {
                Document::unexplored(i)
            } else {
                Document::established(i, 1.0 / (1.0 + i as f64)).with_age(i % 365)
            }
        })
        .collect()
}

fn measure(label: &str, engine: RankPromotionEngine) -> ShardedPromotionService {
    let before = vm_rss_kib();
    let service = ShardedPromotionService::new(engine, 8).with_workers(1);
    service.extend(corpus());
    let queries: Vec<QueryContext> = (0..4u64).map(|q| QueryContext::new(q, q * 31)).collect();
    let mut results = Vec::new();
    service.rerank_batch_into(&queries, &mut results);
    let mut top = Vec::new();
    service.rerank_batch_top_k_into(&queries, 10, &mut top);
    let after = vm_rss_kib();
    println!(
        "{label}: warmed service over n={N} holds ~{} KiB ({} -> {} KiB RSS)",
        after - before,
        before,
        after
    );
    service
}

fn main() {
    let selective = measure("selective", RankPromotionEngine::recommended().with_seed(7));
    let uniform = measure(
        "uniform",
        RankPromotionEngine::new(PromotionConfig::new(PromotionRule::Uniform, 1, 0.3).unwrap())
            .with_seed(7),
    );
    // Keep both services alive so the second measurement cannot reuse the
    // first one's freed pages for its own state.
    std::hint::black_box((&selective, &uniform));
    println!("total RSS at exit: {} KiB", vm_rss_kib());
}
