//! Throwaway phase profiler for the mutated top-k workload: splits one
//! bench iteration into mutate / first-query (publication) / rest-of-batch
//! so a regression can be attributed to a phase. Not part of the gauge.

use rrp_core::{Document, EngineVersion, QueryContext, RankPromotionEngine};
use rrp_serve::ShardedPromotionService;
use std::time::Instant;

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100_000);
    let engine = RankPromotionEngine::recommended().with_version(EngineVersion::V2);
    let service = ShardedPromotionService::new(engine, 8).with_workers(1);
    service.extend((0..n).map(|i| {
        if i % 10 == 0 {
            Document::unexplored(i)
        } else {
            Document::established(i, 0.25 + (i % 1000) as f64 / 1500.0).with_age(i % 30)
        }
    }));
    let qs: Vec<QueryContext> = (0..64u64).map(|q| QueryContext::new(q, q * 31)).collect();
    let mut results = Vec::new();

    // Warm up.
    for round in 0..5u64 {
        mutate(&service, round, n);
        service.rerank_batch_top_k_into(&qs, 10, &mut results);
    }

    let rounds = 50u64;
    let (mut t_mut, mut t_first, mut t_rest) = (0.0f64, 0.0, 0.0);
    for round in 5..5 + rounds {
        let t0 = Instant::now();
        mutate(&service, round, n);
        let t1 = Instant::now();
        // One query forces the publication; the other 63 ride the version.
        service.rerank_batch_top_k_into(&qs[..1], 10, &mut results);
        let t2 = Instant::now();
        service.rerank_batch_top_k_into(&qs[1..], 10, &mut results);
        let t3 = Instant::now();
        t_mut += (t1 - t0).as_secs_f64();
        t_first += (t2 - t1).as_secs_f64();
        t_rest += (t3 - t2).as_secs_f64();
    }
    let per = 1e6 / rounds as f64;
    println!("mutate(32):      {:8.1} us/round", t_mut * per);
    println!("first query:     {:8.1} us/round", t_first * per);
    println!("rest (63 q):     {:8.1} us/round", t_rest * per);
    let stats = service.serve_stats();
    println!(
        "publications {} conflicts {} order_merges {} pool_draws {}",
        stats.version_publications, stats.epoch_conflicts, stats.order_merges, stats.pool_draws
    );
}

fn mutate(service: &ShardedPromotionService, round: u64, n: u64) {
    for m in 0..32u64 {
        let seq = (round.wrapping_mul(32) + m * 97) % n;
        if m % 2 == 0 {
            service.record_visit(seq);
        } else {
            service.update_popularity(seq, 0.05 + ((seq * 31 + round) % 100) as f64 / 100.0);
        }
    }
}
