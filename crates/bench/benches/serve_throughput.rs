//! Steady-state serving throughput: batches of queries answered from the
//! incremental serving state, with store mutations (visit feedback and
//! popularity updates) interleaved between batches exactly as a live
//! deployment would apply them — the first mutate-while-serving workload.
//!
//! Reported times are per batch of `BATCH` queries; divide by `BATCH` for
//! per-query cost, or invert for queries/sec (the numbers recorded in the
//! ROADMAP Perf ledger). Three shapes per corpus size:
//!
//! * `full_clean` — unchanged corpus: the popularity order is reused as-is
//!   (zero sorts, zero snapshot rebuilds — the steady-state fast path);
//! * `full_mutated` — 32 mutations between batches: the order is repaired
//!   by dirty-slot binary-search reinsertion, then the batch runs;
//! * `top10_mutated` — same mutation schedule, but each query asks for
//!   only the top 10 ranks — answered by per-shard candidate retrieval
//!   plus the deterministic merge (zero complete-order merges), on the
//!   default 8-way service;
//! * `top10_mutated_v2` — the same top-10 workload under **engine v2**:
//!   the lazy Fisher–Yates overlay draws at most `k` swaps per query
//!   instead of copying and shuffling the whole promotion pool, so this
//!   row against `top10_mutated` is the v1-vs-v2 headline (the pool is
//!   ~n/10 members, so the gap widens with corpus size);
//! * `top10_mutated_wal` — the same top-10 workload with every mutation
//!   appended to the write-ahead log first (`DurableService`, snapshots
//!   off): this row against `top10_mutated` is the durability overhead
//!   on the mutation path — the serve path is untouched by the log;
//! * `top10_mutated_shards{1,2,8}` — the same top-10 workload across
//!   shard counts (`shards8` matches `top10_mutated`'s 8-way layout, as
//!   its own row so the sweep is self-contained): the retrieval cost is
//!   `O(pool + k)` *per shard*, so the sweep shows what the merged read
//!   path costs as the corpus is cut finer (per-shard work shrinks; on
//!   this single-core VM the shards are visited sequentially, so the
//!   total is what one machine pays — a deployment overlaps them across
//!   index servers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rrp_core::{Document, EngineVersion, QueryContext, RankPromotionEngine};
use rrp_model::{new_rng, PowerLawQuality, QualityDistribution};
use rrp_serve::{DurableService, ShardedPromotionService};
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::Duration;

const BATCH: u64 = 64;
const MUTATIONS_PER_BATCH: u64 = 32;

fn service(n: u64) -> ShardedPromotionService {
    sharded_service(n, 8)
}

fn sharded_service(n: u64, shards: usize) -> ShardedPromotionService {
    versioned_service(n, shards, EngineVersion::V1)
}

fn versioned_service(n: u64, shards: usize, version: EngineVersion) -> ShardedPromotionService {
    let dist = PowerLawQuality::paper_default();
    let mut rng = new_rng(7);
    let engine = RankPromotionEngine::recommended().with_version(version);
    let service = ShardedPromotionService::new(engine, shards);
    service.extend((0..n).map(|i| {
        if i % 10 == 0 {
            Document::unexplored(i)
        } else {
            Document::established(i, dist.sample(&mut rng).value()).with_age(i % 365)
        }
    }));
    // Absorb the one-time warm-up repair so the timed loop measures steady
    // state only.
    service.rerank_batch(&[QueryContext::new(0, 0)]);
    service
}

/// A durable twin of [`service`]: same corpus, same engine, every
/// mutation write-ahead logged. Snapshots are disabled so the measured
/// delta against the plain service is the log append alone.
fn durable_service(n: u64, dir: &Path) -> DurableService {
    let dist = PowerLawQuality::paper_default();
    let mut rng = new_rng(7);
    let engine = RankPromotionEngine::recommended();
    let (durable, _) = DurableService::open(dir, engine, 8).expect("open durable dir");
    let mut durable = durable.with_snapshot_every(u64::MAX);
    for i in 0..n {
        let doc = if i % 10 == 0 {
            Document::unexplored(i)
        } else {
            Document::established(i, dist.sample(&mut rng).value()).with_age(i % 365)
        };
        durable.insert(doc).expect("durable insert");
    }
    durable.rerank_batch(&[QueryContext::new(0, 0)]);
    durable
}

/// A scratch directory for the durable rows, cleaned up by the caller.
fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rrp-bench-wal-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn queries(salt: u64) -> Vec<QueryContext> {
    (0..BATCH)
        .map(|q| QueryContext::new(q * 13 + salt, q ^ 0xBEEF))
        .collect()
}

/// Apply the per-batch mutation schedule: visit feedback plus popularity
/// updates on a rotating window of sequences (corpus size stays fixed, so
/// consecutive iterations measure the same working set).
fn mutate(service: &ShardedPromotionService, round: u64) {
    let n = service.store().len() as u64;
    for m in 0..MUTATIONS_PER_BATCH {
        let seq = (round.wrapping_mul(MUTATIONS_PER_BATCH) + m * 97) % n;
        if m % 2 == 0 {
            service.record_visit(seq);
        } else {
            let score = 0.05 + ((seq * 31 + round) % 100) as f64 / 100.0;
            service.update_popularity(seq, score);
        }
    }
}

/// The durable twin of [`mutate`]: same schedule, same sequences, each
/// mutation appended to the log before it is applied.
fn mutate_durable(service: &mut DurableService, round: u64) {
    let n = service.store().len() as u64;
    for m in 0..MUTATIONS_PER_BATCH {
        let seq = (round.wrapping_mul(MUTATIONS_PER_BATCH) + m * 97) % n;
        if m % 2 == 0 {
            service.record_visit(seq).expect("durable visit");
        } else {
            let score = 0.05 + ((seq * 31 + round) % 100) as f64 / 100.0;
            service
                .update_popularity(seq, score)
                .expect("durable update");
        }
    }
}

fn bench_serve_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(20)
        .throughput(Throughput::Elements(BATCH));
    for &n in &[10_000u64, 100_000] {
        let qs = queries(1);

        let clean = service(n);
        group.bench_with_input(BenchmarkId::new("full_clean", n), &n, |b, _| {
            let mut results = Vec::new();
            b.iter(|| {
                clean.rerank_batch_into(&qs, &mut results);
                black_box(results.last().map(Vec::len))
            });
        });

        let mutated = service(n);
        group.bench_with_input(BenchmarkId::new("full_mutated", n), &n, |b, _| {
            let mut results = Vec::new();
            let mut round = 0u64;
            b.iter(|| {
                round += 1;
                mutate(&mutated, round);
                mutated.rerank_batch_into(&qs, &mut results);
                black_box(results.last().map(Vec::len))
            });
        });

        let top_k = service(n);
        group.bench_with_input(BenchmarkId::new("top10_mutated", n), &n, |b, _| {
            let mut results = Vec::new();
            let mut round = 0u64;
            b.iter(|| {
                round += 1;
                mutate(&top_k, round);
                top_k.rerank_batch_top_k_into(&qs, 10, &mut results);
                black_box(results.last().map(Vec::len))
            });
        });

        // The v1-vs-v2 headline: the identical top-10 workload, answered
        // by the lazy O(k)-draw overlay instead of the eager pool
        // copy-and-shuffle.
        let top_k_v2 = versioned_service(n, 8, EngineVersion::V2);
        group.bench_with_input(BenchmarkId::new("top10_mutated_v2", n), &n, |b, _| {
            let mut results = Vec::new();
            let mut round = 0u64;
            b.iter(|| {
                round += 1;
                mutate(&top_k_v2, round);
                top_k_v2.rerank_batch_top_k_into(&qs, 10, &mut results);
                black_box(results.last().map(Vec::len))
            });
        });

        // The durability overhead: identical workload, every mutation
        // appended to the WAL before it is applied.
        let dir = bench_dir(&n.to_string());
        let mut top_k_wal = durable_service(n, &dir);
        group.bench_with_input(BenchmarkId::new("top10_mutated_wal", n), &n, |b, _| {
            let mut results = Vec::new();
            let mut round = 0u64;
            b.iter(|| {
                round += 1;
                mutate_durable(&mut top_k_wal, round);
                top_k_wal.rerank_batch_top_k_into(&qs, 10, &mut results);
                black_box(results.last().map(Vec::len))
            });
        });
        drop(top_k_wal);
        std::fs::remove_dir_all(&dir).ok();

        for shards in [1usize, 2, 8] {
            let top_k = sharded_service(n, shards);
            group.bench_with_input(
                BenchmarkId::new(format!("top10_mutated_shards{shards}"), n),
                &n,
                |b, _| {
                    let mut results = Vec::new();
                    let mut round = 0u64;
                    b.iter(|| {
                        round += 1;
                        mutate(&top_k, round);
                        top_k.rerank_batch_top_k_into(&qs, 10, &mut results);
                        black_box(results.last().map(Vec::len))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
