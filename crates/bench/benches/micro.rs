//! Criterion micro-benchmarks of the building blocks: re-ranking a result
//! list (per-call engine, scratch-reuse, and batch-amortised serving
//! paths), one simulated community day, the Theorem-1 awareness
//! distribution, and PageRank on a synthetic graph.
//!
//! The rerank and simulation-day benchmarks are the acceptance gauges for
//! the zero-allocation ranking core: `engine_rerank` measures the
//! per-query cost of the batch serving path (`rrp-serve`), with
//! `engine_rerank_unbatched` retained as the legacy per-call comparison
//! point, and `simulation_day` exercises the incremental popularity index.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrp_core::{Document, QueryContext, RankPromotionEngine, RerankScratch};
use rrp_model::{new_rng, CommunityConfig, PowerLawQuality, QualityDistribution};
use rrp_ranking::{
    PageStats, PopularityRanking, RandomizedRankPromotion, RankBuffers, RankingPolicy,
};
use rrp_serve::ShardedPromotionService;
use rrp_sim::{SimConfig, Simulation};
use std::hint::black_box;
use std::time::Duration;

fn corpus(n: usize) -> Vec<Document> {
    let dist = PowerLawQuality::paper_default();
    let mut rng = new_rng(7);
    (0..n)
        .map(|i| {
            if i % 10 == 0 {
                Document::unexplored(i as u64)
            } else {
                Document::established(i as u64, dist.sample(&mut rng).value()).with_age(i as u64)
            }
        })
        .collect()
}

fn page_stats(n: usize) -> Vec<PageStats> {
    let dist = PowerLawQuality::paper_default();
    let mut rng = new_rng(9);
    (0..n)
        .map(|slot| {
            let q = dist.sample(&mut rng).value();
            let awareness = if slot % 10 == 0 { 0.0 } else { 0.5 };
            PageStats::new(
                slot,
                rrp_model::PageId::new(slot as u64),
                awareness * q,
                awareness,
            )
            .with_age((slot % 365) as u64)
            .with_quality(q)
        })
        .collect()
}

/// Per-query cost of the batch serving path: the snapshot statistics and
/// popularity order are computed once per batch (here, outside the timed
/// loop, exactly as `ShardedPromotionService::rerank_batch` amortises
/// them), and each query runs the presorted promotion path from reused
/// scratch. This is the intended production path, so it carries the
/// headline `engine_rerank` name; `bench_engine_rerank_unbatched` keeps
/// the legacy one-shot path measurable next to it.
fn bench_engine_rerank(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_rerank");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(30);
    for &n in &[100usize, 1_000, 10_000] {
        let docs = corpus(n);
        let engine = RankPromotionEngine::recommended();
        let mut stats: Vec<PageStats> = Vec::new();
        RankPromotionEngine::document_stats(&docs, &mut stats);
        let mut sorted: Vec<usize> = Vec::with_capacity(stats.len());
        PopularityRanking.rank_order_into(&stats, &mut sorted);
        let mut buffers = RankBuffers::with_capacity(n);
        let mut slots = Vec::with_capacity(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &docs, |b, docs| {
            let mut query = 0u64;
            b.iter(|| {
                query += 1;
                engine.rerank_presorted_slots_into(
                    &stats,
                    &sorted,
                    QueryContext::new(query, 42),
                    &mut buffers,
                    &mut slots,
                );
                let ids: Vec<u64> = slots.iter().map(|&s| docs[s].id).collect();
                black_box(ids)
            });
        });
    }
    group.finish();
}

/// End-to-end batch serving at 10k documents: 64 queries per call,
/// including the per-batch snapshot assembly and sort, serial and with the
/// machine's available parallelism.
fn bench_serve_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_batch_10k_docs_64_queries");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(20);
    let queries: Vec<QueryContext> = (0..64).map(|q| QueryContext::new(q, 42)).collect();
    for &(label, workers) in &[("1_worker", 1), ("all_workers", 0)] {
        let mut service = ShardedPromotionService::new(RankPromotionEngine::recommended(), 8);
        if workers > 0 {
            service = service.with_workers(workers);
        }
        service.extend(corpus(10_000));
        group.bench_function(label, |b| {
            b.iter(|| black_box(service.rerank_batch(&queries)))
        });
    }
    group.finish();
}

/// The legacy per-call engine path (fresh allocations, per-call sort) —
/// kept for comparison against `engine_rerank`'s amortised path.
fn bench_engine_rerank_unbatched(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_rerank_unbatched");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(30);
    for &n in &[100usize, 1_000, 10_000] {
        let docs = corpus(n);
        let engine = RankPromotionEngine::recommended();
        group.bench_with_input(BenchmarkId::from_parameter(n), &docs, |b, docs| {
            let mut query = 0u64;
            b.iter(|| {
                query += 1;
                black_box(engine.rerank(docs, QueryContext::new(query, 42)))
            });
        });
    }
    group.finish();
}

fn bench_ranking_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ranking_policy_10k_pages");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(30);
    let stats = page_stats(10_000);
    let mut rng = new_rng(1);
    group.bench_function("popularity", |b| {
        b.iter(|| black_box(PopularityRanking.rank(&stats, &mut rng)))
    });
    let promo = RandomizedRankPromotion::recommended(2);
    group.bench_function("selective_promotion", |b| {
        b.iter(|| black_box(promo.rank(&stats, &mut rng)))
    });
    // The same policy through the reusable arena (no per-call allocation).
    let mut buffers = RankBuffers::with_capacity(stats.len());
    let mut out = Vec::with_capacity(stats.len());
    group.bench_function("selective_promotion_rank_into", |b| {
        b.iter(|| {
            promo.rank_into(&stats, &mut rng, &mut buffers, &mut out);
            black_box(out.last().copied())
        })
    });
    // And against a precomputed popularity order (no per-call sort), as the
    // simulator's incremental index and the serve layer provide.
    let mut sorted: Vec<usize> = Vec::with_capacity(stats.len());
    PopularityRanking.rank_order_into(&stats, &mut sorted);
    group.bench_function("selective_promotion_presorted", |b| {
        b.iter(|| {
            promo.rank_presorted_into(&stats, &sorted, &mut rng, &mut buffers, &mut out);
            black_box(out.last().copied())
        })
    });
    group.finish();
}

/// Per-query scratch-reuse path of the embeddable engine at 10k documents
/// (no batch amortisation, no allocation).
fn bench_engine_rerank_scratch(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_rerank_scratch_10k");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(30);
    let docs = corpus(10_000);
    let engine = RankPromotionEngine::recommended();
    let mut scratch = RerankScratch::with_capacity(docs.len());
    let mut out = Vec::with_capacity(docs.len());
    group.bench_function("rerank_slots_into", |b| {
        let mut query = 0u64;
        b.iter(|| {
            query += 1;
            engine.rerank_slots_into(&docs, QueryContext::new(query, 42), &mut scratch, &mut out);
            black_box(out.last().copied())
        });
    });
    group.finish();
}

fn bench_simulation_day(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation_day");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(20);
    let community = CommunityConfig::builder()
        .scaled_to_pages(10_000)
        .build()
        .unwrap();
    let mut sim = Simulation::new(
        SimConfig::for_community(community, 3),
        RandomizedRankPromotion::recommended(1),
    )
    .unwrap();
    sim.run(30);
    group.bench_function("10k_pages_selective", |b| b.iter(|| sim.run_day()));
    group.finish();
}

fn bench_analytic_awareness(c: &mut Criterion) {
    let mut group = c.benchmark_group("analytic");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(30);
    group.bench_function("awareness_distribution_m100", |b| {
        b.iter(|| {
            black_box(rrp_analytic::awareness_distribution(
                |x| 0.001 + 0.5 * x,
                0.4,
                100,
                1.0 / 547.5,
            ))
        })
    });
    group.finish();
}

fn bench_pagerank(c: &mut Criterion) {
    let mut group = c.benchmark_group("webgraph");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(20);
    let mut rng = new_rng(11);
    let graph = rrp_webgraph::preferential_attachment(10_000, 5, &mut rng);
    group.bench_function("pagerank_10k_nodes", |b| {
        b.iter(|| black_box(rrp_webgraph::pagerank(&graph, Default::default())))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_rerank,
    bench_engine_rerank_unbatched,
    bench_engine_rerank_scratch,
    bench_serve_batch,
    bench_ranking_policies,
    bench_simulation_day,
    bench_analytic_awareness,
    bench_pagerank
);
criterion_main!(benches);
