//! Criterion micro-benchmarks of the building blocks: re-ranking a result
//! list with the promotion engine, one simulated community day, the
//! Theorem-1 awareness distribution, and PageRank on a synthetic graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrp_core::{Document, QueryContext, RankPromotionEngine};
use rrp_model::{new_rng, CommunityConfig, PowerLawQuality, QualityDistribution};
use rrp_ranking::{PageStats, PopularityRanking, RandomizedRankPromotion, RankingPolicy};
use rrp_sim::{SimConfig, Simulation};
use std::hint::black_box;
use std::time::Duration;

fn corpus(n: usize) -> Vec<Document> {
    let dist = PowerLawQuality::paper_default();
    let mut rng = new_rng(7);
    (0..n)
        .map(|i| {
            if i % 10 == 0 {
                Document::unexplored(i as u64)
            } else {
                Document::established(i as u64, dist.sample(&mut rng).value()).with_age(i as u64)
            }
        })
        .collect()
}

fn page_stats(n: usize) -> Vec<PageStats> {
    let dist = PowerLawQuality::paper_default();
    let mut rng = new_rng(9);
    (0..n)
        .map(|slot| {
            let q = dist.sample(&mut rng).value();
            let awareness = if slot % 10 == 0 { 0.0 } else { 0.5 };
            PageStats::new(
                slot,
                rrp_model::PageId::new(slot as u64),
                awareness * q,
                awareness,
            )
            .with_age((slot % 365) as u64)
            .with_quality(q)
        })
        .collect()
}

fn bench_engine_rerank(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_rerank");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(30);
    for &n in &[100usize, 1_000, 10_000] {
        let docs = corpus(n);
        let engine = RankPromotionEngine::recommended();
        group.bench_with_input(BenchmarkId::from_parameter(n), &docs, |b, docs| {
            let mut query = 0u64;
            b.iter(|| {
                query += 1;
                black_box(engine.rerank(docs, QueryContext::new(query, 42)))
            });
        });
    }
    group.finish();
}

fn bench_ranking_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ranking_policy_10k_pages");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(30);
    let stats = page_stats(10_000);
    let mut rng = new_rng(1);
    group.bench_function("popularity", |b| {
        b.iter(|| black_box(PopularityRanking.rank(&stats, &mut rng)))
    });
    let promo = RandomizedRankPromotion::recommended(2);
    group.bench_function("selective_promotion", |b| {
        b.iter(|| black_box(promo.rank(&stats, &mut rng)))
    });
    group.finish();
}

fn bench_simulation_day(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation_day");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(20);
    let community = CommunityConfig::builder()
        .scaled_to_pages(10_000)
        .build()
        .unwrap();
    let mut sim = Simulation::new(
        SimConfig::for_community(community, 3),
        Box::new(RandomizedRankPromotion::recommended(1)),
    )
    .unwrap();
    sim.run(30);
    group.bench_function("10k_pages_selective", |b| b.iter(|| sim.run_day()));
    group.finish();
}

fn bench_analytic_awareness(c: &mut Criterion) {
    let mut group = c.benchmark_group("analytic");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(30);
    group.bench_function("awareness_distribution_m100", |b| {
        b.iter(|| {
            black_box(rrp_analytic::awareness_distribution(
                |x| 0.001 + 0.5 * x,
                0.4,
                100,
                1.0 / 547.5,
            ))
        })
    });
    group.finish();
}

fn bench_pagerank(c: &mut Criterion) {
    let mut group = c.benchmark_group("webgraph");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(20);
    let mut rng = new_rng(11);
    let graph = rrp_webgraph::preferential_attachment(10_000, 5, &mut rng);
    group.bench_function("pagerank_10k_nodes", |b| {
        b.iter(|| black_box(rrp_webgraph::pagerank(&graph, Default::default())))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_rerank,
    bench_ranking_policies,
    bench_simulation_day,
    bench_analytic_awareness,
    bench_pagerank
);
criterion_main!(benches);
