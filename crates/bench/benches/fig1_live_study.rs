//! Regenerates Figure 1 of the paper; run with `cargo bench --bench fig1_live_study`.
//! Set `RRP_FULL_SWEEP=1` for the paper's full community sizes.

fn main() {
    let report = rrp_bench::run_figure("Figure 1");
    assert!(!report.series.is_empty(), "figure drivers always emit data");
}
