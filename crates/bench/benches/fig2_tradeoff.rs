//! Regenerates Figure 2 of the paper; run with `cargo bench --bench fig2_tradeoff`.
//! Set `RRP_FULL_SWEEP=1` for the paper's full community sizes.

fn main() {
    let report = rrp_bench::run_figure("Figure 2");
    assert!(!report.series.is_empty(), "figure drivers always emit data");
}
