//! Regenerates Figure 5 of the paper; run with `cargo bench --bench fig5_qpc`.
//! Set `RRP_FULL_SWEEP=1` for the paper's full community sizes.

fn main() {
    let report = rrp_bench::run_figure("Figure 5");
    assert!(!report.series.is_empty(), "figure drivers always emit data");
}
