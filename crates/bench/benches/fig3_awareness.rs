//! Regenerates Figure 3 of the paper; run with `cargo bench --bench fig3_awareness`.
//! Set `RRP_FULL_SWEEP=1` for the paper's full community sizes.

fn main() {
    let report = rrp_bench::run_figure("Figure 3");
    assert!(!report.series.is_empty(), "figure drivers always emit data");
}
