//! Regenerates Figure 6 of the paper; run with `cargo bench --bench fig6_qpc_k`.
//! Set `RRP_FULL_SWEEP=1` for the paper's full community sizes.

fn main() {
    let report = rrp_bench::run_figure("Figure 6");
    assert!(!report.series.is_empty(), "figure drivers always emit data");
}
