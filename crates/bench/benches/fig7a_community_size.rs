//! Regenerates Figure 7(a) of the paper; run with `cargo bench --bench fig7a_community_size`.
//! Set `RRP_FULL_SWEEP=1` for the paper's full community sizes.

fn main() {
    let report = rrp_bench::run_figure("Figure 7(a)");
    assert!(!report.series.is_empty(), "figure drivers always emit data");
}
