//! Regenerates Figure 7(c) of the paper; run with `cargo bench --bench fig7c_visit_rate`.
//! Set `RRP_FULL_SWEEP=1` for the paper's full community sizes.

fn main() {
    let report = rrp_bench::run_figure("Figure 7(c)");
    assert!(!report.series.is_empty(), "figure drivers always emit data");
}
