//! Property-based tests for the model crate's core invariants.

use proptest::prelude::*;
use rrp_model::{
    assign_qualities, popularity, Awareness, CommunityConfig, LifetimeModel, PowerLawQuality,
    Quality, QualityDistribution, SeedSequence, UniformQuality, ZipfQuality,
};

proptest! {
    /// Quality construction accepts exactly the unit interval.
    #[test]
    fn quality_construction_matches_range(x in -10.0f64..10.0) {
        let ok = (0.0..=1.0).contains(&x);
        prop_assert_eq!(Quality::new(x).is_ok(), ok);
    }

    /// Clamping always produces a valid value equal to the clamped input.
    #[test]
    fn clamped_is_always_valid(x in proptest::num::f64::ANY) {
        let q = Quality::clamped(x);
        prop_assert!((0.0..=1.0).contains(&q.value()));
        if x.is_finite() && (0.0..=1.0).contains(&x) {
            prop_assert_eq!(q.value(), x);
        }
    }

    /// Popularity = awareness × quality is bounded by both factors.
    #[test]
    fn popularity_bounded_by_factors(a in 0.0f64..=1.0, q in 0.0f64..=1.0) {
        let p = popularity(Awareness::new(a).unwrap(), Quality::new(q).unwrap());
        prop_assert!(p.value() <= a + 1e-12);
        prop_assert!(p.value() <= q + 1e-12);
        prop_assert!(p.value() >= 0.0);
    }

    /// The power-law quantile function is monotone nondecreasing and bounded
    /// by [q_min, q_max] for arbitrary valid parameters.
    #[test]
    fn power_law_quantile_monotone(
        alpha in 0.2f64..5.0,
        q_min in 1e-4f64..0.01,
        q_max in 0.05f64..1.0,
        u1 in 0.0f64..=1.0,
        u2 in 0.0f64..=1.0,
    ) {
        let d = PowerLawQuality::new(alpha, q_min, q_max).unwrap();
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        let q_lo = d.quantile(lo).value();
        let q_hi = d.quantile(hi).value();
        prop_assert!(q_lo <= q_hi + 1e-12);
        prop_assert!(q_lo >= q_min - 1e-9);
        prop_assert!(q_hi <= q_max + 1e-9);
    }

    /// Deterministic quality assignment is sorted descending and sized `n`.
    #[test]
    fn assign_qualities_sorted_descending(n in 1usize..2000) {
        let d = PowerLawQuality::paper_default();
        let qs = assign_qualities(&d, n);
        prop_assert_eq!(qs.len(), n);
        for w in qs.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
    }

    /// Zipf quantiles stay within (0, q_max].
    #[test]
    fn zipf_quantiles_bounded(s in 0.2f64..3.0, u in 0.0f64..=1.0) {
        let d = ZipfQuality::new(s, 0.4, 10_000).unwrap();
        let q = d.quantile(u).value();
        prop_assert!(q > 0.0);
        prop_assert!(q <= 0.4 + 1e-12);
    }

    /// Uniform quantiles are linear between the bounds.
    #[test]
    fn uniform_quantile_linear(lo in 0.0f64..0.5, width in 0.0f64..0.5, u in 0.0f64..=1.0) {
        let hi = lo + width;
        let d = UniformQuality::new(lo, hi).unwrap();
        let q = d.quantile(u).value();
        prop_assert!((q - (lo + u * width)).abs() < 1e-12);
    }

    /// Survival probability is in [0, 1] and decreasing in time.
    #[test]
    fn survival_probability_monotone(l in 1.0f64..2000.0, t1 in 0.0f64..5000.0, t2 in 0.0f64..5000.0) {
        let m = LifetimeModel::new(l).unwrap();
        let (a, b) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let sa = m.survival_probability(a);
        let sb = m.survival_probability(b);
        prop_assert!((0.0..=1.0).contains(&sa));
        prop_assert!((0.0..=1.0).contains(&sb));
        prop_assert!(sb <= sa + 1e-12);
    }

    /// Community builder scaled_to_pages always yields a valid config.
    #[test]
    fn scaled_config_always_valid(n in 1usize..1_000_000) {
        let c = CommunityConfig::builder().scaled_to_pages(n).build();
        prop_assert!(c.is_ok());
        let c = c.unwrap();
        prop_assert!(c.monitored_users() <= c.users());
        prop_assert!(c.monitored_visits_per_day() <= c.total_visits_per_day() + 1e-9);
    }

    /// Child seeds never collide for distinct indices (small scale).
    #[test]
    fn seed_children_distinct(root in proptest::num::u64::ANY, i in 0u64..500, j in 0u64..500) {
        prop_assume!(i != j);
        let seq = SeedSequence::new(root);
        prop_assert_ne!(seq.child_seed(i), seq.child_seed(j));
    }
}
