//! Page-quality distributions.
//!
//! The paper (Section 6.1) has "little basis for measuring the intrinsic
//! quality distribution of pages on the Web" and uses, as the best available
//! approximation, the **power-law distribution reported for PageRank** in
//! Cho & Roy (WWW 2004), with the quality of the highest-quality page set to
//! **0.4**.
//!
//! This module provides:
//!
//! * the [`QualityDistribution`] trait — random sampling plus a quantile
//!   function, so both the stochastic simulator and the deterministic
//!   analytic model can use the same distribution object;
//! * [`PowerLawQuality`] — the paper's distribution: a Pareto-style
//!   power law truncated/scaled so the maximum equals `q_max` (0.4 by
//!   default);
//! * [`ZipfQuality`] — rank-based Zipf assignment, an alternative heavy-tail
//!   shape used in ablation experiments;
//! * [`UniformQuality`] and [`ConstantQuality`] — degenerate baselines used
//!   in tests;
//! * [`assign_qualities`] — the deterministic quantile-spaced assignment the
//!   analytic model and the simulator both use, so that a community of `n`
//!   pages always contains exactly one page of the maximum quality and a
//!   long tail of low-quality pages, independent of RNG noise.

use crate::error::{ModelError, ModelResult};
use crate::scalar::Quality;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A distribution over page-quality values in `[0, 1]`.
pub trait QualityDistribution {
    /// Draw one random quality value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Quality;

    /// The quantile function: `quantile(u)` for `u ∈ [0, 1]` returns the
    /// quality value below which a fraction `u` of the probability mass
    /// lies. `quantile(1.0)` is the maximum quality.
    fn quantile(&self, u: f64) -> Quality;

    /// The largest quality value the distribution can produce.
    fn max_quality(&self) -> Quality {
        self.quantile(1.0)
    }

    /// Expected (mean) quality, computed numerically from the quantile
    /// function unless the implementation overrides it with a closed form.
    fn mean(&self) -> f64 {
        // Midpoint rule over the quantile function: E[Q] = ∫₀¹ quantile(u) du.
        const STEPS: usize = 10_000;
        let mut sum = 0.0;
        for i in 0..STEPS {
            let u = (i as f64 + 0.5) / STEPS as f64;
            sum += self.quantile(u).value();
        }
        sum / STEPS as f64
    }
}

/// The paper's default quality distribution: a bounded power law (Pareto
/// shape) scaled so that the supremum equals `q_max`.
///
/// The quantile function is
/// `quantile(u) = q_min · (1 - u·(1 - (q_min/q_max)^α))^(-1/α)` — i.e. the
/// standard bounded-Pareto inverse CDF — which yields a density
/// `f(q) ∝ q^(-α-1)` on `[q_min, q_max]`. With the default `α = 2.1`
/// (the in-degree/PageRank power-law exponent commonly reported for the Web
/// graph) the overwhelming majority of pages have quality near `q_min`
/// while a single page per ~n reaches the neighbourhood of `q_max`,
/// matching the paper's qualitative description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerLawQuality {
    /// Power-law exponent `α > 0` (density exponent is `-(α+1)`).
    alpha: f64,
    /// Smallest quality value.
    q_min: f64,
    /// Largest quality value (0.4 in the paper).
    q_max: f64,
}

impl PowerLawQuality {
    /// Construct a bounded power law with exponent `alpha` on
    /// `[q_min, q_max]`.
    pub fn new(alpha: f64, q_min: f64, q_max: f64) -> ModelResult<Self> {
        if !alpha.is_finite() || alpha <= 0.0 {
            return Err(ModelError::InvalidDistribution {
                reason: format!("power-law exponent must be positive, got {alpha}"),
            });
        }
        if !q_min.is_finite() || !q_max.is_finite() {
            return Err(ModelError::NotFinite {
                what: "quality bound",
            });
        }
        if q_min <= 0.0 {
            return Err(ModelError::InvalidDistribution {
                reason: format!("q_min must be positive for a power law, got {q_min}"),
            });
        }
        if q_max <= q_min || q_max > 1.0 {
            return Err(ModelError::InvalidDistribution {
                reason: format!("need 0 < q_min < q_max <= 1, got q_min={q_min}, q_max={q_max}"),
            });
        }
        Ok(PowerLawQuality {
            alpha,
            q_min,
            q_max,
        })
    }

    /// The paper's default: exponent 2.1, qualities in `[0.001, 0.4]`.
    pub fn paper_default() -> Self {
        PowerLawQuality::new(2.1, 1e-3, Quality::PAPER_MAX.value())
            .expect("paper default parameters are valid")
    }

    /// Power-law exponent `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Lower quality bound.
    pub fn q_min(&self) -> f64 {
        self.q_min
    }

    /// Upper quality bound.
    pub fn q_max(&self) -> f64 {
        self.q_max
    }
}

impl QualityDistribution for PowerLawQuality {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Quality {
        let u: f64 = rng.gen();
        self.quantile(u)
    }

    fn quantile(&self, u: f64) -> Quality {
        let u = u.clamp(0.0, 1.0);
        // Bounded Pareto inverse CDF.
        let ratio = (self.q_min / self.q_max).powf(self.alpha);
        let denom = 1.0 - u * (1.0 - ratio);
        let q = self.q_min * denom.powf(-1.0 / self.alpha);
        Quality::clamped(q.min(self.q_max))
    }

    fn max_quality(&self) -> Quality {
        Quality::clamped(self.q_max)
    }
}

/// Rank-based Zipf quality: when used through [`assign_qualities`], page at
/// quantile position `u` gets quality `q_max / rank^s` where `rank` is the
/// page's position counted from the best page.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZipfQuality {
    /// Zipf exponent `s > 0`.
    s: f64,
    /// Quality of the best page.
    q_max: f64,
    /// Notional population size used to map quantiles to ranks.
    population: usize,
}

impl ZipfQuality {
    /// Construct a Zipf quality distribution.
    pub fn new(s: f64, q_max: f64, population: usize) -> ModelResult<Self> {
        if !s.is_finite() || s <= 0.0 {
            return Err(ModelError::InvalidDistribution {
                reason: format!("Zipf exponent must be positive, got {s}"),
            });
        }
        if !(0.0..=1.0).contains(&q_max) || q_max == 0.0 {
            return Err(ModelError::InvalidDistribution {
                reason: format!("q_max must be in (0, 1], got {q_max}"),
            });
        }
        if population == 0 {
            return Err(ModelError::ZeroCount { what: "population" });
        }
        Ok(ZipfQuality {
            s,
            q_max,
            population,
        })
    }
}

impl QualityDistribution for ZipfQuality {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Quality {
        let u: f64 = rng.gen();
        self.quantile(u)
    }

    fn quantile(&self, u: f64) -> Quality {
        let u = u.clamp(0.0, 1.0);
        // u = 1.0 corresponds to the best page (rank 1); u = 0 to the worst
        // (rank = population).
        let rank = ((1.0 - u) * (self.population as f64 - 1.0)).floor() + 1.0;
        Quality::clamped(self.q_max / rank.powf(self.s))
    }

    fn max_quality(&self) -> Quality {
        Quality::clamped(self.q_max)
    }
}

/// Uniform quality on `[lo, hi]` — a baseline without a heavy tail.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UniformQuality {
    lo: f64,
    hi: f64,
}

impl UniformQuality {
    /// Construct a uniform quality distribution on `[lo, hi] ⊆ [0, 1]`.
    pub fn new(lo: f64, hi: f64) -> ModelResult<Self> {
        if !lo.is_finite() || !hi.is_finite() {
            return Err(ModelError::NotFinite {
                what: "quality bound",
            });
        }
        if !(0.0..=1.0).contains(&lo) || !(0.0..=1.0).contains(&hi) || lo > hi {
            return Err(ModelError::InvalidDistribution {
                reason: format!("need 0 <= lo <= hi <= 1, got lo={lo}, hi={hi}"),
            });
        }
        Ok(UniformQuality { lo, hi })
    }
}

impl QualityDistribution for UniformQuality {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Quality {
        Quality::clamped(rng.gen_range(self.lo..=self.hi))
    }

    fn quantile(&self, u: f64) -> Quality {
        let u = u.clamp(0.0, 1.0);
        Quality::clamped(self.lo + u * (self.hi - self.lo))
    }

    fn mean(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }
}

/// Every page has the same quality — the degenerate case used in unit tests
/// where quality differences must not matter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConstantQuality {
    q: f64,
}

impl ConstantQuality {
    /// Construct a constant quality distribution.
    pub fn new(q: f64) -> ModelResult<Self> {
        Quality::new(q)?;
        Ok(ConstantQuality { q })
    }
}

impl QualityDistribution for ConstantQuality {
    fn sample<R: Rng + ?Sized>(&self, _rng: &mut R) -> Quality {
        Quality::clamped(self.q)
    }

    fn quantile(&self, _u: f64) -> Quality {
        Quality::clamped(self.q)
    }

    fn mean(&self) -> f64 {
        self.q
    }
}

/// Deterministically assign qualities to `n` pages using evenly spaced
/// quantiles of `dist`, **including the maximum**: page 0 receives
/// `quantile(1.0)` (the best page), page `n-1` receives `quantile(1/n)`.
///
/// Both the analytic model and the simulator use this assignment so the two
/// can be compared on identical page populations (the paper's Figures 4–8
/// compare "analysis" and "simulation" series on the same community).
pub fn assign_qualities<D: QualityDistribution>(dist: &D, n: usize) -> Vec<Quality> {
    (0..n)
        .map(|i| {
            // i = 0 -> u = 1.0 (best page), i = n-1 -> u = 1/n.
            let u = (n - i) as f64 / n as f64;
            dist.quantile(u)
        })
        .collect()
}

/// Randomly sample qualities for `n` pages.
pub fn sample_qualities<D: QualityDistribution, R: Rng + ?Sized>(
    dist: &D,
    n: usize,
    rng: &mut R,
) -> Vec<Quality> {
    (0..n).map(|_| dist.sample(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn power_law_rejects_bad_parameters() {
        assert!(PowerLawQuality::new(0.0, 0.001, 0.4).is_err());
        assert!(PowerLawQuality::new(-1.0, 0.001, 0.4).is_err());
        assert!(PowerLawQuality::new(2.0, 0.0, 0.4).is_err());
        assert!(PowerLawQuality::new(2.0, 0.5, 0.4).is_err());
        assert!(PowerLawQuality::new(2.0, 0.001, 1.5).is_err());
        assert!(PowerLawQuality::new(2.0, 0.001, 0.4).is_ok());
    }

    #[test]
    fn paper_default_max_is_0_4() {
        let d = PowerLawQuality::paper_default();
        assert!((d.max_quality().value() - 0.4).abs() < 1e-12);
        assert!((d.quantile(1.0).value() - 0.4).abs() < 1e-9);
        assert_eq!(d.q_max(), 0.4);
        assert!(d.alpha() > 0.0);
        assert!(d.q_min() > 0.0);
    }

    #[test]
    fn power_law_quantile_is_monotone() {
        let d = PowerLawQuality::paper_default();
        let mut prev = d.quantile(0.0);
        for i in 1..=100 {
            let q = d.quantile(i as f64 / 100.0);
            assert!(q >= prev, "quantile must be nondecreasing");
            prev = q;
        }
    }

    #[test]
    fn power_law_is_heavy_tailed() {
        let d = PowerLawQuality::paper_default();
        // The median should be far below the mean of min and max: most
        // pages are low quality.
        let median = d.quantile(0.5).value();
        assert!(median < 0.01, "median {median} should be tiny");
        // Mean is well below the midpoint of the range.
        assert!(d.mean() < 0.05);
    }

    #[test]
    fn power_law_samples_respect_bounds() {
        let d = PowerLawQuality::paper_default();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let q = d.sample(&mut rng).value();
            assert!(
                (0.001..=0.4 + 1e-12).contains(&q),
                "sample {q} out of bounds"
            );
        }
    }

    #[test]
    fn zipf_quantile_best_page_gets_q_max() {
        let d = ZipfQuality::new(1.0, 0.4, 1000).unwrap();
        assert!((d.quantile(1.0).value() - 0.4).abs() < 1e-12);
        assert!(d.quantile(0.0).value() < 0.001);
        assert!(ZipfQuality::new(0.0, 0.4, 10).is_err());
        assert!(ZipfQuality::new(1.0, 0.0, 10).is_err());
        assert!(ZipfQuality::new(1.0, 0.4, 0).is_err());
    }

    #[test]
    fn uniform_quality_bounds_and_mean() {
        let d = UniformQuality::new(0.2, 0.6).unwrap();
        assert!((d.mean() - 0.4).abs() < 1e-12);
        assert_eq!(d.quantile(0.0).value(), 0.2);
        assert_eq!(d.quantile(1.0).value(), 0.6);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let q = d.sample(&mut rng).value();
            assert!((0.2..=0.6).contains(&q));
        }
        assert!(UniformQuality::new(0.6, 0.2).is_err());
        assert!(UniformQuality::new(-0.1, 0.5).is_err());
    }

    #[test]
    fn constant_quality() {
        let d = ConstantQuality::new(0.3).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(d.sample(&mut rng).value(), 0.3);
        assert_eq!(d.quantile(0.7).value(), 0.3);
        assert_eq!(d.mean(), 0.3);
        assert!(ConstantQuality::new(1.2).is_err());
    }

    #[test]
    fn assign_qualities_includes_exactly_one_max_page() {
        let d = PowerLawQuality::paper_default();
        let qs = assign_qualities(&d, 1000);
        assert_eq!(qs.len(), 1000);
        assert!(
            (qs[0].value() - 0.4).abs() < 1e-9,
            "first page is the best page"
        );
        // Sorted descending.
        for w in qs.windows(2) {
            assert!(w[0] >= w[1]);
        }
        // Strictly fewer than 1% of pages have quality above 0.1.
        let high = qs.iter().filter(|q| q.value() > 0.1).count();
        assert!(
            high < 10,
            "only a handful of high-quality pages, got {high}"
        );
    }

    #[test]
    fn sample_qualities_length_and_range() {
        let d = PowerLawQuality::paper_default();
        let mut rng = StdRng::seed_from_u64(3);
        let qs = sample_qualities(&d, 500, &mut rng);
        assert_eq!(qs.len(), 500);
        assert!(qs.iter().all(|q| q.value() <= 0.4 + 1e-12));
    }

    #[test]
    fn numeric_mean_matches_closed_form_for_uniform() {
        let d = UniformQuality::new(0.0, 1.0).unwrap();
        // Default trait implementation via quantile integration:
        let numeric = QualityDistribution::mean(&d);
        assert!((numeric - 0.5).abs() < 1e-3);
    }
}
