//! Identifier newtypes for pages and users.
//!
//! Using dedicated newtypes (instead of bare `usize`/`u64`) prevents an
//! entire class of index-confusion bugs in the simulator, where page indices
//! and user indices are both dense integers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a Web page within a community (`p ∈ P` in the paper).
///
/// Page ids are dense: the simulator and the analytic model both index pages
/// by `0..n`. When a page is retired and replaced (Section 5.1 of the paper),
/// the replacement *reuses* the same slot but receives a fresh [`PageId`], so
/// ids are unique across the lifetime of a simulation while slots stay dense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PageId(pub u64);

impl PageId {
    /// Construct a page id from a raw integer.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        PageId(raw)
    }

    /// The raw integer value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

impl From<u64> for PageId {
    fn from(raw: u64) -> Self {
        PageId(raw)
    }
}

impl From<PageId> for u64 {
    fn from(id: PageId) -> Self {
        id.0
    }
}

/// Identifier of a user within a community (`∈ U` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UserId(pub u64);

impl UserId {
    /// Construct a user id from a raw integer.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        UserId(raw)
    }

    /// The raw integer value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "user#{}", self.0)
    }
}

impl From<u64> for UserId {
    fn from(raw: u64) -> Self {
        UserId(raw)
    }
}

impl From<UserId> for u64 {
    fn from(id: UserId) -> Self {
        id.0
    }
}

/// Monotonically increasing id generator used by the simulator when pages
/// are retired and replaced.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PageIdGenerator {
    next: u64,
}

impl PageIdGenerator {
    /// Create a generator whose first id is `page#0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a generator that starts at an arbitrary raw value, useful when
    /// resuming a simulation from a checkpoint.
    pub fn starting_at(next: u64) -> Self {
        PageIdGenerator { next }
    }

    /// Produce the next fresh id.
    pub fn next_id(&mut self) -> PageId {
        let id = PageId(self.next);
        self.next += 1;
        id
    }

    /// Number of ids handed out so far.
    pub fn issued(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_id_roundtrip() {
        let id = PageId::new(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(u64::from(id), 42);
        assert_eq!(PageId::from(42u64), id);
        assert_eq!(id.to_string(), "page#42");
    }

    #[test]
    fn user_id_roundtrip() {
        let id = UserId::new(7);
        assert_eq!(id.raw(), 7);
        assert_eq!(u64::from(id), 7);
        assert_eq!(UserId::from(7u64), id);
        assert_eq!(id.to_string(), "user#7");
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(PageId::new(1) < PageId::new(2));
        assert!(UserId::new(9) > UserId::new(3));
    }

    #[test]
    fn generator_is_monotonic_and_unique() {
        let mut gen = PageIdGenerator::new();
        let a = gen.next_id();
        let b = gen.next_id();
        let c = gen.next_id();
        assert_eq!(a, PageId::new(0));
        assert_eq!(b, PageId::new(1));
        assert_eq!(c, PageId::new(2));
        assert_eq!(gen.issued(), 3);
    }

    #[test]
    fn generator_starting_at_resumes() {
        let mut gen = PageIdGenerator::starting_at(100);
        assert_eq!(gen.next_id(), PageId::new(100));
        assert_eq!(gen.next_id(), PageId::new(101));
    }

    #[test]
    fn ids_serialize_as_plain_integers() {
        let id = PageId::new(5);
        let json = serde_json::to_string(&id).unwrap();
        assert_eq!(json, "5");
        let back: PageId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, id);
    }
}
