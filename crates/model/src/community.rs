//! Web-community configuration (Section 3 and Section 6.1 of the paper).
//!
//! A *community* is the set of pages `P` devoted to one topic together with
//! the users `U` interested in that topic. The paper characterises a
//! community by a handful of scalars (Table 1):
//!
//! | symbol | meaning | default (§6.1) |
//! |---|---|---|
//! | `n`   | number of pages                | 10 000 |
//! | `u`   | number of users                | 1 000 |
//! | `m`   | number of monitored users      | 100 (10 % of `u`) |
//! | `v_u` | total user visits per day      | 1 000 (1 per user per day) |
//! | `v`   | monitored-user visits per day  | `v_u · m / u` = 100 |
//! | `l`   | expected page lifetime         | 1.5 years |
//!
//! [`CommunityConfig`] validates these constraints and exposes the derived
//! quantities (`v`, the Poisson retirement rate `λ = 1/l`).

use crate::error::{ModelError, ModelResult};
use crate::time::years_to_days;
use serde::{Deserialize, Serialize};

/// Configuration of one Web community.
///
/// Construct with [`CommunityConfig::builder`] or use
/// [`CommunityConfig::paper_default`] for the paper's default scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommunityConfig {
    /// Number of pages in the community (`n = |P|`).
    pages: usize,
    /// Number of users in the community (`u = |U|`).
    users: usize,
    /// Number of monitored users (`m = |U_m| ≤ u`).
    monitored_users: usize,
    /// Total number of user visits per day (`v_u`).
    total_visits_per_day: f64,
    /// Expected page lifetime in days (`l`).
    expected_lifetime_days: f64,
}

impl CommunityConfig {
    /// The paper's default Web community (Section 6.1): `n = 10 000`,
    /// `u = 1 000`, `m = 100`, `v_u = 1 000` visits/day, `l = 1.5` years.
    pub fn paper_default() -> Self {
        CommunityConfig {
            pages: 10_000,
            users: 1_000,
            monitored_users: 100,
            total_visits_per_day: 1_000.0,
            expected_lifetime_days: years_to_days(1.5),
        }
    }

    /// Start building a configuration from the paper defaults.
    pub fn builder() -> CommunityConfigBuilder {
        CommunityConfigBuilder::default()
    }

    /// Number of pages `n`.
    #[inline]
    pub fn pages(&self) -> usize {
        self.pages
    }

    /// Number of users `u`.
    #[inline]
    pub fn users(&self) -> usize {
        self.users
    }

    /// Number of monitored users `m`.
    #[inline]
    pub fn monitored_users(&self) -> usize {
        self.monitored_users
    }

    /// Total user visits per day `v_u`.
    #[inline]
    pub fn total_visits_per_day(&self) -> f64 {
        self.total_visits_per_day
    }

    /// Monitored-user visits per day `v = v_u · m / u`.
    #[inline]
    pub fn monitored_visits_per_day(&self) -> f64 {
        self.total_visits_per_day * self.monitored_users as f64 / self.users as f64
    }

    /// Expected page lifetime `l`, in days.
    #[inline]
    pub fn expected_lifetime_days(&self) -> f64 {
        self.expected_lifetime_days
    }

    /// Poisson page-retirement rate `λ = 1 / l` (per day).
    #[inline]
    pub fn retirement_rate(&self) -> f64 {
        1.0 / self.expected_lifetime_days
    }

    /// Fraction of users that are monitored, `m / u`.
    #[inline]
    pub fn monitored_fraction(&self) -> f64 {
        self.monitored_users as f64 / self.users as f64
    }

    /// Average number of daily visits per page, `v_u / n` — the paper's
    /// Section 7.3 discusses regimes of this quantity.
    #[inline]
    pub fn visits_per_page_per_day(&self) -> f64 {
        self.total_visits_per_day / self.pages as f64
    }

    /// Validate the internal consistency of the configuration.
    pub fn validate(&self) -> ModelResult<()> {
        if self.pages == 0 {
            return Err(ModelError::ZeroCount { what: "pages" });
        }
        if self.users == 0 {
            return Err(ModelError::ZeroCount { what: "users" });
        }
        if self.monitored_users == 0 {
            return Err(ModelError::ZeroCount {
                what: "monitored users",
            });
        }
        if self.monitored_users > self.users {
            return Err(ModelError::InvalidCommunity {
                reason: format!(
                    "monitored users ({}) exceed users ({})",
                    self.monitored_users, self.users
                ),
            });
        }
        if !self.total_visits_per_day.is_finite() || self.total_visits_per_day <= 0.0 {
            return Err(ModelError::NonPositive {
                what: "total visits per day",
                value: self.total_visits_per_day,
            });
        }
        if !self.expected_lifetime_days.is_finite() || self.expected_lifetime_days <= 0.0 {
            return Err(ModelError::NonPositive {
                what: "expected page lifetime",
                value: self.expected_lifetime_days,
            });
        }
        Ok(())
    }
}

impl Default for CommunityConfig {
    fn default() -> Self {
        CommunityConfig::paper_default()
    }
}

/// Builder for [`CommunityConfig`]; every field defaults to the paper's
/// default scenario, so experiments can vary one characteristic at a time
/// exactly as Section 7 does.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommunityConfigBuilder {
    config: CommunityConfig,
}

impl CommunityConfigBuilder {
    /// Set the number of pages `n`.
    pub fn pages(mut self, n: usize) -> Self {
        self.config.pages = n;
        self
    }

    /// Set the number of users `u`.
    pub fn users(mut self, u: usize) -> Self {
        self.config.users = u;
        self
    }

    /// Set the number of monitored users `m`.
    pub fn monitored_users(mut self, m: usize) -> Self {
        self.config.monitored_users = m;
        self
    }

    /// Set the total user visits per day `v_u`.
    pub fn total_visits_per_day(mut self, vu: f64) -> Self {
        self.config.total_visits_per_day = vu;
        self
    }

    /// Set the expected page lifetime in days.
    pub fn expected_lifetime_days(mut self, days: f64) -> Self {
        self.config.expected_lifetime_days = days;
        self
    }

    /// Set the expected page lifetime in years (1 year = 365 days).
    pub fn expected_lifetime_years(mut self, years: f64) -> Self {
        self.config.expected_lifetime_days = years_to_days(years);
        self
    }

    /// Scale the community to `n` pages keeping the paper's proportions:
    /// `u/n = 10 %`, `m/u = 10 %`, one visit per user per day. This is the
    /// sweep used in Figure 7(a).
    pub fn scaled_to_pages(mut self, n: usize) -> Self {
        let users = (n as f64 * 0.1).round().max(1.0) as usize;
        let monitored = (users as f64 * 0.1).round().max(1.0) as usize;
        self.config.pages = n;
        self.config.users = users;
        self.config.monitored_users = monitored.min(users);
        self.config.total_visits_per_day = users as f64;
        self
    }

    /// Finish building, validating the configuration.
    pub fn build(self) -> ModelResult<CommunityConfig> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_6_1() {
        let c = CommunityConfig::paper_default();
        assert_eq!(c.pages(), 10_000);
        assert_eq!(c.users(), 1_000);
        assert_eq!(c.monitored_users(), 100);
        assert_eq!(c.total_visits_per_day(), 1_000.0);
        assert!((c.monitored_visits_per_day() - 100.0).abs() < 1e-9);
        assert!((c.expected_lifetime_days() - 547.5).abs() < 1e-9);
        assert!((c.retirement_rate() - 1.0 / 547.5).abs() < 1e-12);
        assert!((c.monitored_fraction() - 0.1).abs() < 1e-12);
        assert!((c.visits_per_page_per_day() - 0.1).abs() < 1e-12);
        assert!(c.validate().is_ok());
        assert_eq!(CommunityConfig::default(), c);
    }

    #[test]
    fn builder_varies_one_dimension() {
        let c = CommunityConfig::builder()
            .expected_lifetime_years(3.0)
            .build()
            .unwrap();
        assert_eq!(c.pages(), 10_000);
        assert!((c.expected_lifetime_days() - 1095.0).abs() < 1e-9);
    }

    #[test]
    fn builder_rejects_inconsistent_config() {
        assert!(CommunityConfig::builder()
            .monitored_users(2_000)
            .build()
            .is_err());
        assert!(CommunityConfig::builder().pages(0).build().is_err());
        assert!(CommunityConfig::builder().users(0).build().is_err());
        assert!(CommunityConfig::builder()
            .monitored_users(0)
            .build()
            .is_err());
        assert!(CommunityConfig::builder()
            .total_visits_per_day(0.0)
            .build()
            .is_err());
        assert!(CommunityConfig::builder()
            .total_visits_per_day(-5.0)
            .build()
            .is_err());
        assert!(CommunityConfig::builder()
            .expected_lifetime_days(0.0)
            .build()
            .is_err());
    }

    #[test]
    fn scaled_to_pages_keeps_paper_proportions() {
        let c = CommunityConfig::builder()
            .scaled_to_pages(100_000)
            .build()
            .unwrap();
        assert_eq!(c.pages(), 100_000);
        assert_eq!(c.users(), 10_000);
        assert_eq!(c.monitored_users(), 1_000);
        assert_eq!(c.total_visits_per_day(), 10_000.0);
        assert!((c.monitored_visits_per_day() - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_to_tiny_community_still_valid() {
        let c = CommunityConfig::builder()
            .scaled_to_pages(10)
            .build()
            .unwrap();
        assert_eq!(c.pages(), 10);
        assert!(c.monitored_users() >= 1);
        assert!(c.monitored_users() <= c.users());
    }

    #[test]
    fn serde_roundtrip() {
        let c = CommunityConfig::paper_default();
        let json = serde_json::to_string(&c).unwrap();
        let back: CommunityConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn monitored_visits_scale_with_monitored_fraction() {
        let c = CommunityConfig::builder()
            .users(2_000)
            .monitored_users(100)
            .build()
            .unwrap();
        // m/u = 5%, so v = 0.05 * 1000 = 50.
        assert!((c.monitored_visits_per_day() - 50.0).abs() < 1e-9);
    }
}
