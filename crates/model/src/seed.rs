//! Deterministic random-number-generator plumbing.
//!
//! Every stochastic component in the workspace (simulator, live-study model,
//! graph generators, randomized ranking) is seeded explicitly so that
//! experiments are exactly reproducible. This module centralises the policy:
//!
//! * [`new_rng`] builds a `ChaCha8` RNG from a `u64` seed — fast, portable
//!   across platforms, and stable across Rust releases (unlike
//!   `StdRng`, whose algorithm is not guaranteed).
//! * [`SeedSequence`] derives independent child seeds from a root seed so
//!   that, e.g., each parameter point of a sweep gets its own stream and
//!   adding a new point does not perturb the others.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The RNG type used across the workspace.
pub type Rng64 = ChaCha8Rng;

/// Build the workspace-standard RNG from a 64-bit seed.
pub fn new_rng(seed: u64) -> Rng64 {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Derives statistically independent child seeds from a root seed.
///
/// Child seeds are produced with the SplitMix64 output function, the
/// generator recommended for seeding other PRNGs; distinct indices give
/// well-separated streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    root: u64,
}

impl SeedSequence {
    /// Create a sequence rooted at `root`.
    pub fn new(root: u64) -> Self {
        SeedSequence { root }
    }

    /// The root seed.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Derive the `index`-th child seed.
    pub fn child_seed(&self, index: u64) -> u64 {
        splitmix64(
            self.root
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index + 1)),
        )
    }

    /// Derive the `index`-th child RNG.
    pub fn child_rng(&self, index: u64) -> Rng64 {
        new_rng(self.child_seed(index))
    }

    /// Derive a child sequence (for nested sweeps: e.g. one child per
    /// parameter point, grandchildren per repetition).
    pub fn child_sequence(&self, index: u64) -> SeedSequence {
        SeedSequence::new(self.child_seed(index))
    }
}

/// SplitMix64 output function — the workspace-standard mixer for deriving
/// seeds and stream identifiers from hashes or indices. Exported so other
/// crates (e.g. the sweep executor) share this exact mixing instead of
/// duplicating the constants.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = new_rng(123);
        let mut b = new_rng(123);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = new_rng(1);
        let mut b = new_rng(2);
        let same = (0..100)
            .filter(|_| a.gen::<u64>() == b.gen::<u64>())
            .count();
        assert!(same < 5, "independent streams should rarely collide");
    }

    #[test]
    fn child_seeds_are_distinct() {
        let seq = SeedSequence::new(42);
        let mut seeds: Vec<u64> = (0..1000).map(|i| seq.child_seed(i)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 1000, "child seeds must not collide");
    }

    #[test]
    fn child_seeds_are_deterministic() {
        let a = SeedSequence::new(7);
        let b = SeedSequence::new(7);
        assert_eq!(a.child_seed(3), b.child_seed(3));
        assert_eq!(a.root(), 7);
    }

    #[test]
    fn child_sequences_are_independent_of_sibling_count() {
        let seq = SeedSequence::new(99);
        let third = seq.child_seed(3);
        // Deriving other children does not change the third child.
        let _ = seq.child_seed(0);
        let _ = seq.child_seed(100);
        assert_eq!(seq.child_seed(3), third);
    }

    #[test]
    fn nested_sequences_differ_from_parent() {
        let seq = SeedSequence::new(5);
        let child = seq.child_sequence(0);
        assert_ne!(child.root(), seq.root());
        assert_ne!(child.child_seed(0), seq.child_seed(0));
    }

    #[test]
    fn child_rng_matches_child_seed() {
        let seq = SeedSequence::new(11);
        let mut a = seq.child_rng(4);
        let mut b = new_rng(seq.child_seed(4));
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
